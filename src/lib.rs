//! # dpu-repro
//!
//! A full reproduction of *"A Many-core Architecture for In-Memory Data
//! Processing"* (MICRO-50, 2017): the Oracle Labs **DPU**, its **Data
//! Movement System**, **Atomic Transaction Engine**, software runtime and
//! the six co-designed analytics applications — rebuilt as a
//! cycle-approximate full-system simulator and workload suite in Rust.
//!
//! This crate is the facade: it re-exports every workspace crate under
//! one name and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`soc::Dpu`](dpu_core::Dpu) and the
//! [`StreamKernel`](dpu_core::StreamKernel) pattern, or run:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release -p dpu-bench --bin fig14_efficiency
//! ```

/// Simulation kernel (time, event queues, bandwidth servers).
pub use dpu_sim as sim;

/// Host-side scoped work-stealing thread pool (wall-clock parallelism;
/// simulated time and results are unaffected by the thread count).
pub use dpu_pool as pool;

/// Q10.22 fixed-point arithmetic.
pub use dpu_fixed as fixed;

/// The dpCore instruction set, assembler, interpreter and pipeline model.
pub use dpu_isa as isa;

/// Memory models: DRAM timing, DMEM, software-coherent caches, AXI.
pub use dpu_mem as mem;

/// The Data Movement System (descriptors, DMAD/DMAX/DMAC, partitioning).
pub use dpu_dms as dms;

/// The Atomic Transaction Engine (hardware RPCs, synchronization).
pub use dpu_ate as ate;

/// The DPU SoC: configuration, power model, execution engine.
pub use dpu_core as soc;

/// The software runtime (work stealing, heap, serialized access).
pub use dpu_runtime as runtime;

/// The analytic Xeon baseline model and the paper's calibration anchors.
pub use xeon_model as xeon;

/// The columnar SQL engine and TPC-H suite.
pub use dpu_sql as sql;

/// The co-designed applications (SVM, SpMM, HLL, JSON, disparity).
pub use dpu_apps as apps;

/// Rack-scale distributed query execution over simulated DPU nodes.
pub use dpu_cluster as cluster;

/// Cost-based distributed query planner with statistics sketches and
/// adaptive re-optimization from serve traffic.
pub use dpu_planner as planner;
