//! Offline stand-in for the `criterion` API surface this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the slice of criterion its benches depend on:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated-iteration wall-clock timer printing ns/iter — no
//! statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the stand-in re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Work per iteration, for rate reporting (elements/s or bytes/s)
/// alongside ns/iter — mirrors upstream criterion's `Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many items per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

impl Throughput {
    /// Human-readable rate for an iteration that took `ns` nanoseconds.
    fn rate(self, ns: f64) -> String {
        match self {
            Throughput::Elements(n) => {
                let eps = n as f64 / (ns / 1e9);
                if eps >= 1e6 {
                    format!("{:10.2} Melem/s", eps / 1e6)
                } else {
                    format!("{eps:10.0} elem/s")
                }
            }
            Throughput::Bytes(n) => {
                format!("{:10.2} MB/s", n as f64 / (ns / 1e9) / 1e6)
            }
        }
    }
}

/// Timing context passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double until the batch takes ≥ ~5 ms, then fill the
        // target window with batches of that size.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            self.iters_done += batch;
            self.elapsed += took;
            if took >= Duration::from_millis(5) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let start = Instant::now();
        let mut done = 0u64;
        while start.elapsed() < TARGET {
            for _ in 0..batch {
                black_box(routine());
            }
            done += batch;
        }
        self.iters_done += done;
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + TARGET;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters_done == 0 {
            println!("{name:50} (no iterations)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters_done as f64;
        let rate = throughput.map(|t| format!("  {}", t.rate(ns))).unwrap_or_default();
        println!("{name:50} {ns:12.1} ns/iter ({} iters){rate}", self.iters_done);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, prefix: name.to_string(), throughput: None }
    }
}

/// A named group; benchmark names are prefixed with the group name.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work reported with each subsequent
    /// benchmark in this group (elements/s or MB/s next to ns/iter).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters_done > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn throughput_reports_a_rate() {
        // 1 element per 1000 ns = 1e6 elem/s (printed as Melem/s).
        assert!(Throughput::Elements(1).rate(1000.0).contains("Melem/s"));
        assert!(Throughput::Elements(1).rate(1e8).contains("elem/s"));
        assert!(Throughput::Bytes(1_000_000).rate(1e6).contains("MB/s"));
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(64));
        g.bench_function("rated", |b| b.iter(|| black_box(64)));
        g.finish();
    }
}
