//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the slice of proptest it depends on: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], [`prop_oneof!`], `proptest::option::of`,
//! `proptest::collection::vec`, tuple strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are
//! drawn from a deterministic per-test SplitMix64 stream (seeded from
//! the test name, so failures reproduce exactly), and there is **no
//! shrinking** — a failing case panics with the generated values left to
//! the assertion message. Each property runs [`test_runner::CASES`]
//! cases.

pub mod test_runner {
    /// Cases generated per property.
    pub const CASES: u32 = 256;

    /// Marker for a rejected (assumed-away) case.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Reject;

    /// Deterministic uniform source for strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from raw state.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        choices: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds from a non-empty choice list.
        ///
        /// # Panics
        ///
        /// Panics if `choices` is empty.
        pub fn new(choices: Vec<S>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            Union { choices }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types generable over their whole domain via [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for a whole-domain value of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Whole-domain strategy for `T` (`any::<u16>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` 25% of the time, `Some(inner)` otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..$crate::test_runner::CASES {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // A rejected case (prop_assume!) skips the body via Err;
                // the immediately-called closure gives `return` a target.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                let _ = (__case, __outcome);
            }
        }
    )+};
}

/// Uniform choice among listed strategies (all of one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($choice:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($choice),+])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn mapped_ranges_stay_in_bounds(x in (0u8..32).prop_map(|v| v * 2), y in any::<u16>()) {
            prop_assert!(x < 64 && x % 2 == 0);
            let _ = y;
        }

        #[test]
        fn assume_skips_cases(a in 0u8..4) {
            prop_assume!(a != 0);
            prop_assert_ne!(a, 0);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<bool>(), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
        }

        #[test]
        fn options_and_tuples_compose(o in crate::option::of((0u8..8, any::<bool>()))) {
            if let Some((n, _)) = o {
                prop_assert!(n < 8);
            }
        }

        #[test]
        fn oneof_picks_from_choices(k in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
