//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `rand` it depends on:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen` for primitives. The generator is SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), but every use
//! in this repository only requires a deterministic, well-mixed uniform
//! source, which SplitMix64 provides.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample of a primitive over its full domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a bounded range. The single blanket
/// [`SampleRange`] impl below goes through this trait (as upstream rand
/// does) so integer-literal inference behaves identically to upstream:
/// `x_i64 + rng.gen_range(1..=30)` infers the literal as `i64`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }

            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }

    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64's additive constant (Steele, Lea & Flood 2014).
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Jumps the stream forward by `draws` calls to
        /// [`next_u64`](RngCore::next_u64) in O(1): SplitMix64's state is
        /// a pure counter (`state += GAMMA` per draw), so advancing is
        /// one multiply-add. Every integer `gen_range` in this crate
        /// consumes exactly one `next_u64`, which is what makes chunked
        /// deterministic data generation possible — a chunk's stream is
        /// the base stream advanced past all earlier values' draws.
        pub fn advance(&mut self, draws: u64) {
            self.state = self.state.wrapping_add(draws.wrapping_mul(GAMMA));
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(GAMMA);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(1usize..=7);
            assert!((1..=7).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn advance_equals_discarding_draws() {
        for k in [0u64, 1, 7, 1000] {
            let mut jumped = StdRng::seed_from_u64(42);
            jumped.advance(k);
            let mut walked = StdRng::seed_from_u64(42);
            for _ in 0..k {
                walked.next_u64();
            }
            let a: Vec<u64> = (0..8).map(|_| jumped.next_u64()).collect();
            let b: Vec<u64> = (0..8).map(|_| walked.next_u64()).collect();
            assert_eq!(a, b, "advance({k})");
        }
    }

    #[test]
    fn advance_composes() {
        let mut once = StdRng::seed_from_u64(5);
        once.advance(30);
        let mut twice = StdRng::seed_from_u64(5);
        twice.advance(13);
        twice.advance(17);
        assert_eq!(once.next_u64(), twice.next_u64());
    }

    #[test]
    fn every_integer_gen_range_consumes_exactly_one_draw() {
        // The chunked TPC-H generator's offset arithmetic depends on
        // this: one gen_range (any integer type, half-open or
        // inclusive) = one next_u64.
        let mut a = StdRng::seed_from_u64(11);
        let _: i64 = a.gen_range(0..25);
        let _: usize = a.gen_range(1..=7);
        let _: i32 = a.gen_range(-4..9);
        let mut b = StdRng::seed_from_u64(11);
        b.advance(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5i32..5);
    }
}
