//! K-way replica placement by chained declustering.
//!
//! Each logical shard is stored on `k` distinct nodes: its *primary*
//! (node `s` for shard `s`, exactly the pre-replication layout) plus
//! `k-1` chained copies on the next nodes around the ring
//! (`s+1, …, s+k-1 mod n`). Chained declustering (Hsiao & DeWitt, 1990)
//! has the property that when a node fails, the shards it carried are
//! re-hosted on *different* survivors — its primary shard moves to its
//! successor while the copies it held are served by their own primaries —
//! so a failure spreads load over neighbors instead of doubling one
//! node's work the way mirrored pairs do.
//!
//! `k = 1` degenerates to "shard `s` lives on node `s`", bit-identical
//! to the unreplicated placement, and is property-tested to stay that
//! way.

/// Chained-declustering placement of `n_shards == n_nodes` shards with
/// `k` replicas each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n_nodes: usize,
    k: usize,
}

impl Placement {
    /// A placement of one shard per node with `k` replicas each.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds `n_nodes` (replicas must land on
    /// distinct nodes).
    pub fn new(n_nodes: usize, k: usize) -> Self {
        assert!(n_nodes > 0, "a placement needs nodes");
        assert!(k >= 1, "need at least one replica");
        assert!(k <= n_nodes, "{k} replicas cannot occupy {n_nodes} distinct nodes");
        Placement { n_nodes, k }
    }

    /// Node count (== shard count).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Replication factor.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `k` distinct nodes holding `shard`, primary first, then the
    /// chained copies in failover-preference order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn owners(&self, shard: usize) -> Vec<usize> {
        assert!(shard < self.n_nodes, "shard {shard} out of range");
        (0..self.k).map(|j| (shard + j) % self.n_nodes).collect()
    }

    /// The primary node of `shard` (its first owner).
    pub fn primary(&self, shard: usize) -> usize {
        assert!(shard < self.n_nodes, "shard {shard} out of range");
        shard
    }

    /// The shards stored on `node` (as primary or copy), ascending.
    pub fn shards_on(&self, node: usize) -> Vec<usize> {
        assert!(node < self.n_nodes, "node {node} out of range");
        let mut shards: Vec<usize> =
            (0..self.k).map(|j| (node + self.n_nodes - j) % self.n_nodes).collect();
        shards.sort_unstable();
        shards
    }

    /// Whether `node` holds a replica of `shard`.
    pub fn holds(&self, node: usize, shard: usize) -> bool {
        self.owners(shard).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_are_k_distinct_chained_nodes() {
        let p = Placement::new(8, 3);
        for s in 0..8 {
            let o = p.owners(s);
            assert_eq!(o.len(), 3);
            assert_eq!(o[0], s, "primary is the shard's own node");
            assert_eq!(o[1], (s + 1) % 8);
            assert_eq!(o[2], (s + 2) % 8);
            let distinct: std::collections::HashSet<_> = o.iter().collect();
            assert_eq!(distinct.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn k1_is_the_identity_placement() {
        let p = Placement::new(6, 1);
        for s in 0..6 {
            assert_eq!(p.owners(s), vec![s]);
            assert_eq!(p.shards_on(s), vec![s]);
        }
    }

    #[test]
    fn shards_on_inverts_owners() {
        let p = Placement::new(8, 3);
        for node in 0..8 {
            for s in 0..8 {
                assert_eq!(p.shards_on(node).contains(&s), p.holds(node, s));
            }
            assert_eq!(p.shards_on(node).len(), 3, "k shards per node");
        }
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn k_larger_than_nodes_is_rejected() {
        Placement::new(3, 4);
    }
}
