//! K-way replica placement by chained declustering, generalized to rack
//! failure domains.
//!
//! Each logical shard is stored on `k` distinct nodes: its *primary*
//! (node `s` for shard `s`, exactly the pre-replication layout) plus
//! `k-1` chained copies. Chained declustering (Hsiao & DeWitt, 1990)
//! has the property that when a node fails, the shards it carried are
//! re-hosted on *different* survivors — its primary shard moves to its
//! successor while the copies it held are served by their own primaries —
//! so a failure spreads load over neighbors instead of doubling one
//! node's work the way mirrored pairs do.
//!
//! On a multi-rack topology the chain walks **racks first**: replica `j`
//! of a shard homed in rack `r` lands in rack `(r + j) mod racks`, at
//! local slot `(l + j/racks) mod m` within that rack (`m` nodes per
//! rack). Successive replicas therefore occupy `min(k, racks)` distinct
//! failure domains — a whole-rack power loss cannot take out every copy
//! as long as `k ≥ 2` and `racks ≥ 2` — while within each visited rack
//! the layout is still a chain, preserving the load-spreading property.
//! With `racks = 1` the formula collapses to the classic ring
//! `(s + j) mod n`, bit-identical to the original placement.
//!
//! `k = 1` degenerates to "shard `s` lives on node `s`", bit-identical
//! to the unreplicated placement, and is property-tested to stay that
//! way.

/// Chained-declustering placement of `n_shards == n_nodes` shards with
/// `k` replicas each over `racks` failure domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n_nodes: usize,
    k: usize,
    racks: usize,
}

impl Placement {
    /// A single-rack placement of one shard per node with `k` replicas
    /// each — the classic chained-declustering ring.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds `n_nodes` (replicas must land on
    /// distinct nodes).
    pub fn new(n_nodes: usize, k: usize) -> Self {
        Placement::rack_aware(n_nodes, 1, k)
    }

    /// A rack-aware placement: nodes are numbered rack-major over
    /// `racks` equal racks, and a shard's replica chain advances one
    /// rack per step so copies span `min(k, racks)` failure domains.
    ///
    /// # Panics
    ///
    /// Panics if `racks` does not divide `n_nodes`, or `k` is zero or
    /// exceeds `n_nodes`.
    pub fn rack_aware(n_nodes: usize, racks: usize, k: usize) -> Self {
        assert!(n_nodes > 0, "a placement needs nodes");
        assert!(racks >= 1 && n_nodes % racks == 0, "{racks} racks must divide {n_nodes} nodes");
        assert!(k >= 1, "need at least one replica");
        assert!(k <= n_nodes, "{k} replicas cannot occupy {n_nodes} distinct nodes");
        Placement { n_nodes, k, racks }
    }

    /// Node count (== shard count).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Replication factor.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Failure-domain count.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Nodes per rack.
    fn nodes_per_rack(&self) -> usize {
        self.n_nodes / self.racks
    }

    /// The rack (failure domain) holding `node`.
    pub fn rack_of(&self, node: usize) -> usize {
        assert!(node < self.n_nodes, "node {node} out of range");
        node / self.nodes_per_rack()
    }

    /// The `k` distinct nodes holding `shard`, primary first, then the
    /// chained copies in failover-preference order. Copy `j` lives in
    /// rack `(rack(shard) + j) mod racks` at local slot
    /// `(slot(shard) + j/racks) mod m` — one rack per chain step.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn owners(&self, shard: usize) -> Vec<usize> {
        assert!(shard < self.n_nodes, "shard {shard} out of range");
        let m = self.nodes_per_rack();
        let (r, l) = (shard / m, shard % m);
        (0..self.k)
            .map(|j| ((r + j) % self.racks) * m + (l + j / self.racks) % m)
            .collect()
    }

    /// The primary node of `shard` (its first owner).
    pub fn primary(&self, shard: usize) -> usize {
        assert!(shard < self.n_nodes, "shard {shard} out of range");
        shard
    }

    /// The owners of `shard` reordered for a gather landing on `dst`:
    /// replicas sharing `dst`'s rack come first, others after, chain
    /// order preserved within each group (stable partition). A
    /// re-derivation of a lost partial thus reads from a rack-local
    /// replica whenever one is alive, paying 2 hops instead of 4. With
    /// one rack every owner ties and this is exactly the chain order.
    pub fn gather_order(&self, shard: usize, dst: usize) -> Vec<usize> {
        let dr = self.rack_of(dst);
        let mut owners = self.owners(shard);
        owners.sort_by_key(|&v| self.rack_of(v) != dr);
        owners
    }

    /// Distinct failure domains spanned by `shard`'s replicas — always
    /// `min(k, racks)` for this chain, property-tested to stay so.
    pub fn spanned_racks(&self, shard: usize) -> usize {
        let mut racks: Vec<usize> = self.owners(shard).iter().map(|&v| self.rack_of(v)).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }

    /// The shards stored on `node` (as primary or copy), ascending.
    pub fn shards_on(&self, node: usize) -> Vec<usize> {
        assert!(node < self.n_nodes, "node {node} out of range");
        let m = self.nodes_per_rack();
        let (nr, nl) = (node / m, node % m);
        let mut shards: Vec<usize> = (0..self.k)
            .map(|j| {
                let r = (nr + self.racks - j % self.racks) % self.racks;
                let l = (nl + m - (j / self.racks) % m) % m;
                r * m + l
            })
            .collect();
        shards.sort_unstable();
        shards
    }

    /// Whether `node` holds a replica of `shard`.
    pub fn holds(&self, node: usize, shard: usize) -> bool {
        self.owners(shard).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_are_k_distinct_chained_nodes() {
        let p = Placement::new(8, 3);
        for s in 0..8 {
            let o = p.owners(s);
            assert_eq!(o.len(), 3);
            assert_eq!(o[0], s, "primary is the shard's own node");
            assert_eq!(o[1], (s + 1) % 8);
            assert_eq!(o[2], (s + 2) % 8);
            let distinct: std::collections::HashSet<_> = o.iter().collect();
            assert_eq!(distinct.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn k1_is_the_identity_placement() {
        let p = Placement::new(6, 1);
        for s in 0..6 {
            assert_eq!(p.owners(s), vec![s]);
            assert_eq!(p.shards_on(s), vec![s]);
        }
    }

    #[test]
    fn shards_on_inverts_owners() {
        let p = Placement::new(8, 3);
        for node in 0..8 {
            for s in 0..8 {
                assert_eq!(p.shards_on(node).contains(&s), p.holds(node, s));
            }
            assert_eq!(p.shards_on(node).len(), 3, "k shards per node");
        }
    }

    #[test]
    fn single_rack_rack_aware_is_the_classic_ring() {
        for n in [1, 2, 5, 8] {
            for k in 1..=n {
                assert_eq!(Placement::rack_aware(n, 1, k), Placement::new(n, k));
            }
        }
    }

    #[test]
    fn rack_aware_chain_walks_racks_first() {
        // 8 nodes, 2 racks of 4: shard 1 (rack 0, slot 1) chains to rack
        // 1 slot 1 (node 5), then back to rack 0 slot 2 (node 2).
        let p = Placement::rack_aware(8, 2, 3);
        assert_eq!(p.owners(1), vec![1, 5, 2]);
        assert_eq!(p.spanned_racks(1), 2);
        // Shard homed in rack 1 chains into rack 0 first.
        assert_eq!(p.owners(6), vec![6, 2, 7]);
        for s in 0..8 {
            assert_eq!(p.owners(s)[0], s, "primary is unchanged by rack awareness");
            let distinct: std::collections::HashSet<_> = p.owners(s).into_iter().collect();
            assert_eq!(distinct.len(), 3);
        }
    }

    #[test]
    fn rack_aware_shards_on_inverts_owners() {
        for (n, racks, k) in [(8, 2, 3), (12, 4, 5), (12, 3, 12), (9, 3, 4)] {
            let p = Placement::rack_aware(n, racks, k);
            for node in 0..n {
                for s in 0..n {
                    assert_eq!(
                        p.shards_on(node).contains(&s),
                        p.holds(node, s),
                        "n={n} racks={racks} k={k} node={node} shard={s}"
                    );
                }
                assert_eq!(p.shards_on(node).len(), k, "k shards per node");
            }
        }
    }

    #[test]
    fn gather_order_puts_dst_rack_first_without_reordering_groups() {
        let p = Placement::rack_aware(8, 2, 3);
        // owners(1) = [1, 5, 2]; gathering to node 4 (rack 1) floats the
        // rack-1 copy (node 5) to the front, keeping [1, 2] in chain
        // order behind it.
        assert_eq!(p.gather_order(1, 4), vec![5, 1, 2]);
        // Gathering to rack 0 keeps the chain order outright.
        assert_eq!(p.gather_order(1, 0), vec![1, 2, 5]);
        // Single rack: gather order IS the chain order, always.
        let flat = Placement::new(8, 3);
        for s in 0..8 {
            for d in 0..8 {
                assert_eq!(flat.gather_order(s, d), flat.owners(s));
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn k_larger_than_nodes_is_rejected() {
        Placement::new(3, 4);
    }
}
