//! Two-tier spine/leaf network topology over N racks.
//!
//! The paper's rack is a building block: ~1440 DPUs hang off one shared
//! Infiniband switch. Scaling past one rack means a second switching
//! tier — every rack keeps its leaf switch, and the leaves interconnect
//! through a spine. [`Topology`] is the pure geometry: which rack a node
//! lives in, how many hops a transfer crosses, and how much uplink
//! bandwidth the spine tier grants each rack. The [`Fabric`] turns that
//! geometry into queuing servers; the coordinator derives failover
//! timeouts from its hop counts; the planner prices inter- vs intra-rack
//! merges from the same object.
//!
//! **Oversubscription.** A leaf's uplink to the spine carries
//! `switch_bytes_per_cycle / oversub` — the classic leaf oversubscription
//! ratio (downlink capacity : uplink capacity). `oversub = 1` is a
//! non-blocking fabric; `oversub = 4` means a rack's nodes can jointly
//! offer 4× more traffic than its uplink can drain, so shuffle-heavy
//! plans queue on the spine tier. The spine core itself is non-blocking
//! (it carries `racks ×` the uplink rate): saturation is a property of
//! the uplinks, which is exactly what the ratio expresses.
//!
//! **Hop counts.** An intra-rack transfer crosses 2 hops (NIC → leaf →
//! NIC), exactly the flat single-switch model. An inter-rack transfer
//! crosses 4 (NIC → leaf → spine → leaf → NIC). `racks = 1` therefore
//! reproduces the original fabric cycle for cycle — every committed
//! `BENCH_rack_*.json` baseline is pinned on that equivalence.
//!
//! [`Fabric`]: crate::fabric::Fabric

use crate::fabric::FabricConfig;

/// The spine/leaf geometry: `n_nodes` split evenly over `racks` racks,
/// with per-rack uplinks oversubscribed by `oversub`.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n_nodes: usize,
    racks: usize,
    oversub: f64,
}

impl Topology {
    /// The degenerate single-rack topology: one leaf, no spine — the
    /// original flat fabric.
    pub fn single_rack(n_nodes: usize) -> Self {
        Topology::new(n_nodes, 1, 1.0)
    }

    /// `n_nodes` split evenly over `racks` racks behind a spine whose
    /// per-rack uplinks are oversubscribed by `oversub`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero, `racks` does not divide `n_nodes`,
    /// or `oversub < 1` (an uplink cannot outrun its leaf).
    pub fn new(n_nodes: usize, racks: usize, oversub: f64) -> Self {
        assert!(n_nodes > 0, "a topology needs nodes");
        assert!(racks >= 1, "a topology needs at least one rack");
        assert!(
            n_nodes % racks == 0,
            "{racks} racks must divide {n_nodes} nodes evenly"
        );
        assert!(oversub >= 1.0, "oversubscription ratio must be ≥ 1, got {oversub}");
        Topology { n_nodes, racks, oversub }
    }

    /// Node count across all racks.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Rack count (== leaf switch count).
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// The oversubscription ratio (leaf bandwidth : uplink bandwidth).
    pub fn oversub(&self) -> f64 {
        self.oversub
    }

    /// Nodes per rack.
    pub fn nodes_per_rack(&self) -> usize {
        self.n_nodes / self.racks
    }

    /// The rack holding `node`. Nodes are numbered rack-major: rack `r`
    /// holds nodes `r*m .. (r+1)*m`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rack_of(&self, node: usize) -> usize {
        assert!(node < self.n_nodes, "node {node} out of range");
        node / self.nodes_per_rack()
    }

    /// Whether two nodes share a rack (and hence a leaf switch).
    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// The node-id range of rack `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn rack_nodes(&self, r: usize) -> std::ops::Range<usize> {
        assert!(r < self.racks, "rack {r} out of range");
        let m = self.nodes_per_rack();
        r * m..(r + 1) * m
    }

    /// Hops a `src → dst` transfer crosses: 0 locally, 2 within a rack
    /// (NIC → leaf → NIC), 4 across racks (NIC → leaf → spine → leaf →
    /// NIC).
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        if src == dst {
            0
        } else if self.same_rack(src, dst) {
            2
        } else {
            4
        }
    }

    /// The worst-case hop count of any transfer: 2 with one rack, 4 once
    /// a spine tier exists.
    pub fn max_hops(&self) -> u64 {
        if self.racks == 1 {
            2
        } else {
            4
        }
    }

    /// Per-rack uplink bandwidth, bytes per cycle: the leaf rate divided
    /// by the oversubscription ratio (floor 1).
    pub fn uplink_bytes_per_cycle(&self, cfg: &FabricConfig) -> u64 {
        (((cfg.switch_bytes_per_cycle as f64) / self.oversub).round() as u64).max(1)
    }

    /// The coordinator's per-attempt failover timeout, in cycles: the
    /// round trip of a control probe over the worst-case path
    /// (`max_hops` each way plus descriptor setup on both A9s), doubled
    /// for scheduling slack. With one rack this reproduces the original
    /// hard-coded `2*(4*hop + 2*msg)` exactly (pinned by a regression
    /// test); a spine tier stretches the probe to
    /// `2*(8*hop + 2*msg)`.
    pub fn failover_timeout_cycles(&self, cfg: &FabricConfig) -> u64 {
        2 * (2 * self.max_hops() * cfg.hop_cycles + 2 * cfg.message_overhead_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_geometry_is_flat() {
        let t = Topology::single_rack(8);
        assert_eq!(t.racks(), 1);
        assert_eq!(t.nodes_per_rack(), 8);
        assert_eq!(t.max_hops(), 2);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.hops(a, b), if a == b { 0 } else { 2 });
            }
        }
    }

    #[test]
    fn rack_major_numbering_and_hops() {
        let t = Topology::new(8, 2, 4.0);
        assert_eq!(t.nodes_per_rack(), 4);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(4), 1);
        assert_eq!(t.rack_nodes(1), 4..8);
        assert_eq!(t.hops(0, 3), 2, "same rack: 2 hops");
        assert_eq!(t.hops(0, 4), 4, "cross rack: 4 hops");
        assert_eq!(t.hops(5, 5), 0);
        assert_eq!(t.max_hops(), 4);
    }

    #[test]
    fn uplink_divides_leaf_rate_by_oversub() {
        let cfg = FabricConfig::infiniband(); // switch = 64 B/cycle
        assert_eq!(Topology::new(8, 2, 1.0).uplink_bytes_per_cycle(&cfg), 64);
        assert_eq!(Topology::new(8, 2, 4.0).uplink_bytes_per_cycle(&cfg), 16);
        assert_eq!(Topology::new(8, 2, 8.0).uplink_bytes_per_cycle(&cfg), 8);
        // The floor: an absurd ratio still moves bytes.
        assert_eq!(Topology::new(8, 2, 1e6).uplink_bytes_per_cycle(&cfg), 1);
    }

    #[test]
    fn timeout_generalizes_the_flat_round_trip() {
        let cfg = FabricConfig::infiniband();
        let flat = Topology::single_rack(8);
        assert_eq!(
            flat.failover_timeout_cycles(&cfg),
            2 * (4 * cfg.hop_cycles + 2 * cfg.message_overhead_cycles),
            "single rack must reproduce the original hard-coded formula"
        );
        let spine = Topology::new(8, 2, 4.0);
        assert_eq!(
            spine.failover_timeout_cycles(&cfg),
            2 * (8 * cfg.hop_cycles + 2 * cfg.message_overhead_cycles),
            "a spine doubles the probe's hop budget"
        );
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn uneven_racks_are_rejected() {
        Topology::new(6, 4, 2.0);
    }
}
