//! Sharding TPC-H across DPU nodes, with k-way replica placement.
//!
//! Each node owns 8 GB — a rack-resident dataset must be partitioned.
//! The layout mirrors what distributed warehouses do on top of the
//! paper's hardware: the two fact tables (`orders`, `lineitem`) are
//! **co-sharded by order key**, so every order and all of its line items
//! live on exactly one logical shard and the orders⋈lineitem join never
//! crosses the fabric; the small dimension tables (customer, part,
//! supplier, nation, region) are **replicated** to every node at load
//! time over a fabric broadcast. Only re-keyed aggregations (Q10's
//! group-by customer) need a network shuffle at query time.
//!
//! Since PR 2, each fact shard is additionally **stored on `k` distinct
//! nodes** under chained-declustering [`Placement`] so a node crash
//! degrades throughput instead of losing a shard; `k = 1` reproduces the
//! original one-copy layout exactly.

use dpu_isa::hash::crc32c_u64;
use dpu_sql::tpch::{project_rows, TableCompression, TpchDb};
use dpu_sql::{sample_bounds, BaseTable, Table};

use crate::replica::Placement;

/// How rows map to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPolicy {
    /// `crc32c(key) mod shards` — the same hash the DMS partition engine
    /// uses, so a node-level reshard can reuse the hardware path.
    Hash {
        /// Shard count.
        shards: usize,
    },
    /// Range sharding on sampled inclusive upper bounds (ascending);
    /// shard `i` holds keys `≤ bounds[i]`, the last shard the rest —
    /// the DMS range engine's semantics.
    Range {
        /// Ascending inclusive upper bounds (one fewer than shards).
        bounds: Vec<i64>,
    },
}

impl ShardPolicy {
    /// Hash sharding over `shards` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn hash(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardPolicy::Hash { shards }
    }

    /// Range sharding with bounds sampled from `values` (equi-depth).
    /// Duplicate-heavy data can yield fewer than `shards` shards.
    pub fn range_over(values: &[i64], shards: usize) -> Self {
        ShardPolicy::Range { bounds: sample_bounds(values, shards) }
    }

    /// Number of shards this policy produces.
    pub fn shards(&self) -> usize {
        match self {
            ShardPolicy::Hash { shards } => *shards,
            ShardPolicy::Range { bounds } => bounds.len() + 1,
        }
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: i64) -> usize {
        match self {
            ShardPolicy::Hash { shards } => crc32c_u64(key as u64) as usize % shards,
            ShardPolicy::Range { bounds } => {
                bounds.iter().position(|&b| key <= b).unwrap_or(bounds.len())
            }
        }
    }
}

/// Splits `table` into one table per shard by the `key` column, keeping
/// row order within each shard.
///
/// # Panics
///
/// Panics if the key column is missing.
pub fn shard_table(table: &Table, key: &str, policy: &ShardPolicy) -> Vec<Table> {
    let keys = &table.columns[table.col_index(key)].data;
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); policy.shards()];
    for (r, &k) in keys.iter().enumerate() {
        rows[policy.shard_of(k)].push(r);
    }
    rows.iter().map(|rs| project_rows(table, rs)).collect()
}

/// The database distributed across a cluster.
#[derive(Debug, Clone)]
pub struct ShardedTpch {
    /// Per-shard databases: sharded facts + replicated dimensions. Shard
    /// `s` is stored on every node in `placement.owners(s)`.
    pub shards: Vec<TpchDb>,
    /// Which nodes hold a replica of each shard.
    pub placement: Placement,
    /// The fact-table placement policy.
    pub policy: ShardPolicy,
    /// Fact bytes scattered point-to-point at load time (each row `k`
    /// times — once per replica).
    pub scatter_bytes: u64,
    /// Dimension bytes each node receives from the load-time broadcast.
    pub broadcast_bytes: u64,
}

impl ShardedTpch {
    /// Node count (== shard count).
    pub fn n_nodes(&self) -> usize {
        self.shards.len()
    }

    /// Replication factor.
    pub fn k(&self) -> usize {
        self.placement.k()
    }

    /// Per-shard row counts of one base table — the single statistics
    /// source shared by the planner's cardinality catalog and
    /// [`skew_report`](Self::skew_report). Dimension tables report their
    /// replicated (identical) per-node counts.
    pub fn table_rows(&self, table: BaseTable) -> Vec<usize> {
        self.shards.iter().map(|n| table.of(n).rows()).collect()
    }

    /// Lineitem rows per shard (the skew metric).
    pub fn lineitem_rows(&self) -> Vec<usize> {
        self.table_rows(BaseTable::Lineitem)
    }

    /// The load-balance report over [`lineitem_rows`](Self::lineitem_rows)
    /// — the slowest shard gates every scatter/gather query, so placement
    /// skew converts directly into lost QPS.
    pub fn skew_report(&self) -> SkewReport {
        SkewReport::from_rows(&self.lineitem_rows())
    }

    /// Fact bytes of shard `s` (one replica's worth).
    pub fn shard_fact_bytes(&self, s: usize) -> u64 {
        self.shards[s].orders.bytes() + self.shards[s].lineitem.bytes()
    }

    /// Fact bytes stored on `node` across all shards it holds.
    pub fn node_fact_bytes(&self, node: usize) -> u64 {
        self.placement.shards_on(node).iter().map(|&s| self.shard_fact_bytes(s)).sum()
    }

    /// Per-table compression totals merged across every shard. Dimension
    /// tables count once per shard — they really are replicated to every
    /// node — so the sums are the rack's actual resident bytes (for one
    /// replica of each fact shard; multiply fact rows by
    /// [`k`](Self::k) for the replicated footprint).
    pub fn compression_report(&self) -> Vec<TableCompression> {
        let mut merged = self.shards[0].compression_report();
        for s in &self.shards[1..] {
            for (dst, src) in merged.iter_mut().zip(s.compression_report()) {
                dst.merge(&src);
            }
        }
        merged
    }
}

/// How evenly the fact rows spread across shards. `imbalance` is the
/// straggler factor a perfectly CPU-bound scatter/gather query pays:
/// the slowest shard holds `imbalance ×` the mean row count.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Rows per shard, in shard order.
    pub rows: Vec<usize>,
    /// Rows on the heaviest shard.
    pub max_rows: usize,
    /// Mean rows per shard.
    pub mean_rows: f64,
    /// `max_rows / mean_rows` (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Coefficient of variation of the per-shard row counts.
    pub cv: f64,
    /// Gini coefficient of the per-shard row counts (0 = uniform,
    /// → 1 = one shard holds everything).
    pub gini: f64,
}

impl SkewReport {
    /// Computes the report from per-shard row counts.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn from_rows(rows: &[usize]) -> Self {
        assert!(!rows.is_empty(), "no shards to report on");
        let n = rows.len() as f64;
        let total: usize = rows.iter().sum();
        let mean = total as f64 / n;
        let max = rows.iter().copied().max().expect("non-empty");
        let (imbalance, cv, gini) = if total == 0 {
            (1.0, 0.0, 0.0)
        } else {
            let var = rows.iter().map(|&r| (r as f64 - mean).powi(2)).sum::<f64>() / n;
            let mut sorted: Vec<usize> = rows.to_vec();
            sorted.sort_unstable();
            // G = (2 Σᵢ i·xᵢ) / (n Σ x) − (n + 1)/n over ascending xᵢ,
            // i counted from 1.
            let weighted: f64 =
                sorted.iter().enumerate().map(|(i, &r)| (i + 1) as f64 * r as f64).sum();
            let g = 2.0 * weighted / (n * total as f64) - (n + 1.0) / n;
            (max as f64 / mean, var.sqrt() / mean, g.max(0.0))
        };
        SkewReport { rows: rows.to_vec(), max_rows: max, mean_rows: mean, imbalance, cv, gini }
    }
}

/// Distributes `db` across shards with one replica each: `orders` and
/// `lineitem` co-sharded by order key under `policy`, dimensions
/// replicated everywhere. Equivalent to
/// [`shard_tpch_replicated`]`(db, policy, 1)`.
pub fn shard_tpch(db: &TpchDb, policy: &ShardPolicy) -> ShardedTpch {
    shard_tpch_replicated(db, policy, 1)
}

/// Distributes `db` across shards with `k` replicas per fact shard under
/// single-rack chained-declustering placement. Dimensions are replicated
/// to every node regardless of `k`. Equivalent to
/// [`shard_tpch_placed`] with [`Placement::new`].
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the shard count.
pub fn shard_tpch_replicated(db: &TpchDb, policy: &ShardPolicy, k: usize) -> ShardedTpch {
    shard_tpch_placed(db, policy, Placement::new(policy.shards(), k))
}

/// Distributes `db` across shards under an explicit replica `placement`
/// (e.g. [`Placement::rack_aware`], which spreads each shard's copies
/// over `min(k, racks)` failure domains). Dimensions are replicated to
/// every node regardless of the placement.
///
/// # Panics
///
/// Panics if the placement's node count differs from the policy's shard
/// count.
pub fn shard_tpch_placed(db: &TpchDb, policy: &ShardPolicy, placement: Placement) -> ShardedTpch {
    assert_eq!(
        placement.n_nodes(),
        policy.shards(),
        "placement nodes must match policy shards"
    );
    let orders = shard_table(&db.orders, "o_orderkey", policy);
    let lineitem = shard_table(&db.lineitem, "l_orderkey", policy);
    let mut shards: Vec<TpchDb> = orders
        .into_iter()
        .zip(lineitem)
        .map(|(o, l)| TpchDb {
            orders: o,
            lineitem: l,
            customer: db.customer.clone(),
            part: db.part.clone(),
            supplier: db.supplier.clone(),
            nation: db.nation.clone(),
            region: db.region.clone(),
        })
        .collect();
    // The fact shards are freshly projected (flat) tables; the cloned
    // dimensions arrive pre-packed. Re-encode so every shard stores its
    // facts FOR/bit-packed too (encoding is idempotent per column).
    for s in &mut shards {
        s.encode_packed();
    }
    let k = placement.k();
    let broadcast_bytes = db.customer.bytes()
        + db.part.bytes()
        + db.supplier.bytes()
        + db.nation.bytes()
        + db.region.bytes();
    ShardedTpch {
        shards,
        placement,
        policy: policy.clone(),
        scatter_bytes: k as u64 * (db.orders.bytes() + db.lineitem.bytes()),
        broadcast_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sql::tpch::generate;
    use dpu_sql::Column;

    #[test]
    fn hash_policy_covers_all_shards() {
        let p = ShardPolicy::hash(8);
        assert_eq!(p.shards(), 8);
        let mut seen = [false; 8];
        for k in 0..1000 {
            seen[p.shard_of(k)] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 keys should hit all 8 shards");
    }

    #[test]
    fn range_policy_is_monotone() {
        let keys: Vec<i64> = (0..10_000).collect();
        let p = ShardPolicy::range_over(&keys, 8);
        assert_eq!(p.shards(), 8);
        let mut last = 0;
        for k in 0..10_000 {
            let s = p.shard_of(k);
            assert!(s >= last, "range shards must be monotone in key");
            last = s;
        }
        assert_eq!(last, 7);
    }

    #[test]
    fn shard_table_partitions_rows_exactly() {
        let t = Table::new(vec![
            Column::i32("k", (0..100).collect()),
            Column::i32("v", (100..200).collect()),
        ]);
        let p = ShardPolicy::hash(4);
        let shards = shard_table(&t, "k", &p);
        assert_eq!(shards.iter().map(Table::rows).sum::<usize>(), 100);
        for (s, shard) in shards.iter().enumerate() {
            for r in 0..shard.rows() {
                let k = shard.column("k").unwrap().data[r];
                assert_eq!(p.shard_of(k), s);
                // Row integrity: v rides along with its key.
                assert_eq!(shard.column("v").unwrap().data[r], k + 100);
            }
        }
    }

    #[test]
    fn tpch_cosharding_keeps_orders_with_their_lines() {
        let db = generate(500, 7);
        let sharded = shard_tpch(&db, &ShardPolicy::hash(8));
        assert_eq!(sharded.n_nodes(), 8);
        assert_eq!(sharded.k(), 1);
        // Every row placed exactly once.
        let o: usize = sharded.shards.iter().map(|n| n.orders.rows()).sum();
        let l: usize = sharded.shards.iter().map(|n| n.lineitem.rows()).sum();
        assert_eq!(o, db.orders.rows());
        assert_eq!(l, db.lineitem.rows());
        // Co-sharding: a shard's lineitem keys all appear in its orders.
        for node in &sharded.shards {
            let owned: std::collections::HashSet<i64> =
                node.orders.column("o_orderkey").unwrap().data.iter().copied().collect();
            for &k in &node.lineitem.column("l_orderkey").unwrap().data {
                assert!(owned.contains(&k), "line item {k} astray from its order");
            }
            // Dimensions replicated in full.
            assert_eq!(node.customer.rows(), db.customer.rows());
            assert_eq!(node.nation.rows(), 25);
        }
        assert_eq!(sharded.scatter_bytes, db.orders.bytes() + db.lineitem.bytes());
        assert!(sharded.broadcast_bytes > 0);
    }

    #[test]
    fn replication_multiplies_storage_not_shards() {
        let db = generate(400, 11);
        let one = shard_tpch_replicated(&db, &ShardPolicy::hash(6), 1);
        let three = shard_tpch_replicated(&db, &ShardPolicy::hash(6), 3);
        // The logical shards are identical — replication changes where
        // they are stored, not how rows partition.
        assert_eq!(one.shards.len(), three.shards.len());
        for (a, b) in one.shards.iter().zip(&three.shards) {
            assert_eq!(a.orders.rows(), b.orders.rows());
            assert_eq!(a.lineitem.rows(), b.lineitem.rows());
        }
        assert_eq!(three.scatter_bytes, 3 * one.scatter_bytes);
        // Each node stores k shards' worth of facts; the total across
        // nodes is k × the database.
        let per_node: u64 = (0..6).map(|n| three.node_fact_bytes(n)).sum();
        assert_eq!(per_node, 3 * (db.orders.bytes() + db.lineitem.bytes()));
    }

    #[test]
    fn skew_report_flags_a_deliberately_lopsided_range_layout() {
        let db = generate(600, 17);
        // Order keys run 1..=600. Hand-picked bounds pile nearly every
        // key onto the last of 4 shards.
        let skewed = shard_tpch(&db, &ShardPolicy::Range { bounds: vec![5, 10, 15] });
        let balanced = shard_tpch(&db, &ShardPolicy::hash(4));
        let s = skewed.skew_report();
        let b = balanced.skew_report();
        assert_eq!(s.rows, skewed.lineitem_rows());
        assert!(s.max_rows >= s.mean_rows as usize);
        assert!(
            s.imbalance > 3.0,
            "4 shards with one holding ~everything must report imbalance ≈ 4 (got {})",
            s.imbalance
        );
        assert!(s.gini > 0.6, "lopsided layout must have high Gini (got {})", s.gini);
        assert!(s.cv > 1.0, "lopsided layout must have high CV (got {})", s.cv);
        assert!(b.imbalance < 1.3, "hash sharding should balance (got {})", b.imbalance);
        assert!(b.gini < 0.2, "hash sharding Gini should be near 0 (got {})", b.gini);
        assert!(s.gini > b.gini && s.cv > b.cv && s.imbalance > b.imbalance);
    }

    #[test]
    fn table_rows_is_the_single_statistics_source() {
        let db = generate(500, 7);
        let sharded = shard_tpch(&db, &ShardPolicy::hash(8));
        let li = sharded.table_rows(BaseTable::Lineitem);
        assert_eq!(li, sharded.lineitem_rows());
        assert_eq!(sharded.skew_report(), SkewReport::from_rows(&li));
        // Facts partition exactly; dimensions replicate in full.
        assert_eq!(li.iter().sum::<usize>(), db.lineitem.rows());
        let orders = sharded.table_rows(BaseTable::Orders);
        assert_eq!(orders.iter().sum::<usize>(), db.orders.rows());
        let cust = sharded.table_rows(BaseTable::Customer);
        assert!(cust.iter().all(|&c| c == db.customer.rows()));
    }

    #[test]
    fn skew_report_is_exact_on_known_counts() {
        let r = SkewReport::from_rows(&[10, 10, 10, 10]);
        assert_eq!(r.max_rows, 10);
        assert_eq!(r.mean_rows, 10.0);
        assert_eq!(r.imbalance, 1.0);
        assert_eq!(r.cv, 0.0);
        assert!(r.gini.abs() < 1e-12);
        // One shard holds all rows of four: G = (n−1)/n = 0.75.
        let one = SkewReport::from_rows(&[0, 0, 0, 40]);
        assert_eq!(one.imbalance, 4.0);
        assert!((one.gini - 0.75).abs() < 1e-12);
    }
}
