//! Distributed scatter/gather plans for the Figure 16 query set, with
//! replica failover.
//!
//! Each query runs in phases: every logical shard's **local phase**
//! (scan/filter/join/partial-aggregate — costed by the same [`CostAcc`]
//! roofline the single-node engine uses) executes on one live replica of
//! that shard, partial results move over the [`Fabric`], and a
//! coordinator node **merges**. Cluster time is therefore
//! `max over nodes + fabric + merge`, with fabric congestion coming from
//! the queuing model rather than a constant.
//!
//! Because `orders`/`lineitem` are co-sharded by order key and dimensions
//! are replicated, seven of the eight queries decompose into *run the
//! single-node query per shard, then merge*: re-aggregation for the
//! group-bys (Q1, Q5, Q12) and scalar sums (Q6, Q14), top-k candidate
//! merge for Q3/Q18 (each shard's local top-k provably contains every
//! global winner). Q10 groups by **customer**, which is not the sharding
//! key, so it runs a genuine two-phase aggregation: partial group-by
//! per shard, an all-to-all hash reshuffle of partial groups to owner
//! nodes, owner re-aggregation, then a candidate gather.
//!
//! # Failover
//!
//! Under a [`FaultPlan`], routing is fault-tolerant end to end:
//!
//! - each shard's local phase is placed on the first **live** replica in
//!   its chained-declustering owner chain; a node that crashes mid-phase
//!   is detected after one [failover timeout] and the shard is re-issued
//!   to the next live replica (which runs it after its own queue);
//! - partial results are re-derived from a surviving replica if their
//!   executor dies before a (re-)gather — a completed node is assumed to
//!   have drained its send DMA, so only *unsent* state needs re-derivation;
//! - the gather destination and Q10's shuffle owners fail over the same
//!   way (next live node in ring order, one timeout per detection).
//!
//! # Topology awareness
//!
//! Routing reads the cluster's [`Topology`]: replicas are placed with
//! [`Placement::rack_aware`] so a shard's copies span `min(k, racks)`
//! failure domains, gathers re-derive lost partials from a rack-local
//! replica first ([`Placement::gather_order`]), the gather destination
//! is the live node minimizing hop-weighted inbound bytes, and the
//! failover timeout is derived from the topology's worst-case probe
//! round trip ([`Topology::failover_timeout_cycles`]) instead of a
//! hard-coded constant. With one rack every one of these reduces
//! exactly to the original single-rack behavior.
//!
//! Every distributed result stays **bit-identical** to the single-node
//! engine's output under any fault pattern that leaves at least one live
//! replica per shard — partials are always computed from a replica of the
//! same shard data, and every merge is order-insensitive (group-by merges
//! sort by key; top-k merges impose the engine's total order). A fault
//! pattern that kills *every* replica of some shard yields
//! [`QueryError::ShardUnavailable`] — never a wrong answer.
//!
//! [failover timeout]: crate::topology::Topology::failover_timeout_cycles

use std::sync::{Arc, OnceLock};

use dpu_core::rack::Rack;
use dpu_pool::Pool;
use dpu_sim::Time;
use dpu_sql::plan::{PlatformCost, DPU_CLOCK, DPU_CORES, DPU_STREAM_BW};
use dpu_sql::tpch::{self, project_rows, select_rows, TpchDb, D_1995};
use dpu_sql::{
    top_k, AggFunc, CompareOp, CostAcc, FilterSpec, GroupBySpec, HashJoin, QueryCost, Table,
};
use xeon_model::Xeon;

use crate::fabric::{Fabric, FabricConfig};
use crate::fault::FaultPlan;
use crate::replica::Placement;
use crate::shard::{shard_table, shard_tpch_placed, ShardPolicy, ShardedTpch};
use crate::topology::Topology;

/// The eight TPC-H queries of Figure 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Pricing summary (scan + aggregate).
    Q1,
    /// Shipping priority (3-way join + top-10).
    Q3,
    /// Local-supplier volume (6-table join).
    Q5,
    /// Revenue forecast (pure scan).
    Q6,
    /// Returned items (re-keyed aggregation — needs a shuffle).
    Q10,
    /// Shipping modes (join + count).
    Q12,
    /// Promotion effect (scalar join).
    Q14,
    /// Large-volume customers (group-having + top-100).
    Q18,
}

impl QueryId {
    /// All eight, in Figure 16 order.
    pub const ALL: [QueryId; 8] = [
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q10,
        QueryId::Q12,
        QueryId::Q14,
        QueryId::Q18,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q3 => "Q3",
            QueryId::Q5 => "Q5",
            QueryId::Q6 => "Q6",
            QueryId::Q10 => "Q10",
            QueryId::Q12 => "Q12",
            QueryId::Q14 => "Q14",
            QueryId::Q18 => "Q18",
        }
    }
}

/// Why a distributed query could not be answered. Failures surface as
/// errors, never as silently wrong results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Every replica of `shard` is down: the query cannot see all rows.
    ShardUnavailable {
        /// The shard with no live replica.
        shard: usize,
    },
    /// No node in the cluster is alive to coordinate or own a partition.
    NoLiveNodes,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} has no live replica")
            }
            QueryError::NoLiveNodes => write!(f, "no live nodes in the cluster"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A query result (tables for reporting queries, scalars for Q6/Q14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// A result table.
    Table(Table),
    /// A single aggregate value.
    Scalar(i64),
    /// Q14's (promo, total) revenue pair.
    Pair(i64, i64),
}

impl QueryOutput {
    /// The table, for table-valued queries.
    ///
    /// # Panics
    ///
    /// Panics on scalar outputs.
    pub fn table(&self) -> &Table {
        match self {
            QueryOutput::Table(t) => t,
            other => panic!("not a table output: {other:?}"),
        }
    }
}

/// One node's local-phase cost, split along the roofline axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// Seconds streaming the shard through DRAM.
    pub mem_seconds: f64,
    /// Seconds of dpCore compute.
    pub cpu_seconds: f64,
}

impl NodeCost {
    /// No work.
    pub const ZERO: NodeCost = NodeCost { mem_seconds: 0.0, cpu_seconds: 0.0 };

    pub(crate) fn from_dpu(p: &PlatformCost) -> Self {
        NodeCost {
            mem_seconds: p.bytes as f64 / DPU_STREAM_BW,
            cpu_seconds: p.compute_cycles as f64 / (DPU_CORES * DPU_CLOCK),
        }
    }

    /// The node's local-phase time (roofline max).
    pub fn seconds(&self) -> f64 {
        self.mem_seconds.max(self.cpu_seconds)
    }
}

/// Where and when one shard's local phase actually ran after failover
/// routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardRun {
    /// The logical shard.
    pub shard: usize,
    /// The node that completed the local phase (a live replica).
    pub node: usize,
    /// Times the sub-plan was issued (1 = no failover).
    pub attempts: usize,
    /// Absolute completion time of the local phase, seconds.
    pub done_seconds: f64,
}

/// The cluster-wide cost of one distributed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQueryCost {
    /// Local-phase work executed per node (including failover
    /// re-executions; a node that ran nothing reports zeros).
    pub per_node: Vec<NodeCost>,
    /// Time from query start to the last shard's local-phase completion,
    /// seconds (includes failover timeouts and re-executions).
    pub local_seconds: f64,
    /// Time from the last local finish to the last byte landing at the
    /// coordinator (shuffle + gather + any distributed merge overlapped
    /// with it), seconds.
    pub fabric_seconds: f64,
    /// Coordinator merge compute, seconds.
    pub merge_seconds: f64,
    /// Payload bytes that crossed the fabric (re-sends included).
    pub fabric_bytes: u64,
    /// Sub-plan re-issues forced by faults (0 on a healthy run).
    pub failovers: usize,
    /// Speculative backup sub-plans raced against stragglers (0 when
    /// speculation is off or no deadline fired).
    pub speculations: usize,
}

impl ClusterQueryCost {
    /// End-to-end latency of one query, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.local_seconds + self.fabric_seconds + self.merge_seconds
    }

    /// Latency of a batch of `k` same-template queries executed together:
    /// the nodes stream their shard **once** (sharing the scan) but do
    /// `k×` the compute, and the per-query fabric and merge phases repeat.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn batch_seconds(&self, k: usize) -> f64 {
        self.batch_local_seconds(k) + k as f64 * (self.fabric_seconds + self.merge_seconds)
    }

    /// The local-phase portion of [`batch_seconds`](Self::batch_seconds):
    /// the slowest node's roofline over one shard scan and `k×` compute.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn batch_local_seconds(&self, k: usize) -> f64 {
        assert!(k > 0, "empty batch");
        self.per_node
            .iter()
            .map(|n| n.mem_seconds.max(k as f64 * n.cpu_seconds))
            .fold(0.0, f64::max)
    }
}

/// One executed distributed query with its single-node reference.
#[derive(Debug, Clone)]
pub struct DistributedQuery {
    /// Which query.
    pub id: QueryId,
    /// The distributed result.
    pub output: QueryOutput,
    /// The single-node engine's result on the unsharded database.
    pub single_output: QueryOutput,
    /// Cluster cost breakdown.
    pub cost: ClusterQueryCost,
    /// The single-node cost (its `xeon` side is the rack baseline's
    /// per-socket query time).
    pub single_cost: QueryCost,
}

impl DistributedQuery {
    /// Whether the distributed result is bit-identical to the single-node
    /// result (it must be — this is the acceptance check).
    pub fn matches_single(&self) -> bool {
        self.output == self.single_output
    }

    /// Cluster queries/second/watt over the Xeon socket's, given total
    /// cluster watts.
    pub fn perf_per_watt_gain(&self, cluster_watts: f64, xeon: &Xeon) -> f64 {
        let cluster_qps = 1.0 / self.cost.total_seconds();
        let xeon_qps = 1.0 / self.single_cost.xeon.seconds;
        (cluster_qps / cluster_watts) / (xeon_qps / xeon.tdp_watts())
    }
}

/// Deadline-based speculative straggler re-execution policy.
///
/// The coordinator derives a per-query deadline from the *healthy* shard
/// cost distribution — the `quantile` shard time, stretched by `slack` —
/// and when a shard's local phase has not finished one deadline after
/// its dispatch, it launches a backup copy of the sub-plan on the
/// shard's next live replica and takes whichever copy finishes first.
/// The loser is cancelled at the winner's finish time and charged only
/// the fraction of its work it actually ran. Results are unaffected:
/// both copies compute the same partial from replicas of the same shard,
/// and only the winner's node ships it in the gather phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speculation {
    /// The quantile of the healthy per-shard local times the deadline is
    /// derived from, in `(0, 1]`.
    pub quantile: f64,
    /// Multiplier applied to the quantile time (≥ 1 leaves healthy
    /// shards unspeculated; the deadline is `quantile_time × slack`).
    pub slack: f64,
}

impl Default for Speculation {
    fn default() -> Self {
        Speculation { quantile: 0.5, slack: 1.25 }
    }
}

impl Speculation {
    /// The relative deadline for this shard-cost distribution: the
    /// configured quantile of the healthy local times, times `slack`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is degenerate or `costs` is empty.
    pub fn deadline_seconds(&self, costs: &[NodeCost]) -> f64 {
        assert!(self.quantile > 0.0 && self.quantile <= 1.0, "quantile out of range");
        assert!(self.slack >= 1.0, "slack below 1 would speculate healthy shards");
        assert!(!costs.is_empty(), "no shard costs");
        let mut times: Vec<f64> = costs.iter().map(NodeCost::seconds).collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let i = ((self.quantile * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[i - 1] * self.slack
    }
}

/// What rebuilding a crashed node's replicas cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The node rebuilt (the replacement occupies the same slot).
    pub node: usize,
    /// The shards whose replicas were re-streamed onto it.
    pub shards: Vec<usize>,
    /// Fact bytes moved over the fabric.
    pub bytes_moved: u64,
    /// Seconds from recovery start until the last shard lands.
    pub rebuild_seconds: f64,
}

/// Cluster sizing and rates.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// DPU nodes executing queries.
    pub n_nodes: usize,
    /// Replicas per fact shard (chained declustering; 1 = no
    /// replication).
    pub replicas: usize,
    /// Cardinality multiplier applied when costing (the data executes at
    /// miniature scale; costs are reported at `scale×`).
    pub scale: u64,
    /// The fabric connecting the nodes.
    pub fabric: FabricConfig,
    /// Racks the nodes split over (spine/leaf once > 1; 1 = the flat
    /// single-switch fabric).
    pub racks: usize,
    /// Leaf-uplink oversubscription ratio (≥ 1; only meaningful with
    /// `racks > 1`).
    pub oversub: f64,
    /// Provisioned watts per node (SoC + DRAM + NIC).
    pub watts_per_node: f64,
}

impl ClusterConfig {
    /// Derives a config from `n_nodes` of a provisioned rack.
    pub fn from_rack(rack: &Rack, n_nodes: usize, scale: u64) -> Self {
        let p = rack.slice(n_nodes).fabric_provision();
        ClusterConfig {
            n_nodes,
            replicas: 1,
            scale,
            fabric: FabricConfig::from_provision(&p),
            racks: 1,
            oversub: 1.0,
            watts_per_node: p.watts_per_node,
        }
    }

    /// An `n_nodes` slice of the paper's prototype rack.
    pub fn prototype_slice(n_nodes: usize, scale: u64) -> Self {
        Self::from_rack(&Rack::prototype(), n_nodes, scale)
    }

    /// The same config with `k` replicas per shard.
    pub fn with_replicas(mut self, k: usize) -> Self {
        self.replicas = k;
        self
    }

    /// The same config spread over `racks` racks behind a spine with the
    /// given uplink oversubscription ratio.
    ///
    /// # Panics
    ///
    /// Panics (at construction) if `racks` does not divide `n_nodes` or
    /// `oversub < 1` — validated by [`Topology::new`].
    pub fn with_topology(mut self, racks: usize, oversub: f64) -> Self {
        self.racks = racks;
        self.oversub = oversub;
        let _ = self.topology(); // validate eagerly
        self
    }

    /// The spine/leaf geometry this config describes.
    pub fn topology(&self) -> Topology {
        Topology::new(self.n_nodes, self.racks, self.oversub)
    }
}

/// Shared, memoized single-node reference results: one [`OnceLock`] slot
/// per query, in [`QueryId::ALL`] order.
///
/// The reference is a pure function of the unsharded database, the Xeon
/// baseline, and the cost scale, so clusters built over the same data may
/// share one cache behind an `Arc` — every fork (and, in a sweep, every
/// *core* over the same database) then computes each reference at most
/// once process-wide instead of once per cell.
#[derive(Debug, Default)]
pub struct SingleRefCache {
    slots: [OnceLock<(QueryOutput, QueryCost)>; 8],
}

impl SingleRefCache {
    /// An empty cache (every reference computed on first use).
    pub fn new() -> Self {
        SingleRefCache::default()
    }

    fn slot(id: QueryId) -> usize {
        QueryId::ALL.iter().position(|&q| q == id).expect("ALL covers every query")
    }

    fn is_warm(&self, id: QueryId) -> bool {
        self.slots[Self::slot(id)].get().is_some()
    }

    fn get_or_compute(
        &self,
        full: &TpchDb,
        xeon: &Xeon,
        scale: u64,
        id: QueryId,
    ) -> (QueryOutput, QueryCost) {
        self.slots[Self::slot(id)].get_or_init(|| compute_single(full, xeon, scale, id)).clone()
    }
}

/// The immutable half of a cluster: configuration, the full database,
/// its sharding, the Xeon baseline, and the shared single-node reference
/// cache. Everything here is fixed at construction, so any number of
/// [`Cluster`] forks can share one core behind an `Arc` — forking is
/// O(1) in the data size.
#[derive(Debug)]
pub struct ClusterCore {
    cfg: ClusterConfig,
    full: Arc<TpchDb>,
    sharded: ShardedTpch,
    xeon: Xeon,
    single: Arc<SingleRefCache>,
}

impl ClusterCore {
    /// Shards `db` under `policy` with `cfg.replicas` copies per shard.
    ///
    /// # Panics
    ///
    /// Panics if the policy's shard count differs from `cfg.n_nodes` or
    /// `cfg.replicas` is invalid for that node count.
    pub fn new(db: TpchDb, policy: &ShardPolicy, cfg: ClusterConfig) -> Arc<Self> {
        Self::with_shared(Arc::new(db), policy, cfg, Arc::new(SingleRefCache::new()))
    }

    /// Builds a core around an already-shared database and reference
    /// cache, so a sweep's (policy, k) cores over the same data clone
    /// neither the database nor the memoized references. The shards
    /// themselves depend only on the policy; `cfg.replicas` only affects
    /// placement, which is cheap.
    pub fn with_shared(
        db: Arc<TpchDb>,
        policy: &ShardPolicy,
        cfg: ClusterConfig,
        single: Arc<SingleRefCache>,
    ) -> Arc<Self> {
        assert_eq!(policy.shards(), cfg.n_nodes, "policy shards must equal cluster nodes");
        let placement = Placement::rack_aware(cfg.n_nodes, cfg.racks, cfg.replicas);
        let sharded = shard_tpch_placed(&db, policy, placement);
        Arc::new(ClusterCore { cfg, full: db, sharded, xeon: Xeon::new(), single })
    }

    /// Sizing and rates.
    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The unsharded database (single-node references run against it).
    pub fn full(&self) -> &TpchDb {
        &self.full
    }

    /// The shared database handle, for building sibling cores.
    pub fn full_shared(&self) -> Arc<TpchDb> {
        self.full.clone()
    }

    /// The per-shard databases and their replica placement.
    pub fn sharded(&self) -> &ShardedTpch {
        &self.sharded
    }

    /// The baseline model used for per-socket reference costs.
    pub fn xeon(&self) -> &Xeon {
        &self.xeon
    }

    /// The shared single-node reference cache, for building sibling
    /// cores over the same database.
    pub fn single_refs(&self) -> Arc<SingleRefCache> {
        self.single.clone()
    }

    /// The single-node reference result for `id`, computed on first use
    /// and memoized in the shared cache.
    fn single_ref(&self, id: QueryId) -> (QueryOutput, QueryCost) {
        self.single.get_or_compute(&self.full, &self.xeon, self.cfg.scale, id)
    }

    /// Computes the not-yet-cached single-node references on the host
    /// pool. A no-op at one thread, so the single-threaded path takes
    /// the exact pre-parallelism route (lazy per-query references); the
    /// cached values are the same either way. Warming the shared core
    /// once covers every fork — sweep cells never recompute references.
    pub fn warm_single_refs(&self) {
        let pool = Pool::global();
        if pool.threads() <= 1 || dpu_pool::in_worker() {
            return;
        }
        let missing: Vec<QueryId> =
            QueryId::ALL.into_iter().filter(|&id| !self.single.is_warm(id)).collect();
        let computed = pool.par_map(missing.clone(), |id| {
            compute_single(&self.full, &self.xeon, self.cfg.scale, id)
        });
        for (id, v) in missing.into_iter().zip(computed) {
            let _ = self.slots_set(id, v);
        }
    }

    fn slots_set(&self, id: QueryId, v: (QueryOutput, QueryCost)) -> bool {
        self.single.slots[SingleRefCache::slot(id)].set(v).is_ok()
    }
}

/// A simulated DPU cluster holding a sharded TPC-H database.
///
/// Split into an immutable [`ClusterCore`] (shared by every fork) and
/// the cheap per-fork mutable state: the [`Fabric`]'s queue occupancy,
/// the installed [`FaultPlan`], and the [`Speculation`] policy.
/// [`fork`](Self::fork) hands out an independent pristine cluster over
/// the same core in O(1).
#[derive(Debug)]
pub struct Cluster {
    core: Arc<ClusterCore>,
    /// The rack network (per-fork mutable state).
    pub fabric: Fabric,
    faults: FaultPlan,
    speculation: Option<Speculation>,
}

impl Cluster {
    /// Shards `db` under `policy` with `cfg.replicas` copies per shard
    /// and builds the fabric.
    ///
    /// # Panics
    ///
    /// Panics if the policy's shard count differs from `cfg.n_nodes` or
    /// `cfg.replicas` is invalid for that node count.
    pub fn new(db: TpchDb, policy: &ShardPolicy, cfg: ClusterConfig) -> Self {
        Self::from_core(ClusterCore::new(db, policy, cfg))
    }

    /// A pristine cluster over an existing shared core: fresh fabric, no
    /// faults, no speculation — exactly the state `Cluster::new` leaves
    /// behind, without re-sharding or cloning the database.
    pub fn from_core(core: Arc<ClusterCore>) -> Self {
        let fabric = Fabric::with_topology(core.cfg.topology(), core.cfg.fabric.clone());
        Cluster { core, fabric, faults: FaultPlan::none(), speculation: None }
    }

    /// Forks this cluster in O(1): the returned cluster shares the
    /// immutable core (database, shards, reference cache) and starts
    /// with pristine mutable state. Invariant: `fork()` + run is
    /// bit-for-bit identical to a fresh `Cluster::new` + run.
    pub fn fork(&self) -> Self {
        Self::from_core(self.core.clone())
    }

    /// The shared immutable core.
    pub fn core(&self) -> &Arc<ClusterCore> {
        &self.core
    }

    /// Sizing and rates.
    pub fn cfg(&self) -> &ClusterConfig {
        self.core.cfg()
    }

    /// The unsharded database (single-node references run against it).
    pub fn full(&self) -> &TpchDb {
        self.core.full()
    }

    /// The per-shard databases and their replica placement.
    pub fn sharded(&self) -> &ShardedTpch {
        self.core.sharded()
    }

    /// The single-node reference result for `id` (shared memoization —
    /// see [`SingleRefCache`]).
    pub(crate) fn single_ref(&self, id: QueryId) -> (QueryOutput, QueryCost) {
        self.core.single_ref(id)
    }

    /// Pre-warms the shared single-node reference cache on the host pool
    /// (see [`ClusterCore::warm_single_refs`]).
    pub fn warm_single_refs(&self) {
        self.core.warm_single_refs();
    }

    /// Enables (or, with `None`, disables) deadline-based speculative
    /// re-execution of straggling shard sub-plans.
    pub fn set_speculation(&mut self, policy: Option<Speculation>) {
        self.speculation = policy;
    }

    /// The installed speculation policy, if any.
    pub fn speculation(&self) -> Option<Speculation> {
        self.speculation
    }

    /// Installs a fault plan for subsequent queries (also threaded into
    /// the fabric's NIC-degradation model).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.fabric.set_faults(plan.clone());
        self.faults = plan;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Total provisioned cluster power, watts.
    pub fn watts(&self) -> f64 {
        self.core.cfg.watts_per_node * self.core.cfg.n_nodes as f64
    }

    /// The baseline model used for per-socket reference costs.
    pub fn xeon(&self) -> &Xeon {
        &self.core.xeon
    }

    /// Seconds to load the database over the fabric from node 0: every
    /// replica of every fact shard scattered point-to-point, dimensions
    /// broadcast.
    pub fn load_seconds(&mut self) -> f64 {
        self.fabric.reset();
        let mut done = Time::ZERO;
        for s in 0..self.core.sharded.n_nodes() {
            let bytes = self.core.sharded.shard_fact_bytes(s);
            for dst in self.core.sharded.placement.owners(s) {
                if dst != 0 {
                    done = done.max(self.fabric.transfer(Time::ZERO, 0, dst, bytes));
                }
            }
        }
        done = done.max(self.fabric.broadcast(Time::ZERO, 0, self.core.sharded.broadcast_bytes));
        let s = self.fabric.seconds(done);
        self.fabric.reset();
        s
    }

    /// Runs one query distributed at `t = 0`, returning the result, its
    /// single-node reference, and the cost breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the installed fault plan leaves a shard with no live
    /// replica — use [`try_run_at`](Self::try_run_at) when faults may
    /// exhaust a shard's replicas.
    pub fn run(&mut self, id: QueryId) -> DistributedQuery {
        self.try_run_at(id, 0.0).expect("query failed under the installed fault plan")
    }

    /// Runs one query distributed, starting at absolute time
    /// `start_seconds` (faults are evaluated against that clock).
    ///
    /// # Errors
    ///
    /// [`QueryError::ShardUnavailable`] if a shard has no live replica;
    /// [`QueryError::NoLiveNodes`] if no node survives to coordinate.
    pub fn try_run_at(
        &mut self,
        id: QueryId,
        start_seconds: f64,
    ) -> Result<DistributedQuery, QueryError> {
        match id {
            QueryId::Q1 => self.reagg(id, spec_q1(), tpch::q1, start_seconds),
            QueryId::Q3 => self.topk_merge(
                id,
                tpch::q3,
                "revenue",
                10,
                &["l_orderkey", "o_orderdate"],
                start_seconds,
            ),
            QueryId::Q5 => self.reagg(id, spec_q5(), tpch::q5, start_seconds),
            QueryId::Q6 => self.run_q6(start_seconds),
            QueryId::Q10 => self.run_q10(start_seconds),
            QueryId::Q12 => self.reagg(id, spec_q12(), tpch::q12, start_seconds),
            QueryId::Q14 => self.run_q14(start_seconds),
            QueryId::Q18 => {
                self.topk_merge(id, tpch::q18, "o_totalprice", 100, &["o_orderkey"], start_seconds)
            }
        }
    }

    /// Runs all eight queries at `t = 0`. With a multi-thread host pool
    /// the single-node references pre-compute in parallel first (the
    /// queries themselves stay in Figure 16 order because each mutates
    /// the shared fabric); the results are bit-identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics under a fault plan that makes a shard unavailable (see
    /// [`run`](Self::run)).
    pub fn run_all(&mut self) -> Vec<DistributedQuery> {
        self.warm_single_refs();
        QueryId::ALL.iter().map(|&q| self.run(q)).collect()
    }

    /// Models re-replicating the shards a crashed `node` held onto its
    /// replacement (same slot), starting at `at_seconds`: each affected
    /// shard streams from a surviving replica over the fabric. On return
    /// the node is marked live again in the fault plan.
    ///
    /// With `k = 1` there is no surviving replica to stream from — the
    /// report then covers zero bytes (the data is lost, not rebuilt).
    pub fn recover(&mut self, node: usize, at_seconds: f64) -> RecoveryReport {
        self.fabric.reset();
        let start = self.fabric.at_seconds(at_seconds);
        let shards = self.core.sharded.placement.shards_on(node);
        let mut rebuilt = Vec::new();
        let mut bytes_moved = 0u64;
        let mut done = start;
        for &s in &shards {
            // Rack-local surviving replicas are preferred (2 hops instead
            // of 4); with one rack this is the plain owner chain.
            let src = self
                .sharded()
                .placement
                .gather_order(s, node)
                .into_iter()
                .find(|&o| o != node && !self.faults.is_down(o, at_seconds));
            if let Some(src) = src {
                let bytes = self.core.sharded.shard_fact_bytes(s);
                bytes_moved += bytes;
                rebuilt.push(s);
                done = done.max(self.fabric.transfer(start, src, node, bytes));
            }
        }
        let rebuild_seconds = self.fabric.seconds(done) - at_seconds;
        self.fabric.reset();
        let plan = self.faults.clone().recovered(node);
        self.set_faults(plan);
        RecoveryReport { node, shards: rebuilt, bytes_moved, rebuild_seconds }
    }

    /// Places every shard's local phase on a live replica and schedules
    /// execution, failing shards over when their node crashes mid-phase.
    ///
    /// Deterministic: shards are dispatched in `(available-time, shard)`
    /// order; a node executes its assigned shards serially; a crash at
    /// `tc` voids every sub-plan unfinished at `tc`, which re-enters the
    /// pool at `tc + failover_timeout` targeted at the shard's next live
    /// replica.
    pub(crate) fn schedule_local(
        &self,
        costs: &[NodeCost],
        start: f64,
    ) -> Result<(Vec<ShardRun>, Vec<NodeCost>, usize, usize), QueryError> {
        let n = self.core.sharded.n_nodes();
        let timeout = self.fabric.failover_timeout_seconds();
        let deadline = self.speculation.map(|p| p.deadline_seconds(costs));
        let mut node_free = vec![start; n];
        let mut per_node = vec![NodeCost::ZERO; n];
        let mut runs: Vec<Option<ShardRun>> = vec![None; n];
        let mut failovers = 0usize;
        let mut speculations = 0usize;
        // (available-at, shard, owner-chain position, attempt #)
        let mut pending: Vec<(f64, usize, usize, usize)> =
            (0..n).map(|s| (start, s, 0, 1)).collect();
        while !pending.is_empty() {
            // Pop the earliest-available shard (ties broken by shard id).
            let i = (0..pending.len())
                .min_by(|&a, &b| {
                    pending[a].0.total_cmp(&pending[b].0).then(pending[a].1.cmp(&pending[b].1))
                })
                .expect("non-empty");
            let (avail, s, chain, attempt) = pending.swap_remove(i);
            let owners = self.core.sharded.placement.owners(s);
            let Some((pos, &node)) = owners
                .iter()
                .enumerate()
                .skip(chain)
                .find(|&(_, &o)| !self.faults.is_down(o, avail))
            else {
                return Err(QueryError::ShardUnavailable { shard: s });
            };
            let begin = node_free[node].max(avail);
            let slow = self.faults.compute_factor(node, begin);
            let finish = begin + costs[s].seconds() / slow;
            if let Some(tc) = self.faults.crash_time(node) {
                if tc < finish {
                    // Crash mid-execution: detected one timeout later,
                    // re-issued to the next replica in the chain.
                    failovers += 1;
                    pending.push((tc + timeout, s, pos + 1, attempt + 1));
                    continue;
                }
            }
            // Deadline-based speculation: the sub-plan missed its
            // deadline (dispatch + deadline < finish), so race a backup
            // on the shard's next live replica and keep the first
            // finisher; the loser is cancelled at that instant and
            // charged only the fraction of its work it ran.
            if let Some(d) = deadline {
                let launch = avail + d;
                if finish > launch {
                    let backup = owners
                        .iter()
                        .copied()
                        .find(|&o| o != node && !self.faults.is_down(o, launch));
                    if let Some(b) = backup {
                        let b_begin = node_free[b].max(launch);
                        let b_slow = self.faults.compute_factor(b, b_begin);
                        let b_finish = b_begin + costs[s].seconds() / b_slow;
                        let b_dies = self.faults.crash_time(b).is_some_and(|tc| tc < b_finish);
                        if !b_dies {
                            speculations += 1;
                            if b_finish < finish {
                                // Backup wins: cancel the original at the
                                // backup's finish (fractional charge if it
                                // had started), ship from the backup.
                                if b_finish > begin {
                                    let frac = ((b_finish - begin) / (finish - begin)).min(1.0);
                                    per_node[node].mem_seconds +=
                                        frac * costs[s].mem_seconds / slow;
                                    per_node[node].cpu_seconds +=
                                        frac * costs[s].cpu_seconds / slow;
                                    node_free[node] = b_finish;
                                }
                                node_free[b] = b_finish;
                                per_node[b].mem_seconds += costs[s].mem_seconds / b_slow;
                                per_node[b].cpu_seconds += costs[s].cpu_seconds / b_slow;
                                runs[s] = Some(ShardRun {
                                    shard: s,
                                    node: b,
                                    attempts: attempt + 1,
                                    done_seconds: b_finish,
                                });
                                continue;
                            }
                            // Original wins (ties included): cancel the
                            // backup at the original's finish.
                            if finish > b_begin {
                                let frac = ((finish - b_begin) / (b_finish - b_begin)).min(1.0);
                                per_node[b].mem_seconds += frac * costs[s].mem_seconds / b_slow;
                                per_node[b].cpu_seconds += frac * costs[s].cpu_seconds / b_slow;
                                node_free[b] = finish;
                            }
                        }
                    }
                }
            }
            node_free[node] = finish;
            per_node[node].mem_seconds += costs[s].mem_seconds / slow;
            per_node[node].cpu_seconds += costs[s].cpu_seconds / slow;
            runs[s] = Some(ShardRun { shard: s, node, attempts: attempt, done_seconds: finish });
        }
        let runs: Vec<ShardRun> = runs.into_iter().map(|r| r.expect("all scheduled")).collect();
        Ok((runs, per_node, failovers, speculations))
    }

    /// A source able to ship shard `s`'s partial at or after `t` toward
    /// destination `dst`: the original executor if still alive (its
    /// result is ready), else the first live replica in
    /// [`Placement::gather_order`] — replicas in `dst`'s rack first, so
    /// a re-derivation ships over 2 hops instead of 4 when it can. With
    /// one rack the order is the plain owner chain, preserving the
    /// original routing exactly.
    pub(crate) fn partial_source(
        &self,
        s: usize,
        t: f64,
        runs: &[ShardRun],
        costs: &[NodeCost],
        dst: usize,
    ) -> Result<(usize, f64), QueryError> {
        let run = &runs[s];
        if !self.faults.is_down(run.node, t) {
            return Ok((run.node, run.done_seconds.max(t)));
        }
        let node = self
            .sharded()
            .placement
            .gather_order(s, dst)
            .into_iter()
            .find(|&o| !self.faults.is_down(o, t))
            .ok_or(QueryError::ShardUnavailable { shard: s })?;
        let slow = self.faults.compute_factor(node, t);
        Ok((node, t + costs[s].seconds() / slow))
    }

    /// The gather coordinator among the nodes live at `t`: the one
    /// minimizing hop-weighted inbound bytes (2 units per intra-rack
    /// byte, 4 per cross-rack byte, sources taken from where each
    /// shard's partial actually ran), ties to the lowest node id. With
    /// one rack every candidate scores identically and the lowest live
    /// id wins — exactly the original `(0..n).find(live)` choice.
    pub(crate) fn gather_destination(&self, sources: &[(usize, u64)], t: f64) -> Option<usize> {
        let topo = self.fabric.topology();
        let n = topo.n_nodes();
        (0..n).filter(|&v| !self.faults.is_down(v, t)).min_by_key(|&v| {
            sources
                .iter()
                .map(|&(src, b)| {
                    let units = if topo.same_rack(src, v) { 2u128 } else { 4 };
                    units * b as u128
                })
                .sum::<u128>()
        })
    }

    /// Gathers every shard's partial to a coordinator node, failing the
    /// coordinator over (next live node in ring order) if it crashes
    /// before the last byte lands. Returns the destination, the landing
    /// time, and extra failover count.
    pub(crate) fn gather_with_failover(
        &mut self,
        runs: &[ShardRun],
        costs: &[NodeCost],
        bytes: &[u64],
        start: f64,
    ) -> Result<(usize, Time, usize), QueryError> {
        let n = self.core.sharded.n_nodes();
        let timeout = self.fabric.failover_timeout_seconds();
        let sources: Vec<(usize, u64)> =
            runs.iter().zip(bytes).map(|(r, &b)| (r.node, b)).collect();
        let mut t_try = start;
        let mut failovers = 0usize;
        for _ in 0..=n {
            let Some(dst) = self.gather_destination(&sources, t_try) else {
                return Err(QueryError::NoLiveNodes);
            };
            let mut parts = Vec::with_capacity(runs.len());
            for (s, &b) in bytes.iter().enumerate().take(runs.len()) {
                let (src, ready) = self.partial_source(s, t_try, runs, costs, dst)?;
                parts.push((src, self.fabric.at_seconds(ready), b));
            }
            let done = self.fabric.gather(&parts, dst);
            match self.faults.crash_time(dst) {
                Some(tc) if tc < self.fabric.seconds(done) => {
                    // The coordinator died mid-gather: detected one
                    // timeout later, the next live node takes over and
                    // the partials are re-shipped.
                    failovers += 1;
                    t_try = tc + timeout;
                }
                _ => return Ok((dst, done, failovers)),
            }
        }
        Err(QueryError::NoLiveNodes)
    }

    /// The shared scatter → local → gather costing for single-gather
    /// plans: schedules local phases with failover, gathers the per-shard
    /// partials, and prices the coordinator merge over their rows.
    pub(crate) fn scatter_gather_cost(
        &mut self,
        per_shard: Vec<NodeCost>,
        partials: &[Table],
        start: f64,
    ) -> Result<ClusterQueryCost, QueryError> {
        self.fabric.reset();
        let (runs, per_node, local_failovers, speculations) =
            self.schedule_local(&per_shard, start)?;
        let local_end = runs.iter().map(|r| r.done_seconds).fold(start, f64::max);
        let bytes: Vec<u64> = partials.iter().map(Table::bytes).collect();
        let (_, done, gather_failovers) =
            self.gather_with_failover(&runs, &per_shard, &bytes, start)?;
        let end = self.fabric.seconds(done).max(local_end);
        let merge_rows: usize = partials.iter().map(Table::rows).sum();
        Ok(ClusterQueryCost {
            per_node,
            local_seconds: local_end - start,
            fabric_seconds: end - local_end,
            merge_seconds: merge_cpu_seconds(merge_rows),
            fabric_bytes: self.fabric.payload_bytes(),
            failovers: local_failovers + gather_failovers,
            speculations,
        })
    }

    /// The scatter → gather → re-aggregate plan: run the single-node
    /// query per shard, merge partial aggregates at the coordinator.
    fn reagg(
        &mut self,
        id: QueryId,
        spec: GroupBySpec,
        f: fn(&TpchDb, &Xeon, u64) -> (Table, QueryCost),
        start: f64,
    ) -> Result<DistributedQuery, QueryError> {
        let (single_output, single_cost) = self.single_ref(id);
        let locals = run_shards(&self.core.sharded.shards, &self.core.xeon, self.core.cfg.scale, f);
        let per_shard: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let partials: Vec<Table> = locals.into_iter().map(|(t, _)| t).collect();
        let merged = spec.merge_partials(&partials);
        let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
        Ok(DistributedQuery {
            id,
            output: QueryOutput::Table(merged),
            single_output,
            cost,
            single_cost,
        })
    }

    /// The scatter → gather → top-k candidate merge plan. Each shard's
    /// local top-k contains every global winner (a winner's rows live on
    /// exactly one shard, where it also ranks top-k), so merging the
    /// candidate lists under the same total order reproduces the
    /// single-node result exactly.
    fn topk_merge(
        &mut self,
        id: QueryId,
        f: fn(&TpchDb, &Xeon, u64) -> (Table, QueryCost),
        value_col: &str,
        k: usize,
        tie_cols: &[&str],
        start: f64,
    ) -> Result<DistributedQuery, QueryError> {
        let (single_output, single_cost) = self.single_ref(id);
        let locals = run_shards(&self.core.sharded.shards, &self.core.xeon, self.core.cfg.scale, f);
        let per_shard: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let partials: Vec<Table> = locals.into_iter().map(|(t, _)| t).collect();
        let merged = merge_topk(&partials, value_col, k, tie_cols);
        let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
        Ok(DistributedQuery {
            id,
            output: QueryOutput::Table(merged),
            single_output,
            cost,
            single_cost,
        })
    }

    fn run_q6(&mut self, start: f64) -> Result<DistributedQuery, QueryError> {
        let (single_output, single_cost) = self.single_ref(QueryId::Q6);
        let locals =
            run_shards(&self.core.sharded.shards, &self.core.xeon, self.core.cfg.scale, tpch::q6);
        let per_shard: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let total: i64 = locals.iter().map(|(v, _)| v).sum();
        // Each node ships one 8-byte partial sum.
        let partials: Vec<Table> = locals
            .iter()
            .map(|(v, _)| Table::new(vec![dpu_sql::Column::i64("revenue", vec![*v])]))
            .collect();
        let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
        Ok(DistributedQuery {
            id: QueryId::Q6,
            output: QueryOutput::Scalar(total),
            single_output,
            cost,
            single_cost,
        })
    }

    fn run_q14(&mut self, start: f64) -> Result<DistributedQuery, QueryError> {
        let (single_output, single_cost) = self.single_ref(QueryId::Q14);
        let locals =
            run_shards(&self.core.sharded.shards, &self.core.xeon, self.core.cfg.scale, tpch::q14);
        let per_shard: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let promo: i64 = locals.iter().map(|((p, _), _)| p).sum();
        let total: i64 = locals.iter().map(|((_, t), _)| t).sum();
        let partials: Vec<Table> = locals
            .iter()
            .map(|((p, t), _)| {
                Table::new(vec![
                    dpu_sql::Column::i64("promo", vec![*p]),
                    dpu_sql::Column::i64("total", vec![*t]),
                ])
            })
            .collect();
        let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
        Ok(DistributedQuery {
            id: QueryId::Q14,
            output: QueryOutput::Pair(promo, total),
            single_output,
            cost,
            single_cost,
        })
    }

    /// Q10 groups by `o_custkey`, which is not the sharding key: the
    /// genuine two-phase plan. Phase 1 computes partial groups per shard
    /// (failover-routed like every local phase); phase 2 reshuffles
    /// partials all-to-all by customer-key hash to owner nodes chosen
    /// among the nodes live when the shuffle begins; phase 3 re-aggregates
    /// at owners (an owner that dies mid-merge fails over to the next
    /// live node, with dead senders' chunks re-derived from shard
    /// replicas) and picks local top-20 candidates; phase 4 gathers
    /// candidates to the coordinator for the final top-20.
    fn run_q10(&mut self, start: f64) -> Result<DistributedQuery, QueryError> {
        let scale = self.core.cfg.scale;
        let (single_output, single_cost) = self.single_ref(QueryId::Q10);
        let spec = spec_q10();
        let n = self.core.sharded.n_nodes();
        let timeout = self.fabric.failover_timeout_seconds();

        // Phase 1: local filter + join + partial group-by, per shard.
        let locals = run_shards(&self.core.sharded.shards, &self.core.xeon, scale, q10_local);
        let per_shard: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        self.fabric.reset();
        let (runs, per_node, mut failovers, speculations) =
            self.schedule_local(&per_shard, start)?;
        let local_end = runs.iter().map(|r| r.done_seconds).fold(start, f64::max);

        // Phase 2: all-to-all reshuffle of partial groups to owners —
        // the nodes still alive when the last local phase finishes.
        let live = self.faults.live_nodes(n, local_end);
        if live.is_empty() {
            return Err(QueryError::NoLiveNodes);
        }
        let owner_policy = ShardPolicy::hash(live.len());
        // chunks[s][j]: shard s's partial rows owned by live[j].
        let chunks: Vec<Vec<Table>> = Pool::global()
            .par_map(locals.iter().map(|(partial, _)| partial).collect(), |p| {
                shard_table(p, "o_custkey", &owner_policy)
            });
        let mut matrix = vec![vec![0u64; n]; n];
        let mut ready = vec![self.fabric.at_seconds(local_end); n];
        for run in &runs {
            ready[run.node] = self.fabric.at_seconds(run.done_seconds);
        }
        for (s, row) in chunks.iter().enumerate() {
            for (j, chunk) in row.iter().enumerate() {
                matrix[runs[s].node][live[j]] += chunk.bytes();
            }
        }
        let shuffled = self.fabric.all_to_all(&ready, &matrix);

        // Phase 3: owners re-aggregate their complete groups and pick
        // local top-20 candidates. An owner that crashes before its merge
        // completes fails over: the chunks are re-shipped to the next
        // live node (re-derived from a shard replica when their sender is
        // gone too) and merged there.
        //
        // The per-owner merges are independent of the fabric clock, so
        // they fan out on the host pool; the failover walk below stays
        // sequential because it threads fabric state owner by owner.
        let owner_cands: Vec<(usize, Table)> =
            Pool::global().par_map((0..live.len()).collect(), |j| {
                let received: Vec<Table> = chunks.iter().map(|row| row[j].clone()).collect();
                let rows_in: usize = received.iter().map(Table::rows).sum();
                let complete = spec.merge_partials(&received);
                let top = top_k(&complete, "revenue", 20.min(complete.rows().max(1)), 32);
                (rows_in, project_rows(&complete, &top))
            });
        let mut candidates = Vec::with_capacity(live.len());
        let mut cand_parts = Vec::with_capacity(live.len());
        for ((j, &owner), (rows_in, cand)) in live.iter().enumerate().zip(owner_cands) {
            let mut host = owner;
            let mut done_s = self.fabric.seconds(shuffled[owner])
                + merge_cpu_seconds(rows_in) / self.faults.compute_factor(owner, local_end);
            for _ in 0..=n {
                match self.faults.crash_time(host) {
                    Some(tc) if tc < done_s => {
                        failovers += 1;
                        let t_retry = tc + timeout;
                        let Some(next) = (0..n)
                            .map(|d| (host + 1 + d) % n)
                            .find(|&v| !self.faults.is_down(v, t_retry))
                        else {
                            return Err(QueryError::NoLiveNodes);
                        };
                        // Re-ship every chunk bound for the dead owner.
                        let mut landed = self.fabric.at_seconds(t_retry);
                        for (s, row) in chunks.iter().enumerate() {
                            if row[j].bytes() == 0 {
                                continue;
                            }
                            let (src, src_ready) =
                                self.partial_source(s, t_retry, &runs, &per_shard, next)?;
                            landed = landed.max(self.fabric.transfer(
                                self.fabric.at_seconds(src_ready),
                                src,
                                next,
                                row[j].bytes(),
                            ));
                        }
                        host = next;
                        done_s = self.fabric.seconds(landed)
                            + merge_cpu_seconds(rows_in)
                                / self.faults.compute_factor(next, t_retry);
                    }
                    _ => break,
                }
            }
            cand_parts.push((host, self.fabric.at_seconds(done_s), cand.bytes()));
            candidates.push(cand);
        }

        // Phase 4: gather candidates; final merge at the coordinator
        // (the live node with the cheapest hop-weighted inbound — the
        // lowest live id with one rack).
        let cand_sources: Vec<(usize, u64)> =
            cand_parts.iter().map(|&(host, _, b)| (host, b)).collect();
        let Some(dst) = self.gather_destination(&cand_sources, local_end) else {
            return Err(QueryError::NoLiveNodes);
        };
        let done = self.fabric.gather(&cand_parts, dst);
        let merged = merge_topk(&candidates, "revenue", 20, &["o_custkey"]);
        let end = self.fabric.seconds(done).max(local_end);
        let cand_rows: usize = candidates.iter().map(Table::rows).sum();
        let cost = ClusterQueryCost {
            per_node,
            local_seconds: local_end - start,
            fabric_seconds: end - local_end,
            merge_seconds: merge_cpu_seconds(cand_rows),
            fabric_bytes: self.fabric.payload_bytes(),
            failovers,
            speculations,
        };
        Ok(DistributedQuery {
            id: QueryId::Q10,
            output: QueryOutput::Table(merged),
            single_output,
            cost,
            single_cost,
        })
    }
}

/// The single-node reference for `id` on the unsharded database — the
/// same call each plan used to make inline, centralized so it can be
/// memoized and pre-warmed in parallel.
fn compute_single(full: &TpchDb, xeon: &Xeon, scale: u64, id: QueryId) -> (QueryOutput, QueryCost) {
    match id {
        QueryId::Q1 => {
            let (t, c) = tpch::q1(full, xeon, scale);
            (QueryOutput::Table(t), c)
        }
        QueryId::Q3 => {
            let (t, c) = tpch::q3(full, xeon, scale);
            (QueryOutput::Table(t), c)
        }
        QueryId::Q5 => {
            let (t, c) = tpch::q5(full, xeon, scale);
            (QueryOutput::Table(t), c)
        }
        QueryId::Q6 => {
            let (v, c) = tpch::q6(full, xeon, scale);
            (QueryOutput::Scalar(v), c)
        }
        QueryId::Q10 => {
            let (t, c) = tpch::q10(full, xeon, scale);
            (QueryOutput::Table(t), c)
        }
        QueryId::Q12 => {
            let (t, c) = tpch::q12(full, xeon, scale);
            (QueryOutput::Table(t), c)
        }
        QueryId::Q14 => {
            let ((p, t), c) = tpch::q14(full, xeon, scale);
            (QueryOutput::Pair(p, t), c)
        }
        QueryId::Q18 => {
            let (t, c) = tpch::q18(full, xeon, scale);
            (QueryOutput::Table(t), c)
        }
    }
}

/// Runs one shard-local sub-plan per shard on the host pool, in shard
/// order. Sub-plans are pure functions of their own shard, so the
/// fan-out affects wall-clock only — the result vector is identical at
/// any pool width.
fn run_shards<R: Send>(
    shards: &[TpchDb],
    xeon: &Xeon,
    scale: u64,
    f: fn(&TpchDb, &Xeon, u64) -> R,
) -> Vec<R> {
    Pool::global().par_map(shards.iter().collect(), |n| f(n, xeon, scale))
}

/// Coordinator-side merge compute: hash re-aggregation at the same
/// cycles/row as the engine's group-by, on one node's 32 cores.
pub(crate) fn merge_cpu_seconds(rows: usize) -> f64 {
    rows as f64 * tpch::AGG_DPU / (DPU_CORES * DPU_CLOCK)
}

/// Merges per-shard top-k candidate tables: sort by value descending,
/// break ties by `tie_cols` ascending (the single-node engine's order),
/// keep `k`.
pub(crate) fn merge_topk(
    partials: &[Table],
    value_col: &str,
    k: usize,
    tie_cols: &[&str],
) -> Table {
    let all = Table::concat(partials);
    let v = all.col_index(value_col);
    let ties: Vec<usize> = tie_cols.iter().map(|c| all.col_index(c)).collect();
    let mut idx: Vec<usize> = (0..all.rows()).collect();
    idx.sort_by(|&a, &b| {
        all.columns[v].data[b].cmp(&all.columns[v].data[a]).then_with(|| {
            ties.iter()
                .map(|&t| all.columns[t].data[a].cmp(&all.columns[t].data[b]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    });
    idx.truncate(k);
    project_rows(&all, &idx)
}

fn spec_q1() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["l_returnflag".into(), "l_linestatus".into()],
        aggs: vec![
            ("sum_qty".into(), AggFunc::Sum("l_quantity".into())),
            ("sum_base_price".into(), AggFunc::Sum("l_extendedprice".into())),
            (
                "sum_disc_price".into(),
                AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
            ),
            ("count_order".into(), AggFunc::Count),
        ],
    }
}

fn spec_q5() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["n_nationkey".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    }
}

fn spec_q10() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["o_custkey".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    }
}

fn spec_q12() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["l_shipmode".into()],
        aggs: vec![("line_count".into(), AggFunc::Count)],
    }
}

/// Q10's local phase: the filters and join of [`tpch::q10`] but stopping
/// at the partial group-by (no top-k — that happens after the shuffle).
/// Costed with the same per-operator constants as the single-node query.
fn q10_local(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let ord_sel =
        FilterSpec::new("o_orderdate", CompareOp::Between(D_1995, D_1995 + 90)).apply(&db.orders);
    let ord = select_rows(&db.orders, &ord_sel);
    let li_sel = FilterSpec::new("l_returnflag", CompareOp::Eq(2)).apply(&db.lineitem);
    let li = select_rows(&db.lineitem, &li_sel);
    let j = HashJoin {
        build_key: "o_orderkey".into(),
        probe_key: "l_orderkey".into(),
        build_cols: vec!["o_custkey".into()],
        probe_cols: vec!["l_extendedprice".into(), "l_discount".into()],
    };
    let (ol, _) = j.execute(&ord, &li, 32);
    let partial = spec_q10().execute(&ol, None);

    let col_bytes = |t: &Table, names: &[&str]| -> u64 {
        names.iter().map(|n| t.column(n).expect("column").bytes()).sum()
    };
    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(
        col_bytes(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"])
            + col_bytes(
                &db.lineitem,
                &["l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"],
            ),
    );
    acc.compute((db.orders.rows() + db.lineitem.rows()) as u64, tpch::SCAN_DPU, tpch::SCAN_XEON);
    tpch::join_cost(
        &mut acc,
        ord.rows() as u64,
        li.rows() as u64,
        col_bytes(&db.lineitem, &["l_orderkey"]) / 4,
    );
    acc.compute(ol.rows() as u64, tpch::AGG_DPU, tpch::AGG_XEON);
    let mut cost = acc.finish(xeon);
    cost.xeon.seconds /= tpch::XEON_DB_EFFICIENCY;
    (partial, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sql::tpch::generate;

    fn cluster(nodes: usize) -> Cluster {
        let db = generate(1200, 42);
        Cluster::new(db, &ShardPolicy::hash(nodes), ClusterConfig::prototype_slice(nodes, 10_000))
    }

    fn cluster_k(nodes: usize, k: usize) -> Cluster {
        let db = generate(1200, 42);
        Cluster::new(
            db,
            &ShardPolicy::hash(nodes),
            ClusterConfig::prototype_slice(nodes, 10_000).with_replicas(k),
        )
    }

    #[test]
    fn all_eight_distributed_results_match_single_node() {
        let mut c = cluster(8);
        for q in c.run_all() {
            assert!(
                q.matches_single(),
                "{} distributed ≠ single-node:\n{:?}\nvs\n{:?}",
                q.id.name(),
                q.output,
                q.single_output
            );
        }
    }

    #[test]
    fn range_sharding_also_matches_single_node() {
        let db = generate(800, 9);
        let keys: Vec<i64> = db.orders.column("o_orderkey").unwrap().data.clone();
        let policy = ShardPolicy::range_over(&keys, 8);
        let mut c =
            Cluster::new(db, &policy, ClusterConfig::prototype_slice(policy.shards(), 10_000));
        for q in c.run_all() {
            assert!(q.matches_single(), "{} mismatch under range sharding", q.id.name());
        }
    }

    #[test]
    fn replication_does_not_change_results_or_healthy_routing() {
        let mut c1 = cluster(8);
        let mut c3 = cluster_k(8, 3);
        for (a, b) in c1.run_all().iter().zip(c3.run_all().iter()) {
            assert!(b.matches_single(), "{} diverged under k=3", b.id.name());
            assert_eq!(a.output, b.output, "{} differs between k=1 and k=3", a.id.name());
            assert_eq!(b.cost.failovers, 0, "healthy run must not fail over");
            // Healthy routing places every shard on its primary, so the
            // cost breakdown is identical to the unreplicated cluster.
            assert_eq!(a.cost, b.cost, "{} healthy cost changed with k", a.id.name());
        }
    }

    #[test]
    fn cluster_cost_decomposes_sanely() {
        let mut c = cluster(8);
        let q = c.run(QueryId::Q1);
        let cost = &q.cost;
        assert_eq!(cost.per_node.len(), 8);
        assert!(cost.local_seconds > 0.0);
        assert!(cost.fabric_seconds > 0.0, "partials must cross the fabric");
        assert!(cost.merge_seconds > 0.0);
        assert!(cost.fabric_bytes > 0);
        assert_eq!(cost.failovers, 0);
        let total = cost.total_seconds();
        assert!(total > cost.local_seconds);
        // Local phases divide the single-node stream ~n ways: the slowest
        // shard must be well under the single-node time.
        assert!(cost.local_seconds < q.single_cost.dpu.seconds * 0.5);
    }

    #[test]
    fn q10_shuffles_partials_over_the_fabric() {
        let mut c = cluster(8);
        let q = c.run(QueryId::Q10);
        assert!(q.matches_single());
        // The reshuffle moves many partial groups, far more than the
        // final candidate gather alone would.
        let gathered_only = c.run(QueryId::Q3).cost.fabric_bytes;
        assert!(q.cost.fabric_bytes > gathered_only);
    }

    #[test]
    fn batching_amortizes_the_scan() {
        let mut c = cluster(8);
        let cost = c.run(QueryId::Q6).cost;
        let k = 8;
        assert!((cost.batch_seconds(1) - cost.total_seconds()).abs() < 1e-12);
        // A memory-bound scan batch shares the stream: k queries cost
        // far less than k independent executions.
        assert!(cost.batch_seconds(k) < 0.9 * k as f64 * cost.total_seconds());
    }

    #[test]
    fn more_nodes_cut_local_time() {
        let db = generate(1200, 42);
        let mut c4 = Cluster::new(
            db.clone(),
            &ShardPolicy::hash(4),
            ClusterConfig::prototype_slice(4, 10_000),
        );
        let mut c16 =
            Cluster::new(db, &ShardPolicy::hash(16), ClusterConfig::prototype_slice(16, 10_000));
        let t4 = c4.run(QueryId::Q1).cost.local_seconds;
        let t16 = c16.run(QueryId::Q1).cost.local_seconds;
        assert!(t16 < t4 / 2.0, "16 nodes {t16} vs 4 nodes {t4}");
    }

    #[test]
    fn perf_per_watt_beats_the_socket() {
        let mut c = cluster(8);
        let q = c.run(QueryId::Q6);
        let g = q.perf_per_watt_gain(c.watts(), c.xeon());
        assert!(g > 1.0, "rack perf/W gain {g:.2} ≤ 1");
    }

    #[test]
    fn load_scatters_the_whole_database() {
        let mut c = cluster(8);
        let s = c.load_seconds();
        assert!(s > 0.0);
        // Replication loads k copies: strictly more fabric time.
        let mut c2 = cluster_k(8, 2);
        assert!(c2.load_seconds() > s, "two replicas must load slower than one");
    }

    #[test]
    fn mid_query_crash_fails_over_and_costs_more() {
        let mut healthy = cluster_k(8, 2);
        let base = healthy.run(QueryId::Q1);
        let mut faulty = cluster_k(8, 2);
        // Crash node 3 in the middle of its local phase.
        faulty.set_faults(FaultPlan::none().crash(3, base.cost.local_seconds * 0.5));
        let q = faulty.try_run_at(QueryId::Q1, 0.0).expect("one replica survives");
        assert!(q.matches_single(), "failover must not change the answer");
        assert!(q.cost.failovers >= 1, "the crash must be visible in the cost");
        assert!(
            q.cost.total_seconds() > base.cost.total_seconds(),
            "failover must cost time: {} vs {}",
            q.cost.total_seconds(),
            base.cost.total_seconds()
        );
    }

    #[test]
    fn dead_shard_is_an_error_not_a_wrong_answer() {
        let mut c = cluster(4); // k = 1: any crash strands a shard
        c.set_faults(FaultPlan::none().crash(2, 0.0));
        for id in QueryId::ALL {
            match c.try_run_at(id, 0.0) {
                Err(QueryError::ShardUnavailable { shard: 2 }) => {}
                other => panic!("{}: expected ShardUnavailable(2), got {other:?}", id.name()),
            }
        }
    }

    #[test]
    fn fork_equals_fresh_cluster_bit_for_bit() {
        let mut fresh = cluster_k(8, 2);
        let mut forked = {
            // Dirty a cluster thoroughly, then fork it: the fork must be
            // indistinguishable from a fresh Cluster::new.
            let mut dirty = cluster_k(8, 2);
            dirty.set_faults(FaultPlan::none().crash(1, 0.0).straggle(2, 0.0, 1e9, 0.5));
            dirty.set_speculation(Some(Speculation::default()));
            let _ = dirty.try_run_at(QueryId::Q10, 0.0);
            dirty.fork()
        };
        assert_eq!(forked.faults(), &FaultPlan::none(), "fork starts fault-free");
        assert_eq!(forked.speculation(), None, "fork starts without speculation");
        assert_eq!(forked.fabric.transfers(), 0, "fork starts with an idle fabric");
        for id in QueryId::ALL {
            let a = fresh.run(id);
            let b = forked.run(id);
            assert_eq!(a.output, b.output, "{} output diverged in fork", id.name());
            assert_eq!(a.cost, b.cost, "{} cost diverged in fork", id.name());
        }
        // The fork shares the core rather than re-sharding.
        assert!(Arc::ptr_eq(forked.fork().core(), forked.core()));
    }

    #[test]
    fn sibling_cores_share_database_and_reference_cache() {
        let db = Arc::new(generate(800, 7));
        let single = Arc::new(SingleRefCache::new());
        let policy = ShardPolicy::hash(4);
        let mk = |k: usize| {
            ClusterCore::with_shared(
                db.clone(),
                &policy,
                ClusterConfig::prototype_slice(4, 10_000).with_replicas(k),
                single.clone(),
            )
        };
        let (c1, c2) = (mk(1), mk(2));
        assert!(Arc::ptr_eq(&c1.full_shared(), &c2.full_shared()));
        // Warming through one core warms the other: the single-node
        // reference ignores replication, so the memo is shared.
        let mut a = Cluster::from_core(c1);
        let mut b = Cluster::from_core(c2);
        let qa = a.run(QueryId::Q6);
        assert!(single.is_warm(QueryId::Q6), "run must populate the shared cache");
        let qb = b.run(QueryId::Q6);
        assert_eq!(qa.single_output, qb.single_output);
        assert_eq!(qa.output, qb.output);
    }

    #[test]
    fn consecutive_runs_report_identical_fabric_stats() {
        // Regression (PR 2): every query resets the fabric — including
        // the per-node replication counters — so back-to-back runs are
        // statistically indistinguishable.
        let mut c = cluster_k(8, 2);
        let a = c.run(QueryId::Q10);
        let a_nodes = c.fabric.node_bytes();
        let b = c.run(QueryId::Q10);
        let b_nodes = c.fabric.node_bytes();
        assert_eq!(a.cost, b.cost, "fabric state leaked between runs");
        assert_eq!(a_nodes, b_nodes, "per-node counters leaked between runs");
    }

    #[test]
    fn recovery_rebuilds_from_surviving_replicas() {
        let mut c = cluster_k(8, 2);
        c.set_faults(FaultPlan::none().crash(3, 0.0));
        let expect_bytes: u64 = c
            .sharded()
            .placement
            .shards_on(3)
            .iter()
            .map(|&s| c.sharded().shard_fact_bytes(s))
            .sum();
        let r = c.recover(3, 1.0);
        assert_eq!(r.node, 3);
        assert_eq!(r.shards, c.sharded().placement.shards_on(3));
        assert_eq!(r.bytes_moved, expect_bytes);
        assert!(r.rebuild_seconds > 0.0);
        // The node is live again: queries route to it without failover.
        let q = c.run(QueryId::Q1);
        assert_eq!(q.cost.failovers, 0);
    }

    #[test]
    fn rebuild_time_matches_hand_computed_fabric_transfers() {
        // 3 nodes, k = 2, node 2 dead from t = 0. Its shards are [1, 2]:
        // shard 1 streams from node 1, shard 2 from node 0 — distinct
        // sender NICs, but the shared switch and node 2's receive NIC
        // serialize the two streams in issue order. Walk that pipeline by
        // hand (per server: start at max(free, arrival), then overhead +
        // bytes/bandwidth; a hop of latency between servers) and demand
        // the model agree exactly.
        let db = generate(600, 5);
        let mut c = Cluster::new(
            db,
            &ShardPolicy::hash(3),
            ClusterConfig::prototype_slice(3, 10_000).with_replicas(2),
        );
        c.set_faults(FaultPlan::none().crash(2, 0.0));
        let cfg = c.fabric.config().clone();
        let b: Vec<u64> = c
            .sharded()
            .placement
            .shards_on(2)
            .iter()
            .map(|&s| c.sharded().shard_fact_bytes(s))
            .collect();
        assert_eq!(b.len(), 2);
        let (hop, msg) = (cfg.hop_cycles, cfg.message_overhead_cycles);
        let nic = |bytes: u64| bytes.div_ceil(cfg.nic_bytes_per_cycle);
        let sw = |bytes: u64| bytes.div_ceil(cfg.switch_bytes_per_cycle);
        let tx1 = msg + nic(b[0]);
        let tx2 = msg + nic(b[1]);
        let sw1 = (tx1 + hop) + sw(b[0]);
        let sw2 = sw1.max(tx2 + hop) + sw(b[1]);
        let rx1 = (sw1 + hop) + msg + nic(b[0]);
        let rx2 = rx1.max(sw2 + hop) + msg + nic(b[1]);
        let expect = c.fabric.seconds(Time::from_cycles(rx1.max(rx2)));

        let r = c.recover(2, 0.0);
        assert_eq!(r.bytes_moved, b.iter().sum::<u64>());
        assert!(
            (r.rebuild_seconds - expect).abs() < 1e-12,
            "rebuild {} s vs hand-computed {} s",
            r.rebuild_seconds,
            expect
        );
        // And the receiver NIC's serialization of both shards is a hard
        // floor on any schedule.
        let floor = (b[0] + b[1]) as f64 / (cfg.nic_bytes_per_cycle as f64 * cfg.clock.hz());
        assert!(r.rebuild_seconds > floor);
    }

    #[test]
    fn failover_timeout_pins_the_old_constant_at_one_rack() {
        // Satellite regression: the timeout is now topology-derived, but
        // a single-rack cluster must reproduce the retired hard-coded
        // formula `2*(4*hop + 2*msg)` — 11 264 cycles on the prototype
        // fabric — to the cycle.
        let c = cluster(8);
        let fc = &c.cfg().fabric;
        assert_eq!(fc.hop_cycles, 1280);
        assert_eq!(fc.message_overhead_cycles, 256);
        let pinned_cycles = 2 * (4 * 1280 + 2 * 256);
        assert_eq!(pinned_cycles, 11_264u64);
        assert_eq!(c.cfg().topology().failover_timeout_cycles(fc), pinned_cycles);
        let pinned_seconds = Time::from_cycles(pinned_cycles).as_secs(fc.clock);
        assert_eq!(c.fabric.failover_timeout_seconds(), pinned_seconds);
        // A spine topology probes over 4 hops each way: strictly longer.
        let db = generate(600, 42);
        let spread = Cluster::new(
            db,
            &ShardPolicy::hash(8),
            ClusterConfig::prototype_slice(8, 10_000).with_topology(2, 4.0),
        );
        assert!(spread.fabric.failover_timeout_seconds() > pinned_seconds);
    }

    #[test]
    fn multirack_cluster_stays_bit_identical_to_single_node() {
        let db = generate(1200, 42);
        let mut flat = Cluster::new(
            db.clone(),
            &ShardPolicy::hash(8),
            ClusterConfig::prototype_slice(8, 10_000).with_replicas(2),
        );
        let mut spread = Cluster::new(
            db,
            &ShardPolicy::hash(8),
            ClusterConfig::prototype_slice(8, 10_000).with_replicas(2).with_topology(4, 8.0),
        );
        for (a, b) in flat.run_all().iter().zip(spread.run_all().iter()) {
            assert!(b.matches_single(), "{} diverged on 4 racks", b.id.name());
            assert_eq!(a.output, b.output, "{} racks changed the answer", a.id.name());
            // Topology prices the fabric differently but never the rows.
            assert_eq!(b.cost.failovers, 0, "healthy multirack run must not fail over");
        }
    }

    #[test]
    fn straggler_inflates_local_time_without_changing_results() {
        let mut healthy = cluster_k(8, 2);
        let base = healthy.run(QueryId::Q1);
        let mut slow = cluster_k(8, 2);
        slow.set_faults(FaultPlan::none().straggle(0, 0.0, 1e9, 0.25));
        let q = slow.run(QueryId::Q1);
        assert!(q.matches_single());
        assert!(
            q.cost.local_seconds > 3.0 * base.cost.local_seconds,
            "a 4× straggler on the critical path must dominate: {} vs {}",
            q.cost.local_seconds,
            base.cost.local_seconds
        );
    }
}
