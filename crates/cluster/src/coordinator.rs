//! Distributed scatter/gather plans for the Figure 16 query set.
//!
//! Each query runs in phases: every node executes a **local phase**
//! against its shard (scan/filter/join/partial-aggregate — costed by the
//! same [`CostAcc`] roofline the single-node engine uses), partial
//! results move over the [`Fabric`], and a coordinator node **merges**.
//! Cluster time is therefore `max over nodes + fabric + merge`, with
//! fabric congestion coming from the queuing model rather than a
//! constant.
//!
//! Because `orders`/`lineitem` are co-sharded by order key and dimensions
//! are replicated, seven of the eight queries decompose into *run the
//! single-node query per shard, then merge*: re-aggregation for the
//! group-bys (Q1, Q5, Q12) and scalar sums (Q6, Q14), top-k candidate
//! merge for Q3/Q18 (each shard's local top-k provably contains every
//! global winner). Q10 groups by **customer**, which is not the sharding
//! key, so it runs a genuine two-phase aggregation: partial group-by
//! per node, an all-to-all hash reshuffle of partial groups to owner
//! nodes, owner re-aggregation, then a candidate gather.
//!
//! Every distributed result is bit-identical to the single-node engine's
//! output — asserted by tests and by `examples/rack_tpch.rs`.

use dpu_core::rack::Rack;
use dpu_sim::Time;
use dpu_sql::plan::{PlatformCost, DPU_CLOCK, DPU_CORES, DPU_STREAM_BW};
use dpu_sql::tpch::{self, project_rows, select_rows, TpchDb, D_1995};
use dpu_sql::{
    top_k, AggFunc, CompareOp, CostAcc, FilterSpec, GroupBySpec, HashJoin, QueryCost, Table,
};
use xeon_model::Xeon;

use crate::fabric::{Fabric, FabricConfig};
use crate::shard::{shard_table, shard_tpch, ShardPolicy, ShardedTpch};

/// The eight TPC-H queries of Figure 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Pricing summary (scan + aggregate).
    Q1,
    /// Shipping priority (3-way join + top-10).
    Q3,
    /// Local-supplier volume (6-table join).
    Q5,
    /// Revenue forecast (pure scan).
    Q6,
    /// Returned items (re-keyed aggregation — needs a shuffle).
    Q10,
    /// Shipping modes (join + count).
    Q12,
    /// Promotion effect (scalar join).
    Q14,
    /// Large-volume customers (group-having + top-100).
    Q18,
}

impl QueryId {
    /// All eight, in Figure 16 order.
    pub const ALL: [QueryId; 8] = [
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q10,
        QueryId::Q12,
        QueryId::Q14,
        QueryId::Q18,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q3 => "Q3",
            QueryId::Q5 => "Q5",
            QueryId::Q6 => "Q6",
            QueryId::Q10 => "Q10",
            QueryId::Q12 => "Q12",
            QueryId::Q14 => "Q14",
            QueryId::Q18 => "Q18",
        }
    }
}

/// A query result (tables for reporting queries, scalars for Q6/Q14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// A result table.
    Table(Table),
    /// A single aggregate value.
    Scalar(i64),
    /// Q14's (promo, total) revenue pair.
    Pair(i64, i64),
}

impl QueryOutput {
    /// The table, for table-valued queries.
    ///
    /// # Panics
    ///
    /// Panics on scalar outputs.
    pub fn table(&self) -> &Table {
        match self {
            QueryOutput::Table(t) => t,
            other => panic!("not a table output: {other:?}"),
        }
    }
}

/// One node's local-phase cost, split along the roofline axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// Seconds streaming the shard through DRAM.
    pub mem_seconds: f64,
    /// Seconds of dpCore compute.
    pub cpu_seconds: f64,
}

impl NodeCost {
    fn from_dpu(p: &PlatformCost) -> Self {
        NodeCost {
            mem_seconds: p.bytes as f64 / DPU_STREAM_BW,
            cpu_seconds: p.compute_cycles as f64 / (DPU_CORES * DPU_CLOCK),
        }
    }

    /// The node's local-phase time (roofline max).
    pub fn seconds(&self) -> f64 {
        self.mem_seconds.max(self.cpu_seconds)
    }
}

/// The cluster-wide cost of one distributed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQueryCost {
    /// Local-phase cost per node.
    pub per_node: Vec<NodeCost>,
    /// Slowest node's local phase, seconds.
    pub local_seconds: f64,
    /// Time from the last local finish to the last byte landing at the
    /// coordinator (shuffle + gather + any distributed merge overlapped
    /// with it), seconds.
    pub fabric_seconds: f64,
    /// Coordinator merge compute, seconds.
    pub merge_seconds: f64,
    /// Payload bytes that crossed the fabric.
    pub fabric_bytes: u64,
}

impl ClusterQueryCost {
    /// End-to-end latency of one query, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.local_seconds + self.fabric_seconds + self.merge_seconds
    }

    /// Latency of a batch of `k` same-template queries executed together:
    /// the nodes stream their shard **once** (sharing the scan) but do
    /// `k×` the compute, and the per-query fabric and merge phases repeat.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn batch_seconds(&self, k: usize) -> f64 {
        assert!(k > 0, "empty batch");
        let local = self
            .per_node
            .iter()
            .map(|n| n.mem_seconds.max(k as f64 * n.cpu_seconds))
            .fold(0.0, f64::max);
        local + k as f64 * (self.fabric_seconds + self.merge_seconds)
    }
}

/// One executed distributed query with its single-node reference.
#[derive(Debug, Clone)]
pub struct DistributedQuery {
    /// Which query.
    pub id: QueryId,
    /// The distributed result.
    pub output: QueryOutput,
    /// The single-node engine's result on the unsharded database.
    pub single_output: QueryOutput,
    /// Cluster cost breakdown.
    pub cost: ClusterQueryCost,
    /// The single-node cost (its `xeon` side is the rack baseline's
    /// per-socket query time).
    pub single_cost: QueryCost,
}

impl DistributedQuery {
    /// Whether the distributed result is bit-identical to the single-node
    /// result (it must be — this is the acceptance check).
    pub fn matches_single(&self) -> bool {
        self.output == self.single_output
    }

    /// Cluster queries/second/watt over the Xeon socket's, given total
    /// cluster watts.
    pub fn perf_per_watt_gain(&self, cluster_watts: f64, xeon: &Xeon) -> f64 {
        let cluster_qps = 1.0 / self.cost.total_seconds();
        let xeon_qps = 1.0 / self.single_cost.xeon.seconds;
        (cluster_qps / cluster_watts) / (xeon_qps / xeon.tdp_watts())
    }
}

/// Cluster sizing and rates.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// DPU nodes executing queries.
    pub n_nodes: usize,
    /// Cardinality multiplier applied when costing (the data executes at
    /// miniature scale; costs are reported at `scale×`).
    pub scale: u64,
    /// The fabric connecting the nodes.
    pub fabric: FabricConfig,
    /// Provisioned watts per node (SoC + DRAM + NIC).
    pub watts_per_node: f64,
}

impl ClusterConfig {
    /// Derives a config from `n_nodes` of a provisioned rack.
    pub fn from_rack(rack: &Rack, n_nodes: usize, scale: u64) -> Self {
        let p = rack.slice(n_nodes).fabric_provision();
        ClusterConfig {
            n_nodes,
            scale,
            fabric: FabricConfig::from_provision(&p),
            watts_per_node: p.watts_per_node,
        }
    }

    /// An `n_nodes` slice of the paper's prototype rack.
    pub fn prototype_slice(n_nodes: usize, scale: u64) -> Self {
        Self::from_rack(&Rack::prototype(), n_nodes, scale)
    }
}

/// A simulated DPU cluster holding a sharded TPC-H database.
#[derive(Debug)]
pub struct Cluster {
    /// Sizing and rates.
    pub cfg: ClusterConfig,
    /// The unsharded database (single-node reference runs against it).
    pub full: TpchDb,
    /// The per-node databases.
    pub sharded: ShardedTpch,
    /// The rack network.
    pub fabric: Fabric,
    xeon: Xeon,
}

impl Cluster {
    /// Shards `db` under `policy` and builds the fabric.
    ///
    /// # Panics
    ///
    /// Panics if the policy's shard count differs from `cfg.n_nodes`.
    pub fn new(db: TpchDb, policy: &ShardPolicy, cfg: ClusterConfig) -> Self {
        assert_eq!(policy.shards(), cfg.n_nodes, "policy shards must equal cluster nodes");
        let sharded = shard_tpch(&db, policy);
        let fabric = Fabric::new(cfg.n_nodes, cfg.fabric.clone());
        Cluster { sharded, fabric, full: db, cfg, xeon: Xeon::new() }
    }

    /// Total provisioned cluster power, watts.
    pub fn watts(&self) -> f64 {
        self.cfg.watts_per_node * self.cfg.n_nodes as f64
    }

    /// The baseline model used for per-socket reference costs.
    pub fn xeon(&self) -> &Xeon {
        &self.xeon
    }

    /// Seconds to load the database over the fabric from node 0: facts
    /// scattered point-to-point, dimensions broadcast.
    pub fn load_seconds(&mut self) -> f64 {
        self.fabric.reset();
        let n = self.cfg.n_nodes;
        let mut done = Time::ZERO;
        for dst in 1..n {
            let fact_share =
                self.sharded.nodes[dst].orders.bytes() + self.sharded.nodes[dst].lineitem.bytes();
            done = done.max(self.fabric.transfer(Time::ZERO, 0, dst, fact_share));
        }
        done = done.max(self.fabric.broadcast(Time::ZERO, 0, self.sharded.broadcast_bytes));
        let s = self.fabric.seconds(done);
        self.fabric.reset();
        s
    }

    /// Runs one query distributed, returning the result, its single-node
    /// reference, and the cost breakdown.
    pub fn run(&mut self, id: QueryId) -> DistributedQuery {
        match id {
            QueryId::Q1 => self.reagg(id, spec_q1(), tpch::q1),
            QueryId::Q3 => {
                self.topk_merge(id, tpch::q3, "revenue", 10, &["l_orderkey", "o_orderdate"])
            }
            QueryId::Q5 => self.reagg(id, spec_q5(), tpch::q5),
            QueryId::Q6 => self.run_q6(),
            QueryId::Q10 => self.run_q10(),
            QueryId::Q12 => self.reagg(id, spec_q12(), tpch::q12),
            QueryId::Q14 => self.run_q14(),
            QueryId::Q18 => self.topk_merge(id, tpch::q18, "o_totalprice", 100, &["o_orderkey"]),
        }
    }

    /// Runs all eight queries.
    pub fn run_all(&mut self) -> Vec<DistributedQuery> {
        QueryId::ALL.iter().map(|&q| self.run(q)).collect()
    }

    /// Gathers per-node partial tables to node 0 and prices the
    /// coordinator merge over their rows.
    fn gather_merge_cost(
        &mut self,
        per_node: Vec<NodeCost>,
        partials: &[Table],
    ) -> ClusterQueryCost {
        self.fabric.reset();
        let local_seconds = per_node.iter().map(NodeCost::seconds).fold(0.0, f64::max);
        let parts: Vec<(usize, Time, u64)> = per_node
            .iter()
            .enumerate()
            .map(|(i, nc)| (i, self.fabric.at_seconds(nc.seconds()), partials[i].bytes()))
            .collect();
        let done = self.fabric.gather(&parts, 0);
        let end = self.fabric.seconds(done).max(local_seconds);
        let merge_rows: usize = partials.iter().map(Table::rows).sum();
        ClusterQueryCost {
            per_node,
            local_seconds,
            fabric_seconds: end - local_seconds,
            merge_seconds: merge_cpu_seconds(merge_rows),
            fabric_bytes: self.fabric.payload_bytes(),
        }
    }

    /// The scatter → gather → re-aggregate plan: run the single-node
    /// query per shard, merge partial aggregates at the coordinator.
    fn reagg(
        &mut self,
        id: QueryId,
        spec: GroupBySpec,
        f: fn(&TpchDb, &Xeon, u64) -> (Table, QueryCost),
    ) -> DistributedQuery {
        let (single_output, single_cost) = f(&self.full, &self.xeon, self.cfg.scale);
        let locals: Vec<(Table, QueryCost)> =
            self.sharded.nodes.iter().map(|n| f(n, &self.xeon, self.cfg.scale)).collect();
        let per_node: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let partials: Vec<Table> = locals.into_iter().map(|(t, _)| t).collect();
        let merged = spec.merge_partials(&partials);
        let cost = self.gather_merge_cost(per_node, &partials);
        DistributedQuery {
            id,
            output: QueryOutput::Table(merged),
            single_output: QueryOutput::Table(single_output),
            cost,
            single_cost,
        }
    }

    /// The scatter → gather → top-k candidate merge plan. Each shard's
    /// local top-k contains every global winner (a winner's rows live on
    /// exactly one shard, where it also ranks top-k), so merging the
    /// candidate lists under the same total order reproduces the
    /// single-node result exactly.
    fn topk_merge(
        &mut self,
        id: QueryId,
        f: fn(&TpchDb, &Xeon, u64) -> (Table, QueryCost),
        value_col: &str,
        k: usize,
        tie_cols: &[&str],
    ) -> DistributedQuery {
        let (single_output, single_cost) = f(&self.full, &self.xeon, self.cfg.scale);
        let locals: Vec<(Table, QueryCost)> =
            self.sharded.nodes.iter().map(|n| f(n, &self.xeon, self.cfg.scale)).collect();
        let per_node: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let partials: Vec<Table> = locals.into_iter().map(|(t, _)| t).collect();
        let merged = merge_topk(&partials, value_col, k, tie_cols);
        let cost = self.gather_merge_cost(per_node, &partials);
        DistributedQuery {
            id,
            output: QueryOutput::Table(merged),
            single_output: QueryOutput::Table(single_output),
            cost,
            single_cost,
        }
    }

    fn run_q6(&mut self) -> DistributedQuery {
        let (single, single_cost) = tpch::q6(&self.full, &self.xeon, self.cfg.scale);
        let locals: Vec<(i64, QueryCost)> =
            self.sharded.nodes.iter().map(|n| tpch::q6(n, &self.xeon, self.cfg.scale)).collect();
        let per_node: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let total: i64 = locals.iter().map(|(v, _)| v).sum();
        // Each node ships one 8-byte partial sum.
        let partials: Vec<Table> = locals
            .iter()
            .map(|(v, _)| Table::new(vec![dpu_sql::Column::i64("revenue", vec![*v])]))
            .collect();
        let cost = self.gather_merge_cost(per_node, &partials);
        DistributedQuery {
            id: QueryId::Q6,
            output: QueryOutput::Scalar(total),
            single_output: QueryOutput::Scalar(single),
            cost,
            single_cost,
        }
    }

    fn run_q14(&mut self) -> DistributedQuery {
        let ((sp, st), single_cost) = tpch::q14(&self.full, &self.xeon, self.cfg.scale);
        let locals: Vec<((i64, i64), QueryCost)> =
            self.sharded.nodes.iter().map(|n| tpch::q14(n, &self.xeon, self.cfg.scale)).collect();
        let per_node: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let promo: i64 = locals.iter().map(|((p, _), _)| p).sum();
        let total: i64 = locals.iter().map(|((_, t), _)| t).sum();
        let partials: Vec<Table> = locals
            .iter()
            .map(|((p, t), _)| {
                Table::new(vec![
                    dpu_sql::Column::i64("promo", vec![*p]),
                    dpu_sql::Column::i64("total", vec![*t]),
                ])
            })
            .collect();
        let cost = self.gather_merge_cost(per_node, &partials);
        DistributedQuery {
            id: QueryId::Q14,
            output: QueryOutput::Pair(promo, total),
            single_output: QueryOutput::Pair(sp, st),
            cost,
            single_cost,
        }
    }

    /// Q10 groups by `o_custkey`, which is not the sharding key: the
    /// genuine two-phase plan. Phase 1 computes partial groups per node;
    /// phase 2 reshuffles partials all-to-all by customer-key hash to
    /// owner nodes; phase 3 re-aggregates at owners and picks local
    /// top-20 candidates; phase 4 gathers candidates to the coordinator
    /// for the final top-20.
    fn run_q10(&mut self) -> DistributedQuery {
        let scale = self.cfg.scale;
        let (single_output, single_cost) = tpch::q10(&self.full, &self.xeon, scale);
        let spec = spec_q10();
        let n = self.cfg.n_nodes;

        // Phase 1: local filter + join + partial group-by.
        let locals: Vec<(Table, QueryCost)> =
            self.sharded.nodes.iter().map(|d| q10_local(d, &self.xeon, scale)).collect();
        let per_node: Vec<NodeCost> =
            locals.iter().map(|(_, c)| NodeCost::from_dpu(&c.dpu)).collect();
        let local_seconds = per_node.iter().map(NodeCost::seconds).fold(0.0, f64::max);

        // Phase 2: all-to-all reshuffle of partial groups by owner.
        self.fabric.reset();
        let owner = ShardPolicy::hash(n);
        let chunks: Vec<Vec<Table>> =
            locals.iter().map(|(partial, _)| shard_table(partial, "o_custkey", &owner)).collect();
        let matrix: Vec<Vec<u64>> =
            chunks.iter().map(|row| row.iter().map(Table::bytes).collect()).collect();
        let ready: Vec<Time> =
            per_node.iter().map(|nc| self.fabric.at_seconds(nc.seconds())).collect();
        let shuffled = self.fabric.all_to_all(&ready, &matrix);

        // Phase 3: owners re-aggregate their complete groups and pick
        // local top-20 candidates.
        let mut candidates = Vec::with_capacity(n);
        let mut cand_parts = Vec::with_capacity(n);
        for d in 0..n {
            let received: Vec<Table> = chunks.iter().map(|row| row[d].clone()).collect();
            let rows_in: usize = received.iter().map(Table::rows).sum();
            let complete = spec.merge_partials(&received);
            let top = top_k(&complete, "revenue", 20.min(complete.rows().max(1)), 32);
            let cand = project_rows(&complete, &top);
            let owner_done = shuffled[d] + self.fabric.at_seconds(merge_cpu_seconds(rows_in));
            cand_parts.push((d, owner_done, cand.bytes()));
            candidates.push(cand);
        }

        // Phase 4: gather candidates; final merge at the coordinator.
        let done = self.fabric.gather(&cand_parts, 0);
        let merged = merge_topk(&candidates, "revenue", 20, &["o_custkey"]);
        let end = self.fabric.seconds(done).max(local_seconds);
        let cand_rows: usize = candidates.iter().map(Table::rows).sum();
        let cost = ClusterQueryCost {
            per_node,
            local_seconds,
            fabric_seconds: end - local_seconds,
            merge_seconds: merge_cpu_seconds(cand_rows),
            fabric_bytes: self.fabric.payload_bytes(),
        };
        DistributedQuery {
            id: QueryId::Q10,
            output: QueryOutput::Table(merged),
            single_output: QueryOutput::Table(single_output),
            cost,
            single_cost,
        }
    }
}

/// Coordinator-side merge compute: hash re-aggregation at the same
/// cycles/row as the engine's group-by, on one node's 32 cores.
fn merge_cpu_seconds(rows: usize) -> f64 {
    rows as f64 * tpch::AGG_DPU / (DPU_CORES * DPU_CLOCK)
}

/// Merges per-shard top-k candidate tables: sort by value descending,
/// break ties by `tie_cols` ascending (the single-node engine's order),
/// keep `k`.
fn merge_topk(partials: &[Table], value_col: &str, k: usize, tie_cols: &[&str]) -> Table {
    let all = Table::concat(partials);
    let v = all.col_index(value_col);
    let ties: Vec<usize> = tie_cols.iter().map(|c| all.col_index(c)).collect();
    let mut idx: Vec<usize> = (0..all.rows()).collect();
    idx.sort_by(|&a, &b| {
        all.columns[v].data[b].cmp(&all.columns[v].data[a]).then_with(|| {
            ties.iter()
                .map(|&t| all.columns[t].data[a].cmp(&all.columns[t].data[b]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    });
    idx.truncate(k);
    project_rows(&all, &idx)
}

fn spec_q1() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["l_returnflag".into(), "l_linestatus".into()],
        aggs: vec![
            ("sum_qty".into(), AggFunc::Sum("l_quantity".into())),
            ("sum_base_price".into(), AggFunc::Sum("l_extendedprice".into())),
            (
                "sum_disc_price".into(),
                AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
            ),
            ("count_order".into(), AggFunc::Count),
        ],
    }
}

fn spec_q5() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["n_nationkey".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    }
}

fn spec_q10() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["o_custkey".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    }
}

fn spec_q12() -> GroupBySpec {
    GroupBySpec {
        group_cols: vec!["l_shipmode".into()],
        aggs: vec![("line_count".into(), AggFunc::Count)],
    }
}

/// Q10's local phase: the filters and join of [`tpch::q10`] but stopping
/// at the partial group-by (no top-k — that happens after the shuffle).
/// Costed with the same per-operator constants as the single-node query.
fn q10_local(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let ord_sel =
        FilterSpec::new("o_orderdate", CompareOp::Between(D_1995, D_1995 + 90)).apply(&db.orders);
    let ord = select_rows(&db.orders, &ord_sel);
    let li_sel = FilterSpec::new("l_returnflag", CompareOp::Eq(2)).apply(&db.lineitem);
    let li = select_rows(&db.lineitem, &li_sel);
    let j = HashJoin {
        build_key: "o_orderkey".into(),
        probe_key: "l_orderkey".into(),
        build_cols: vec!["o_custkey".into()],
        probe_cols: vec!["l_extendedprice".into(), "l_discount".into()],
    };
    let (ol, _) = j.execute(&ord, &li, 32);
    let partial = spec_q10().execute(&ol, None);

    let col_bytes = |t: &Table, names: &[&str]| -> u64 {
        names.iter().map(|n| t.column(n).expect("column").bytes()).sum()
    };
    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(
        col_bytes(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"])
            + col_bytes(
                &db.lineitem,
                &["l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"],
            ),
    );
    acc.compute((db.orders.rows() + db.lineitem.rows()) as u64, tpch::SCAN_DPU, tpch::SCAN_XEON);
    tpch::join_cost(
        &mut acc,
        ord.rows() as u64,
        li.rows() as u64,
        col_bytes(&db.lineitem, &["l_orderkey"]) / 4,
    );
    acc.compute(ol.rows() as u64, tpch::AGG_DPU, tpch::AGG_XEON);
    let mut cost = acc.finish(xeon);
    cost.xeon.seconds /= tpch::XEON_DB_EFFICIENCY;
    (partial, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_sql::tpch::generate;

    fn cluster(nodes: usize) -> Cluster {
        let db = generate(1200, 42);
        Cluster::new(db, &ShardPolicy::hash(nodes), ClusterConfig::prototype_slice(nodes, 10_000))
    }

    #[test]
    fn all_eight_distributed_results_match_single_node() {
        let mut c = cluster(8);
        for q in c.run_all() {
            assert!(
                q.matches_single(),
                "{} distributed ≠ single-node:\n{:?}\nvs\n{:?}",
                q.id.name(),
                q.output,
                q.single_output
            );
        }
    }

    #[test]
    fn range_sharding_also_matches_single_node() {
        let db = generate(800, 9);
        let keys: Vec<i64> = db.orders.column("o_orderkey").unwrap().data.clone();
        let policy = ShardPolicy::range_over(&keys, 8);
        let mut c =
            Cluster::new(db, &policy, ClusterConfig::prototype_slice(policy.shards(), 10_000));
        for q in c.run_all() {
            assert!(q.matches_single(), "{} mismatch under range sharding", q.id.name());
        }
    }

    #[test]
    fn cluster_cost_decomposes_sanely() {
        let mut c = cluster(8);
        let q = c.run(QueryId::Q1);
        let cost = &q.cost;
        assert_eq!(cost.per_node.len(), 8);
        assert!(cost.local_seconds > 0.0);
        assert!(cost.fabric_seconds > 0.0, "partials must cross the fabric");
        assert!(cost.merge_seconds > 0.0);
        assert!(cost.fabric_bytes > 0);
        let total = cost.total_seconds();
        assert!(total > cost.local_seconds);
        // Local phases divide the single-node stream ~n ways: the slowest
        // shard must be well under the single-node time.
        assert!(cost.local_seconds < q.single_cost.dpu.seconds * 0.5);
    }

    #[test]
    fn q10_shuffles_partials_over_the_fabric() {
        let mut c = cluster(8);
        let q = c.run(QueryId::Q10);
        assert!(q.matches_single());
        // The reshuffle moves many partial groups, far more than the
        // final candidate gather alone would.
        let gathered_only = c.run(QueryId::Q3).cost.fabric_bytes;
        assert!(q.cost.fabric_bytes > gathered_only);
    }

    #[test]
    fn batching_amortizes_the_scan() {
        let mut c = cluster(8);
        let cost = c.run(QueryId::Q6).cost;
        let k = 8;
        assert!((cost.batch_seconds(1) - cost.total_seconds()).abs() < 1e-12);
        // A memory-bound scan batch shares the stream: k queries cost
        // far less than k independent executions.
        assert!(cost.batch_seconds(k) < 0.9 * k as f64 * cost.total_seconds());
    }

    #[test]
    fn more_nodes_cut_local_time() {
        let db = generate(1200, 42);
        let mut c4 = Cluster::new(
            db.clone(),
            &ShardPolicy::hash(4),
            ClusterConfig::prototype_slice(4, 10_000),
        );
        let mut c16 =
            Cluster::new(db, &ShardPolicy::hash(16), ClusterConfig::prototype_slice(16, 10_000));
        let t4 = c4.run(QueryId::Q1).cost.local_seconds;
        let t16 = c16.run(QueryId::Q1).cost.local_seconds;
        assert!(t16 < t4 / 2.0, "16 nodes {t16} vs 4 nodes {t4}");
    }

    #[test]
    fn perf_per_watt_beats_the_socket() {
        let mut c = cluster(8);
        let q = c.run(QueryId::Q6);
        let g = q.perf_per_watt_gain(c.watts(), c.xeon());
        assert!(g > 1.0, "rack perf/W gain {g:.2} ≤ 1");
    }

    #[test]
    fn load_scatters_the_whole_database() {
        let mut c = cluster(8);
        let s = c.load_seconds();
        assert!(s > 0.0);
    }
}
