//! The spine/leaf cluster fabric.
//!
//! The paper rejects a PCIe NIC per node (10 W minimum) and instead runs
//! Infiniband off each DPU's integrated A9 over a shared switch (§2).
//! This module models that fabric as queuing resources per transfer —
//! the sender's NIC, the rack's leaf switch, the receiver's NIC — each a
//! [`BandwidthServer`], plus a fixed per-hop latency. Congestion falls
//! out of the queuing: two nodes sending to one receiver serialize on
//! its NIC; an all-to-all shuffle saturates the switch.
//!
//! Past one rack, a second switching tier appears ([`Topology`]): each
//! rack keeps its leaf switch, the leaves interconnect through a
//! non-blocking spine over per-rack uplinks carrying
//! `switch_bytes_per_cycle / oversub`. An inter-rack transfer crosses
//! sender NIC → leaf → uplink → spine → downlink → leaf → receiver NIC
//! (4 hop latencies); an intra-rack transfer crosses exactly the
//! original 2-hop path. With `racks = 1` no spine resource is ever
//! requested, so the flat fabric is reproduced cycle for cycle — the
//! committed `BENCH_rack_*.json` baselines pin that equivalence.
//!
//! All times are in dpCore cycles ([`dpu_sim::Time`]), matching the rest
//! of the simulator.

use dpu_core::rack::FabricProvision;
use dpu_sim::{BandwidthServer, Frequency, Time};

use crate::fault::FaultPlan;
use crate::topology::Topology;

/// Fabric rates and latencies, in dpCore-cycle units.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Per-node NIC bandwidth, bytes per cycle (each direction).
    pub nic_bytes_per_cycle: u64,
    /// Leaf switch bandwidth, bytes per cycle (the shared switch of a
    /// single-rack fabric).
    pub switch_bytes_per_cycle: u64,
    /// One-hop propagation + forwarding latency, cycles.
    pub hop_cycles: u64,
    /// Fixed per-message cost on a NIC (descriptor setup on the A9).
    pub message_overhead_cycles: u64,
    /// The clock all cycle counts are measured against.
    pub clock: Frequency,
}

impl FabricConfig {
    /// The prototype fabric: ~1.6 GB/s per NIC, ~51 GB/s of switch,
    /// ~1.6 µs per hop at the 800 MHz core clock.
    pub fn infiniband() -> Self {
        FabricConfig {
            nic_bytes_per_cycle: 2,
            switch_bytes_per_cycle: 64,
            hop_cycles: 1280,
            message_overhead_cycles: 256,
            clock: Frequency::DPU_CORE,
        }
    }

    /// Builds a config from the rack model's provisioning bridge.
    pub fn from_provision(p: &FabricProvision) -> Self {
        let clock = Frequency::DPU_CORE;
        FabricConfig {
            nic_bytes_per_cycle: ((p.nic_bytes_per_sec / clock.hz()).round() as u64).max(1),
            switch_bytes_per_cycle: ((p.switch_bytes_per_sec / clock.hz()).round() as u64).max(1),
            hop_cycles: (p.hop_seconds * clock.hz()).round() as u64,
            message_overhead_cycles: 256,
            clock,
        }
    }

    /// The single-rack failover timeout, in cycles: the round trip of a
    /// control probe over a flat fabric (two hops each way plus
    /// descriptor setup on both A9s), doubled for scheduling slack.
    /// Equal to [`Topology::failover_timeout_cycles`] for a single-rack
    /// topology; multi-rack fabrics stretch the probe to their own
    /// worst-case hop count.
    pub fn failover_timeout_cycles(&self) -> u64 {
        2 * (4 * self.hop_cycles + 2 * self.message_overhead_cycles)
    }
}

/// The cluster network: per-node NICs around per-rack leaf switches,
/// interconnected by a spine when the topology has more than one rack.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    topo: Topology,
    tx: Vec<BandwidthServer>,
    rx: Vec<BandwidthServer>,
    /// One leaf switch per rack; `leaves[0]` is the shared switch of the
    /// flat single-rack fabric.
    leaves: Vec<BandwidthServer>,
    /// Per-rack uplink (rack → spine) and downlink (spine → rack)
    /// serialization, `switch_bytes_per_cycle / oversub` each. Never
    /// requested when `racks == 1`.
    up: Vec<BandwidthServer>,
    down: Vec<BandwidthServer>,
    /// The non-blocking spine core: `racks ×` the uplink rate, so the
    /// oversubscribed uplinks — not the core — are where a leaf tier
    /// saturates.
    spine: BandwidthServer,
    transfers: u64,
    payload_bytes: u64,
    spine_bytes: u64,
    node_tx_bytes: Vec<u64>,
    node_rx_bytes: Vec<u64>,
    faults: FaultPlan,
}

impl Fabric {
    /// A flat single-rack fabric connecting `n_nodes` DPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn new(n_nodes: usize, cfg: FabricConfig) -> Self {
        Fabric::with_topology(Topology::single_rack(n_nodes), cfg)
    }

    /// A spine/leaf fabric over `topo`.
    pub fn with_topology(topo: Topology, cfg: FabricConfig) -> Self {
        let n_nodes = topo.n_nodes();
        let racks = topo.racks();
        let uplink = topo.uplink_bytes_per_cycle(&cfg);
        let nic = |c: &FabricConfig| {
            BandwidthServer::new(c.nic_bytes_per_cycle, c.message_overhead_cycles)
        };
        Fabric {
            tx: (0..n_nodes).map(|_| nic(&cfg)).collect(),
            rx: (0..n_nodes).map(|_| nic(&cfg)).collect(),
            leaves: (0..racks)
                .map(|_| BandwidthServer::new(cfg.switch_bytes_per_cycle, 0))
                .collect(),
            up: (0..racks).map(|_| BandwidthServer::new(uplink, 0)).collect(),
            down: (0..racks).map(|_| BandwidthServer::new(uplink, 0)).collect(),
            spine: BandwidthServer::new(uplink * racks as u64, 0),
            cfg,
            topo,
            transfers: 0,
            payload_bytes: 0,
            spine_bytes: 0,
            node_tx_bytes: vec![0; n_nodes],
            node_rx_bytes: vec![0; n_nodes],
            faults: FaultPlan::none(),
        }
    }

    /// Installs a fault plan; NIC-degradation windows in it inflate the
    /// wire time of transfers touching a degraded node's NIC. Survives
    /// [`reset`](Self::reset) (faults outlive individual queries).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The coordinator's per-attempt failover timeout, seconds: the
    /// topology's worst-case probe round trip (see
    /// [`Topology::failover_timeout_cycles`]). A single-rack fabric
    /// reproduces [`FabricConfig::failover_timeout_cycles`] exactly.
    pub fn failover_timeout_seconds(&self) -> f64 {
        self.seconds(Time::from_cycles(self.topo.failover_timeout_cycles(&self.cfg)))
    }

    /// Node count.
    pub fn n_nodes(&self) -> usize {
        self.tx.len()
    }

    /// The configured rates.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// The spine/leaf geometry this fabric realizes.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Converts a fabric timestamp to seconds.
    pub fn seconds(&self, t: Time) -> f64 {
        t.as_secs(self.cfg.clock)
    }

    /// Converts seconds (e.g. a node's local compute time) to a fabric
    /// timestamp.
    pub fn at_seconds(&self, seconds: f64) -> Time {
        Time::from_cycles((seconds * self.cfg.clock.hz()).ceil() as u64)
    }

    /// One point-to-point transfer of `bytes` from `src` to `dst`,
    /// injected at `now`; returns delivery time. A local "transfer"
    /// (`src == dst`) is free. An intra-rack transfer crosses sender NIC
    /// → leaf → receiver NIC (2 hops); an inter-rack transfer additionally
    /// serializes on the source rack's uplink, the spine core, and the
    /// destination rack's downlink and leaf (4 hops). A NIC-degradation
    /// fault active at `now` on either endpoint inflates that NIC's wire
    /// time by `1/factor` (the link carries the same payload at a
    /// fraction of its rate).
    pub fn transfer(&mut self, now: Time, src: usize, dst: usize, bytes: u64) -> Time {
        if src == dst {
            return now;
        }
        self.transfers += 1;
        self.payload_bytes += bytes;
        self.node_tx_bytes[src] += bytes;
        self.node_rx_bytes[dst] += bytes;
        let t_secs = self.seconds(now);
        let wire = |bytes: u64, factor: f64| -> u64 {
            if factor >= 1.0 {
                bytes
            } else {
                (bytes as f64 / factor).ceil() as u64
            }
        };
        let hop = Time::from_cycles(self.cfg.hop_cycles);
        let (ra, rb) = (self.topo.rack_of(src), self.topo.rack_of(dst));
        let injected = self.tx[src].request(now, wire(bytes, self.faults.nic_factor(src, t_secs)));
        let at_leaf = self.leaves[ra].request(injected + hop, bytes);
        let at_dst_leaf = if ra == rb {
            at_leaf
        } else {
            self.spine_bytes += bytes;
            // The uplink/downlink serialize at the leaf and spine ports
            // they attach to — no extra propagation hop of their own.
            let lifted = self.up[ra].request(at_leaf, bytes);
            let crossed = self.spine.request(lifted + hop, bytes);
            let dropped = self.down[rb].request(crossed, bytes);
            self.leaves[rb].request(dropped + hop, bytes)
        };
        self.rx[dst].request(
            at_dst_leaf + hop,
            wire(bytes, self.faults.nic_factor(dst, t_secs)),
        )
    }

    /// Gathers one part from each listed `(node, ready, bytes)` source to
    /// `dst`; returns the time the last part lands.
    pub fn gather(&mut self, parts: &[(usize, Time, u64)], dst: usize) -> Time {
        let mut done = Time::ZERO;
        for &(src, ready, bytes) in parts {
            done = done.max(self.transfer(ready, src, dst, bytes));
        }
        done
    }

    /// Broadcasts `bytes` from `src` to every other node (the A9 serializes
    /// the sends on its NIC); returns the time the last copy lands.
    pub fn broadcast(&mut self, now: Time, src: usize, bytes: u64) -> Time {
        let mut done = now;
        for dst in 0..self.n_nodes() {
            done = done.max(self.transfer(now, src, dst, bytes));
        }
        done
    }

    /// An all-to-all shuffle: node `s` becomes ready at `ready[s]` and
    /// sends `matrix[s][d]` bytes to node `d`. Sends are issued in
    /// rotation order (`d = s+1, s+2, …`) so no receiver is hammered by
    /// every sender at once. Returns the per-destination completion time
    /// (at least `ready[d]` — a node cannot finish receiving before it
    /// has finished its own local phase).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the node count.
    pub fn all_to_all(&mut self, ready: &[Time], matrix: &[Vec<u64>]) -> Vec<Time> {
        let n = self.n_nodes();
        assert_eq!(ready.len(), n, "ready times per node");
        assert_eq!(matrix.len(), n, "matrix rows per node");
        let mut done: Vec<Time> = ready.to_vec();
        for k in 1..n {
            for s in 0..n {
                let d = (s + k) % n;
                assert_eq!(matrix[s].len(), n, "matrix cols per node");
                let bytes = matrix[s][d];
                if bytes > 0 {
                    let t = self.transfer(ready[s], s, d, bytes);
                    done[d] = done[d].max(t);
                }
            }
        }
        done
    }

    /// Transfers issued since construction or [`reset`](Self::reset).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Payload bytes moved since construction or [`reset`](Self::reset).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Payload bytes that crossed the spine tier (inter-rack transfers
    /// only) since construction or [`reset`](Self::reset). Zero on a
    /// single-rack fabric.
    pub fn spine_bytes(&self) -> u64 {
        self.spine_bytes
    }

    /// Payload bytes sent by `node` since construction or reset.
    pub fn node_tx_bytes(&self, node: usize) -> u64 {
        self.node_tx_bytes[node]
    }

    /// Payload bytes received by `node` since construction or reset.
    pub fn node_rx_bytes(&self, node: usize) -> u64 {
        self.node_rx_bytes[node]
    }

    /// Per-node `(tx, rx)` payload bytes since construction or reset.
    pub fn node_bytes(&self) -> Vec<(u64, u64)> {
        self.node_tx_bytes.iter().copied().zip(self.node_rx_bytes.iter().copied()).collect()
    }

    /// A pristine fabric sharing this one's configuration and installed
    /// fault plan: idle queues, zeroed statistics. This is the
    /// config-vs-state split of [`dpu_sim::ServerConfig`] lifted to the
    /// whole fabric — config (rates, latencies, topology, faults) is
    /// carried over, state (occupancy, counters) starts fresh.
    /// [`reset`](Self::reset) is defined as replacing `self` with its
    /// fork, so both share one code path.
    pub fn fork(&self) -> Self {
        let n = self.n_nodes();
        Fabric {
            cfg: self.cfg.clone(),
            topo: self.topo.clone(),
            tx: self.tx.iter().map(BandwidthServer::fork).collect(),
            rx: self.rx.iter().map(BandwidthServer::fork).collect(),
            leaves: self.leaves.iter().map(BandwidthServer::fork).collect(),
            up: self.up.iter().map(BandwidthServer::fork).collect(),
            down: self.down.iter().map(BandwidthServer::fork).collect(),
            spine: self.spine.fork(),
            transfers: 0,
            payload_bytes: 0,
            spine_bytes: 0,
            node_tx_bytes: vec![0; n],
            node_rx_bytes: vec![0; n],
            faults: self.faults.clone(),
        }
    }

    /// Clears all queue occupancy and statistics (between queries),
    /// including the per-node tx/rx byte counters. The installed fault
    /// plan is preserved — faults outlive individual queries. Defined via
    /// [`fork`](Self::fork): reset = become a fork of yourself.
    pub fn reset(&mut self) {
        *self = self.fork();
    }
}

/// Shared fabric occupancy for the **concurrent serving pipeline**.
///
/// The per-query [`Fabric`] model prices one query's shuffle/gather in
/// isolation. When the serving front-end keeps several queries in flight
/// at once, their fabric phases compete for the same switches and NICs —
/// a Q10 reshuffle running next to another Q10 reshuffle cannot see the
/// full switch. `ServeFabric` models that sharing with the same
/// [`BandwidthServer`] queuing primitive: one server per leaf switch and
/// one per node NIC (each query's aggregate flow touches every NIC with
/// a `1/n` share and every leaf with a `1/racks` share — exact for an
/// all-to-all, conservative for a gather, whose single hot receiver is
/// already priced into the isolated cost). On a multi-rack topology the
/// cross-rack fraction of each flow additionally occupies the per-rack
/// uplinks/downlinks and the spine core, so oversubscription throttles
/// concurrent serving exactly where it throttles isolated queries.
///
/// A query's fabric phase is charged as its isolated cost plus whatever
/// queueing delay the shared servers impose: with nothing else in
/// flight, [`charge`](Self::charge) returns exactly the isolated
/// seconds; with overlapping phases, strictly more.
#[derive(Debug)]
pub struct ServeFabric {
    cfg: FabricConfig,
    topo: Topology,
    nics: Vec<BandwidthServer>,
    leaves: Vec<BandwidthServer>,
    up: Vec<BandwidthServer>,
    down: Vec<BandwidthServer>,
    spine: BandwidthServer,
}

impl ServeFabric {
    /// A shared serving fabric over `n_nodes` NICs in one flat rack. The
    /// servers carry no per-request overhead — fixed message costs are
    /// already inside each template's isolated fabric seconds.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn new(n_nodes: usize, cfg: FabricConfig) -> Self {
        ServeFabric::with_topology(Topology::single_rack(n_nodes), cfg)
    }

    /// A shared serving fabric over a spine/leaf topology.
    pub fn with_topology(topo: Topology, cfg: FabricConfig) -> Self {
        let racks = topo.racks();
        let uplink = topo.uplink_bytes_per_cycle(&cfg);
        ServeFabric {
            nics: (0..topo.n_nodes())
                .map(|_| BandwidthServer::new(cfg.nic_bytes_per_cycle, 0))
                .collect(),
            leaves: (0..racks)
                .map(|_| BandwidthServer::new(cfg.switch_bytes_per_cycle, 0))
                .collect(),
            up: (0..racks).map(|_| BandwidthServer::new(uplink, 0)).collect(),
            down: (0..racks).map(|_| BandwidthServer::new(uplink, 0)).collect(),
            spine: BandwidthServer::new(uplink * racks as u64, 0),
            cfg,
            topo,
        }
    }

    /// Node count.
    pub fn n_nodes(&self) -> usize {
        self.nics.len()
    }

    /// The cross-rack fraction of a `bytes` flow: `(racks-1)/racks`,
    /// the uniform-destination expectation.
    fn inter_rack_bytes(&self, bytes: u64) -> u64 {
        let racks = self.topo.racks() as u64;
        bytes - bytes / racks
    }

    /// The serialization cycles an uncontended `bytes` flow spends on the
    /// bottleneck shared resource (leaf share, NIC share, or — across
    /// racks — the uplink share or spine core).
    fn serialization_cycles(&self, bytes: u64) -> u64 {
        let racks = self.topo.racks() as u64;
        let leaf = bytes.div_ceil(racks).div_ceil(self.cfg.switch_bytes_per_cycle);
        let share = bytes.div_ceil(self.nics.len() as u64);
        let nic = share.div_ceil(self.cfg.nic_bytes_per_cycle);
        let mut serial = leaf.max(nic);
        if racks > 1 {
            let inter = self.inter_rack_bytes(bytes);
            let uplink = self.topo.uplink_bytes_per_cycle(&self.cfg);
            serial = serial
                .max(inter.div_ceil(racks).div_ceil(uplink))
                .max(inter.div_ceil(racks * uplink));
        }
        serial
    }

    /// Charges one fabric phase of `bytes` payload starting at
    /// `start_seconds`, whose isolated (uncontended) duration is
    /// `isolated_seconds`; returns the actual duration under whatever
    /// contention the shared servers currently carry.
    ///
    /// The flow occupies each leaf for a `1/racks` share, every NIC for a
    /// `1/n` share, and (across racks) each uplink/downlink for its
    /// cross-rack share plus the spine core for the full cross-rack
    /// payload; the isolated duration minus the bottleneck serialization
    /// rides along as fixed latency (hops, message setup, the
    /// receiver-side serialization already priced per query).
    pub fn charge(&mut self, start_seconds: f64, bytes: u64, isolated_seconds: f64) -> f64 {
        if bytes == 0 {
            return isolated_seconds;
        }
        let clock = self.cfg.clock;
        let now = Time::from_cycles((start_seconds * clock.hz()).ceil() as u64);
        let racks = self.topo.racks() as u64;
        let leaf_share = bytes.div_ceil(racks);
        let nic_share = bytes.div_ceil(self.nics.len() as u64);
        let mut done = Time::ZERO;
        for leaf in &mut self.leaves {
            done = done.max(leaf.request(now, leaf_share));
        }
        for nic in &mut self.nics {
            done = done.max(nic.request(now, nic_share));
        }
        if racks > 1 {
            let inter = self.inter_rack_bytes(bytes);
            let link_share = inter.div_ceil(racks);
            for link in self.up.iter_mut().chain(self.down.iter_mut()) {
                done = done.max(link.request(now, link_share));
            }
            done = done.max(self.spine.request(now, inter));
        }
        let serial_seconds = Time::from_cycles(self.serialization_cycles(bytes)).as_secs(clock);
        let residual = (isolated_seconds - serial_seconds).max(0.0);
        (done - now).as_secs(clock) + residual
    }

    /// A pristine serving fabric with this one's configuration and idle
    /// servers — the same config-vs-state split as [`Fabric::fork`].
    pub fn fork(&self) -> Self {
        ServeFabric {
            cfg: self.cfg.clone(),
            topo: self.topo.clone(),
            nics: self.nics.iter().map(BandwidthServer::fork).collect(),
            leaves: self.leaves.iter().map(BandwidthServer::fork).collect(),
            up: self.up.iter().map(BandwidthServer::fork).collect(),
            down: self.down.iter().map(BandwidthServer::fork).collect(),
            spine: self.spine.fork(),
        }
    }

    /// Clears all server occupancy (between serving runs). Defined via
    /// [`fork`](Self::fork) — one reset/fork code path for both fabrics.
    pub fn reset(&mut self) {
        *self = self.fork();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, FabricConfig::infiniband())
    }

    fn spine_fabric(n: usize, racks: usize, oversub: f64) -> Fabric {
        Fabric::with_topology(Topology::new(n, racks, oversub), FabricConfig::infiniband())
    }

    #[test]
    fn transfer_pays_wire_time_and_hops() {
        let mut f = fabric(4);
        let t = f.transfer(Time::ZERO, 0, 1, 1 << 20);
        let cfg = f.config();
        // At least the NIC serialization of 1 MiB plus two hops.
        let floor = (1u64 << 20) / cfg.nic_bytes_per_cycle + 2 * cfg.hop_cycles;
        assert!(t.cycles() >= floor, "{} < {floor}", t.cycles());
        // And the payload crossed each resource exactly once.
        assert_eq!(f.transfers(), 1);
        assert_eq!(f.payload_bytes(), 1 << 20);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut f = fabric(4);
        let t = f.transfer(Time::from_cycles(7), 2, 2, 1 << 30);
        assert_eq!(t.cycles(), 7);
        assert_eq!(f.transfers(), 0);
    }

    #[test]
    fn incast_serializes_on_receiver_nic() {
        let mut f = fabric(3);
        let one = f.transfer(Time::ZERO, 1, 0, 1 << 20);
        let two = f.transfer(Time::ZERO, 2, 0, 1 << 20);
        // The second sender's payload queues behind the first at node 0's
        // RX NIC: it must finish roughly one NIC-serialization later.
        let wire = (1u64 << 20) / f.config().nic_bytes_per_cycle;
        assert!(two.cycles() >= one.cycles() + wire - f.config().message_overhead_cycles);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut f = fabric(4);
        let a = f.transfer(Time::ZERO, 0, 1, 1 << 20);
        let b = f.transfer(Time::ZERO, 2, 3, 1 << 20);
        // Different NICs; the shared switch is 32× faster than a NIC, so
        // the two transfers overlap almost entirely.
        assert!(b.cycles() < a.cycles() + a.cycles() / 4);
    }

    #[test]
    fn all_to_all_respects_ready_times_and_counts_bytes() {
        let mut f = fabric(4);
        let ready = vec![Time::from_cycles(1000); 4];
        let matrix: Vec<Vec<u64>> =
            (0..4).map(|s| (0..4).map(|d| if s == d { 0 } else { 4096 }).collect()).collect();
        let done = f.all_to_all(&ready, &matrix);
        for d in &done {
            assert!(d.cycles() > 1000);
        }
        // 12 off-diagonal messages of 4 KiB each.
        assert_eq!(f.transfers(), 12);
        assert_eq!(f.payload_bytes(), 12 * 4096);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut f = fabric(2);
        let busy = f.transfer(Time::ZERO, 0, 1, 1 << 24);
        f.reset();
        let fresh = f.transfer(Time::ZERO, 0, 1, 1 << 10);
        assert!(fresh < busy, "post-reset transfer must not queue");
        assert_eq!(f.payload_bytes(), 1 << 10);
    }

    #[test]
    fn per_node_counters_track_and_reset() {
        let mut f = fabric(4);
        f.transfer(Time::ZERO, 0, 1, 1000);
        f.transfer(Time::ZERO, 0, 2, 500);
        f.transfer(Time::ZERO, 3, 0, 250);
        assert_eq!(f.node_tx_bytes(0), 1500);
        assert_eq!(f.node_rx_bytes(0), 250);
        assert_eq!(f.node_rx_bytes(1), 1000);
        assert_eq!(f.node_bytes()[3], (250, 0));
        // Regression (PR 2): reset must clear the per-node replication
        // counters too, not just the aggregate transfer stats.
        f.reset();
        assert_eq!(f.node_bytes(), vec![(0, 0); 4]);
        assert_eq!(f.transfers(), 0);
        assert_eq!(f.payload_bytes(), 0);
    }

    #[test]
    fn fork_keeps_faults_and_matches_reset() {
        use crate::fault::FaultPlan;
        let mut f = fabric(2);
        let horizon = f.seconds(Time::from_cycles(u64::MAX / 2));
        f.set_faults(FaultPlan::none().degrade_nic(1, 0.0, horizon, 0.25));
        f.transfer(Time::ZERO, 0, 1, 1 << 24);
        let mut forked = f.fork();
        assert_eq!(forked.faults(), f.faults(), "fork carries the fault plan");
        assert_eq!(forked.transfers(), 0);
        assert_eq!(forked.node_bytes(), vec![(0, 0); 2]);
        // reset is the same operation applied in place: afterwards the
        // original and the fork serve identically (faults included).
        f.reset();
        assert_eq!(
            f.transfer(Time::ZERO, 0, 1, 1 << 20),
            forked.transfer(Time::ZERO, 0, 1, 1 << 20)
        );

        let mut sf = ServeFabric::new(2, FabricConfig::infiniband());
        sf.charge(0.0, 1 << 24, 1.0);
        let mut sfork = sf.fork();
        sf.reset();
        let a = sf.charge(0.0, 1 << 20, 0.5);
        let b = sfork.charge(0.0, 1 << 20, 0.5);
        assert_eq!(a, b, "ServeFabric reset == fork");
    }

    #[test]
    fn nic_degradation_slows_transfers_in_its_window() {
        use crate::fault::FaultPlan;
        let mut healthy = fabric(2);
        let base = healthy.transfer(Time::ZERO, 0, 1, 1 << 20);

        let mut degraded = fabric(2);
        let horizon = degraded.seconds(Time::from_cycles(u64::MAX / 2));
        degraded.set_faults(FaultPlan::none().degrade_nic(1, 0.0, horizon, 0.25));
        let slow = degraded.transfer(Time::ZERO, 0, 1, 1 << 20);
        // The receiver's NIC runs at a quarter rate: that hop alone costs
        // 4× its healthy wire time, stretching the whole transfer by the
        // 3× difference.
        let wire = (1u64 << 20) / degraded.config().nic_bytes_per_cycle;
        assert!(
            slow.cycles() >= base.cycles() + 3 * wire,
            "{} vs {}",
            slow.cycles(),
            base.cycles()
        );

        // Outside the window the same fabric runs at full rate.
        let mut windowed = fabric(2);
        windowed.set_faults(FaultPlan::none().degrade_nic(1, 0.0, 1e-9, 0.25));
        let after = windowed.transfer(Time::from_cycles(1 << 20), 0, 1, 1 << 20);
        assert_eq!(after.cycles() - (1 << 20), base.cycles());
    }

    #[test]
    fn failover_timeout_is_a_fabric_round_trip() {
        let f = fabric(2);
        let cfg = f.config();
        assert_eq!(
            cfg.failover_timeout_cycles(),
            2 * (4 * cfg.hop_cycles + 2 * cfg.message_overhead_cycles)
        );
        assert!(f.failover_timeout_seconds() > 0.0);
        // Multi-rack fabrics probe over 4 hops instead of 2, so their
        // timeout is strictly longer.
        let spine = spine_fabric(4, 2, 1.0);
        assert!(spine.failover_timeout_seconds() > f.failover_timeout_seconds());
    }

    #[test]
    fn single_rack_topology_is_cycle_identical_to_flat() {
        // The refactor's load-bearing invariant: Fabric::new and an
        // explicit single-rack topology issue identical server requests,
        // so every committed baseline is unchanged.
        let mut flat = fabric(4);
        let mut topo = Fabric::with_topology(Topology::single_rack(4), FabricConfig::infiniband());
        for (s, d, b) in [(0, 1, 1 << 20), (2, 0, 4096), (1, 3, 123_456), (3, 0, 1 << 18)] {
            assert_eq!(
                flat.transfer(Time::ZERO, s, d, b),
                topo.transfer(Time::ZERO, s, d, b),
                "transfer {s}->{d} of {b} bytes diverged"
            );
        }
        assert_eq!(flat.spine_bytes(), 0);
        assert_eq!(topo.spine_bytes(), 0);
    }

    #[test]
    fn cross_rack_transfer_pays_four_hops_and_feeds_the_spine() {
        let mut f = spine_fabric(8, 2, 1.0);
        let b = 1u64 << 20;
        let intra = f.transfer(Time::ZERO, 0, 1, b);
        f.reset();
        let inter = f.transfer(Time::ZERO, 0, 4, b);
        // Beyond the shared NIC→leaf→NIC path, the cross-rack transfer
        // pays two more propagation hops plus store-and-forward
        // serialization at the uplink, downlink and destination leaf
        // (uplink rate = leaf rate at oversub 1) and at the spine core
        // (racks × the uplink rate).
        let switch = f.config().switch_bytes_per_cycle;
        let extra =
            2 * f.config().hop_cycles + 3 * b.div_ceil(switch) + b.div_ceil(2 * switch);
        assert_eq!(
            inter.cycles() - intra.cycles(),
            extra,
            "non-blocking cross-rack transfer = two extra hops + spine-tier serialization"
        );
        assert_eq!(f.spine_bytes(), 1 << 20);
        // An intra-rack transfer never touches the spine tier.
        f.reset();
        f.transfer(Time::ZERO, 0, 3, 1 << 20);
        assert_eq!(f.spine_bytes(), 0);
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_rack_flows() {
        // Two simultaneous cross-rack flows from one rack: under a
        // non-blocking fabric they ride the 64 B/cycle uplink together;
        // at oversub 32 the uplink matches one NIC and the flows must
        // serialize on it.
        let run = |oversub: f64| {
            let mut f = spine_fabric(8, 2, oversub);
            let a = f.transfer(Time::ZERO, 0, 4, 1 << 20);
            let b = f.transfer(Time::ZERO, 1, 5, 1 << 20);
            a.max(b)
        };
        let fast = run(1.0);
        let slow = run(32.0);
        let wire = (1u64 << 20) / FabricConfig::infiniband().nic_bytes_per_cycle;
        assert!(
            slow.cycles() >= fast.cycles() + wire / 2,
            "oversubscription must queue the second flow: {} vs {}",
            slow.cycles(),
            fast.cycles()
        );
    }

    #[test]
    fn serve_fabric_single_rack_topology_matches_flat() {
        let mut flat = ServeFabric::new(8, FabricConfig::infiniband());
        let mut topo =
            ServeFabric::with_topology(Topology::single_rack(8), FabricConfig::infiniband());
        for (start, bytes, iso) in [(0.0, 1u64 << 20, 0.01), (0.001, 4096, 0.0005), (0.002, 0, 0.1)]
        {
            assert_eq!(flat.charge(start, bytes, iso), topo.charge(start, bytes, iso));
        }
    }

    #[test]
    fn serve_fabric_oversubscription_stretches_shared_phases() {
        let charge_all = |racks: usize, oversub: f64| {
            let mut sf = ServeFabric::with_topology(
                Topology::new(8, racks, oversub),
                FabricConfig::infiniband(),
            );
            // Four overlapping 1 MiB fabric phases.
            (0..4).map(|_| sf.charge(0.0, 1 << 20, 0.001)).fold(0.0f64, f64::max)
        };
        let non_blocking = charge_all(2, 1.0);
        let oversubscribed = charge_all(2, 32.0);
        assert!(
            oversubscribed > non_blocking,
            "oversub 32 must throttle concurrent serving: {oversubscribed} vs {non_blocking}"
        );
    }

    #[test]
    fn provision_roundtrip_matches_prototype_rates() {
        let rack = dpu_core::rack::Rack::prototype();
        let cfg = FabricConfig::from_provision(&rack.fabric_provision());
        assert_eq!(cfg.nic_bytes_per_cycle, 2);
        assert_eq!(cfg.switch_bytes_per_cycle, 64);
        assert_eq!(cfg.hop_cycles, 1280);
    }
}
