//! The shared-Infiniband rack fabric.
//!
//! The paper rejects a PCIe NIC per node (10 W minimum) and instead runs
//! Infiniband off each DPU's integrated A9 over a shared switch (§2).
//! This module models that fabric as three queuing resources per
//! transfer — the sender's NIC, the shared switch, the receiver's NIC —
//! each a [`BandwidthServer`], plus a fixed per-hop latency. Congestion
//! falls out of the queuing: two nodes sending to one receiver serialize
//! on its NIC; an all-to-all shuffle saturates the switch.
//!
//! All times are in dpCore cycles ([`dpu_sim::Time`]), matching the rest
//! of the simulator.

use dpu_core::rack::FabricProvision;
use dpu_sim::{BandwidthServer, Frequency, Time};

/// Fabric rates and latencies, in dpCore-cycle units.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Per-node NIC bandwidth, bytes per cycle (each direction).
    pub nic_bytes_per_cycle: u64,
    /// Shared switch bandwidth, bytes per cycle.
    pub switch_bytes_per_cycle: u64,
    /// One-hop propagation + forwarding latency, cycles.
    pub hop_cycles: u64,
    /// Fixed per-message cost on a NIC (descriptor setup on the A9).
    pub message_overhead_cycles: u64,
    /// The clock all cycle counts are measured against.
    pub clock: Frequency,
}

impl FabricConfig {
    /// The prototype fabric: ~1.6 GB/s per NIC, ~51 GB/s of switch,
    /// ~1.6 µs per hop at the 800 MHz core clock.
    pub fn infiniband() -> Self {
        FabricConfig {
            nic_bytes_per_cycle: 2,
            switch_bytes_per_cycle: 64,
            hop_cycles: 1280,
            message_overhead_cycles: 256,
            clock: Frequency::DPU_CORE,
        }
    }

    /// Builds a config from the rack model's provisioning bridge.
    pub fn from_provision(p: &FabricProvision) -> Self {
        let clock = Frequency::DPU_CORE;
        FabricConfig {
            nic_bytes_per_cycle: ((p.nic_bytes_per_sec / clock.hz()).round() as u64).max(1),
            switch_bytes_per_cycle: ((p.switch_bytes_per_sec / clock.hz()).round() as u64).max(1),
            hop_cycles: (p.hop_seconds * clock.hz()).round() as u64,
            message_overhead_cycles: 256,
            clock,
        }
    }
}

/// The rack network: per-node NICs around a shared switch.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    tx: Vec<BandwidthServer>,
    rx: Vec<BandwidthServer>,
    switch: BandwidthServer,
    transfers: u64,
    payload_bytes: u64,
}

impl Fabric {
    /// A fabric connecting `n_nodes` DPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn new(n_nodes: usize, cfg: FabricConfig) -> Self {
        assert!(n_nodes > 0, "a fabric needs nodes");
        let nic = |c: &FabricConfig| {
            BandwidthServer::new(c.nic_bytes_per_cycle, c.message_overhead_cycles)
        };
        Fabric {
            tx: (0..n_nodes).map(|_| nic(&cfg)).collect(),
            rx: (0..n_nodes).map(|_| nic(&cfg)).collect(),
            switch: BandwidthServer::new(cfg.switch_bytes_per_cycle, 0),
            cfg,
            transfers: 0,
            payload_bytes: 0,
        }
    }

    /// Node count.
    pub fn n_nodes(&self) -> usize {
        self.tx.len()
    }

    /// The configured rates.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Converts a fabric timestamp to seconds.
    pub fn seconds(&self, t: Time) -> f64 {
        t.as_secs(self.cfg.clock)
    }

    /// Converts seconds (e.g. a node's local compute time) to a fabric
    /// timestamp.
    pub fn at_seconds(&self, seconds: f64) -> Time {
        Time::from_cycles((seconds * self.cfg.clock.hz()).ceil() as u64)
    }

    /// One point-to-point transfer of `bytes` from `src` to `dst`,
    /// injected at `now`; returns delivery time. A local "transfer"
    /// (`src == dst`) is free.
    pub fn transfer(&mut self, now: Time, src: usize, dst: usize, bytes: u64) -> Time {
        if src == dst {
            return now;
        }
        self.transfers += 1;
        self.payload_bytes += bytes;
        let injected = self.tx[src].request(now, bytes);
        let through = self.switch.request(injected + Time::from_cycles(self.cfg.hop_cycles), bytes);
        self.rx[dst].request(through + Time::from_cycles(self.cfg.hop_cycles), bytes)
    }

    /// Gathers one part from each listed `(node, ready, bytes)` source to
    /// `dst`; returns the time the last part lands.
    pub fn gather(&mut self, parts: &[(usize, Time, u64)], dst: usize) -> Time {
        let mut done = Time::ZERO;
        for &(src, ready, bytes) in parts {
            done = done.max(self.transfer(ready, src, dst, bytes));
        }
        done
    }

    /// Broadcasts `bytes` from `src` to every other node (the A9 serializes
    /// the sends on its NIC); returns the time the last copy lands.
    pub fn broadcast(&mut self, now: Time, src: usize, bytes: u64) -> Time {
        let mut done = now;
        for dst in 0..self.n_nodes() {
            done = done.max(self.transfer(now, src, dst, bytes));
        }
        done
    }

    /// An all-to-all shuffle: node `s` becomes ready at `ready[s]` and
    /// sends `matrix[s][d]` bytes to node `d`. Sends are issued in
    /// rotation order (`d = s+1, s+2, …`) so no receiver is hammered by
    /// every sender at once. Returns the per-destination completion time
    /// (at least `ready[d]` — a node cannot finish receiving before it
    /// has finished its own local phase).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the node count.
    pub fn all_to_all(&mut self, ready: &[Time], matrix: &[Vec<u64>]) -> Vec<Time> {
        let n = self.n_nodes();
        assert_eq!(ready.len(), n, "ready times per node");
        assert_eq!(matrix.len(), n, "matrix rows per node");
        let mut done: Vec<Time> = ready.to_vec();
        for k in 1..n {
            for s in 0..n {
                let d = (s + k) % n;
                assert_eq!(matrix[s].len(), n, "matrix cols per node");
                let bytes = matrix[s][d];
                if bytes > 0 {
                    let t = self.transfer(ready[s], s, d, bytes);
                    done[d] = done[d].max(t);
                }
            }
        }
        done
    }

    /// Transfers issued since construction or [`reset`](Self::reset).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Payload bytes moved since construction or [`reset`](Self::reset).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Clears all queue occupancy and statistics (between queries).
    pub fn reset(&mut self) {
        for s in self.tx.iter_mut().chain(self.rx.iter_mut()) {
            s.reset();
        }
        self.switch.reset();
        self.transfers = 0;
        self.payload_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, FabricConfig::infiniband())
    }

    #[test]
    fn transfer_pays_wire_time_and_hops() {
        let mut f = fabric(4);
        let t = f.transfer(Time::ZERO, 0, 1, 1 << 20);
        let cfg = f.config();
        // At least the NIC serialization of 1 MiB plus two hops.
        let floor = (1u64 << 20) / cfg.nic_bytes_per_cycle + 2 * cfg.hop_cycles;
        assert!(t.cycles() >= floor, "{} < {floor}", t.cycles());
        // And the payload crossed each resource exactly once.
        assert_eq!(f.transfers(), 1);
        assert_eq!(f.payload_bytes(), 1 << 20);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut f = fabric(4);
        let t = f.transfer(Time::from_cycles(7), 2, 2, 1 << 30);
        assert_eq!(t.cycles(), 7);
        assert_eq!(f.transfers(), 0);
    }

    #[test]
    fn incast_serializes_on_receiver_nic() {
        let mut f = fabric(3);
        let one = f.transfer(Time::ZERO, 1, 0, 1 << 20);
        let two = f.transfer(Time::ZERO, 2, 0, 1 << 20);
        // The second sender's payload queues behind the first at node 0's
        // RX NIC: it must finish roughly one NIC-serialization later.
        let wire = (1u64 << 20) / f.config().nic_bytes_per_cycle;
        assert!(two.cycles() >= one.cycles() + wire - f.config().message_overhead_cycles);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut f = fabric(4);
        let a = f.transfer(Time::ZERO, 0, 1, 1 << 20);
        let b = f.transfer(Time::ZERO, 2, 3, 1 << 20);
        // Different NICs; the shared switch is 32× faster than a NIC, so
        // the two transfers overlap almost entirely.
        assert!(b.cycles() < a.cycles() + a.cycles() / 4);
    }

    #[test]
    fn all_to_all_respects_ready_times_and_counts_bytes() {
        let mut f = fabric(4);
        let ready = vec![Time::from_cycles(1000); 4];
        let matrix: Vec<Vec<u64>> =
            (0..4).map(|s| (0..4).map(|d| if s == d { 0 } else { 4096 }).collect()).collect();
        let done = f.all_to_all(&ready, &matrix);
        for d in &done {
            assert!(d.cycles() > 1000);
        }
        // 12 off-diagonal messages of 4 KiB each.
        assert_eq!(f.transfers(), 12);
        assert_eq!(f.payload_bytes(), 12 * 4096);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut f = fabric(2);
        let busy = f.transfer(Time::ZERO, 0, 1, 1 << 24);
        f.reset();
        let fresh = f.transfer(Time::ZERO, 0, 1, 1 << 10);
        assert!(fresh < busy, "post-reset transfer must not queue");
        assert_eq!(f.payload_bytes(), 1 << 10);
    }

    #[test]
    fn provision_roundtrip_matches_prototype_rates() {
        let rack = dpu_core::rack::Rack::prototype();
        let cfg = FabricConfig::from_provision(&rack.fabric_provision());
        assert_eq!(cfg.nic_bytes_per_cycle, 2);
        assert_eq!(cfg.switch_bytes_per_cycle, 64);
        assert_eq!(cfg.hop_cycles, 1280);
    }
}
