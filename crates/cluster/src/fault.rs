//! Deterministic fault injection for the rack.
//!
//! A [`FaultPlan`] is a *schedule* of failures fixed before the run —
//! crashes, transient NIC degradation, slow-node stragglers — so every
//! simulation under faults is exactly reproducible: the plan is either
//! built explicitly or drawn from a seed, and the same plan always
//! yields the same routing decisions, the same timeouts and the same
//! report bytes. Nothing in the fault path consults a wall clock or an
//! unseeded RNG.
//!
//! The three fault kinds map to what the paper's rack argument (§2, §6)
//! has to survive in practice:
//!
//! - **Crash** — the node stops answering at time *t* (fail-stop). Its
//!   shards must be served by surviving replicas; if a shard has no
//!   surviving replica the query fails with
//!   [`QueryError::ShardUnavailable`](crate::coordinator::QueryError).
//! - **NIC degradation** — the node's Infiniband link runs at a fraction
//!   of its rate over a window (cable flap, error-correction storm).
//!   Modelled in [`Fabric`](crate::fabric::Fabric) by inflating the wire
//!   time of transfers touching the degraded NIC.
//! - **Straggler** — the node computes at a fraction of its speed over a
//!   window (thermal throttling, background compaction). Modelled by the
//!   coordinator inflating the node's local-phase seconds.

use dpu_sim::SplitMix64;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Fail-stop crash of `node` at `at_seconds`.
    Crash {
        /// The failing node.
        node: usize,
        /// Simulation time of the crash, seconds.
        at_seconds: f64,
    },
    /// `node`'s NIC runs at `factor` (< 1) of its bandwidth over
    /// `[from_seconds, until_seconds)`.
    NicDegrade {
        /// The degraded node.
        node: usize,
        /// Window start, seconds.
        from_seconds: f64,
        /// Window end, seconds.
        until_seconds: f64,
        /// Remaining fraction of NIC bandwidth (0 < factor ≤ 1).
        factor: f64,
    },
    /// `node` computes at `factor` (< 1) of its speed over
    /// `[from_seconds, until_seconds)`.
    Straggler {
        /// The slow node.
        node: usize,
        /// Window start, seconds.
        from_seconds: f64,
        /// Window end, seconds.
        until_seconds: f64,
        /// Remaining fraction of compute speed (0 < factor ≤ 1).
        factor: f64,
    },
}

/// A deterministic schedule of faults for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: every node healthy forever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Adds a fail-stop crash of `node` at `at_seconds` (builder style).
    pub fn crash(mut self, node: usize, at_seconds: f64) -> Self {
        self.faults.push(Fault::Crash { node, at_seconds });
        self
    }

    /// Adds a NIC-degradation window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]` or the window is inverted.
    pub fn degrade_nic(mut self, node: usize, from: f64, until: f64, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "NIC factor must be in (0, 1]");
        assert!(from <= until, "inverted degradation window");
        self.faults.push(Fault::NicDegrade {
            node,
            from_seconds: from,
            until_seconds: until,
            factor,
        });
        self
    }

    /// Adds a compute-straggler window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]` or the window is inverted.
    pub fn straggle(mut self, node: usize, from: f64, until: f64, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "straggler factor must be in (0, 1]");
        assert!(from <= until, "inverted straggler window");
        self.faults.push(Fault::Straggler {
            node,
            from_seconds: from,
            until_seconds: until,
            factor,
        });
        self
    }

    /// Draws a random plan from `seed`: each of `n_nodes` nodes suffers a
    /// crash with probability `crash_p` (uniform time in the horizon) and
    /// independently a NIC-degradation and a straggler window with the
    /// same probability. Same seed ⇒ same plan, byte for byte.
    pub fn random(seed: u64, n_nodes: usize, horizon_seconds: f64, crash_p: f64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::none();
        for node in 0..n_nodes {
            if rng.next_f64() < crash_p {
                plan = plan.crash(node, rng.next_f64() * horizon_seconds);
            }
            if rng.next_f64() < crash_p {
                let from = rng.next_f64() * horizon_seconds;
                let len = rng.next_f64() * horizon_seconds * 0.25;
                let factor = 0.1 + 0.8 * rng.next_f64();
                plan = plan.degrade_nic(node, from, from + len, factor);
            }
            if rng.next_f64() < crash_p {
                let from = rng.next_f64() * horizon_seconds;
                let len = rng.next_f64() * horizon_seconds * 0.25;
                let factor = 0.2 + 0.7 * rng.next_f64();
                plan = plan.straggle(node, from, from + len, factor);
            }
        }
        plan
    }

    /// Whether `node` is crashed at time `t` (crashes are permanent until
    /// [`recovered`](Self::recovered) marks the node rebuilt).
    pub fn is_down(&self, node: usize, t_seconds: f64) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Crash { node: n, at_seconds } => n == node && t_seconds >= at_seconds,
            _ => false,
        })
    }

    /// The crash time of `node`, if one is scheduled.
    pub fn crash_time(&self, node: usize) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Crash { node: n, at_seconds } if n == node => Some(at_seconds),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, t| Some(acc.map_or(t, |a| a.min(t))))
    }

    /// Remaining NIC-bandwidth fraction of `node` at time `t` (1.0 when
    /// healthy; the worst overlapping window wins).
    pub fn nic_factor(&self, node: usize, t_seconds: f64) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::NicDegrade { node: n, from_seconds, until_seconds, factor }
                    if n == node && t_seconds >= from_seconds && t_seconds < until_seconds =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .fold(1.0, f64::min)
    }

    /// Remaining compute-speed fraction of `node` at time `t` (1.0 when
    /// healthy; the worst overlapping window wins).
    pub fn compute_factor(&self, node: usize, t_seconds: f64) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Straggler { node: n, from_seconds, until_seconds, factor }
                    if n == node && t_seconds >= from_seconds && t_seconds < until_seconds =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .fold(1.0, f64::min)
    }

    /// Returns the plan with `node`'s crash removed (the node has been
    /// rebuilt and rejoins the ring).
    pub fn recovered(mut self, node: usize) -> Self {
        self.faults.retain(|f| !matches!(*f, Fault::Crash { node: n, .. } if n == node));
        self
    }

    /// Nodes alive at `t`, ascending.
    pub fn live_nodes(&self, n_nodes: usize, t_seconds: f64) -> Vec<usize> {
        (0..n_nodes).filter(|&n| !self.is_down(n, t_seconds)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_is_permanent_from_its_instant() {
        let p = FaultPlan::none().crash(3, 1.5);
        assert!(!p.is_down(3, 1.49));
        assert!(p.is_down(3, 1.5));
        assert!(p.is_down(3, 100.0));
        assert!(!p.is_down(2, 100.0));
        assert_eq!(p.crash_time(3), Some(1.5));
        assert_eq!(p.crash_time(2), None);
    }

    #[test]
    fn windows_gate_their_factors() {
        let p = FaultPlan::none().degrade_nic(1, 2.0, 4.0, 0.25).straggle(1, 3.0, 5.0, 0.5);
        assert_eq!(p.nic_factor(1, 1.9), 1.0);
        assert_eq!(p.nic_factor(1, 2.0), 0.25);
        assert_eq!(p.nic_factor(1, 3.99), 0.25);
        assert_eq!(p.nic_factor(1, 4.0), 1.0);
        assert_eq!(p.compute_factor(1, 3.5), 0.5);
        assert_eq!(p.compute_factor(0, 3.5), 1.0);
    }

    #[test]
    fn overlapping_windows_take_the_worst_factor() {
        let p = FaultPlan::none().degrade_nic(0, 0.0, 10.0, 0.5).degrade_nic(0, 5.0, 6.0, 0.1);
        assert_eq!(p.nic_factor(0, 5.5), 0.1);
        assert_eq!(p.nic_factor(0, 7.0), 0.5);
    }

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(42, 16, 60.0, 0.3);
        let b = FaultPlan::random(42, 16, 60.0, 0.3);
        assert_eq!(a, b, "same seed must give the same plan");
        let c = FaultPlan::random(43, 16, 60.0, 0.3);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn recovery_clears_the_crash_only() {
        let p = FaultPlan::none().crash(2, 1.0).degrade_nic(2, 0.0, 9.0, 0.5);
        let r = p.recovered(2);
        assert!(!r.is_down(2, 5.0));
        assert_eq!(r.nic_factor(2, 5.0), 0.5, "non-crash faults survive recovery");
    }

    #[test]
    fn live_nodes_excludes_the_crashed() {
        let p = FaultPlan::none().crash(1, 0.0).crash(3, 10.0);
        assert_eq!(p.live_nodes(4, 5.0), vec![0, 2, 3]);
        assert_eq!(p.live_nodes(4, 10.0), vec![0, 2]);
    }
}
