//! Planner-chosen distributed execution (ISSUE 6 tentpole).
//!
//! The hand-wired plans in [`coordinator`](crate::coordinator) pair a
//! fixed per-shard local phase with a fixed merge. This module makes both
//! halves data: a [`PhysicalPlan`] carries an arbitrary per-shard
//! [`LogicalPlan`] plus a [`MergeStrategy`], and
//! [`Cluster::run_planned`] executes it through the *same* scheduling,
//! failover, and fabric machinery the hand-wired paths use — so a
//! planner-chosen plan inherits every fault-tolerance property the
//! coordinator already proves, and its results stay bit-identical to the
//! single-node engine under any survivable fault pattern.
//!
//! The merge strategies mirror the placement options the paper's rack
//! design exposes: gather-and-merge at one coordinator (cheap for small
//! partials), or an all-to-all hash shuffle to owner nodes (cheap when
//! partial groups are large and the group key is not the sharding key).
//! Q10 genuinely has both options; the planner costs them against the
//! fabric model and picks.

use dpu_pool::Pool;
use dpu_sql::logical::{Finish, LogicalOutput, LogicalPlan, OpRows};
use dpu_sql::tpch::project_rows;
use dpu_sql::{top_k, Column, GroupBySpec, QueryCost, Table};

use crate::coordinator::{
    merge_cpu_seconds, merge_topk, Cluster, ClusterQueryCost, DistributedQuery, NodeCost,
    QueryError, QueryId, QueryOutput,
};
use crate::shard::{shard_table, ShardPolicy};

/// How per-shard partials combine into the final answer.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeStrategy {
    /// Gather partial aggregates to a coordinator and re-aggregate
    /// (valid whenever the local plan ends in the same group-by).
    Reagg(GroupBySpec),
    /// Gather per-shard top-k candidate lists and merge them under the
    /// engine's total order (valid when the ranked entity lives on
    /// exactly one shard, i.e. its key is co-sharded).
    TopKMerge {
        /// Ranked column.
        value: String,
        /// Keep this many rows.
        k: usize,
        /// Tie-break columns, ascending.
        ties: Vec<String>,
    },
    /// Sum per-shard scalar vectors elementwise (Q6's single revenue,
    /// Q14's promo/total pair). `names` label the shipped partials.
    SumScalars {
        /// Column names of the shipped one-row partial tables.
        names: Vec<String>,
    },
    /// Gather *partial groups* to one coordinator, re-aggregate there,
    /// then take the top-k centrally. Correct for re-keyed aggregations
    /// at any key; cheap only while the partials stay small, since every
    /// byte lands on one RX port.
    GatherTopK {
        /// The grouping the partials carry.
        spec: GroupBySpec,
        /// Ranked column.
        value: String,
        /// Keep this many rows.
        k: usize,
        /// Tie-break columns, ascending.
        ties: Vec<String>,
    },
    /// All-to-all hash shuffle of partial groups to owner nodes, owner
    /// re-aggregation + local top-k, then a candidate gather — the
    /// generalized form of the hand-wired Q10 plan.
    ShuffleTopK {
        /// The column partials are hashed on (the re-keyed group key).
        key: String,
        /// The grouping the partials carry.
        spec: GroupBySpec,
        /// Ranked column.
        value: String,
        /// Keep this many rows.
        k: usize,
        /// Tie-break columns, ascending.
        ties: Vec<String>,
    },
}

impl MergeStrategy {
    /// Stable display name for EXPLAIN output.
    pub fn name(&self) -> &'static str {
        match self {
            MergeStrategy::Reagg(_) => "reagg",
            MergeStrategy::TopKMerge { .. } => "topk-merge",
            MergeStrategy::SumScalars { .. } => "sum-scalars",
            MergeStrategy::GatherTopK { .. } => "gather-topk",
            MergeStrategy::ShuffleTopK { .. } => "shuffle-topk",
        }
    }
}

/// A fully decided distributed plan: what each shard runs locally and
/// how the partials combine.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Which query this plan answers (keys the single-node reference).
    pub id: QueryId,
    /// The per-shard local phase.
    pub local: LogicalPlan,
    /// The merge.
    pub merge: MergeStrategy,
}

/// The result of a planned run, with the per-shard operator traces the
/// adaptive planner feeds back into its cost model.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    /// The distributed result + cost, same shape as the hand-wired path.
    pub query: DistributedQuery,
    /// Per-shard per-operator actual row counts, in shard order.
    pub shard_traces: Vec<Vec<OpRows>>,
    /// Per-shard local-phase costs, in shard order.
    pub local_costs: Vec<QueryCost>,
}

impl Cluster {
    /// Executes a planner-chosen plan at absolute time `start`, through
    /// the same failover-aware scheduling as the hand-wired queries.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_run_at`](Cluster::try_run_at): shard loss
    /// and coordinator loss surface as errors, never as wrong results.
    ///
    /// # Panics
    ///
    /// Panics if the plan's local phase output shape does not match its
    /// merge strategy (e.g. scalar output with a table merge).
    pub fn run_planned(
        &mut self,
        plan: &PhysicalPlan,
        start: f64,
    ) -> Result<PlannedRun, QueryError> {
        let core = self.core().clone();
        let (single_output, single_cost) = self.single_ref(plan.id);
        let scale = core.cfg().scale;
        let locals: Vec<(LogicalOutput, QueryCost, Vec<OpRows>)> = Pool::global()
            .par_map(core.sharded().shards.iter().collect(), |db| {
                plan.local.execute_costed(db, core.xeon(), scale)
            });
        let per_shard: Vec<NodeCost> =
            locals.iter().map(|(_, c, _)| NodeCost::from_dpu(&c.dpu)).collect();
        let shard_traces: Vec<Vec<OpRows>> = locals.iter().map(|(_, _, t)| t.clone()).collect();
        let local_costs: Vec<QueryCost> = locals.iter().map(|(_, c, _)| *c).collect();

        let (output, cost) = match &plan.merge {
            MergeStrategy::Reagg(spec) => {
                let partials = tables(locals);
                let merged = spec.merge_partials(&partials);
                let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
                (QueryOutput::Table(merged), cost)
            }
            MergeStrategy::TopKMerge { value, k, ties } => {
                let partials = tables(locals);
                let tie_refs: Vec<&str> = ties.iter().map(String::as_str).collect();
                let merged = merge_topk(&partials, value, *k, &tie_refs);
                let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
                (QueryOutput::Table(merged), cost)
            }
            MergeStrategy::SumScalars { names } => {
                let shards: Vec<Vec<i64>> = locals
                    .into_iter()
                    .map(|(o, _, _)| match o {
                        LogicalOutput::Scalars(v) => v,
                        LogicalOutput::Table(_) => panic!("table output under scalar merge"),
                    })
                    .collect();
                let partials: Vec<Table> = shards
                    .iter()
                    .map(|vals| {
                        Table::new(
                            names.iter().zip(vals).map(|(n, &v)| Column::i64(n, vec![v])).collect(),
                        )
                    })
                    .collect();
                let totals: Vec<i64> =
                    (0..names.len()).map(|i| shards.iter().map(|v| v[i]).sum()).collect();
                let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
                let out = match totals[..] {
                    [one] => QueryOutput::Scalar(one),
                    [a, b] => QueryOutput::Pair(a, b),
                    _ => panic!("unsupported scalar arity {}", totals.len()),
                };
                (out, cost)
            }
            MergeStrategy::GatherTopK { spec, value, k, ties } => {
                let partials = tables(locals);
                let complete = spec.merge_partials(&partials);
                let top = top_k(&complete, value, (*k).min(complete.rows().max(1)), 32);
                let _ = ties; // the central top_k already imposes the engine's total order
                let merged = project_rows(&complete, &top);
                let cost = self.scatter_gather_cost(per_shard, &partials, start)?;
                (QueryOutput::Table(merged), cost)
            }
            MergeStrategy::ShuffleTopK { key, spec, value, k, ties } => {
                let partials = tables(locals);
                let tie_refs: Vec<&str> = ties.iter().map(String::as_str).collect();
                let (merged, cost) = self
                    .shuffle_topk(&partials, &per_shard, key, spec, value, *k, &tie_refs, start)?;
                (QueryOutput::Table(merged), cost)
            }
        };
        Ok(PlannedRun {
            query: DistributedQuery { id: plan.id, output, single_output, cost, single_cost },
            shard_traces,
            local_costs,
        })
    }

    /// The generalized two-phase re-keyed aggregation: partials hashed on
    /// `key` all-to-all to owner nodes (live at shuffle time), owner
    /// re-aggregation + local top-k candidates, candidate gather, final
    /// merge. Structure and failover routing are identical to the
    /// hand-wired Q10 plan; only the key/spec/k are parameters.
    #[allow(clippy::too_many_arguments)]
    fn shuffle_topk(
        &mut self,
        partials: &[Table],
        per_shard: &[NodeCost],
        key: &str,
        spec: &GroupBySpec,
        value: &str,
        k: usize,
        ties: &[&str],
        start: f64,
    ) -> Result<(Table, ClusterQueryCost), QueryError> {
        let n = self.core().sharded().n_nodes();
        let faults = self.faults().clone();
        let timeout = self.fabric.failover_timeout_seconds();

        // Phase 1: schedule the already-computed local phases.
        self.fabric.reset();
        let (runs, per_node, mut failovers, speculations) =
            self.schedule_local(per_shard, start)?;
        let local_end = runs.iter().map(|r| r.done_seconds).fold(start, f64::max);

        // Phase 2: all-to-all reshuffle to owners live at shuffle time.
        let live = faults.live_nodes(n, local_end);
        if live.is_empty() {
            return Err(QueryError::NoLiveNodes);
        }
        let owner_policy = ShardPolicy::hash(live.len());
        let chunks: Vec<Vec<Table>> = Pool::global()
            .par_map(partials.iter().collect(), |p| shard_table(p, key, &owner_policy));
        let mut matrix = vec![vec![0u64; n]; n];
        let mut ready = vec![self.fabric.at_seconds(local_end); n];
        for run in &runs {
            ready[run.node] = self.fabric.at_seconds(run.done_seconds);
        }
        for (s, row) in chunks.iter().enumerate() {
            for (j, chunk) in row.iter().enumerate() {
                matrix[runs[s].node][live[j]] += chunk.bytes();
            }
        }
        let shuffled = self.fabric.all_to_all(&ready, &matrix);

        // Phase 3: owners re-aggregate their complete groups and pick
        // local top-k candidates, failing over ring-wise on crashes.
        let owner_cands: Vec<(usize, Table)> =
            Pool::global().par_map((0..live.len()).collect(), |j| {
                let received: Vec<Table> = chunks.iter().map(|row| row[j].clone()).collect();
                let rows_in: usize = received.iter().map(Table::rows).sum();
                let complete = spec.merge_partials(&received);
                let top = top_k(&complete, value, k.min(complete.rows().max(1)), 32);
                (rows_in, project_rows(&complete, &top))
            });
        let mut candidates = Vec::with_capacity(live.len());
        let mut cand_parts = Vec::with_capacity(live.len());
        for ((j, &owner), (rows_in, cand)) in live.iter().enumerate().zip(owner_cands) {
            let mut host = owner;
            let mut done_s = self.fabric.seconds(shuffled[owner])
                + merge_cpu_seconds(rows_in) / faults.compute_factor(owner, local_end);
            for _ in 0..=n {
                match faults.crash_time(host) {
                    Some(tc) if tc < done_s => {
                        failovers += 1;
                        let t_retry = tc + timeout;
                        let Some(next) = (0..n)
                            .map(|d| (host + 1 + d) % n)
                            .find(|&v| !faults.is_down(v, t_retry))
                        else {
                            return Err(QueryError::NoLiveNodes);
                        };
                        let mut landed = self.fabric.at_seconds(t_retry);
                        for (s, row) in chunks.iter().enumerate() {
                            if row[j].bytes() == 0 {
                                continue;
                            }
                            let (src, src_ready) =
                                self.partial_source(s, t_retry, &runs, per_shard, next)?;
                            landed = landed.max(self.fabric.transfer(
                                self.fabric.at_seconds(src_ready),
                                src,
                                next,
                                row[j].bytes(),
                            ));
                        }
                        host = next;
                        done_s = self.fabric.seconds(landed)
                            + merge_cpu_seconds(rows_in) / faults.compute_factor(next, t_retry);
                    }
                    _ => break,
                }
            }
            cand_parts.push((host, self.fabric.at_seconds(done_s), cand.bytes()));
            candidates.push(cand);
        }

        // Phase 4: gather candidates; final merge at the coordinator
        // (hop-weighted destination choice, same as the hand-wired plan).
        let cand_sources: Vec<(usize, u64)> =
            cand_parts.iter().map(|&(host, _, b)| (host, b)).collect();
        let Some(dst) = self.gather_destination(&cand_sources, local_end) else {
            return Err(QueryError::NoLiveNodes);
        };
        let done = self.fabric.gather(&cand_parts, dst);
        let merged = merge_topk(&candidates, value, k, ties);
        let end = self.fabric.seconds(done).max(local_end);
        let cand_rows: usize = candidates.iter().map(Table::rows).sum();
        let cost = ClusterQueryCost {
            per_node,
            local_seconds: local_end - start,
            fabric_seconds: end - local_end,
            merge_seconds: merge_cpu_seconds(cand_rows),
            fabric_bytes: self.fabric.payload_bytes(),
            failovers,
            speculations,
        };
        Ok((merged, cost))
    }
}

fn tables(locals: Vec<(LogicalOutput, QueryCost, Vec<OpRows>)>) -> Vec<Table> {
    locals
        .into_iter()
        .map(|(o, _, _)| match o {
            LogicalOutput::Table(t) => t,
            LogicalOutput::Scalars(_) => panic!("scalar output under table merge"),
        })
        .collect()
}

/// The physical plan matching each hand-wired query exactly: same local
/// pipeline, same merge. The planner's `off`/baseline mode and the
/// bit-identity tests both anchor on these.
pub fn handwired_physical(id: QueryId) -> PhysicalPlan {
    use dpu_sql::logical::{
        q10_partial_plan, q12_plan, q14_plan, q18_plan, q1_plan, q3_plan, q5_plan, q6_plan,
    };
    let (local, merge) = match id {
        QueryId::Q1 => {
            let p = q1_plan();
            let Finish::Agg(spec) = p.finish.clone() else { unreachable!() };
            (p, MergeStrategy::Reagg(spec))
        }
        QueryId::Q3 => (
            q3_plan(),
            MergeStrategy::TopKMerge {
                value: "revenue".into(),
                k: 10,
                ties: vec!["l_orderkey".into(), "o_orderdate".into()],
            },
        ),
        QueryId::Q5 => {
            let p = q5_plan();
            let Finish::Agg(spec) = p.finish.clone() else { unreachable!() };
            (p, MergeStrategy::Reagg(spec))
        }
        QueryId::Q6 => (q6_plan(), MergeStrategy::SumScalars { names: vec!["revenue".into()] }),
        QueryId::Q10 => {
            let p = q10_partial_plan();
            let Finish::Agg(spec) = p.finish.clone() else { unreachable!() };
            (
                p,
                MergeStrategy::ShuffleTopK {
                    key: "o_custkey".into(),
                    spec,
                    value: "revenue".into(),
                    k: 20,
                    ties: vec!["o_custkey".into()],
                },
            )
        }
        QueryId::Q12 => {
            let p = q12_plan();
            let Finish::Agg(spec) = p.finish.clone() else { unreachable!() };
            (p, MergeStrategy::Reagg(spec))
        }
        QueryId::Q14 => {
            (q14_plan(), MergeStrategy::SumScalars { names: vec!["promo".into(), "total".into()] })
        }
        QueryId::Q18 => (
            q18_plan(),
            MergeStrategy::TopKMerge {
                value: "o_totalprice".into(),
                k: 100,
                ties: vec!["o_orderkey".into()],
            },
        ),
    };
    PhysicalPlan { id, local, merge }
}

/// Q10 with the gather-everything placement — the alternative the
/// planner weighs against [`handwired_physical`]'s shuffle.
pub fn q10_gather_physical() -> PhysicalPlan {
    let p = dpu_sql::logical::q10_partial_plan();
    let Finish::Agg(spec) = p.finish.clone() else { unreachable!() };
    PhysicalPlan {
        id: QueryId::Q10,
        local: p,
        merge: MergeStrategy::GatherTopK {
            spec,
            value: "revenue".into(),
            k: 20,
            ties: vec!["o_custkey".into()],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::ClusterConfig;
    use crate::fault::FaultPlan;
    use dpu_sql::tpch::generate;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(
            generate(1200, 42),
            &ShardPolicy::hash(n),
            ClusterConfig::prototype_slice(n, 10_000),
        )
    }

    #[test]
    fn planned_runs_match_hand_wired_and_single_node() {
        let mut c = cluster(8);
        for id in QueryId::ALL {
            let hand = c.run(id);
            let planned = c.run_planned(&handwired_physical(id), 0.0).unwrap();
            assert_eq!(planned.query.output, hand.output, "{id:?} planned ≠ hand-wired");
            assert!(planned.query.matches_single(), "{id:?} planned ≠ single-node");
            assert!(!planned.shard_traces.is_empty());
            assert_eq!(planned.local_costs.len(), 8);
        }
    }

    #[test]
    fn q10_gather_placement_is_bit_identical_to_shuffle() {
        let mut c = cluster(8);
        let shuffle = c.run_planned(&handwired_physical(QueryId::Q10), 0.0).unwrap();
        let gather = c.run_planned(&q10_gather_physical(), 0.0).unwrap();
        assert_eq!(shuffle.query.output, gather.query.output);
        assert!(gather.query.matches_single());
        // The placements cost differently — that is the planner's choice.
        assert_ne!(
            shuffle.query.cost.fabric_bytes, gather.query.cost.fabric_bytes,
            "shuffle and gather should move different byte volumes"
        );
    }

    #[test]
    fn planned_runs_survive_faults_bit_identically() {
        let mut healthy = cluster(8);
        let mut faulty = Cluster::new(
            generate(1200, 42),
            &ShardPolicy::hash(8),
            ClusterConfig::prototype_slice(8, 10_000).with_replicas(2),
        );
        faulty.set_faults(FaultPlan::none().crash(3, 1e-7).straggle(5, 0.0, 1e9, 0.5));
        for id in QueryId::ALL {
            for plan in [handwired_physical(id)]
                .into_iter()
                .chain((id == QueryId::Q10).then(q10_gather_physical))
            {
                let h = healthy.run_planned(&plan, 0.0).unwrap();
                let f = faulty.run_planned(&plan, 0.0).unwrap();
                assert_eq!(h.query.output, f.query.output, "{id:?} diverged under faults");
                assert!(f.query.matches_single());
            }
        }
    }
}
