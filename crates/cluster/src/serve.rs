//! Concurrent serving pipeline for the cluster.
//!
//! The rack is a serving system, not a batch machine: many clients
//! submit TPC-H queries concurrently, the coordinator batches
//! same-template queries (a batch shares each node's shard scan — see
//! [`ClusterQueryCost::batch_seconds`]), and an admission queue bounds
//! in-flight work. Since PR 3 the loop is an event-driven pipeline with
//! up to [`ServeConfig::concurrency`] queries in flight at once, each
//! charged for fabric use against shared per-NIC/switch bandwidth
//! servers ([`ServeFabric`]) so shuffle-heavy plans interfere
//! realistically, and an optional [`AdaptiveBatch`] controller that
//! deepens batches as the admission queue grows and sheds depth when the
//! observed p99 approaches a latency SLO. With `concurrency = 1`, no
//! SLO and the controller off, the pipeline reproduces the original
//! scalar serving loop event for event (pinned by a regression test).
//!
//! [`serve_with_faults`] additionally applies a [`DegradedWindow`] — the
//! period between a node crash and the end of its recovery, during which
//! surviving replicas absorb the dead node's shards and every batch runs
//! slower — and reports QPS before, during, and after the window so the
//! dip and the post-recovery return to steady state are measurable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use dpu_sim::SplitMix64;
use xeon_model::XeonRack;

use crate::coordinator::ClusterQueryCost;
use crate::fabric::{FabricConfig, ServeFabric};

/// One query template the clients draw from.
#[derive(Debug, Clone)]
pub struct Template {
    /// Display name ("Q1", …).
    pub name: &'static str,
    /// The cluster cost of one execution (batching derives from it).
    pub cost: ClusterQueryCost,
    /// The per-socket Xeon time for the same query, seconds.
    pub xeon_seconds: f64,
}

/// A period of degraded service: from a node's crash until its recovery
/// completes, every batch dispatched inside the window runs slower by
/// `cost_factor` (survivors serve the dead node's shards on top of their
/// own, and re-replication traffic competes for the fabric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedWindow {
    /// Window start (the crash), seconds.
    pub from_seconds: f64,
    /// Window end (recovery complete), seconds.
    pub until_seconds: f64,
    /// Batch-time multiplier inside the window (≥ 1).
    pub cost_factor: f64,
}

/// Serving-loop parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Mean exponential think time between a client's queries, seconds.
    pub think_seconds: f64,
    /// Maximum same-template queries merged into one batch (the hard cap
    /// when the adaptive controller is on).
    pub max_batch: usize,
    /// Admission-queue capacity; arrivals beyond it are rejected and the
    /// client backs off one think time.
    pub admit_cap: usize,
    /// Simulated horizon, seconds.
    pub duration_seconds: f64,
    /// RNG seed (the loop is fully deterministic given the seed).
    pub seed: u64,
    /// Batches in flight at once (independent coordinators sharing the
    /// fabric). 1 reproduces the original scalar serving loop.
    pub concurrency: usize,
    /// Replace the fixed `max_batch` with the [`AdaptiveBatch`]
    /// controller (capped by `max_batch`).
    pub adaptive: bool,
    /// Latency SLO, seconds: completions at or under it count toward
    /// [`ServeReport::slo_attainment`], and the adaptive controller sheds
    /// batch depth as observed p99 approaches it.
    pub slo_seconds: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            clients: 32,
            think_seconds: 0.2,
            max_batch: 8,
            admit_cap: 64,
            duration_seconds: 60.0,
            seed: 2026,
            concurrency: 1,
            adaptive: false,
            slo_seconds: None,
        }
    }
}

/// What the serving loop measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Queries completed inside the horizon.
    pub completed: u64,
    /// Arrival events admitted into the queue.
    pub admitted: u64,
    /// Arrival events rejected by admission control.
    pub rejected: u64,
    /// Admitted queries still queued or in flight when the horizon
    /// closed (`admitted = completed + backlog`).
    pub backlog: u64,
    /// Completed queries per second.
    pub qps: f64,
    /// Mean end-to-end latency (queueing + batch execution), seconds.
    pub mean_latency: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// Fraction of completed queries at or under the SLO (1.0 when no
    /// SLO was configured).
    pub slo_attainment: f64,
    /// Mean per-query fabric phase under sharing, seconds (equals the
    /// isolated mean when no shared fabric was attached).
    pub mean_fabric_seconds: f64,
    /// Mean per-query fabric phase each template would cost in
    /// isolation, seconds.
    pub mean_fabric_isolated_seconds: f64,
    /// QPS over completions before the degraded window (equals `qps`
    /// when no window was applied).
    pub qps_pre_fault: f64,
    /// QPS inside the degraded window (0 when no window was applied).
    pub qps_during_fault: f64,
    /// QPS after the degraded window closes (0 when no window was
    /// applied or the window reaches the horizon).
    pub qps_post_fault: f64,
    /// Provisioned cluster power, watts.
    pub cluster_watts: f64,
    /// The Xeon rack's QPS on the same template mix.
    pub xeon_qps: f64,
    /// The Xeon rack's provisioned power, watts.
    pub xeon_watts: f64,
    /// (cluster QPS/W) / (Xeon rack QPS/W).
    pub perf_per_watt_gain: f64,
}

/// The adaptive batch-depth controller: deepen while the SLO has
/// headroom or the admission queue is growing, shed multiplicatively
/// when the observed p99 approaches the SLO.
///
/// The law, applied on every batch completion:
///
/// - with an SLO `S`: estimate p99 over a sliding window of recent
///   latencies; if `p99 > SHED_HEADROOM × S` **and** the admission
///   queue is no longer than the allowed depth (so the batch's own
///   execution, not queueing, is what drives latency), multiply the
///   allowed depth by [`SHED_FACTOR`] (floor 1); otherwise add
///   [`DEEPEN_STEP`] (cap `max_batch`). Shedding while a queue has
///   formed would cut service capacity exactly when it is short —
///   growing the queue is deepening's job;
/// - with no SLO: the allowed depth is simply the cap (pure elastic
///   batching — as deep as the backlog allows).
///
/// At dispatch, the batch takes `min(allowed, queue length, cap)`, with
/// one override: when the queue has grown past
/// [`QUEUE_PRESSURE`]` × cap`, latency is dominated by queueing, not by
/// batch execution, so the controller deepens straight to the cap —
/// shallow batches at that point would only starve throughput and grow
/// the queue further. Either way the depth can never exceed the
/// admission queue's current length or the configured cap
/// (property-tested).
#[derive(Debug, Clone)]
pub struct AdaptiveBatch {
    cap: usize,
    slo: Option<f64>,
    allowed: f64,
    window: VecDeque<f64>,
}

/// Shed when the windowed p99 exceeds this fraction of the SLO.
pub const SHED_HEADROOM: f64 = 0.9;
/// Multiplicative decrease applied to the allowed depth on a shed.
pub const SHED_FACTOR: f64 = 0.7;
/// Additive increase applied to the allowed depth per completion with
/// SLO headroom.
pub const DEEPEN_STEP: f64 = 0.5;
/// Latency samples kept for the windowed p99 estimate.
pub const WINDOW_LEN: usize = 64;
/// Queue length, in multiples of the cap, past which the controller
/// batches at full depth regardless of the SLO estimate.
pub const QUEUE_PRESSURE: usize = 2;

impl AdaptiveBatch {
    /// A controller capped at `cap`, shedding against `slo` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero or the SLO is not positive.
    pub fn new(cap: usize, slo: Option<f64>) -> Self {
        assert!(cap > 0, "batch cap must be positive");
        if let Some(s) = slo {
            assert!(s > 0.0, "SLO must be positive");
        }
        AdaptiveBatch { cap, slo, allowed: 1.0, window: VecDeque::new() }
    }

    /// The depth the next batch may take given the admission queue's
    /// current length: never more than `queue_len`, never more than the
    /// cap, never less than 1.
    pub fn depth(&self, queue_len: usize) -> usize {
        let allowed = match self.slo {
            _ if queue_len >= QUEUE_PRESSURE * self.cap => self.cap,
            Some(_) => self.allowed as usize,
            None => self.cap,
        };
        allowed.min(queue_len).min(self.cap).max(1)
    }

    /// Feeds one completed query's latency back into the control law,
    /// along with the admission queue's length at completion time.
    pub fn observe(&mut self, latency_seconds: f64, queue_len: usize) {
        self.window.push_back(latency_seconds);
        if self.window.len() > WINDOW_LEN {
            self.window.pop_front();
        }
        let Some(slo) = self.slo else { return };
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let i = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let p99 = sorted[i - 1];
        if p99 > SHED_HEADROOM * slo && queue_len as f64 <= self.allowed {
            self.allowed = (self.allowed * SHED_FACTOR).max(1.0);
        } else {
            self.allowed = (self.allowed + DEEPEN_STEP).min(self.cap as f64);
        }
    }

    /// The current allowed depth (before queue/cap clamping).
    pub fn allowed(&self) -> f64 {
        self.allowed
    }
}

/// f64 with a total order, for the event heap (shared with the
/// open-loop multi-tenant loop in [`crate::tenant`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Runs the closed-loop serving simulation over `templates` (uniform
/// template mix) on a healthy cluster drawing `cluster_watts`, comparing
/// against `xeon_rack` serving the same mix one query per socket.
///
/// # Panics
///
/// Panics if `templates` is empty or the config is degenerate (zero
/// clients, zero duration, zero concurrency).
pub fn serve(
    templates: &[Template],
    cluster_watts: f64,
    xeon_rack: &XeonRack,
    cfg: &ServeConfig,
) -> ServeReport {
    serve_pipeline(templates, cluster_watts, xeon_rack, cfg, None, None)
}

/// [`serve`], with batches dispatched inside `window` slowed by its
/// `cost_factor` — the coarse serving-level view of a crash + recovery.
///
/// # Panics
///
/// Panics like [`serve`], or if the window is inverted or its factor is
/// below 1.
pub fn serve_with_faults(
    templates: &[Template],
    cluster_watts: f64,
    xeon_rack: &XeonRack,
    cfg: &ServeConfig,
    window: Option<&DegradedWindow>,
) -> ServeReport {
    serve_pipeline(templates, cluster_watts, xeon_rack, cfg, window, None)
}

/// Event kinds: client arrivals carry small ids; a batch completion on
/// server `i` is encoded as `COMPLETE_BASE + i`.
const COMPLETE_BASE: usize = usize::MAX / 2;

/// A dispatcher-side observer that can substitute the cost a template is
/// served with — the planner's insertion point for adaptive
/// re-optimization. The serving loop consults it at every dispatch and
/// reports every batch completion back, so an implementation can start
/// from the plan its estimates favored, watch actual runtimes, and swap
/// in a cheaper plan mid-run (optd-style). Returning `None` from
/// [`template_cost`](Self::template_cost) leaves the static
/// [`Template::cost`] in force, reproducing the unhooked pipeline
/// event for event.
pub trait ServeHook {
    /// The cost to serve template `tmpl` with for a batch dispatched at
    /// `now` (`None` = the template's static cost).
    fn template_cost(&mut self, tmpl: usize, now: f64) -> Option<ClusterQueryCost>;

    /// One batch of `k` queries of `tmpl` finished; `exec_seconds` is its
    /// dispatch-to-completion time and `done` the absolute finish time.
    fn on_batch(&mut self, tmpl: usize, k: usize, exec_seconds: f64, done: f64);
}

/// The full concurrent pipeline: [`serve_with_faults`] plus an optional
/// shared fabric `(rates, node count)` against which every in-flight
/// batch's fabric phase is charged, so concurrent shuffle-heavy queries
/// interfere instead of being costed in isolation.
///
/// # Panics
///
/// Panics like [`serve_with_faults`].
pub fn serve_pipeline(
    templates: &[Template],
    cluster_watts: f64,
    xeon_rack: &XeonRack,
    cfg: &ServeConfig,
    window: Option<&DegradedWindow>,
    fabric: Option<(&FabricConfig, usize)>,
) -> ServeReport {
    serve_pipeline_hooked(templates, cluster_watts, xeon_rack, cfg, window, fabric, None)
}

/// [`serve_pipeline`] with an optional [`ServeHook`] consulted at every
/// dispatch and notified of every completion. With `hook = None` (or a
/// hook that always returns `None`) the run is event-for-event identical
/// to the unhooked pipeline.
///
/// # Panics
///
/// Panics like [`serve_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn serve_pipeline_hooked(
    templates: &[Template],
    cluster_watts: f64,
    xeon_rack: &XeonRack,
    cfg: &ServeConfig,
    window: Option<&DegradedWindow>,
    fabric: Option<(&FabricConfig, usize)>,
    mut hook: Option<&mut dyn ServeHook>,
) -> ServeReport {
    assert!(!templates.is_empty(), "need at least one template");
    assert!(cfg.clients > 0 && cfg.duration_seconds > 0.0, "degenerate config");
    assert!(cfg.max_batch > 0 && cfg.admit_cap > 0, "degenerate config");
    assert!(cfg.concurrency > 0, "need at least one server");
    if let Some(w) = window {
        assert!(w.from_seconds <= w.until_seconds, "inverted degraded window");
        assert!(w.cost_factor >= 1.0, "a degraded window cannot speed the cluster up");
    }

    let mut rng = SplitMix64::new(cfg.seed);
    let mut uniform = move || rng.next_f64();
    let think = {
        let mean = cfg.think_seconds;
        move |u: f64| if mean > 0.0 { -(1.0 - u).ln() * mean } else { 0.0 }
    };

    // Event heap: (time, seq, kind). seq keeps ordering deterministic for
    // simultaneous events.
    let mut events: BinaryHeap<Reverse<(OrdF64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for c in 0..cfg.clients {
        let u = uniform();
        events.push(Reverse((OrdF64(think(u)), seq, c)));
        seq += 1;
    }

    let n_srv = cfg.concurrency;
    let mut queue: VecDeque<(f64, usize)> = VecDeque::new(); // (arrival, template)
    let mut server_free_at = vec![0.0f64; n_srv];
    let mut server_busy = vec![false; n_srv];
    // Latencies of each server's in-flight batch, fed to the controller
    // when its completion event fires (the controller only ever sees
    // completions from its past).
    let mut server_pending: Vec<Vec<f64>> = vec![Vec::new(); n_srv];
    let mut controller = cfg.adaptive.then(|| AdaptiveBatch::new(cfg.max_batch, cfg.slo_seconds));
    let mut shared = fabric.map(|(fc, n)| ServeFabric::new(n, fc.clone()));

    let mut latencies: Vec<f64> = Vec::new();
    let mut done_times: Vec<f64> = Vec::new();
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut batches = 0u64;
    let mut fabric_sum = 0.0f64; // per-query fabric seconds, shared
    let mut fabric_iso_sum = 0.0f64; // per-query fabric seconds, isolated
    let mut last_now = f64::NEG_INFINITY;

    while let Some(Reverse((OrdF64(now), _, kind))) = events.pop() {
        debug_assert!(now >= last_now, "simulated clock ran backwards: {now} < {last_now}");
        last_now = now;
        if now > cfg.duration_seconds {
            break;
        }
        if kind < COMPLETE_BASE {
            // A client arrival: pick a template, try to enter the queue.
            let t = (uniform() * templates.len() as f64) as usize % templates.len();
            if queue.len() >= cfg.admit_cap {
                rejected += 1;
                let u = uniform();
                // A full queue implies every server is busy (dispatch
                // drains whenever one is idle), so retrying no earlier
                // than the next completion event keeps the clock
                // advancing even with zero think time.
                let next_done = server_free_at
                    .iter()
                    .zip(&server_busy)
                    .filter(|&(_, &b)| b)
                    .map(|(&f, _)| f)
                    .fold(f64::INFINITY, f64::min);
                let floor = if next_done.is_finite() { next_done } else { now };
                let retry = (now + think(u)).max(floor);
                events.push(Reverse((OrdF64(retry), seq, kind)));
                seq += 1;
                continue;
            }
            // The client now waits for completion (closed loop); its next
            // arrival is scheduled at dispatch below.
            admitted += 1;
            queue.push_back((now, t));
        } else {
            let s = kind - COMPLETE_BASE;
            server_busy[s] = false;
            if let Some(ctl) = &mut controller {
                for &l in &server_pending[s] {
                    ctl.observe(l, queue.len());
                }
            }
            server_pending[s].clear();
        }

        // Dispatch while a server is idle and work is queued.
        while let Some(srv) = (0..n_srv).find(|&i| !server_busy[i]) {
            let Some(&(_, tmpl)) = queue.front() else { break };
            let cap = controller.as_ref().map_or(cfg.max_batch, |c| c.depth(queue.len()));
            // Collect up to `cap` same-template queries (FIFO scan).
            let mut batch: Vec<(f64, usize)> = Vec::new();
            let mut rest: VecDeque<(f64, usize)> = VecDeque::new();
            while let Some((arr, t)) = queue.pop_front() {
                if t == tmpl && batch.len() < cap {
                    batch.push((arr, t));
                } else {
                    rest.push_back((arr, t));
                }
            }
            queue = rest;
            let start = server_free_at[srv].max(now);
            let factor = match window {
                Some(w) if start >= w.from_seconds && start < w.until_seconds => w.cost_factor,
                _ => 1.0,
            };
            let k = batch.len();
            let hooked_cost = hook.as_deref_mut().and_then(|h| h.template_cost(tmpl, now));
            let cost = hooked_cost.as_ref().unwrap_or(&templates[tmpl].cost);
            let iso_fabric = cost.fabric_seconds;
            let done = match &mut shared {
                Some(sf) => {
                    // Decomposed path: local phase, then the fabric phase
                    // charged against the shared servers (a batch repeats
                    // its per-query fabric k times), then the merges. The
                    // degraded-window factor covers the compute phases;
                    // the fabric runs at its own (shared) rate.
                    let local_end = start + factor * cost.batch_local_seconds(k);
                    let fab =
                        sf.charge(local_end, k as u64 * cost.fabric_bytes, k as f64 * iso_fabric);
                    fabric_sum += fab;
                    local_end + fab + factor * k as f64 * cost.merge_seconds
                }
                None => {
                    fabric_sum += k as f64 * iso_fabric;
                    start + factor * cost.batch_seconds(k)
                }
            };
            fabric_iso_sum += k as f64 * iso_fabric;
            if let Some(h) = hook.as_deref_mut() {
                h.on_batch(tmpl, k, done - start, done);
            }
            server_free_at[srv] = done;
            server_busy[srv] = true;
            batches += 1;
            for &(arr, _) in &batch {
                latencies.push(done - arr);
                done_times.push(done);
                server_pending[srv].push(done - arr);
                // The issuing client thinks, then comes back.
                let u = uniform();
                events.push(Reverse((OrdF64(done + think(u)), seq, 0)));
                seq += 1;
            }
            events.push(Reverse((OrdF64(done), seq, COMPLETE_BASE + srv)));
            seq += 1;
        }
    }

    let completed = latencies.len() as u64;
    // A dispatched query's completion is recorded at dispatch (its
    // finish time is already decided), so the backlog is exactly what
    // was admitted but still sat in the queue at the horizon.
    let backlog = queue.len() as u64;
    debug_assert_eq!(admitted, completed + backlog, "admission counters must conserve");
    let slo_attainment = match cfg.slo_seconds {
        Some(slo) if completed > 0 => {
            latencies.iter().filter(|&&l| l <= slo).count() as f64 / completed as f64
        }
        _ => 1.0,
    };
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let i = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[i - 1]
    };
    let mean_latency = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    // Bucket completions around the degraded window (whole horizon =
    // "pre" when no window was applied).
    let (w_from, w_until) = window
        .map(|w| {
            (w.from_seconds.min(cfg.duration_seconds), w.until_seconds.min(cfg.duration_seconds))
        })
        .unwrap_or((cfg.duration_seconds, cfg.duration_seconds));
    let bucket_qps = |lo: f64, hi: f64| -> f64 {
        if hi <= lo {
            return 0.0;
        }
        done_times.iter().filter(|&&d| d >= lo && d < hi).count() as f64 / (hi - lo)
    };
    let qps_pre_fault = bucket_qps(0.0, w_from);
    let qps_during_fault = bucket_qps(w_from, w_until);
    let qps_post_fault = bucket_qps(w_until, cfg.duration_seconds);

    let mean_xeon = templates.iter().map(|t| t.xeon_seconds).sum::<f64>() / templates.len() as f64;
    let xeon_qps = xeon_rack.qps(mean_xeon);
    let xeon_watts = xeon_rack.rack_watts();
    let qps = completed as f64 / cfg.duration_seconds;
    let perf_per_watt_gain =
        if qps > 0.0 { (qps / cluster_watts) / (xeon_qps / xeon_watts) } else { 0.0 };

    ServeReport {
        completed,
        admitted,
        rejected,
        backlog,
        qps,
        mean_latency,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        mean_batch: if batches > 0 { completed as f64 / batches as f64 } else { 0.0 },
        slo_attainment,
        mean_fabric_seconds: if completed > 0 { fabric_sum / completed as f64 } else { 0.0 },
        mean_fabric_isolated_seconds: if completed > 0 {
            fabric_iso_sum / completed as f64
        } else {
            0.0
        },
        qps_pre_fault,
        qps_during_fault,
        qps_post_fault,
        cluster_watts,
        xeon_qps,
        xeon_watts,
        perf_per_watt_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::NodeCost;

    fn template(name: &'static str, local: f64, xeon: f64) -> Template {
        Template {
            name,
            cost: ClusterQueryCost {
                per_node: vec![NodeCost { mem_seconds: local, cpu_seconds: local / 4.0 }; 8],
                local_seconds: local,
                fabric_seconds: local / 10.0,
                merge_seconds: local / 100.0,
                fabric_bytes: 1 << 20,
                failovers: 0,
                speculations: 0,
            },
            xeon_seconds: xeon,
        }
    }

    #[test]
    fn serving_completes_queries_deterministically() {
        let templates = vec![template("Q1", 0.010, 0.5), template("Q6", 0.005, 0.3)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig { duration_seconds: 10.0, ..ServeConfig::default() };
        let a = serve(&templates, 8.0 * 11.0, &rack, &cfg);
        let b = serve(&templates, 8.0 * 11.0, &rack, &cfg);
        assert!(a.completed > 0);
        assert_eq!(a.completed, b.completed, "same seed ⇒ same run");
        assert_eq!(a.p99, b.p99);
        assert!(a.p50 <= a.p95 && a.p95 <= a.p99);
        assert!(a.mean_latency > 0.0);
        assert!(a.qps > 0.0);
        // No window: everything lands in the "pre" bucket.
        assert!(a.qps_pre_fault > 0.0);
        assert_eq!(a.qps_during_fault, 0.0);
        assert_eq!(a.qps_post_fault, 0.0);
    }

    #[test]
    fn saturation_triggers_admission_control() {
        // Slow queries + no think time: the queue fills and rejects.
        let templates = vec![template("Q5", 0.5, 2.0)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig {
            clients: 128,
            think_seconds: 0.0,
            admit_cap: 8,
            duration_seconds: 20.0,
            ..ServeConfig::default()
        };
        let r = serve(&templates, 88.0, &rack, &cfg);
        assert!(r.rejected > 0, "an overloaded queue must reject");
        assert!(r.mean_batch > 1.0, "saturation should form batches");
    }

    #[test]
    fn batching_raises_throughput_under_load() {
        let templates = vec![template("Q1", 0.05, 0.5)];
        let rack = XeonRack::rack_42u();
        let base = ServeConfig {
            clients: 64,
            think_seconds: 0.0,
            duration_seconds: 20.0,
            ..ServeConfig::default()
        };
        let unbatched =
            serve(&templates, 88.0, &rack, &ServeConfig { max_batch: 1, ..base.clone() });
        let batched = serve(&templates, 88.0, &rack, &ServeConfig { max_batch: 8, ..base });
        assert!(
            batched.qps > 1.5 * unbatched.qps,
            "batched {} vs unbatched {}",
            batched.qps,
            unbatched.qps
        );
    }

    #[test]
    fn degraded_window_dips_qps_then_recovers_within_5_percent() {
        // Saturated loop so QPS tracks service rate directly: the window
        // must dip throughput while it is open and leave no residue once
        // recovery completes.
        let templates = vec![template("Q1", 0.05, 0.5)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig {
            clients: 64,
            think_seconds: 0.0,
            duration_seconds: 60.0,
            ..ServeConfig::default()
        };
        let window = DegradedWindow { from_seconds: 20.0, until_seconds: 40.0, cost_factor: 3.0 };
        let r = serve_with_faults(&templates, 88.0, &rack, &cfg, Some(&window));
        assert!(
            r.qps_during_fault < 0.6 * r.qps_pre_fault,
            "a 3× slowdown must dip QPS: {} vs {}",
            r.qps_during_fault,
            r.qps_pre_fault
        );
        let ratio = r.qps_post_fault / r.qps_pre_fault;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "post-recovery QPS must return to within 5% of steady state (ratio {ratio})"
        );
    }

    #[test]
    fn degraded_serving_stays_deterministic() {
        let templates = vec![template("Q1", 0.02, 0.5), template("Q6", 0.01, 0.3)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig { duration_seconds: 15.0, ..ServeConfig::default() };
        let w = DegradedWindow { from_seconds: 5.0, until_seconds: 9.0, cost_factor: 2.0 };
        let a = serve_with_faults(&templates, 88.0, &rack, &cfg, Some(&w));
        let b = serve_with_faults(&templates, 88.0, &rack, &cfg, Some(&w));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.qps_during_fault, b.qps_during_fault);
        assert_eq!(a.p99, b.p99);
    }

    #[test]
    fn concurrency_raises_throughput_of_mixed_saturated_load() {
        // Two templates that cannot share batches: with one in-flight
        // slot, they serialize; with two, they overlap.
        let templates = vec![template("Q1", 0.05, 0.5), template("Q5", 0.04, 0.6)];
        let rack = XeonRack::rack_42u();
        let base = ServeConfig {
            clients: 64,
            think_seconds: 0.0,
            duration_seconds: 20.0,
            max_batch: 4,
            ..ServeConfig::default()
        };
        let serial = serve(&templates, 88.0, &rack, &base);
        let two = serve(&templates, 88.0, &rack, &ServeConfig { concurrency: 2, ..base });
        assert!(
            two.qps > 1.3 * serial.qps,
            "2 in-flight batches should overlap: {} vs {}",
            two.qps,
            serial.qps
        );
    }

    #[test]
    fn admission_counters_conserve_arrivals() {
        let templates = vec![template("Q1", 0.03, 0.5), template("Q6", 0.01, 0.3)];
        let rack = XeonRack::rack_42u();
        for concurrency in [1usize, 3] {
            let cfg = ServeConfig {
                clients: 48,
                think_seconds: 0.05,
                duration_seconds: 10.0,
                concurrency,
                ..ServeConfig::default()
            };
            let r = serve(&templates, 88.0, &rack, &cfg);
            assert_eq!(
                r.admitted,
                r.completed + r.backlog,
                "admitted must split into completed + backlog"
            );
        }
    }

    #[test]
    fn adaptive_controller_sheds_under_slo_pressure() {
        let mut ctl = AdaptiveBatch::new(16, Some(1.0));
        for _ in 0..32 {
            ctl.observe(0.1, 0); // far under SLO: deepen
        }
        let deep = ctl.allowed();
        assert!(deep > 8.0, "headroom must deepen the batch (got {deep})");
        for _ in 0..8 {
            ctl.observe(2.0, 0); // p99 blows the SLO, empty queue: shed
        }
        assert!(ctl.allowed() < deep, "SLO pressure must shed depth");
        assert!(ctl.depth(1000) >= 1, "depth never drops below 1");
        // The same pressure with a standing queue must deepen instead:
        // the latency comes from queueing, and shallow batches feed it.
        let shallow = ctl.allowed();
        ctl.observe(2.0, 100);
        assert!(ctl.allowed() > shallow, "queue-dominated latency must deepen");
    }

    #[test]
    fn adaptive_depth_respects_queue_and_cap() {
        let ctl = AdaptiveBatch::new(8, None);
        assert_eq!(ctl.depth(0), 1);
        assert_eq!(ctl.depth(3), 3);
        assert_eq!(ctl.depth(100), 8);
    }

    #[test]
    fn noop_hook_reproduces_the_unhooked_pipeline() {
        struct Spy {
            batches: usize,
        }
        impl ServeHook for Spy {
            fn template_cost(&mut self, _: usize, _: f64) -> Option<ClusterQueryCost> {
                None
            }
            fn on_batch(&mut self, _: usize, _: usize, _: f64, _: f64) {
                self.batches += 1;
            }
        }
        let templates = vec![template("Q1", 0.02, 0.5), template("Q6", 0.01, 0.3)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig { duration_seconds: 10.0, ..ServeConfig::default() };
        let plain = serve(&templates, 88.0, &rack, &cfg);
        let mut spy = Spy { batches: 0 };
        let hooked =
            serve_pipeline_hooked(&templates, 88.0, &rack, &cfg, None, None, Some(&mut spy));
        assert_eq!(plain, hooked, "a pass-through hook must not perturb the run");
        assert!(spy.batches > 0, "the hook must see every completion");
    }

    #[test]
    fn cost_overriding_hook_changes_latency() {
        struct Slow;
        impl ServeHook for Slow {
            fn template_cost(&mut self, _: usize, _: f64) -> Option<ClusterQueryCost> {
                let mut c = template("x", 0.2, 0.5).cost;
                c.merge_seconds = 0.5;
                Some(c)
            }
            fn on_batch(&mut self, _: usize, _: usize, _: f64, _: f64) {}
        }
        let templates = vec![template("Q1", 0.02, 0.5)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig { duration_seconds: 10.0, ..ServeConfig::default() };
        let plain = serve(&templates, 88.0, &rack, &cfg);
        let mut slow = Slow;
        let hooked =
            serve_pipeline_hooked(&templates, 88.0, &rack, &cfg, None, None, Some(&mut slow));
        assert!(
            hooked.mean_latency > plain.mean_latency,
            "serving with a costlier plan must raise latency ({} vs {})",
            hooked.mean_latency,
            plain.mean_latency
        );
    }

    #[test]
    fn shared_fabric_inflates_concurrent_shuffles() {
        // A fabric-heavy template: at concurrency 4 with zero think time
        // the four in-flight batches hit the switch together, so the
        // mean per-query fabric phase must exceed the isolated cost.
        let mut t = template("Q10", 0.02, 0.5);
        t.cost.fabric_bytes = 64 << 20;
        t.cost.fabric_seconds = 0.05;
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig {
            clients: 32,
            think_seconds: 0.0,
            duration_seconds: 10.0,
            max_batch: 4,
            concurrency: 4,
            ..ServeConfig::default()
        };
        let fc = FabricConfig::infiniband();
        let shared = serve_pipeline(&[t.clone()], 88.0, &rack, &cfg, None, Some((&fc, 8)));
        assert!(
            shared.mean_fabric_seconds > shared.mean_fabric_isolated_seconds,
            "concurrent shuffles must contend: shared {} vs isolated {}",
            shared.mean_fabric_seconds,
            shared.mean_fabric_isolated_seconds
        );
        let alone = serve_pipeline(
            &[t],
            88.0,
            &rack,
            &ServeConfig { concurrency: 1, clients: 1, max_batch: 1, ..cfg },
            None,
            Some((&fc, 8)),
        );
        assert!(
            (alone.mean_fabric_seconds - alone.mean_fabric_isolated_seconds).abs() < 1e-12,
            "an uncontended fabric must charge exactly the isolated cost: {} vs {}",
            alone.mean_fabric_seconds,
            alone.mean_fabric_isolated_seconds
        );
    }
}
