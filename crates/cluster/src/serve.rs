//! Closed-loop serving front-end for the cluster.
//!
//! The rack is a serving system, not a batch machine: many clients
//! submit TPC-H queries concurrently, the coordinator batches
//! same-template queries (a batch shares each node's shard scan — see
//! [`ClusterQueryCost::batch_seconds`]), and an admission queue bounds
//! in-flight work. This module simulates that loop deterministically and
//! reports rack QPS, latency percentiles, and performance/watt against a
//! multi-socket Xeon rack serving the same mix.
//!
//! [`serve_with_faults`] additionally applies a [`DegradedWindow`] — the
//! period between a node crash and the end of its recovery, during which
//! surviving replicas absorb the dead node's shards and every batch runs
//! slower — and reports QPS before, during, and after the window so the
//! dip and the post-recovery return to steady state are measurable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use dpu_sim::SplitMix64;
use xeon_model::XeonRack;

use crate::coordinator::ClusterQueryCost;

/// One query template the clients draw from.
#[derive(Debug, Clone)]
pub struct Template {
    /// Display name ("Q1", …).
    pub name: &'static str,
    /// The cluster cost of one execution (batching derives from it).
    pub cost: ClusterQueryCost,
    /// The per-socket Xeon time for the same query, seconds.
    pub xeon_seconds: f64,
}

/// A period of degraded service: from a node's crash until its recovery
/// completes, every batch dispatched inside the window runs slower by
/// `cost_factor` (survivors serve the dead node's shards on top of their
/// own, and re-replication traffic competes for the fabric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedWindow {
    /// Window start (the crash), seconds.
    pub from_seconds: f64,
    /// Window end (recovery complete), seconds.
    pub until_seconds: f64,
    /// Batch-time multiplier inside the window (≥ 1).
    pub cost_factor: f64,
}

/// Serving-loop parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Mean exponential think time between a client's queries, seconds.
    pub think_seconds: f64,
    /// Maximum same-template queries merged into one batch.
    pub max_batch: usize,
    /// Admission-queue capacity; arrivals beyond it are rejected and the
    /// client backs off one think time.
    pub admit_cap: usize,
    /// Simulated horizon, seconds.
    pub duration_seconds: f64,
    /// RNG seed (the loop is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            clients: 32,
            think_seconds: 0.2,
            max_batch: 8,
            admit_cap: 64,
            duration_seconds: 60.0,
            seed: 2026,
        }
    }
}

/// What the serving loop measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Queries completed inside the horizon.
    pub completed: u64,
    /// Arrivals rejected by admission control.
    pub rejected: u64,
    /// Completed queries per second.
    pub qps: f64,
    /// Mean end-to-end latency (queueing + batch execution), seconds.
    pub mean_latency: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// QPS over completions before the degraded window (equals `qps`
    /// when no window was applied).
    pub qps_pre_fault: f64,
    /// QPS inside the degraded window (0 when no window was applied).
    pub qps_during_fault: f64,
    /// QPS after the degraded window closes (0 when no window was
    /// applied or the window reaches the horizon).
    pub qps_post_fault: f64,
    /// Provisioned cluster power, watts.
    pub cluster_watts: f64,
    /// The Xeon rack's QPS on the same template mix.
    pub xeon_qps: f64,
    /// The Xeon rack's provisioned power, watts.
    pub xeon_watts: f64,
    /// (cluster QPS/W) / (Xeon rack QPS/W).
    pub perf_per_watt_gain: f64,
}

/// f64 with a total order, for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Runs the closed-loop serving simulation over `templates` (uniform
/// template mix) on a healthy cluster drawing `cluster_watts`, comparing
/// against `xeon_rack` serving the same mix one query per socket.
///
/// # Panics
///
/// Panics if `templates` is empty or the config is degenerate (zero
/// clients, zero duration).
pub fn serve(
    templates: &[Template],
    cluster_watts: f64,
    xeon_rack: &XeonRack,
    cfg: &ServeConfig,
) -> ServeReport {
    serve_with_faults(templates, cluster_watts, xeon_rack, cfg, None)
}

/// [`serve`], with batches dispatched inside `window` slowed by its
/// `cost_factor` — the coarse serving-level view of a crash + recovery.
///
/// # Panics
///
/// Panics like [`serve`], or if the window is inverted or its factor is
/// below 1.
pub fn serve_with_faults(
    templates: &[Template],
    cluster_watts: f64,
    xeon_rack: &XeonRack,
    cfg: &ServeConfig,
    window: Option<&DegradedWindow>,
) -> ServeReport {
    assert!(!templates.is_empty(), "need at least one template");
    assert!(cfg.clients > 0 && cfg.duration_seconds > 0.0, "degenerate config");
    assert!(cfg.max_batch > 0 && cfg.admit_cap > 0, "degenerate config");
    if let Some(w) = window {
        assert!(w.from_seconds <= w.until_seconds, "inverted degraded window");
        assert!(w.cost_factor >= 1.0, "a degraded window cannot speed the cluster up");
    }

    let mut rng = SplitMix64::new(cfg.seed);
    let mut uniform = move || rng.next_f64();
    let think = {
        let mean = cfg.think_seconds;
        move |u: f64| if mean > 0.0 { -(1.0 - u).ln() * mean } else { 0.0 }
    };

    // Event heap: (time, seq, kind). seq keeps ordering deterministic for
    // simultaneous events. kind: client id = arrival, usize::MAX = server
    // becomes free.
    let mut events: BinaryHeap<Reverse<(OrdF64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for c in 0..cfg.clients {
        let u = uniform();
        events.push(Reverse((OrdF64(think(u)), seq, c)));
        seq += 1;
    }

    const FREE: usize = usize::MAX;
    let mut queue: VecDeque<(f64, usize)> = VecDeque::new(); // (arrival, template)
    let mut server_free_at = 0.0f64;
    let mut server_busy = false;
    let mut latencies: Vec<f64> = Vec::new();
    let mut done_times: Vec<f64> = Vec::new();
    let mut rejected = 0u64;
    let mut batches = 0u64;

    while let Some(Reverse((OrdF64(now), _, kind))) = events.pop() {
        if now > cfg.duration_seconds {
            break;
        }
        if kind != FREE {
            // A client arrival: pick a template, try to enter the queue.
            let t = (uniform() * templates.len() as f64) as usize % templates.len();
            if queue.len() >= cfg.admit_cap {
                rejected += 1;
                let u = uniform();
                // A full queue implies a busy server, so retrying no
                // earlier than the server frees keeps the clock advancing
                // even with zero think time.
                let retry = (now + think(u)).max(server_free_at);
                events.push(Reverse((OrdF64(retry), seq, kind)));
                seq += 1;
                continue;
            }
            // The client now waits for completion (closed loop); its next
            // arrival is scheduled at dispatch below.
            queue.push_back((now, t));
        } else {
            server_busy = false;
        }

        // Dispatch if the server is idle and work is queued.
        if !server_busy && !queue.is_empty() {
            let (_, tmpl) = *queue.front().expect("non-empty");
            // Collect up to max_batch same-template queries (FIFO scan).
            let mut batch: Vec<(f64, usize)> = Vec::new();
            let mut rest: VecDeque<(f64, usize)> = VecDeque::new();
            while let Some((arr, t)) = queue.pop_front() {
                if t == tmpl && batch.len() < cfg.max_batch {
                    batch.push((arr, t));
                } else {
                    rest.push_back((arr, t));
                }
            }
            queue = rest;
            let start = server_free_at.max(now);
            let mut exec = templates[tmpl].cost.batch_seconds(batch.len());
            if let Some(w) = window {
                if start >= w.from_seconds && start < w.until_seconds {
                    exec *= w.cost_factor;
                }
            }
            let done = start + exec;
            server_free_at = done;
            server_busy = true;
            batches += 1;
            for &(arr, _) in &batch {
                latencies.push(done - arr);
                done_times.push(done);
                // The issuing client thinks, then comes back.
                let u = uniform();
                events.push(Reverse((OrdF64(done + think(u)), seq, 0)));
                seq += 1;
            }
            events.push(Reverse((OrdF64(done), seq, FREE)));
            seq += 1;
        }
    }

    latencies.sort_by(|a, b| a.total_cmp(b));
    let completed = latencies.len() as u64;
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let i = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[i - 1]
    };
    let mean_latency = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    // Bucket completions around the degraded window (whole horizon =
    // "pre" when no window was applied).
    let (w_from, w_until) = window
        .map(|w| {
            (w.from_seconds.min(cfg.duration_seconds), w.until_seconds.min(cfg.duration_seconds))
        })
        .unwrap_or((cfg.duration_seconds, cfg.duration_seconds));
    let bucket_qps = |lo: f64, hi: f64| -> f64 {
        if hi <= lo {
            return 0.0;
        }
        done_times.iter().filter(|&&d| d >= lo && d < hi).count() as f64 / (hi - lo)
    };
    let qps_pre_fault = bucket_qps(0.0, w_from);
    let qps_during_fault = bucket_qps(w_from, w_until);
    let qps_post_fault = bucket_qps(w_until, cfg.duration_seconds);

    let mean_xeon = templates.iter().map(|t| t.xeon_seconds).sum::<f64>() / templates.len() as f64;
    let xeon_qps = xeon_rack.qps(mean_xeon);
    let xeon_watts = xeon_rack.rack_watts();
    let qps = completed as f64 / cfg.duration_seconds;
    let perf_per_watt_gain =
        if qps > 0.0 { (qps / cluster_watts) / (xeon_qps / xeon_watts) } else { 0.0 };

    ServeReport {
        completed,
        rejected,
        qps,
        mean_latency,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        mean_batch: if batches > 0 { completed as f64 / batches as f64 } else { 0.0 },
        qps_pre_fault,
        qps_during_fault,
        qps_post_fault,
        cluster_watts,
        xeon_qps,
        xeon_watts,
        perf_per_watt_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::NodeCost;

    fn template(name: &'static str, local: f64, xeon: f64) -> Template {
        Template {
            name,
            cost: ClusterQueryCost {
                per_node: vec![NodeCost { mem_seconds: local, cpu_seconds: local / 4.0 }; 8],
                local_seconds: local,
                fabric_seconds: local / 10.0,
                merge_seconds: local / 100.0,
                fabric_bytes: 1 << 20,
                failovers: 0,
            },
            xeon_seconds: xeon,
        }
    }

    #[test]
    fn serving_completes_queries_deterministically() {
        let templates = vec![template("Q1", 0.010, 0.5), template("Q6", 0.005, 0.3)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig { duration_seconds: 10.0, ..ServeConfig::default() };
        let a = serve(&templates, 8.0 * 11.0, &rack, &cfg);
        let b = serve(&templates, 8.0 * 11.0, &rack, &cfg);
        assert!(a.completed > 0);
        assert_eq!(a.completed, b.completed, "same seed ⇒ same run");
        assert_eq!(a.p99, b.p99);
        assert!(a.p50 <= a.p95 && a.p95 <= a.p99);
        assert!(a.mean_latency > 0.0);
        assert!(a.qps > 0.0);
        // No window: everything lands in the "pre" bucket.
        assert!(a.qps_pre_fault > 0.0);
        assert_eq!(a.qps_during_fault, 0.0);
        assert_eq!(a.qps_post_fault, 0.0);
    }

    #[test]
    fn saturation_triggers_admission_control() {
        // Slow queries + no think time: the queue fills and rejects.
        let templates = vec![template("Q5", 0.5, 2.0)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig {
            clients: 128,
            think_seconds: 0.0,
            admit_cap: 8,
            duration_seconds: 20.0,
            ..ServeConfig::default()
        };
        let r = serve(&templates, 88.0, &rack, &cfg);
        assert!(r.rejected > 0, "an overloaded queue must reject");
        assert!(r.mean_batch > 1.0, "saturation should form batches");
    }

    #[test]
    fn batching_raises_throughput_under_load() {
        let templates = vec![template("Q1", 0.05, 0.5)];
        let rack = XeonRack::rack_42u();
        let base = ServeConfig {
            clients: 64,
            think_seconds: 0.0,
            duration_seconds: 20.0,
            ..ServeConfig::default()
        };
        let unbatched =
            serve(&templates, 88.0, &rack, &ServeConfig { max_batch: 1, ..base.clone() });
        let batched = serve(&templates, 88.0, &rack, &ServeConfig { max_batch: 8, ..base });
        assert!(
            batched.qps > 1.5 * unbatched.qps,
            "batched {} vs unbatched {}",
            batched.qps,
            unbatched.qps
        );
    }

    #[test]
    fn degraded_window_dips_qps_then_recovers_within_5_percent() {
        // Saturated loop so QPS tracks service rate directly: the window
        // must dip throughput while it is open and leave no residue once
        // recovery completes.
        let templates = vec![template("Q1", 0.05, 0.5)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig {
            clients: 64,
            think_seconds: 0.0,
            duration_seconds: 60.0,
            ..ServeConfig::default()
        };
        let window = DegradedWindow { from_seconds: 20.0, until_seconds: 40.0, cost_factor: 3.0 };
        let r = serve_with_faults(&templates, 88.0, &rack, &cfg, Some(&window));
        assert!(
            r.qps_during_fault < 0.6 * r.qps_pre_fault,
            "a 3× slowdown must dip QPS: {} vs {}",
            r.qps_during_fault,
            r.qps_pre_fault
        );
        let ratio = r.qps_post_fault / r.qps_pre_fault;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "post-recovery QPS must return to within 5% of steady state (ratio {ratio})"
        );
    }

    #[test]
    fn degraded_serving_stays_deterministic() {
        let templates = vec![template("Q1", 0.02, 0.5), template("Q6", 0.01, 0.3)];
        let rack = XeonRack::rack_42u();
        let cfg = ServeConfig { duration_seconds: 15.0, ..ServeConfig::default() };
        let w = DegradedWindow { from_seconds: 5.0, until_seconds: 9.0, cost_factor: 2.0 };
        let a = serve_with_faults(&templates, 88.0, &rack, &cfg, Some(&w));
        let b = serve_with_faults(&templates, 88.0, &rack, &cfg, Some(&w));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.qps_during_fault, b.qps_during_fault);
        assert_eq!(a.p99, b.p99);
    }
}
