//! Rack-scale distributed query execution over simulated DPU nodes.
//!
//! The paper's rack (§2) is not a single SoC: it is ~1440 DPU nodes
//! behind a shared Infiniband fabric, each owning 8 GB of DRAM, with
//! queries scattered across nodes and gathered at a coordinator. This
//! crate models that layer end to end:
//!
//! - [`fabric`] — the shared network: per-node NIC bandwidth, a shared
//!   switch, per-hop latency, with congestion from first principles via
//!   `dpu_sim::BandwidthServer` queuing.
//! - [`shard`] — hash/range sharding of the TPC-H database across nodes:
//!   `orders` and `lineitem` are co-sharded by order key (every row lives
//!   on exactly one shard), dimension tables are replicated.
//! - [`coordinator`] — scatter/gather plans for the eight Figure 16
//!   queries: local scan/filter/partial-aggregate per node, an all-to-all
//!   shuffle where the group key is not the sharding key (Q10), and a
//!   coordinator merge. Per-node work is costed by the same roofline the
//!   single-node engine uses, so cluster time = max over nodes + fabric
//!   transfer + merge. Distributed results are bit-identical to the
//!   single-node engine's.
//! - [`serve`] — a closed-loop multi-client serving front-end with
//!   admission control and same-template query batching, reporting rack
//!   QPS, latency percentiles and performance/watt against a
//!   multi-socket Xeon rack ([`xeon_model::XeonRack`]).

pub mod coordinator;
pub mod fabric;
pub mod serve;
pub mod shard;

pub use coordinator::{
    Cluster, ClusterConfig, ClusterQueryCost, DistributedQuery, NodeCost, QueryId, QueryOutput,
};
pub use fabric::{Fabric, FabricConfig};
pub use serve::{serve, ServeConfig, ServeReport, Template};
pub use shard::{shard_table, shard_tpch, ShardPolicy, ShardedTpch};
