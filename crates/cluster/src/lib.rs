//! Rack-scale distributed query execution over simulated DPU nodes.
//!
//! The paper's rack (§2) is not a single SoC: it is ~1440 DPU nodes
//! behind a shared Infiniband fabric, each owning 8 GB of DRAM, with
//! queries scattered across nodes and gathered at a coordinator. This
//! crate models that layer end to end:
//!
//! - [`fabric`] — the shared network: per-node NIC bandwidth, a shared
//!   switch, per-hop latency, with congestion from first principles via
//!   `dpu_sim::BandwidthServer` queuing. Fault plans thread through it
//!   (a degraded NIC carries payloads at a fraction of its rate).
//! - [`shard`] — hash/range sharding of the TPC-H database across nodes:
//!   `orders` and `lineitem` are co-sharded by order key (every row lives
//!   on exactly one shard), dimension tables are replicated.
//! - [`replica`] — k-way chained-declustering placement: each fact shard
//!   is stored on `k` distinct nodes so a crash spreads its load over
//!   several survivors; `k = 1` reproduces the unreplicated layout.
//! - [`fault`] — deterministic fault injection: crashes, transient NIC
//!   degradation and compute stragglers scheduled up front (optionally
//!   from a seed), so every faulty run is exactly reproducible.
//! - [`coordinator`] — scatter/gather plans for the eight Figure 16
//!   queries: local scan/filter/partial-aggregate per shard on a live
//!   replica, an all-to-all shuffle where the group key is not the
//!   sharding key (Q10), and a coordinator merge. Failover routing
//!   re-issues a crashed node's sub-plans to the next replica after a
//!   fabric-derived timeout; [`Cluster::recover`] models re-replicating
//!   a lost node from survivors. Per-node work is costed by the same
//!   roofline the single-node engine uses, so cluster time = max over
//!   nodes + fabric transfer + merge. Distributed results stay
//!   bit-identical to the single-node engine's under any fault pattern
//!   that leaves each shard one live replica.
//! - [`topology`] — the spine/leaf geometry past one rack: leaf
//!   switches per rack behind a non-blocking spine, per-rack uplinks
//!   carrying `switch / oversub` bytes per cycle, hop counts (2 intra-
//!   rack, 4 inter-rack) that derive the failover timeout and the
//!   planner's hop pricing. `racks = 1` reproduces the flat fabric
//!   cycle for cycle.
//! - [`tenant`] — open-loop multi-tenant serving: per-tenant SLOs and
//!   arrival rates under diurnal/bursty traces, weighted-fair queuing
//!   with per-tenant admission caps, and priority preemption, reported
//!   per tenant (QPS, p50/p99, SLO attainment, preempted work).
//! - [`serve`] — a closed-loop multi-client serving front-end, since
//!   PR 3 an event-driven concurrent pipeline: up to
//!   [`ServeConfig::concurrency`] batches in flight, each charged for
//!   fabric use against shared per-NIC/switch bandwidth servers
//!   ([`ServeFabric`]) so concurrent shuffle-heavy queries interfere,
//!   with admission control, same-template batching under an optional
//!   [`AdaptiveBatch`] SLO controller, and rack QPS / latency
//!   percentiles / SLO attainment / performance-per-watt against a
//!   multi-socket Xeon rack ([`xeon_model::XeonRack`]); a
//!   degraded-window mode measures the QPS dip while a failure is being
//!   recovered. The coordinator optionally races deadline-missing shard
//!   sub-plans against a backup replica ([`Speculation`]), keeping
//!   results bit-identical while cutting straggler tails.

pub mod coordinator;
pub mod fabric;
pub mod fault;
pub mod planned;
pub mod replica;
pub mod serve;
pub mod shard;
pub mod tenant;
pub mod topology;

pub use coordinator::{
    Cluster, ClusterConfig, ClusterCore, ClusterQueryCost, DistributedQuery, NodeCost, QueryError,
    QueryId, QueryOutput, RecoveryReport, ShardRun, SingleRefCache, Speculation,
};
pub use fabric::{Fabric, FabricConfig, ServeFabric};
pub use fault::{Fault, FaultPlan};
pub use planned::{
    handwired_physical, q10_gather_physical, MergeStrategy, PhysicalPlan, PlannedRun,
};
pub use replica::Placement;
pub use serve::{
    serve, serve_pipeline, serve_pipeline_hooked, serve_with_faults, AdaptiveBatch, DegradedWindow,
    ServeConfig, ServeHook, ServeReport, Template,
};
pub use shard::{
    shard_table, shard_tpch, shard_tpch_placed, shard_tpch_replicated, ShardPolicy, ShardedTpch,
    SkewReport,
};
pub use tenant::{
    serve_tenants, MultiTenantReport, Tenant, TenantReport, TenantServeConfig, TraceShape,
};
pub use topology::Topology;
