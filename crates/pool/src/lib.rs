//! A hand-rolled scoped work-stealing thread pool for **host-side**
//! parallelism.
//!
//! Everything this workspace simulates — DPU cycles, fabric transfers,
//! serve loops — runs in *simulated* time and is strictly deterministic.
//! This crate parallelizes the **host** work that produces those
//! deterministic results: TPC-H data generation, per-shard sub-plans,
//! and the partitioned join/aggregation kernels. The contract is that a
//! parallel caller always merges worker results in a fixed input order,
//! so results are bit-identical at any thread count (pinned by
//! `tests/parallel_properties.rs` and the thread-determinism test in
//! `tests/cluster_serve.rs`).
//!
//! Design notes:
//!
//! - Built on [`std::thread::scope`] only — no external dependencies, no
//!   `unsafe`, no `'static` bounds on borrowed inputs.
//! - Each [`Pool::par_map`] call spawns its workers fresh. Jobs are
//!   index-tagged; each worker drains its own deque front-to-back and
//!   steals from victims back-to-front, and the caller reassembles
//!   results **in input order** regardless of which worker ran what.
//! - Worker threads set a thread-local flag so *nested* `par_map` calls
//!   degrade to sequential execution instead of oversubscribing the
//!   host (see [`in_worker`]).
//! - One worker (or [`in_worker`] context) means a plain sequential
//!   `map` — no threads, no locks, the exact single-threaded code route.
//!
//! The global thread count resolves once from `DPU_THREADS`, falling
//! back to [`std::thread::available_parallelism`]; benches and tests
//! that need to compare thread counts within one process override it
//! with [`set_global_threads`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A parse-once process-wide environment knob: the shared resolution
/// cell behind `DPU_THREADS`, `DPU_VECTOR` and `DPU_PACK`.
///
/// All three knobs follow one contract: the environment variable is
/// read **once** per process, the resolved choice is cached, and
/// benches or tests that compare settings in one process override the
/// cache with [`EnvKnob::set`]. The cache is a plain atomic rather
/// than a `OnceLock` precisely because the override must be able to
/// *re*-store after resolution (the wallclock bench flips a knob back
/// and forth); `0` is reserved as the unresolved sentinel, so every
/// parser maps its choices onto non-zero codes.
#[derive(Debug)]
pub struct EnvKnob {
    var: &'static str,
    cell: AtomicUsize,
}

impl EnvKnob {
    /// A knob bound to environment variable `var`, initially unresolved.
    pub const fn new(var: &'static str) -> Self {
        EnvKnob { var, cell: AtomicUsize::new(0) }
    }

    /// The resolved non-zero code: the cached value if the knob has
    /// been resolved or overridden, else `parse` applied to the
    /// environment variable's value (`None` when unset), cached for
    /// every later call.
    ///
    /// # Panics
    ///
    /// Panics if `parse` returns the reserved unresolved code `0`.
    pub fn get(&self, parse: impl FnOnce(Option<&str>) -> usize) -> usize {
        let cached = self.cell.load(Ordering::SeqCst);
        if cached != 0 {
            return cached;
        }
        let v = std::env::var(self.var).ok();
        let code = parse(v.as_deref());
        assert!(code != 0, "{}: parser returned the unresolved sentinel", self.var);
        self.cell.store(code, Ordering::SeqCst);
        code
    }

    /// Overrides the cached code for subsequent [`EnvKnob::get`] calls
    /// (in-process comparisons; the environment is no longer consulted).
    ///
    /// # Panics
    ///
    /// Panics on the reserved unresolved code `0`.
    pub fn set(&self, code: usize) {
        assert!(code != 0, "{}: cannot store the unresolved sentinel", self.var);
        self.cell.store(code, Ordering::SeqCst);
    }
}

/// The resolved global worker count (0 = not yet resolved from
/// `DPU_THREADS`).
static GLOBAL_THREADS: EnvKnob = EnvKnob::new("DPU_THREADS");

/// Parses a `DPU_THREADS`-style spelling: a positive integer is taken
/// verbatim, anything else (unset, `0`, garbage) yields `fallback`.
/// Public so `dpu_sql::knob`'s spelling tests cover all three knobs.
pub fn parse_threads(v: Option<&str>, fallback: usize) -> usize {
    v.and_then(|s| s.parse::<usize>().ok()).filter(|&n| n >= 1).unwrap_or(fallback)
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker. Parallel kernels check
/// this to run nested calls sequentially (the outer `par_map` already
/// owns the host's cores; nesting would oversubscribe).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Overrides the global worker count (clamped to ≥ 1) for subsequent
/// [`Pool::global`] calls. `DPU_THREADS` is read once per process, so
/// benches and tests that compare thread counts in-process use this.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.set(threads.max(1));
}

/// The global worker count: the last [`set_global_threads`] value, else
/// `DPU_THREADS` (if set to a positive integer), else
/// [`std::thread::available_parallelism`], else 1.
pub fn global_threads() -> usize {
    GLOBAL_THREADS
        .get(|v| parse_threads(v, std::thread::available_parallelism().map_or(1, |n| n.get())))
}

/// Splits `0..n` into at most `chunks` contiguous non-empty ranges of
/// near-equal size, in ascending order. Concatenating per-chunk results
/// in this order reproduces the sequential iteration exactly.
pub fn chunk_bounds(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let c = chunks.clamp(1, n.max(1));
    (0..c).map(|i| (i * n / c, (i + 1) * n / c)).filter(|&(lo, hi)| lo < hi).collect()
}

/// A work-stealing pool of `threads` workers. Copyable and stateless:
/// workers are scoped to each call, so a `Pool` is just a width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (≥ 1; 1 = sequential).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        Pool { threads }
    }

    /// The pool sized by [`global_threads`].
    pub fn global() -> Self {
        Pool { threads: global_threads() }
    }

    /// This pool's worker count.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, returning results **in input order**.
    ///
    /// With one worker, one item, or when called from inside another
    /// `par_map` (see [`in_worker`]), this is a plain sequential `map` —
    /// no threads are spawned. Otherwise workers drain index-tagged
    /// deques (own front, steal from victims' backs) and the results
    /// are reassembled by index. A panic in `f` propagates to the
    /// caller when the scope joins.
    pub fn par_map<T, R, F>(self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let total = items.len();
        let workers = self.threads.min(total);
        if workers <= 1 || in_worker() {
            return items.into_iter().map(f).collect();
        }

        // Seed each worker's deque with a contiguous block of items.
        let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[i * workers / total].lock().unwrap().push_back((i, item));
        }
        let slots: Vec<Mutex<Vec<(usize, R)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        IN_WORKER.with(|c| c.set(true));
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Own deque first; then steal round-robin from
                            // the victims' opposite ends. The own-deque pop
                            // must be its own statement: chaining `.or_else`
                            // onto it would keep the own lock's temporary
                            // guard alive across the steals, and two idle
                            // workers stealing from each other would
                            // deadlock on each other's deque locks.
                            let own = deques[w].lock().unwrap().pop_front();
                            let job = own.or_else(|| {
                                (1..workers).find_map(|d| {
                                    deques[(w + d) % workers].lock().unwrap().pop_back()
                                })
                            });
                            match job {
                                Some((i, item)) => done.push((i, f(item))),
                                None => break,
                            }
                        }
                        *slots[w].lock().unwrap() = done;
                    })
                })
                .collect();
            // Join explicitly so a worker's panic payload reaches the
            // caller verbatim (the scope's implicit join would replace
            // it with "a scoped thread panicked").
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for slot in slots {
            for (i, r) in slot.into_inner().unwrap() {
                assert!(out[i].is_none(), "item {i} mapped twice");
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("every item mapped exactly once")).collect()
    }

    /// Applies `f` to contiguous chunks of `items` (each of at most
    /// `chunk_size` elements), returning per-chunk results in chunk
    /// order. Sequential under the same conditions as [`Pool::par_map`].
    pub fn par_chunks<T, R, F>(self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        self.par_map(items.chunks(chunk_size.max(1)).collect(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for workers in 1..=8 {
            let items: Vec<usize> = (0..1000).collect();
            let out = Pool::new(workers).par_map(items, |i| i * 2);
            assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        Pool::new(4).par_map((0..500).collect(), |i: usize| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn one_worker_is_sequential_and_spawns_nothing() {
        // The closure observes it never runs on a worker thread.
        let out = Pool::new(1).par_map(vec![1, 2, 3], |x| {
            assert!(!in_worker());
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn nested_par_map_degrades_to_sequential() {
        let out = Pool::new(4).par_map((0..16).collect(), |i: usize| {
            assert!(in_worker());
            // The inner call must not spawn (its closure sees the
            // worker flag still set) and must still be order-exact.
            Pool::new(4).par_map((0..8).collect(), |j: usize| {
                assert!(in_worker());
                i * 8 + j
            })
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..8).map(|j| i * 8 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_sees_contiguous_chunks_in_order() {
        let data: Vec<u64> = (0..997).collect();
        let sums = Pool::new(3).par_chunks(&data, 100, |c| c.iter().sum::<u64>());
        assert_eq!(sums.len(), 10);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
        // First chunk is exactly data[0..100].
        assert_eq!(sums[0], (0..100).sum::<u64>());
    }

    #[test]
    fn chunk_bounds_partition_the_range() {
        for n in [0usize, 1, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 16, 200] {
                let b = chunk_bounds(n, chunks);
                let covered: usize = b.iter().map(|&(lo, hi)| hi - lo).sum();
                assert_eq!(covered, n, "n={n} chunks={chunks}");
                assert!(b.windows(2).all(|w| w[0].1 == w[1].0), "contiguous");
                assert!(b.iter().all(|&(lo, hi)| lo < hi), "non-empty");
                assert!(b.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        Pool::new(2).par_map((0..64).collect(), |i: usize| {
            if i == 33 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn global_override_wins() {
        set_global_threads(3);
        assert_eq!(Pool::global().threads(), 3);
        set_global_threads(1);
        assert_eq!(Pool::global().threads(), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = Pool::new(8).par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
