//! Snapshot test for the EXPLAIN rendering: the planner-chosen plan of
//! every TPC-H query on a fixed 4-shard fixture, byte-compared against
//! the committed `tests/snapshots/explain.txt`.
//!
//! The fixture and every estimate in it are deterministic (seeded
//! generator, integer statistics, simulated costs), so the snapshot is
//! machine-independent. If an intentional change to the planner or the
//! rendering shifts the output, regenerate with
//! `UPDATE_SNAPSHOT=1 cargo test -p dpu-planner --test explain_snapshot`
//! and commit the diff.

use dpu_cluster::{ClusterConfig, ClusterCore, QueryId, ShardPolicy};
use dpu_planner::{explain, Planner};
use dpu_sql::tpch::generate;

#[test]
fn explain_snapshot_covers_all_eight_queries() {
    let core = ClusterCore::new(
        generate(1000, 5),
        &ShardPolicy::hash(4),
        ClusterConfig::prototype_slice(4, 10_000),
    );
    let planner = Planner::new(&core);
    let mut rendered = String::new();
    for id in QueryId::ALL {
        let choice = planner.plan(id);
        rendered.push_str(&explain(&choice.plan, &choice.estimate, None));
        rendered.push('\n');
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/explain.txt");
    if std::env::var_os("UPDATE_SNAPSHOT").is_some() {
        std::fs::write(path, &rendered).expect("write snapshot");
    }
    let committed = std::fs::read_to_string(path)
        .expect("committed snapshot missing — regenerate with UPDATE_SNAPSHOT=1");
    assert!(
        rendered == committed,
        "EXPLAIN output drifted from tests/snapshots/explain.txt; if the change is \
         intentional, regenerate with UPDATE_SNAPSHOT=1 and commit.\n--- got ---\n{rendered}"
    );
}
