//! Cost-based distributed query planner (ISSUE 6).
//!
//! The rack so far executed eight hand-wired TPC-H pipelines. This
//! crate closes the loop from declarative query to distributed plan:
//!
//! - [`stats`] — per-shard statistics: row counts (shared with the skew
//!   report's source of truth), min/max bands, and HyperLogLog NDV
//!   sketches merged across shards at the coordinator.
//! - [`cost`] — an estimator that walks a logical plan with the *same*
//!   roofline and per-operator constants the executor charges, driven
//!   by estimated instead of actual cardinalities, plus a fabric model
//!   of each merge strategy (a gather serializes one RX NIC; a shuffle
//!   spreads the bytes over all of them).
//! - [`optimizer`] — predicate pushdown, DP join-order search over the
//!   query's join graph, and merge placement; any chosen plan is
//!   bit-identical to the hand-wired pipeline because every finishing
//!   operator canonicalizes its output.
//! - [`explain`] — a stable text rendering with estimated vs actual
//!   rows per operator.
//! - [`profile`] — adaptive re-optimization: a [`ServeHook`] that
//!   charges each template its selected plan's profiled cost and
//!   re-ranks candidates mid-run once observed traffic contradicts the
//!   estimates, logging every plan switch.
//!
//! [`ServeHook`]: dpu_cluster::ServeHook

pub mod cost;
pub mod explain;
pub mod optimizer;
pub mod profile;
pub mod stats;

pub use cost::{CostModel, EstRows, PlanEstimate, HAVING_SELECTIVITY};
pub use explain::explain;
pub use optimizer::{hoist_filters, pushdown, PlanChoice, Planner};
pub use profile::{AdaptiveServer, CandidatePlan, PlanSwitch, PlannerMode, TemplateProfile};
pub use stats::{Catalog, ColumnStats, TableStats, SKETCH_PRECISION};
