//! Per-shard statistics: row counts, min/max bands and HyperLogLog NDV
//! sketches, collected per shard and merged at the coordinator.
//!
//! The statistics layer is deliberately built the way a rack would build
//! it: each shard sketches its own columns (a scan-speed pass on the
//! DPU), the coordinator merges the sketches register-wise — HLL merge
//! is exact for unions — and row counts come from the same
//! [`ShardedTpch::table_rows`] source the skew report uses, so the
//! planner and the load balancer can never disagree about shard sizes.
//!
//! Sketches hash with `Murmur64`, not the DPU's native CRC32: planner
//! statistics run over raw (often sequential) key columns, exactly the
//! structured inputs where CRC32's GF(2) linearity collapses register
//! ranks (see `dpu_sql::hll`).

use std::collections::BTreeMap;

use dpu_cluster::ClusterCore;
use dpu_isa::hash::HashKind;
use dpu_sql::hll::HyperLogLog;
use dpu_sql::logical::{BaseTable, ColFilter};
use dpu_sql::{CompareOp, Table};

/// Sketch precision: 2^12 registers ⇒ ≈1.6 % standard error.
pub const SKETCH_PRECISION: u8 = 12;

/// Merged statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest value seen across all shards.
    pub min: i64,
    /// Largest value seen across all shards.
    pub max: i64,
    /// Estimated number of distinct values (merged HLL estimate, ≥ 1).
    pub ndv: f64,
    /// Total *resident* bytes across the cluster (replicas counted
    /// once): packed columns report their FOR/bit-packed size, so the
    /// roofline prices scans by the bytes the engine actually streams.
    pub bytes: u64,
    /// The merged sketch itself (kept so error bounds can be audited).
    pub sketch: HyperLogLog,
}

/// Statistics for one base table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total rows (replicated tables counted once).
    pub rows: u64,
    /// Rows per shard; replicated tables repeat their full count.
    pub per_shard_rows: Vec<usize>,
    /// Whether the table is hash/range-partitioned across shards.
    pub sharded: bool,
    /// Per-column statistics, keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Fraction of rows a single-column band filter keeps, under the
    /// uniform-within-band assumption; equality predicates use `1/NDV`.
    pub fn selectivity(&self, f: &ColFilter) -> f64 {
        let Some(s) = self.columns.get(&f.col) else { return 1.0 };
        if s.max < s.min {
            return 0.0;
        }
        let (lo, hi) = f.op.band();
        let (lo, hi) = (lo.max(s.min), hi.min(s.max));
        if hi < lo {
            return 0.0;
        }
        if matches!(f.op, CompareOp::Eq(_)) {
            return (1.0 / s.ndv).min(1.0);
        }
        let width = (hi - lo + 1) as f64;
        let domain = (s.max - s.min + 1) as f64;
        (width / domain).min(1.0)
    }

    /// Combined selectivity of a conjunction (independence assumption).
    pub fn conjunction(&self, filters: &[ColFilter]) -> f64 {
        filters.iter().map(|f| self.selectivity(f)).product()
    }
}

/// The merged cluster-wide catalog the optimizer costs plans against.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Number of shards the statistics were collected from.
    pub n_shards: usize,
    tables: Vec<(BaseTable, TableStats)>,
}

impl Catalog {
    /// Collects statistics from a cluster core: per-shard row counts via
    /// [`ShardedTpch::table_rows`] (the skew report's source), per-shard
    /// HLL sketches merged across shards for partitioned tables, and a
    /// single replica's sketch for replicated dimensions.
    ///
    /// [`ShardedTpch::table_rows`]: dpu_cluster::ShardedTpch::table_rows
    pub fn from_core(core: &ClusterCore) -> Catalog {
        let sharded = core.sharded();
        let n_shards = sharded.shards.len();
        let mut tables = Vec::with_capacity(BaseTable::ALL.len());
        for &t in &BaseTable::ALL {
            let per_shard_rows = sharded.table_rows(t);
            let rows: u64 = if t.is_sharded() {
                per_shard_rows.iter().sum::<usize>() as u64
            } else {
                per_shard_rows[0] as u64
            };
            let proto = t.of(&sharded.shards[0]);
            let mut columns = BTreeMap::new();
            for c in &proto.columns {
                let shard_tables: Vec<&Table> = if t.is_sharded() {
                    sharded.shards.iter().map(|db| t.of(db)).collect()
                } else {
                    vec![proto]
                };
                columns.insert(c.name.clone(), column_stats(&c.name, &shard_tables));
            }
            tables.push((t, TableStats { rows, per_shard_rows, sharded: t.is_sharded(), columns }));
        }
        Catalog { n_shards, tables }
    }

    /// Statistics for one table.
    pub fn table(&self, t: BaseTable) -> &TableStats {
        &self.tables.iter().find(|(b, _)| *b == t).expect("table in catalog").1
    }

    /// Finds the table owning a column name (TPC-H prefixes make names
    /// unique) together with its stats; grouped-output columns such as
    /// `sum_qty` have no base column and return `None`.
    pub fn column(&self, col: &str) -> Option<(BaseTable, &ColumnStats)> {
        self.tables.iter().find_map(|(t, s)| s.columns.get(col).map(|c| (*t, c)))
    }

    /// Cluster-wide NDV of a column, 1.0 when unknown.
    pub fn ndv(&self, col: &str) -> f64 {
        self.column(col).map_or(1.0, |(_, c)| c.ndv)
    }

    /// NDV of a column *as seen by one shard*, under the planner's
    /// uniformity assumption: a partitioned table spreads its distinct
    /// values evenly over the shards, a replicated table exposes all of
    /// them everywhere. This is the textbook assumption, and like any
    /// NDV-only model it carries no correlation information: after a
    /// filter or join, [`super::cost`]'s group estimate can only cap
    /// the group count at the surviving input rows, as if every row
    /// carried a distinct key. Keys that repeat across rows (Q10's
    /// repeat customers on `o_custkey`) collapse the real partial
    /// aggregates well below that cap — the estimation error the
    /// adaptive layer observes and corrects from serve traffic.
    pub fn shard_ndv(&self, col: &str) -> f64 {
        match self.column(col) {
            None => 1.0,
            Some((t, c)) => {
                if self.table(t).sharded {
                    (c.ndv / self.n_shards as f64).max(1.0)
                } else {
                    c.ndv
                }
            }
        }
    }
}

fn column_stats(name: &str, shard_tables: &[&Table]) -> ColumnStats {
    let mut merged = HyperLogLog::new(SKETCH_PRECISION, HashKind::Murmur64);
    let (mut min, mut max) = (i64::MAX, i64::MIN);
    let mut bytes = 0u64;
    for t in shard_tables {
        let col = t.column(name).expect("column present on every shard");
        bytes += col.resident_bytes();
        let mut local = HyperLogLog::new(SKETCH_PRECISION, HashKind::Murmur64);
        if let Some(p) = &col.packed {
            // Packed columns carry exact per-chunk frame/max zone maps —
            // min/max fold over the headers instead of the row stream.
            for ch in p.chunks() {
                min = min.min(ch.frame);
                max = max.max(ch.max);
            }
            for &v in &col.data {
                local.insert(v as u64);
            }
        } else {
            for &v in &col.data {
                local.insert(v as u64);
                min = min.min(v);
                max = max.max(v);
            }
        }
        merged.merge(&local);
    }
    ColumnStats { min, max, ndv: merged.estimate().max(1.0), bytes, sketch: merged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_cluster::{ClusterConfig, ShardPolicy};
    use dpu_sql::tpch::generate;
    use std::collections::BTreeSet;

    fn core() -> std::sync::Arc<ClusterCore> {
        let db = generate(1000, 7);
        ClusterCore::new(db, &ShardPolicy::hash(8), ClusterConfig::prototype_slice(8, 1000))
    }

    #[test]
    fn merged_sketches_track_true_distinct_counts() {
        let core = core();
        let catalog = Catalog::from_core(&core);
        for (table, col) in [
            (BaseTable::Lineitem, "l_orderkey"),
            (BaseTable::Orders, "o_custkey"),
            (BaseTable::Customer, "c_custkey"),
        ] {
            let truth = t_distinct(core.full(), table, col);
            let s = &catalog.table(table).columns[col];
            let err = (s.ndv - truth).abs() / truth;
            // 4σ of the 2^12-register estimator.
            assert!(err < 4.0 * s.sketch.std_error(), "{col}: est {} truth {truth}", s.ndv);
        }
    }

    fn t_distinct(db: &dpu_sql::tpch::TpchDb, t: BaseTable, col: &str) -> f64 {
        t.of(db).column(col).unwrap().data.iter().collect::<BTreeSet<_>>().len() as f64
    }

    #[test]
    fn row_counts_come_from_the_shared_shard_source() {
        let core = core();
        let catalog = Catalog::from_core(&core);
        let li = catalog.table(BaseTable::Lineitem);
        assert!(li.sharded);
        assert_eq!(li.per_shard_rows, core.sharded().table_rows(BaseTable::Lineitem));
        assert_eq!(li.rows as usize, li.per_shard_rows.iter().sum::<usize>());
        let nation = catalog.table(BaseTable::Nation);
        assert!(!nation.sharded);
        assert_eq!(nation.rows as usize, nation.per_shard_rows[0]);
    }

    #[test]
    fn packed_headers_reproduce_scanned_stats() {
        // The catalog reads min/max from FOR chunk headers and bytes from
        // the resident (packed) sizes; both must equal what a full scan
        // of the flat data would have produced.
        let core = core();
        let catalog = Catalog::from_core(&core);
        let sharded = core.sharded();
        let mut packed_cols = 0usize;
        for &t in &BaseTable::ALL {
            let shard_tables: Vec<&Table> = if t.is_sharded() {
                sharded.shards.iter().map(|db| t.of(db)).collect()
            } else {
                vec![t.of(&sharded.shards[0])]
            };
            for c in &shard_tables[0].columns {
                let (mut min, mut max, mut bytes) = (i64::MAX, i64::MIN, 0u64);
                for st in &shard_tables {
                    let col = st.column(&c.name).expect("column on every shard");
                    packed_cols += usize::from(col.packed.is_some());
                    bytes += col.resident_bytes();
                    for &v in &col.data {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                let s = &catalog.table(t).columns[&c.name];
                assert_eq!((s.min, s.max, s.bytes), (min, max, bytes), "{}", c.name);
            }
        }
        assert!(packed_cols > 0, "no packed columns — the header path went untested");
    }

    #[test]
    fn band_selectivity_is_proportional_and_clamped() {
        let core = core();
        let catalog = Catalog::from_core(&core);
        let orders = catalog.table(BaseTable::Orders);
        let all =
            orders.selectivity(&ColFilter::new("o_orderdate", CompareOp::Ge(i32::MIN as i64)));
        assert!((all - 1.0).abs() < 1e-9);
        let none =
            orders.selectivity(&ColFilter::new("o_orderdate", CompareOp::Lt(i32::MIN as i64 + 1)));
        assert_eq!(none, 0.0);
        let half_band = {
            let s = &orders.columns["o_orderdate"];
            ColFilter::new("o_orderdate", CompareOp::Between(s.min, s.min + (s.max - s.min) / 2))
        };
        let half = orders.selectivity(&half_band);
        assert!(half > 0.3 && half < 0.7, "half-band selectivity {half}");
        let eq = orders.selectivity(&ColFilter::new("o_custkey", CompareOp::Eq(1)));
        let ndv = catalog.ndv("o_custkey");
        assert!((eq - 1.0 / ndv).abs() < 1e-9);
    }
}
