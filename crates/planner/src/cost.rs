//! Estimated costing of physical plans.
//!
//! The estimator walks a [`LogicalPlan`] exactly the way
//! `LogicalPlan::execute_costed` does — same [`CostAcc`] roofline, same
//! per-operator constants, same trace labels — but drives it with
//! *estimated* cardinalities from the [`Catalog`] instead of actual
//! rows. An EXPLAIN can therefore line estimated rows up against actual
//! rows operator by operator, and an estimate differs from a
//! measurement only where the statistics were wrong, never because the
//! models disagree.
//!
//! On top of the per-shard walk it costs the merge strategy over the
//! fabric model: a gather serializes every partial through the
//! coordinator's one RX NIC, a shuffle spreads the same bytes over all
//! `n` NICs and pays a second small candidate gather — the placement
//! asymmetry the optimizer exploits on Q10.

use dpu_cluster::{FabricConfig, MergeStrategy, PhysicalPlan, Topology};
use dpu_sql::agg::GroupByPlan;
use dpu_sql::logical::{Finish, LogicalPlan, Relation, Source};
use dpu_sql::tpch::{join_cost, AGG_DPU, AGG_XEON, SCAN_DPU, SCAN_XEON, XEON_DB_EFFICIENCY};
use dpu_sql::{CostAcc, GroupBySpec, QueryCost};
use xeon_model::Xeon;

use crate::stats::Catalog;

/// The planner's uninformed default for HAVING predicates over
/// aggregated columns (no base-column statistics exist for them).
pub const HAVING_SELECTIVITY: f64 = 0.05;

/// Estimated rows out of one operator, labelled identically to the
/// executor's `OpRows` trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EstRows {
    /// Stable operator label (matches the actual trace).
    pub label: String,
    /// Estimated output rows, summed across shards.
    pub rows: f64,
}

/// A costed estimate for one physical plan.
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// Slowest shard's local phase, seconds (same roofline as execution).
    pub local_seconds: f64,
    /// Fabric transfer estimate for the merge strategy, seconds.
    pub fabric_seconds: f64,
    /// Coordinator/owner merge compute estimate, seconds.
    pub merge_seconds: f64,
    /// Estimated payload bytes crossing the fabric.
    pub fabric_bytes: u64,
    /// Estimated partial-result rows surrendered by all shards.
    pub partial_rows: f64,
    /// Per-operator estimated rows (cluster-wide), in trace order.
    pub ops: Vec<EstRows>,
}

impl PlanEstimate {
    /// The estimate's end-to-end seconds.
    pub fn total_seconds(&self) -> f64 {
        self.local_seconds + self.fabric_seconds + self.merge_seconds
    }
}

/// Catalog + fabric + roofline: everything needed to price a plan.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    /// The statistics.
    pub catalog: &'a Catalog,
    /// The rack fabric the merge is priced against.
    pub fabric: FabricConfig,
    /// The spine/leaf geometry: sources outside the coordinator's rack
    /// pay doubled hop latency and their bytes share the rack uplinks
    /// (see [`CostModel::merge_estimate`]). A single-rack topology
    /// prices exactly like the flat model.
    pub topo: Topology,
    /// Nodes in the rack.
    pub n_nodes: usize,
    /// Full-scale multiplier (`ClusterConfig::scale`).
    pub scale: u64,
}

impl CostModel<'_> {
    /// Prices a physical plan: per-shard estimated walk (max over shards
    /// for the local phase) plus the merge strategy over the fabric.
    pub fn estimate(&self, plan: &PhysicalPlan) -> PlanEstimate {
        let xeon = Xeon::new();
        let n = self.catalog.n_shards;
        let mut local_seconds = 0.0f64;
        let mut partial_rows = 0.0f64;
        let mut ops: Vec<EstRows> = Vec::new();
        for shard in 0..n {
            let (cost, out_rows, shard_ops) = self.walk(&plan.local, shard, &xeon);
            local_seconds = local_seconds.max(cost.dpu.seconds);
            partial_rows += out_rows;
            if ops.is_empty() {
                ops = shard_ops;
            } else {
                for (acc, o) in ops.iter_mut().zip(&shard_ops) {
                    acc.rows += o.rows;
                }
            }
        }
        let arity = out_arity(&plan.local);
        let (fabric_seconds, merge_seconds, fabric_bytes) =
            self.merge_estimate(&plan.merge, partial_rows, arity);
        PlanEstimate {
            local_seconds,
            fabric_seconds,
            merge_seconds,
            fabric_bytes,
            partial_rows,
            ops,
        }
    }

    /// Mirrors `execute_costed` with estimated cardinalities. Returns the
    /// estimated per-shard cost, output rows and the labelled op trace.
    fn walk(
        &self,
        plan: &LogicalPlan,
        shard: usize,
        xeon: &Xeon,
    ) -> (QueryCost, f64, Vec<EstRows>) {
        let mut acc = CostAcc::with_scale(self.scale);
        let mut ops = Vec::new();
        let mut rows = self.scan_estimate(&plan.scans[plan.first], shard, &mut acc, &mut ops);
        for j in &plan.joins {
            let other = self.scan_estimate(&plan.scans[j.scan], shard, &mut acc, &mut ops);
            let (build, probe) = if j.build_acc { (rows, other) } else { (other, rows) };
            let probe_base =
                if j.build_acc { self.base_rows(&plan.scans[j.scan], shard) } else { probe };
            join_cost(
                &mut acc,
                build.max(1.0) as u64,
                probe.max(1.0) as u64,
                4 * probe_base.max(1.0) as u64,
            );
            let d = self
                .catalog
                .shard_ndv(&j.build_key)
                .max(self.catalog.shard_ndv(&j.probe_key))
                .max(1.0);
            rows = build * probe / d;
            ops.push(EstRows {
                label: format!("join {}={} fanout={}", j.build_key, j.probe_key, j.fanout),
                rows,
            });
        }
        if !plan.post_filters.is_empty() {
            acc.compute(rows.max(1.0) as u64, SCAN_DPU, SCAN_XEON);
            // Residual filters reference columns from any base relation.
            for f in &plan.post_filters {
                let sel = self
                    .catalog
                    .column(&f.col)
                    .map_or(HAVING_SELECTIVITY, |(t, _)| self.catalog.table(t).selectivity(f));
                rows *= sel;
            }
            ops.push(EstRows { label: "filter residual".into(), rows });
        }
        if let Some((a, b)) = &plan.col_eq {
            rows /= self.catalog.ndv(a).max(self.catalog.ndv(b)).max(1.0);
        }
        let out = match &plan.finish {
            Finish::Agg(spec) => {
                acc.compute(rows.max(1.0) as u64, AGG_DPU, AGG_XEON);
                let g = self.group_estimate(spec, rows);
                ops.push(EstRows { label: agg_label(spec), rows: g });
                g
            }
            Finish::AggTopK { spec, value, k } => {
                acc.compute(rows.max(1.0) as u64, AGG_DPU, AGG_XEON);
                let g = self.group_estimate(spec, rows);
                ops.push(EstRows { label: agg_label(spec), rows: g });
                let t = g.min(*k as f64);
                ops.push(EstRows { label: format!("topk {value} k={k}"), rows: t });
                t
            }
            Finish::TopK { value, k, .. } => {
                let t = rows.min(*k as f64);
                ops.push(EstRows { label: format!("topk {value} k={k}"), rows: t });
                t
            }
            Finish::ScalarSums(sums) => {
                acc.compute(rows.max(1.0) as u64, 3.0 * sums.len() as f64, 1.5 * sums.len() as f64);
                ops.push(EstRows { label: "scalar sums".into(), rows: sums.len() as f64 });
                // The partial table is one row of scalar columns.
                1.0
            }
        };
        let mut cost = acc.finish(xeon);
        cost.xeon.seconds /= XEON_DB_EFFICIENCY;
        (cost, out, ops)
    }

    /// Rows of a relation's base table on this shard (pre-filter).
    fn base_rows(&self, rel: &Relation, shard: usize) -> f64 {
        self.catalog.table(rel.source.table()).per_shard_rows[shard] as f64
    }

    /// Estimated rows a leaf scan yields on one shard, costing the
    /// stream exactly like `eval_scan`.
    fn scan_estimate(
        &self,
        rel: &Relation,
        shard: usize,
        acc: &mut CostAcc,
        ops: &mut Vec<EstRows>,
    ) -> f64 {
        let table = rel.source.table();
        let stats = self.catalog.table(table);
        let base_rows = stats.per_shard_rows[shard] as f64;
        let frac = if stats.rows == 0 { 0.0 } else { base_rows / stats.rows as f64 };
        let touched: u64 = rel
            .touched
            .iter()
            .map(|c| {
                let bytes = stats.columns.get(c).map_or(0, |s| s.bytes);
                (bytes as f64 * frac) as u64
            })
            .sum();
        acc.stream_both(touched);
        acc.compute(base_rows.max(1.0) as u64, SCAN_DPU, SCAN_XEON);
        let staged = match &rel.source {
            Source::Base(_) => base_rows,
            Source::GroupHaving { spec, having, .. } => {
                let g = self.group_estimate(spec, base_rows);
                let plan = GroupByPlan::plan(((g * self.scale as f64) as u64).max(1), 16);
                acc.stream(
                    touched * (plan.dpu_bytes_factor() - 1),
                    touched * (plan.xeon_bytes_factor() - 1),
                );
                acc.compute(base_rows.max(1.0) as u64, AGG_DPU, AGG_XEON);
                ops.push(EstRows {
                    label: format!("{} {}", table.name(), agg_label(spec)),
                    rows: g,
                });
                let _ = having;
                g * HAVING_SELECTIVITY
            }
        };
        let out = staged * stats.conjunction(&rel.filters);
        ops.push(EstRows {
            label: format!(
                "scan {}{}",
                table.name(),
                if rel.filters.is_empty() { "" } else { " filtered" }
            ),
            rows: out,
        });
        out
    }

    /// Estimated groups a spec yields from `rows` input rows on one
    /// shard: the product of the group columns' per-shard NDVs (see
    /// [`Catalog::shard_ndv`]), capped by the input. The catalog has
    /// no correlation statistics, so after a selective filter or join
    /// the cap is all we have — the estimate behaves as if every
    /// surviving row carried a distinct group key. When keys repeat
    /// (Q10's repeat customers), actual partials land well below the
    /// cap, which is exactly the error the adaptive layer corrects.
    fn group_estimate(&self, spec: &GroupBySpec, rows: f64) -> f64 {
        let ndv: f64 = spec.group_cols.iter().map(|c| self.catalog.shard_ndv(c)).product();
        ndv.min(rows).max(1.0)
    }

    /// Fabric + merge estimate for a strategy, given total partial rows
    /// across shards and the partial row width in columns.
    /// Returns `(fabric_seconds, merge_seconds, fabric_bytes)`.
    ///
    /// Topology pricing: of the `n` sources, the `m = n/racks` sharing
    /// the coordinator's rack pay one hop of latency each; the other
    /// `n - m` pay two (leaf → spine → leaf), and their bytes — an
    /// `(n-m)/n` fraction under uniform placement — must also clear the
    /// rack uplinks (`switch / oversub` bytes per cycle), so an
    /// oversubscribed spine raises the bandwidth term to
    /// `max(NIC time, uplink time)`. With one rack the inter-rack
    /// fraction is zero and every expression reduces exactly to the
    /// flat single-switch model.
    fn merge_estimate(
        &self,
        merge: &MergeStrategy,
        partial_rows: f64,
        arity: u64,
    ) -> (f64, f64, u64) {
        let n = self.catalog.n_shards as f64;
        let m = self.topo.nodes_per_rack() as f64;
        let clock = self.fabric.clock.hz();
        let nic = self.fabric.nic_bytes_per_cycle as f64 * clock;
        let uplink = self.topo.uplink_bytes_per_cycle(&self.fabric) as f64 * clock;
        let per_row = AGG_DPU / (32.0 * clock);
        let hop = self.fabric.hop_cycles as f64;
        let msg = self.fabric.message_overhead_cycles as f64;
        let hops = (m * (hop + msg) + (n - m) * (2.0 * hop + msg)) / clock;
        let inter_frac = (n - m) / n;
        let row_bytes = (arity * 8) as f64;
        let bytes = partial_rows * row_bytes;
        match merge {
            MergeStrategy::Reagg(_)
            | MergeStrategy::TopKMerge { .. }
            | MergeStrategy::SumScalars { .. }
            | MergeStrategy::GatherTopK { .. } => {
                // Every partial lands on the coordinator's single RX
                // NIC; the cross-rack share also clears its downlink.
                let xfer = (bytes / nic).max(bytes * inter_frac / uplink);
                (xfer + hops, partial_rows * per_row, bytes as u64)
            }
            MergeStrategy::ShuffleTopK { k, .. } => {
                // All-to-all: each NIC carries ~1/n of the cross traffic
                // and each rack uplink ~1/racks of the inter-rack share;
                // owners reduce in parallel, then k candidates per owner
                // gather at the coordinator.
                let racks = self.topo.racks() as f64;
                let cross = bytes * (n - 1.0) / n;
                let inter_cross = bytes * inter_frac;
                let shuffle = (cross / n / nic).max(inter_cross / racks / uplink) + hops;
                let cand_bytes = n * *k as f64 * row_bytes;
                let gather = (cand_bytes / nic).max(cand_bytes * inter_frac / uplink) + hops;
                let merge = partial_rows / n * per_row + n * *k as f64 * per_row;
                (shuffle + gather, merge, (cross + cand_bytes) as u64)
            }
        }
    }
}

/// Column count of the local plan's partial output table.
fn out_arity(plan: &LogicalPlan) -> u64 {
    match &plan.finish {
        Finish::Agg(spec) | Finish::AggTopK { spec, .. } => {
            (spec.group_cols.len() + spec.aggs.len()) as u64
        }
        Finish::TopK { .. } => plan
            .joins
            .last()
            .map(|j| (j.build_cols.len() + j.probe_cols.len()) as u64)
            .unwrap_or_else(|| plan.scans[plan.first].touched.len() as u64),
        Finish::ScalarSums(sums) => sums.len() as u64,
    }
}

fn agg_label(spec: &GroupBySpec) -> String {
    if spec.group_cols.is_empty() {
        "agg".into()
    } else {
        format!("agg by {}", spec.group_cols.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Catalog;
    use dpu_cluster::{
        handwired_physical, q10_gather_physical, ClusterConfig, ClusterCore, QueryId, ShardPolicy,
    };
    use dpu_sql::tpch::generate;

    fn model_fixture() -> (std::sync::Arc<ClusterCore>, Catalog) {
        let cfg = ClusterConfig::prototype_slice(8, 10_000);
        let core = ClusterCore::new(generate(1200, 42), &ShardPolicy::hash(8), cfg);
        let catalog = Catalog::from_core(&core);
        (core, catalog)
    }

    #[test]
    fn every_query_gets_a_positive_finite_estimate() {
        let (core, catalog) = model_fixture();
        let model = CostModel {
            catalog: &catalog,
            fabric: core.cfg().fabric.clone(),
            topo: core.cfg().topology(),
            n_nodes: core.cfg().n_nodes,
            scale: core.cfg().scale,
        };
        for id in QueryId::ALL {
            let est = model.estimate(&handwired_physical(id));
            assert!(est.total_seconds().is_finite() && est.total_seconds() > 0.0, "{id:?}");
            assert!(!est.ops.is_empty(), "{id:?} has an op trace");
        }
    }

    #[test]
    fn gather_and_shuffle_price_the_fabric_differently() {
        let (core, catalog) = model_fixture();
        let model = CostModel {
            catalog: &catalog,
            fabric: core.cfg().fabric.clone(),
            topo: core.cfg().topology(),
            n_nodes: core.cfg().n_nodes,
            scale: core.cfg().scale,
        };
        let shuffle = model.estimate(&handwired_physical(QueryId::Q10));
        let gather = model.estimate(&q10_gather_physical());
        // Same local plan, same partial estimate — only the merge differs.
        assert_eq!(shuffle.ops, gather.ops);
        assert!((shuffle.local_seconds - gather.local_seconds).abs() < 1e-12);
        assert_ne!(shuffle.fabric_bytes, gather.fabric_bytes);
        assert!(shuffle.fabric_seconds != gather.fabric_seconds);
    }

    #[test]
    fn oversubscribed_topology_prices_cross_rack_merges_higher() {
        let (core, catalog) = model_fixture();
        let flat = CostModel {
            catalog: &catalog,
            fabric: core.cfg().fabric.clone(),
            topo: core.cfg().topology(),
            n_nodes: core.cfg().n_nodes,
            scale: core.cfg().scale,
        };
        let spine = CostModel { topo: Topology::new(8, 4, 32.0), ..flat.clone() };
        for id in QueryId::ALL {
            let a = flat.estimate(&handwired_physical(id));
            let b = spine.estimate(&handwired_physical(id));
            // 6 of 8 sources sit outside the coordinator's rack: every
            // query pays extra hop latency, and (at 32:1) bandwidth-
            // bound merges queue on the uplinks too.
            assert!(
                b.fabric_seconds > a.fabric_seconds,
                "{id:?}: spine {} vs flat {}",
                b.fabric_seconds,
                a.fabric_seconds
            );
            // Topology only reprices the fabric phase.
            assert_eq!(b.local_seconds, a.local_seconds, "{id:?}");
            assert_eq!(b.merge_seconds, a.merge_seconds, "{id:?}");
            assert_eq!(b.fabric_bytes, a.fabric_bytes, "{id:?}");
        }
    }

    #[test]
    fn estimated_trace_labels_match_actual_trace_labels() {
        let (core, catalog) = model_fixture();
        let model = CostModel {
            catalog: &catalog,
            fabric: core.cfg().fabric.clone(),
            topo: core.cfg().topology(),
            n_nodes: core.cfg().n_nodes,
            scale: core.cfg().scale,
        };
        let xeon = xeon_model::Xeon::new();
        for id in QueryId::ALL {
            let plan = handwired_physical(id);
            let est = model.estimate(&plan);
            let (_, _, trace) = plan.local.execute_costed(core.full(), &xeon, core.cfg().scale);
            let est_labels: Vec<&str> = est.ops.iter().map(|o| o.label.as_str()).collect();
            let actual_labels: Vec<&str> = trace.iter().map(|o| o.label.as_str()).collect();
            assert_eq!(est_labels, actual_labels, "{id:?}");
        }
    }
}
