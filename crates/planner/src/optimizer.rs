//! The optimizer: predicate pushdown, dynamic-programming join-order
//! search over a [`JoinGraph`], and merge-strategy placement costed
//! against the fabric model.
//!
//! Search space: left-deep linearizations (what the executor runs) of
//! the query's join graph, enumerated by the classic DP-over-subsets
//! with the C_out objective (sum of intermediate cardinalities), ×
//! candidate merge strategies where the query has a genuine placement
//! choice (Q10: shuffle-by-group-key vs gather-at-coordinator). Any
//! candidate is safe to pick: every finishing operator canonicalizes
//! its output, so plan choice can never change a result, only its cost
//! (property-tested in `tests/planner_properties.rs`).

use dpu_cluster::{
    handwired_physical, q10_gather_physical, ClusterCore, FabricConfig, PhysicalPlan, QueryId,
    Topology,
};
use dpu_sql::logical::{q10_graph, q3_graph, q5_graph, Finish, JoinGraph, LogicalPlan, Source};

use crate::cost::{CostModel, PlanEstimate, HAVING_SELECTIVITY};
use crate::stats::Catalog;

/// The planner: statistics + fabric shape, with plan search on top.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Merged per-shard statistics.
    pub catalog: Catalog,
    /// Fabric the merge phase is priced against.
    pub fabric: FabricConfig,
    /// Spine/leaf geometry the merge phase is priced over (single-rack
    /// reproduces the flat pricing exactly).
    pub topo: Topology,
    /// Nodes in the rack.
    pub n_nodes: usize,
    /// Full-scale multiplier.
    pub scale: u64,
}

/// The chosen plan plus the alternatives the search rejected (kept for
/// EXPLAIN and for the adaptive layer to fall back on).
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The cheapest plan by estimate.
    pub plan: PhysicalPlan,
    /// Its estimate.
    pub estimate: PlanEstimate,
    /// Rejected candidates, cheapest first.
    pub alternatives: Vec<(PhysicalPlan, PlanEstimate)>,
}

impl Planner {
    /// Builds a planner from a cluster core: collects the catalog and
    /// copies the fabric shape.
    pub fn new(core: &ClusterCore) -> Planner {
        Planner {
            catalog: Catalog::from_core(core),
            fabric: core.cfg().fabric.clone(),
            topo: core.cfg().topology(),
            n_nodes: core.cfg().n_nodes,
            scale: core.cfg().scale,
        }
    }

    /// The cost model over this planner's statistics.
    pub fn model(&self) -> CostModel<'_> {
        CostModel {
            catalog: &self.catalog,
            fabric: self.fabric.clone(),
            topo: self.topo.clone(),
            n_nodes: self.n_nodes,
            scale: self.scale,
        }
    }

    /// Chooses the cheapest candidate for a query by estimated cost.
    pub fn plan(&self, id: QueryId) -> PlanChoice {
        let mut cands = self.candidates(id);
        cands.sort_by(|a, b| a.1.total_seconds().total_cmp(&b.1.total_seconds()));
        let (plan, estimate) = cands.remove(0);
        PlanChoice { plan, estimate, alternatives: cands }
    }

    /// All costed candidates for a query. Queries with a join graph get
    /// a DP-ordered local plan; Q10 additionally gets both merge
    /// placements.
    pub fn candidates(&self, id: QueryId) -> Vec<(PhysicalPlan, PlanEstimate)> {
        let hw = handwired_physical(id);
        let plans: Vec<PhysicalPlan> = match id {
            QueryId::Q3 => {
                vec![PhysicalPlan { id, local: self.linearized(&q3_graph()), merge: hw.merge }]
            }
            QueryId::Q5 => {
                vec![PhysicalPlan { id, local: self.linearized(&q5_graph()), merge: hw.merge }]
            }
            QueryId::Q10 => {
                let mut local = self.linearized(&q10_graph());
                let Finish::AggTopK { spec, .. } = local.finish.clone() else {
                    unreachable!("q10 finishes with AggTopK")
                };
                local.finish = Finish::Agg(spec);
                vec![
                    PhysicalPlan { id, local: local.clone(), merge: q10_gather_physical().merge },
                    PhysicalPlan { id, local, merge: hw.merge },
                ]
            }
            _ => vec![hw],
        };
        let model = self.model();
        plans
            .into_iter()
            .map(|p| {
                let e = model.estimate(&p);
                (p, e)
            })
            .collect()
    }

    /// Linearizes a join graph along the DP-chosen order.
    pub fn linearized(&self, g: &JoinGraph) -> LogicalPlan {
        let (order, est) = self.join_order(g);
        g.linearize(&order, &est)
    }

    /// Left-deep DP join-order search (C_out objective): `dp[S]` is the
    /// cheapest left-deep order covering relation subset `S`, extended
    /// only along join edges (no cross products). Returns the best
    /// order and the per-relation filtered-cardinality estimates fed to
    /// `linearize` for build-side selection.
    pub fn join_order(&self, g: &JoinGraph) -> (Vec<usize>, Vec<f64>) {
        let n = g.relations.len();
        assert!((1..=16).contains(&n), "join graph size");
        let base: Vec<f64> = (0..n).map(|r| self.relation_estimate(g, r)).collect();
        if n == 1 {
            return (vec![0], base);
        }
        let sel: Vec<f64> = g
            .edges
            .iter()
            .map(|e| {
                1.0 / self
                    .catalog
                    .shard_ndv(&e.a_col)
                    .max(self.catalog.shard_ndv(&e.b_col))
                    .max(1.0)
            })
            .collect();
        let full = (1usize << n) - 1;
        // Estimated cardinality of the joined subset: product of bases ×
        // product of internal edge selectivities.
        let card = |s: usize| -> f64 {
            let mut c: f64 = (0..n).filter(|r| s & (1 << r) != 0).map(|r| base[r]).product();
            for (e, &es) in g.edges.iter().zip(&sel) {
                if s & (1 << e.a) != 0 && s & (1 << e.b) != 0 {
                    c *= es;
                }
            }
            c.max(1.0)
        };
        let connected = |r: usize, s: usize| {
            g.edges
                .iter()
                .any(|e| (e.a == r && s & (1 << e.b) != 0) || (e.b == r && s & (1 << e.a) != 0))
        };
        let mut cost = vec![f64::INFINITY; full + 1];
        let mut last = vec![usize::MAX; full + 1];
        for r in 0..n {
            cost[1 << r] = 0.0;
        }
        for s in 1..=full {
            if cost[s].is_finite() || s.count_ones() < 2 {
                continue;
            }
            for r in 0..n {
                if s & (1 << r) == 0 {
                    continue;
                }
                let t = s & !(1 << r);
                if !cost[t].is_finite() || !connected(r, t) {
                    continue;
                }
                let c = cost[t] + card(s);
                if c < cost[s] {
                    cost[s] = c;
                    last[s] = r;
                }
            }
        }
        assert!(cost[full].is_finite(), "join graph is connected");
        let mut order = Vec::with_capacity(n);
        let mut s = full;
        while s.count_ones() > 1 {
            let r = last[s];
            order.push(r);
            s &= !(1 << r);
        }
        order.push(s.trailing_zeros() as usize);
        order.reverse();
        (order, base)
    }

    /// Estimated per-shard rows a relation contributes after its
    /// filters (mean over shards; replicated tables see all rows).
    fn relation_estimate(&self, g: &JoinGraph, r: usize) -> f64 {
        let rel = &g.relations[r];
        let stats = self.catalog.table(rel.source.table());
        let mean = stats.per_shard_rows.iter().sum::<usize>() as f64
            / stats.per_shard_rows.len().max(1) as f64;
        let staged = match &rel.source {
            Source::Base(_) => mean,
            Source::GroupHaving { spec, .. } => {
                let ndv: f64 = spec.group_cols.iter().map(|c| self.catalog.shard_ndv(c)).product();
                ndv.min(mean).max(1.0) * HAVING_SELECTIVITY
            }
        };
        (staged * stats.conjunction(&rel.filters)).max(1.0)
    }
}

/// Predicate pushdown: moves every residual post-join filter whose
/// column a leaf relation provides down into that relation's scan.
/// Bit-identical to the unpushed plan — an inner equi-join commutes
/// with a one-sided filter, and the hash join preserves the relative
/// order of surviving rows.
pub fn pushdown(plan: &LogicalPlan) -> LogicalPlan {
    let mut p = plan.clone();
    let residual: Vec<_> = std::mem::take(&mut p.post_filters);
    for f in residual {
        match provider(&p, &f.col) {
            Some(r) => p.scans[r].filters.push(f),
            None => p.post_filters.push(f),
        }
    }
    p
}

/// The inverse rewrite, used to *construct* unpushed plans for the
/// pushdown-invariance property test: hoists every scan filter up to a
/// residual post-join filter, extending the join nodes' carried-column
/// lists so the filter columns survive to the joined intermediate.
/// Only meaningful for plans whose finish projects explicitly (group-by
/// or scalar sums); a bare `TopK` finish would leak the extra carried
/// columns into the output.
pub fn hoist_filters(plan: &LogicalPlan) -> LogicalPlan {
    let mut p = plan.clone();
    let mut hoisted = Vec::new();
    for r in 0..p.scans.len() {
        let filters = std::mem::take(&mut p.scans[r].filters);
        for f in filters {
            carry_through(&mut p, r, &f.col);
            hoisted.push(f);
        }
    }
    p.post_filters.extend(hoisted);
    p
}

/// Ensures `col`, provided by relation `r`, is carried from its entry
/// point through every later join.
fn carry_through(p: &mut LogicalPlan, r: usize, col: &str) {
    let entry = if r == p.first {
        0
    } else {
        let i = p.joins.iter().position(|j| j.scan == r).expect("relation joined somewhere");
        // The incoming scan side of its own join step.
        let j = &mut p.joins[i];
        let list = if j.build_acc { &mut j.probe_cols } else { &mut j.build_cols };
        if !list.iter().any(|c| c == col) {
            list.push(col.to_string());
        }
        i + 1
    };
    for j in &mut p.joins[entry..] {
        let list = if j.build_acc { &mut j.build_cols } else { &mut j.probe_cols };
        if !list.iter().any(|c| c == col) {
            list.push(col.to_string());
        }
    }
}

/// The leaf relation providing a column, if any.
fn provider(p: &LogicalPlan, col: &str) -> Option<usize> {
    p.scans.iter().position(|rel| match &rel.source {
        Source::Base(_) => rel.touched.iter().any(|c| c == col),
        Source::GroupHaving { spec, .. } => {
            spec.group_cols.iter().any(|c| c == col) || spec.aggs.iter().any(|(n, _)| n == col)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_cluster::{ClusterConfig, ShardPolicy};
    use dpu_sql::logical::{q12_plan, q14_plan, q1_plan, q3_plan, q5_plan, q6_plan};
    use dpu_sql::tpch::generate;

    fn planner() -> (Planner, dpu_sql::tpch::TpchDb) {
        let db = generate(1000, 13);
        let core = ClusterCore::new(
            db.clone(),
            &ShardPolicy::hash(8),
            ClusterConfig::prototype_slice(8, 10_000),
        );
        (Planner::new(&core), db)
    }

    #[test]
    fn dp_orders_execute_bit_identically_to_hand_wired_plans() {
        let (planner, db) = planner();
        for (g, hand) in [(q3_graph(), q3_plan()), (q5_graph(), q5_plan())] {
            let (order, _) = planner.join_order(&g);
            assert_eq!(order.len(), g.relations.len());
            let chosen = planner.linearized(&g);
            assert_eq!(chosen.execute(&db), hand.execute(&db), "{}", g.name);
        }
    }

    #[test]
    fn every_query_gets_a_costed_choice_with_q10_offering_both_placements() {
        let (planner, _) = planner();
        for id in dpu_cluster::QueryId::ALL {
            let choice = planner.plan(id);
            assert!(choice.estimate.total_seconds() > 0.0);
            if id == dpu_cluster::QueryId::Q10 {
                assert_eq!(choice.alternatives.len(), 1);
                let names = [choice.plan.merge.name(), choice.alternatives[0].0.merge.name()];
                assert!(names.contains(&"gather-topk") && names.contains(&"shuffle-topk"));
            }
        }
    }

    #[test]
    fn hoisted_filters_then_pushdown_change_nothing() {
        let (_, db) = planner();
        for plan in [q1_plan(), q3_plan(), q5_plan(), q6_plan(), q12_plan(), q14_plan()] {
            let total_filters: usize = plan.scans.iter().map(|s| s.filters.len()).sum();
            let hoisted = hoist_filters(&plan);
            assert_eq!(hoisted.post_filters.len(), total_filters, "{}", plan.name);
            let pushed = pushdown(&hoisted);
            assert!(pushed.post_filters.is_empty(), "{}", plan.name);
            let reference = plan.execute(&db);
            assert_eq!(hoisted.execute(&db), reference, "{} hoisted", plan.name);
            assert_eq!(pushed.execute(&db), reference, "{} pushed back", plan.name);
        }
    }
}
