//! EXPLAIN: a stable, machine-independent text rendering of a physical
//! plan with estimated rows, optionally lined up against actual rows
//! and measured cost from an instrumented run.
//!
//! The format is snapshot-tested (`tests/explain_snapshot.rs`), so keep
//! it boring: fixed indentation, lowercase labels identical to the
//! executor's trace, scientific notation with three significant digits
//! for seconds (simulated, hence deterministic).

use dpu_cluster::{MergeStrategy, PhysicalPlan, PlannedRun};

use crate::cost::PlanEstimate;

/// Renders a plan. Pass the `PlannedRun` of an instrumented execution
/// to add `actual=` columns; estimates alone render `est=` only.
pub fn explain(plan: &PhysicalPlan, est: &PlanEstimate, actual: Option<&PlannedRun>) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} plan (merge: {})\n", plan.id.name(), plan.merge.name()));
    out.push_str(&format!("  merge: {}\n", merge_detail(&plan.merge)));
    out.push_str(&format!(
        "  est:    local {} fabric {} merge {} bytes {}\n",
        secs(est.local_seconds),
        secs(est.fabric_seconds),
        secs(est.merge_seconds),
        est.fabric_bytes,
    ));
    if let Some(run) = actual {
        let c = &run.query.cost;
        out.push_str(&format!(
            "  actual: local {} fabric {} merge {} bytes {}\n",
            secs(c.local_seconds),
            secs(c.fabric_seconds),
            secs(c.merge_seconds),
            c.fabric_bytes,
        ));
    }
    out.push_str("  ops:\n");
    for (i, op) in est.ops.iter().enumerate() {
        let actual_rows = actual.map(|run| {
            run.shard_traces.iter().map(|t| t.get(i).map_or(0, |o| o.rows)).sum::<usize>()
        });
        out.push_str(&format!("    {:<44} est={}", op.label, op.rows.round() as u64));
        if let Some(a) = actual_rows {
            out.push_str(&format!(" actual={a}"));
        }
        out.push('\n');
    }
    out
}

fn merge_detail(m: &MergeStrategy) -> String {
    match m {
        MergeStrategy::Reagg(spec) => {
            format!("re-aggregate by [{}] at coordinator", spec.group_cols.join(","))
        }
        MergeStrategy::TopKMerge { value, k, .. } => {
            format!("gather partial top-k, re-rank {value} k={k}")
        }
        MergeStrategy::SumScalars { names } => {
            format!("sum scalar partials [{}]", names.join(","))
        }
        MergeStrategy::GatherTopK { value, k, .. } => {
            format!("gather all partials at coordinator, re-group, top {value} k={k}")
        }
        MergeStrategy::ShuffleTopK { key, value, k, .. } => {
            format!("shuffle partials by {key}, owners reduce, top {value} k={k}")
        }
    }
}

fn secs(s: f64) -> String {
    format!("{s:.3e}s")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Planner;
    use dpu_cluster::{ClusterConfig, ClusterCore, QueryId, ShardPolicy};
    use dpu_sql::tpch::generate;

    #[test]
    fn explain_lines_up_estimates_with_trace_labels() {
        let core = ClusterCore::new(
            generate(1000, 5),
            &ShardPolicy::hash(4),
            ClusterConfig::prototype_slice(4, 10_000),
        );
        let planner = Planner::new(&core);
        let choice = planner.plan(QueryId::Q3);
        let text = explain(&choice.plan, &choice.estimate, None);
        assert!(text.starts_with("Q3 plan (merge: topk-merge)\n"), "{text}");
        assert!(text.contains("scan customer filtered"), "{text}");
        assert!(text.contains("est="), "{text}");
        assert!(!text.contains("actual="), "{text}");
    }
}
