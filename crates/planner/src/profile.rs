//! Adaptive re-optimization from serve traffic.
//!
//! The serving pipeline reports every completed batch to a
//! [`ServeHook`]; [`AdaptiveServer`] implements that hook with a
//! per-template runtime profile. Each template carries the planner's
//! candidate plans twice-costed: the sketch-based *estimate* that chose
//! the initial plan, and the *profiled* cost measured by the
//! instrumented executor (`Cluster::run_planned`) — what the optimizer
//! re-costs against once real traffic has exposed the estimate's
//! cardinality errors (optd-style: plans are re-ranked mid-run, not
//! just at submission).
//!
//! - `Static` mode trusts the estimates forever: the plan picked at
//!   submission serves the whole run.
//! - `Adaptive` mode waits for [`AdaptiveServer::threshold`] completed
//!   queries of a template, then re-ranks that template's candidates by
//!   profiled cost; if the ranking flipped, it switches plans and logs
//!   a [`PlanSwitch`].
//!
//! Results never change across a switch — every candidate is
//! bit-identical by the planner's correctness invariant — only the
//! cost charged for later batches does.

use dpu_cluster::{ClusterQueryCost, PhysicalPlan, ServeHook};

/// How the serving layer uses the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Estimate-chosen plan, never revisited.
    Static,
    /// Re-rank by runtime profile after `threshold` completions.
    Adaptive,
}

/// One candidate plan for a template, costed both ways.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// Display name (`"gather-topk"`, …).
    pub name: String,
    /// The plan itself.
    pub plan: PhysicalPlan,
    /// The sketch-based estimate's total seconds (what static mode
    /// ranks by).
    pub est_seconds: f64,
    /// The profiled cluster cost from the instrumented executor (what
    /// adaptive mode re-ranks by, and what serving batches are charged).
    pub profiled: ClusterQueryCost,
}

/// A recorded mid-run plan change.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSwitch {
    /// Template index.
    pub template: usize,
    /// Simulated time of the switch, seconds.
    pub at_seconds: f64,
    /// Plan served before.
    pub from: String,
    /// Plan served after.
    pub to: String,
    /// Estimated seconds of the abandoned plan.
    pub from_est_seconds: f64,
    /// Profiled seconds of the adopted plan.
    pub to_profiled_seconds: f64,
}

/// Per-template runtime state.
#[derive(Debug, Clone)]
pub struct TemplateProfile {
    /// The candidates, as produced by the planner.
    pub candidates: Vec<CandidatePlan>,
    /// Index of the currently served candidate.
    pub selected: usize,
    /// Completed queries so far.
    pub completions: usize,
    /// Mean observed batch-execution seconds (the runtime profile).
    pub observed_mean: f64,
    batches: usize,
    reoptimized: bool,
}

impl TemplateProfile {
    fn new(candidates: Vec<CandidatePlan>) -> TemplateProfile {
        assert!(!candidates.is_empty(), "template needs at least one candidate");
        let selected = argmin(&candidates, |c| c.est_seconds);
        TemplateProfile {
            candidates,
            selected,
            completions: 0,
            observed_mean: 0.0,
            batches: 0,
            reoptimized: false,
        }
    }

    /// The candidate currently being served.
    pub fn current(&self) -> &CandidatePlan {
        &self.candidates[self.selected]
    }
}

/// The planner's serve-side hook: charges batches the profiled cost of
/// each template's selected plan and (in adaptive mode) re-ranks
/// mid-run.
#[derive(Debug, Clone)]
pub struct AdaptiveServer {
    /// Static or adaptive.
    pub mode: PlannerMode,
    /// Completed queries of a template before it may re-optimize.
    pub threshold: usize,
    /// Per-template state, indexed like the serve templates.
    pub templates: Vec<TemplateProfile>,
    /// Every switch taken, in time order.
    pub switches: Vec<PlanSwitch>,
}

impl AdaptiveServer {
    /// Builds the hook; each template starts on its estimate-cheapest
    /// candidate.
    pub fn new(mode: PlannerMode, threshold: usize, templates: Vec<Vec<CandidatePlan>>) -> Self {
        AdaptiveServer {
            mode,
            threshold: threshold.max(1),
            templates: templates.into_iter().map(TemplateProfile::new).collect(),
            switches: Vec::new(),
        }
    }
}

impl ServeHook for AdaptiveServer {
    fn template_cost(&mut self, tmpl: usize, _now: f64) -> Option<ClusterQueryCost> {
        Some(self.templates[tmpl].current().profiled.clone())
    }

    fn on_batch(&mut self, tmpl: usize, k: usize, exec_seconds: f64, done: f64) {
        let t = &mut self.templates[tmpl];
        t.completions += k;
        t.batches += 1;
        t.observed_mean += (exec_seconds - t.observed_mean) / t.batches as f64;
        if self.mode != PlannerMode::Adaptive || t.reoptimized || t.completions < self.threshold {
            return;
        }
        t.reoptimized = true;
        let best = argmin(&t.candidates, |c| c.profiled.total_seconds());
        if best != t.selected {
            self.switches.push(PlanSwitch {
                template: tmpl,
                at_seconds: done,
                from: t.candidates[t.selected].name.clone(),
                to: t.candidates[best].name.clone(),
                from_est_seconds: t.candidates[t.selected].est_seconds,
                to_profiled_seconds: t.candidates[best].profiled.total_seconds(),
            });
            t.selected = best;
        }
    }
}

fn argmin<T>(items: &[T], key: impl Fn(&T) -> f64) -> usize {
    let mut best = 0;
    for i in 1..items.len() {
        if key(&items[i]) < key(&items[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_cluster::{handwired_physical, NodeCost, QueryId};

    fn cost(local: f64, fabric: f64) -> ClusterQueryCost {
        ClusterQueryCost {
            per_node: vec![NodeCost { mem_seconds: local / 2.0, cpu_seconds: local / 2.0 }],
            local_seconds: local,
            fabric_seconds: fabric,
            merge_seconds: 0.0,
            fabric_bytes: 1000,
            failovers: 0,
            speculations: 0,
        }
    }

    fn two_candidates() -> Vec<CandidatePlan> {
        // Estimate prefers "gather" (1 ms), but the profile shows it
        // actually takes 10 ms while "shuffle" takes 2 ms.
        vec![
            CandidatePlan {
                name: "gather-topk".into(),
                plan: handwired_physical(QueryId::Q10),
                est_seconds: 1e-3,
                profiled: cost(5e-3, 5e-3),
            },
            CandidatePlan {
                name: "shuffle-topk".into(),
                plan: handwired_physical(QueryId::Q10),
                est_seconds: 3e-3,
                profiled: cost(1e-3, 1e-3),
            },
        ]
    }

    #[test]
    fn static_mode_never_switches() {
        let mut hook = AdaptiveServer::new(PlannerMode::Static, 4, vec![two_candidates()]);
        assert_eq!(hook.templates[0].selected, 0, "estimate picks gather");
        for i in 0..20 {
            hook.on_batch(0, 2, 1e-2, i as f64);
        }
        assert!(hook.switches.is_empty());
        assert_eq!(hook.templates[0].selected, 0);
    }

    #[test]
    fn adaptive_mode_switches_once_the_profile_contradicts_the_estimate() {
        let mut hook = AdaptiveServer::new(PlannerMode::Adaptive, 4, vec![two_candidates()]);
        hook.on_batch(0, 2, 1e-2, 0.5);
        assert!(hook.switches.is_empty(), "below threshold");
        hook.on_batch(0, 2, 1e-2, 0.9);
        assert_eq!(hook.switches.len(), 1);
        let s = &hook.switches[0];
        assert_eq!((s.from.as_str(), s.to.as_str()), ("gather-topk", "shuffle-topk"));
        assert_eq!(s.at_seconds, 0.9);
        assert_eq!(hook.templates[0].selected, 1);
        // The override now charges the adopted plan's profiled cost.
        let c = hook.template_cost(0, 1.0).unwrap();
        assert!((c.total_seconds() - 2e-3).abs() < 1e-12);
        // And it never switches twice.
        for i in 0..10 {
            hook.on_batch(0, 2, 2e-3, 1.0 + i as f64);
        }
        assert_eq!(hook.switches.len(), 1);
    }
}
