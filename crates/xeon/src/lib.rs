//! Analytic model of the paper's x86 baseline.
//!
//! The paper compares the DPU against "a Xeon server, with two Intel Xeon
//! E5-2699 v3 18C/36T processors and 256 GB DDR4 DRAM running at
//! 1600 MHz", assuming "a TDP of 145 W for the Xeon, and 6 W for the DPU"
//! (§5). Because we cannot run on that 2014 testbed, the baseline is an
//! analytic cost model with two inputs:
//!
//! 1. **Machine parameters** ([`XeonConfig`]) — cores, clock, issue
//!    width, memory system — driving an out-of-order cost function for
//!    counted kernels ([`Xeon::kernel_seconds`]).
//! 2. **Calibration anchors** ([`calibration`]) — the absolute x86
//!    throughputs the paper itself reports (SAJSON 5.2 GB/s, SpMM
//!    34.5 GB/s effective bandwidth, …), used directly where available so
//!    the comparison is against the *paper's* baseline, not our guess.
//!
//! The DPU side of every experiment comes from the simulator; only the
//! baseline uses this model. EXPERIMENTS.md records which anchor each
//! figure uses.

pub mod calibration;
pub mod rack;

pub use rack::XeonRack;

use dpu_isa::{OpCounts, PipelineModel};

/// Machine parameters of the baseline server.
#[derive(Debug, Clone, PartialEq)]
pub struct XeonConfig {
    /// Physical cores used by the paper's baselines (18C/36T × 2, but the
    /// paper's software typically ran one socket's 18 cores / 36 threads).
    pub cores: usize,
    /// SMT threads available.
    pub threads: usize,
    /// Sustained all-core clock in Hz.
    pub clock_hz: f64,
    /// Issue width of the out-of-order core.
    pub issue_width: u64,
    /// Load/store ports.
    pub mem_ports: u64,
    /// Branch-misprediction penalty, cycles.
    pub mispredict_penalty: u64,
    /// Factor by which out-of-order execution hides declared dependency
    /// stalls relative to the in-order dpCore.
    pub ooo_hiding: u64,
    /// Effective streaming memory bandwidth, bytes/second (calibrated —
    /// see [`calibration::STREAM_BW`]).
    pub stream_bw: f64,
    /// TDP used for performance/watt, watts.
    pub tdp_watts: f64,
}

impl Default for XeonConfig {
    fn default() -> Self {
        XeonConfig {
            cores: 18,
            threads: 36,
            clock_hz: 2.3e9,
            issue_width: 4,
            mem_ports: 2,
            mispredict_penalty: 14,
            ooo_hiding: 6,
            stream_bw: calibration::STREAM_BW,
            tdp_watts: 145.0,
        }
    }
}

/// The baseline platform.
#[derive(Debug, Clone, Default)]
pub struct Xeon {
    /// Machine parameters.
    pub config: XeonConfig,
}

impl Xeon {
    /// A baseline with default (paper) parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Provisioned power used in performance/watt comparisons.
    pub fn tdp_watts(&self) -> f64 {
        self.config.tdp_watts
    }

    /// Seconds to stream `bytes` through memory at the calibrated
    /// effective bandwidth (memory-bound workloads).
    pub fn stream_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.config.stream_bw
    }

    /// Cycles one core spends retiring an operation mix, with the
    /// out-of-order pipeline overlapping work the dpCore cannot.
    pub fn kernel_cycles(&self, counts: &OpCounts) -> u64 {
        let c = &self.config;
        let issue = counts.instructions().div_ceil(c.issue_width);
        let mem = (counts.loads + counts.stores).div_ceil(c.mem_ports);
        // The OoO window hides multiplier latency entirely (pipelined
        // 3-cycle IMUL) and most declared dependency stalls.
        issue.max(mem)
            + counts.mispredicts * c.mispredict_penalty
            + counts.dependency_stalls / c.ooo_hiding
    }

    /// Seconds for `threads_used` threads to each retire `counts`
    /// (compute-bound workloads; callers cap at `config.threads`).
    pub fn kernel_seconds(&self, counts: &OpCounts, threads_used: usize) -> f64 {
        let threads = threads_used.min(self.config.threads).max(1);
        let _ = threads;
        self.kernel_cycles(counts) as f64 / self.config.clock_hz
    }

    /// Seconds for a workload that is the max of a compute part (already
    /// divided across threads) and a memory-streaming part.
    pub fn roofline_seconds(&self, per_thread_counts: &OpCounts, bytes: u64) -> f64 {
        self.kernel_seconds(per_thread_counts, self.config.threads).max(self.stream_seconds(bytes))
    }

    /// The dpCore pipeline model used for cross-checking the same counts
    /// on the DPU side.
    pub fn dpcore_reference() -> PipelineModel {
        PipelineModel::default()
    }
}

/// Performance/watt gain of the DPU over this baseline given both
/// throughputs in any consistent unit.
///
/// # Example
///
/// ```
/// use xeon_model::{dpu_gain, Xeon};
/// let x = Xeon::new();
/// // Equal throughput ⇒ the 6 W DPU wins by 145/6 ≈ 24×.
/// let g = dpu_gain(1.0, 6.0, 1.0, &x);
/// assert!((g - 145.0 / 6.0).abs() < 1e-9);
/// ```
pub fn dpu_gain(dpu_throughput: f64, dpu_watts: f64, xeon_throughput: f64, xeon: &Xeon) -> f64 {
    (dpu_throughput / dpu_watts) / (xeon_throughput / xeon.tdp_watts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let x = Xeon::new();
        assert_eq!(x.config.cores, 18);
        assert_eq!(x.config.threads, 36);
        assert_eq!(x.tdp_watts(), 145.0);
    }

    #[test]
    fn stream_time_uses_calibrated_bandwidth() {
        let x = Xeon::new();
        let s = x.stream_seconds(34_500_000_000);
        assert!((s - 1.0).abs() < 1e-9, "34.5 GB should take 1 s");
    }

    #[test]
    fn ooo_hides_what_the_dpcore_cannot() {
        let x = Xeon::new();
        let counts = OpCounts {
            alu: 1000,
            mul: 100,
            mul_stall_cycles: 800,
            loads: 400,
            stores: 100,
            branches: 100,
            mispredicts: 10,
            dependency_stalls: 600,
            ..OpCounts::default()
        };
        let xeon_cycles = x.kernel_cycles(&counts);
        let dpu_cycles = counts.dpcore_cycles(&Xeon::dpcore_reference());
        assert!(
            xeon_cycles * 2 < dpu_cycles,
            "OoO core should be much faster per clock: {xeon_cycles} vs {dpu_cycles}"
        );
    }

    #[test]
    fn roofline_picks_the_binding_constraint() {
        let x = Xeon::new();
        let tiny = OpCounts { alu: 10, ..OpCounts::default() };
        // Memory-bound: streaming dominates.
        let t = x.roofline_seconds(&tiny, 34_500_000_000);
        assert!((t - 1.0).abs() < 1e-6);
        // Compute-bound: huge kernel, no bytes.
        let big = OpCounts { alu: 10_000_000_000, ..OpCounts::default() };
        assert!(x.roofline_seconds(&big, 0) > 1.0);
    }

    #[test]
    fn equal_throughput_gain_is_power_ratio() {
        let x = Xeon::new();
        assert!((dpu_gain(2.0, 6.0, 2.0, &x) - 145.0 / 6.0).abs() < 1e-9);
        // DPU must exceed 6/145 ≈ 4.1% of Xeon throughput to break even.
        assert!(dpu_gain(0.0414, 6.0, 1.0, &x) > 0.99);
    }
}
