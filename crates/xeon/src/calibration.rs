//! Calibration anchors: absolute x86 throughputs the paper reports.
//!
//! Wherever §5 of the paper states what the Xeon baseline achieved, we
//! use that number directly rather than deriving it, so Figure 14/16
//! gains compare the *simulated DPU* against the *paper's measured
//! baseline*. Each constant cites its sentence.

/// Effective streaming bandwidth of the baseline for memory-bound
/// kernels, bytes/s. §5.2: "effective bandwidth across 36 cores —
/// 34.5 GB/s" for the optimized SpMM; the same figure is consistent with
/// the Low-NDV group-by being "at a rate close to memory bandwidth" with
/// a 6.7× DPU gain.
pub const STREAM_BW: f64 = 34.5e9;

/// SAJSON parse throughput on the baseline, bytes/s. §5.5: "SAJSON is
/// able to parse the input data at 5.2 GB/s on our x86 machine, achieving
/// an IPC of 3.05".
pub const SAJSON_BW: f64 = 5.2e9;

/// SAJSON's measured IPC on the baseline (§5.5), used to sanity-check the
/// out-of-order cost function.
pub const SAJSON_IPC: f64 = 3.05;

/// Effective bandwidth of the paper's optimized x86 SpMM (§5.2).
pub const SPMM_EFFECTIVE_BW: f64 = 34.5e9;

/// The DPU SpMM effective bandwidth the paper reports (§5.2), used as a
/// shape target, bytes/s.
pub const DPU_SPMM_EFFECTIVE_BW: f64 = 5.24e9;

/// The DPU JSON throughput the paper reports (§5.5), bytes/s.
pub const DPU_JSON_BW: f64 = 1.73e9;

/// HARP's published 32-way partitioning throughput (§3.4 cites 6 GB/s),
/// the reference line in Figure 13.
pub const HARP_PARTITION_BW: f64 = 6.0e9;

/// Paper-reported performance/watt gains (Figure 14), used as shape
/// targets in EXPERIMENTS.md, not as inputs to any computation.
pub mod reported_gains {
    /// SVM vs LIBSVM (§5.1): "over 15× more efficient".
    pub const SVM: f64 = 15.0;
    /// Similarity search vs optimized Xeon SpMM (§5.2).
    pub const SIMSEARCH: f64 = 3.9;
    /// Group-by, low number of distinct values (§5.3).
    pub const GROUPBY_LOW_NDV: f64 = 6.7;
    /// Group-by, high number of distinct values (§5.3).
    pub const GROUPBY_HIGH_NDV: f64 = 9.7;
    /// HyperLogLog with CRC32 hashing (§5.4): "almost 9× better".
    pub const HLL_CRC32: f64 = 9.0;
    /// JSON parsing vs SAJSON (§5.5).
    pub const JSON: f64 = 8.0;
    /// Disparity vs OpenMP baseline (§5.6).
    pub const DISPARITY: f64 = 8.6;
    /// TPC-H geometric mean (§5.3, Figure 16).
    pub const TPCH_GEOMEAN: f64 = 15.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_is_self_consistent() {
        // The paper's own numbers should reproduce its own gains at the
        // 145 W / 6 W power ratio.
        let power_ratio = 145.0 / 6.0;
        let json_gain = (DPU_JSON_BW / SAJSON_BW) * power_ratio;
        assert!((json_gain - reported_gains::JSON).abs() < 0.1, "json {json_gain}");
        let spmm_gain = (DPU_SPMM_EFFECTIVE_BW / SPMM_EFFECTIVE_BW) * power_ratio;
        assert!((spmm_gain - reported_gains::SIMSEARCH).abs() < 0.25, "spmm {spmm_gain}");
    }

    #[test]
    fn dpu_partitioning_beats_harp() {
        let dpu_partition_bw = 9.3e9;
        assert!(dpu_partition_bw > HARP_PARTITION_BW);
    }

    #[test]
    fn low_ndv_gain_implies_stream_bw() {
        // DPU group-by at ~9.6 GB/s with a 6.7× gain implies the Xeon ran
        // at ≈34.7 GB/s — matching the SpMM-derived STREAM_BW anchor.
        let implied = 9.6e9 * (145.0 / 6.0) / reported_gains::GROUPBY_LOW_NDV;
        assert!((implied - STREAM_BW).abs() / STREAM_BW < 0.02, "implied {implied}");
    }
}
