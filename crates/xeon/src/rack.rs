//! The multi-socket Xeon rack the DPU rack is compared against.
//!
//! §1 of the paper frames the density argument in rack units: a 42U rack
//! of commodity 2U servers holds 21 chassis, each with two sockets and
//! eight DDR4 channels. This module turns that chassis arithmetic into a
//! serving baseline: how many queries per second does a rack of Xeons
//! sustain, and at what power, so the cluster layer can report rack-level
//! performance/watt against it.

use crate::Xeon;

/// A 42U rack of two-socket Xeon servers.
#[derive(Debug, Clone)]
pub struct XeonRack {
    /// 2U chassis in the rack (21 in 42U).
    pub servers: usize,
    /// Sockets per chassis.
    pub sockets_per_server: usize,
    /// The per-socket model.
    pub socket: Xeon,
    /// Non-CPU power per chassis (fans, NIC, storage, VRs), watts.
    pub overhead_watts_per_server: f64,
    /// DRAM gigabytes per chassis (the paper's testbed: 256 GB).
    pub dram_gb_per_server: u32,
}

impl XeonRack {
    /// The full-rack baseline: 21 × 2-socket E5-2699 v3 servers.
    pub fn rack_42u() -> Self {
        XeonRack {
            servers: 21,
            sockets_per_server: 2,
            socket: Xeon::new(),
            overhead_watts_per_server: 150.0,
            dram_gb_per_server: 256,
        }
    }

    /// Sockets available to run queries.
    pub fn sockets(&self) -> usize {
        self.servers * self.sockets_per_server
    }

    /// Provisioned rack power, watts.
    pub fn rack_watts(&self) -> f64 {
        self.servers as f64
            * (self.sockets_per_server as f64 * self.socket.tdp_watts()
                + self.overhead_watts_per_server)
    }

    /// Total rack DRAM, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.dram_gb_per_server as u64 * (1 << 30) * self.servers as u64
    }

    /// Queries/second the rack sustains when each socket serves queries
    /// of `mean_query_seconds` back to back (sockets are independent —
    /// the sharded-by-server deployment the paper's baseline implies).
    pub fn qps(&self, mean_query_seconds: f64) -> f64 {
        assert!(mean_query_seconds > 0.0);
        self.sockets() as f64 / mean_query_seconds
    }

    /// Queries/second/watt at the given mean query time.
    pub fn qps_per_watt(&self, mean_query_seconds: f64) -> f64 {
        self.qps(mean_query_seconds) / self.rack_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_arithmetic() {
        let r = XeonRack::rack_42u();
        assert_eq!(r.sockets(), 42);
        // 21 × (2 × 145 + 150) = 9.24 kW — under half a DPU rack's 20 kW
        // budget but with ~1/9 the memory channels.
        assert!((r.rack_watts() - 9240.0).abs() < 1.0);
        assert_eq!(r.capacity_bytes(), 21 * 256 * (1u64 << 30));
    }

    #[test]
    fn qps_scales_with_sockets() {
        let r = XeonRack::rack_42u();
        assert!((r.qps(0.5) - 84.0).abs() < 1e-9);
        let per_watt = r.qps_per_watt(0.5);
        assert!(per_watt > 0.0 && per_watt < 1.0);
    }
}
