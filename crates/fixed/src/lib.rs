//! Q10.22 fixed-point arithmetic.
//!
//! The dpCore has no floating-point unit; the paper converts every dataset
//! to a **10.22 software fixed point** format (10 integer bits, 22 fraction
//! bits, one sign bit, in an `i32`) and reports "negligible loss in
//! accuracy" because analytics pipelines normalize their inputs into a
//! small range. This crate implements that format: arithmetic, conversion,
//! and the transcendental approximations (exp, sqrt) the machine-learning
//! workloads need.
//!
//! # Example
//!
//! ```
//! use dpu_fixed::Q10_22;
//!
//! let a = Q10_22::from_f64(1.5);
//! let b = Q10_22::from_f64(2.25);
//! assert_eq!((a * b).to_f64(), 3.375);
//! assert!((a / b).to_f64() - 0.666_666 < 1e-4);
//! ```

pub mod ops;

pub use ops::{dot, scale_add, sum};

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Number of fractional bits in the format.
pub const FRAC_BITS: u32 = 22;
/// Number of integer (magnitude) bits in the format.
pub const INT_BITS: u32 = 10;
const ONE_RAW: i32 = 1 << FRAC_BITS;

/// A Q10.22 fixed-point number: 10 integer bits (sign included, as in the
/// paper's "10.22 software fixed point"), 22 fraction bits, in an `i32`.
///
/// Representable range is [-512, 512) with a resolution of 2⁻²² ≈ 2.4e-7.
/// Arithmetic uses `i64` intermediates and saturates on overflow, matching
/// the defensive style of the paper's software fixed-point library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q10_22(i32);

impl Q10_22 {
    /// Zero.
    pub const ZERO: Q10_22 = Q10_22(0);
    /// One.
    pub const ONE: Q10_22 = Q10_22(ONE_RAW);
    /// The largest representable value (just under 512).
    pub const MAX: Q10_22 = Q10_22(i32::MAX);
    /// The most negative representable value.
    pub const MIN: Q10_22 = Q10_22(i32::MIN);
    /// Smallest positive step, 2⁻²².
    pub const EPSILON: Q10_22 = Q10_22(1);

    /// Creates a value from its raw two's-complement representation.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Q10_22(raw)
    }

    /// The raw two's-complement representation.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Converts from an integer, saturating at the format bounds.
    ///
    /// ```
    /// # use dpu_fixed::Q10_22;
    /// assert_eq!(Q10_22::from_int(3).to_f64(), 3.0);
    /// assert_eq!(Q10_22::from_int(100_000), Q10_22::MAX);
    /// ```
    pub fn from_int(v: i32) -> Self {
        Q10_22(saturate((v as i64) << FRAC_BITS))
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * ONE_RAW as f64).round();
        if scaled >= i32::MAX as f64 {
            Q10_22::MAX
        } else if scaled <= i32::MIN as f64 {
            Q10_22::MIN
        } else {
            Q10_22(scaled as i32)
        }
    }

    /// Converts to `f64` exactly (every Q10.22 value fits in an `f64`).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_RAW as f64
    }

    /// Truncates toward zero to an integer.
    pub fn trunc(self) -> i32 {
        (self.0 as i64 >> FRAC_BITS) as i32 + i32::from(self.0 < 0 && self.0 & (ONE_RAW - 1) != 0)
    }

    /// Absolute value (saturating for `MIN`).
    pub fn abs(self) -> Self {
        Q10_22(self.0.saturating_abs())
    }

    /// Saturating multiplication, the dpCore's multiply-then-shift idiom
    /// with an `i64` intermediate.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        Q10_22(saturate((self.0 as i64 * rhs.0 as i64) >> FRAC_BITS))
    }

    /// Saturating division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn saturating_div(self, rhs: Self) -> Self {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        Q10_22(saturate(((self.0 as i64) << FRAC_BITS) / rhs.0 as i64))
    }

    /// Fixed-point square root via integer Newton iteration.
    ///
    /// Returns [`Q10_22::ZERO`] for non-positive inputs (the domain choice
    /// made by the paper's normalized-data kernels).
    pub fn sqrt(self) -> Self {
        if self.0 <= 0 {
            return Q10_22::ZERO;
        }
        // sqrt(x) where x = raw / 2^22 → sqrt(raw << 22) in raw units.
        let target = (self.0 as u64) << FRAC_BITS;
        let mut guess = 1u64 << (((67 - target.leading_zeros()) / 2).min(31));
        loop {
            let next = (guess + target / guess) / 2;
            if next >= guess {
                break;
            }
            guess = next;
        }
        Q10_22(saturate(guess as i64))
    }

    /// Fixed-point e^x.
    ///
    /// The fabricated chip computed exp with a table + polynomial reaching
    /// Q10.22 precision; we produce the correctly rounded Q10.22 result,
    /// which is what that scheme converges to. Saturates above the format
    /// range and underflows to zero for deeply negative arguments.
    pub fn exp(self) -> Self {
        Q10_22::from_f64(self.to_f64().exp())
    }

    /// `max(self, other)`.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "clamp bounds inverted");
        self.max(lo).min(hi)
    }

    /// True if the value is negative.
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }
}

#[inline]
fn saturate(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

impl Add for Q10_22 {
    type Output = Q10_22;
    #[inline]
    fn add(self, rhs: Q10_22) -> Q10_22 {
        Q10_22(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Q10_22 {
    #[inline]
    fn add_assign(&mut self, rhs: Q10_22) {
        *self = *self + rhs;
    }
}

impl Sub for Q10_22 {
    type Output = Q10_22;
    #[inline]
    fn sub(self, rhs: Q10_22) -> Q10_22 {
        Q10_22(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Q10_22 {
    #[inline]
    fn sub_assign(&mut self, rhs: Q10_22) {
        *self = *self - rhs;
    }
}

impl Mul for Q10_22 {
    type Output = Q10_22;
    #[inline]
    fn mul(self, rhs: Q10_22) -> Q10_22 {
        self.saturating_mul(rhs)
    }
}

impl MulAssign for Q10_22 {
    #[inline]
    fn mul_assign(&mut self, rhs: Q10_22) {
        *self = *self * rhs;
    }
}

impl Div for Q10_22 {
    type Output = Q10_22;
    #[inline]
    fn div(self, rhs: Q10_22) -> Q10_22 {
        self.saturating_div(rhs)
    }
}

impl Neg for Q10_22 {
    type Output = Q10_22;
    #[inline]
    fn neg(self) -> Q10_22 {
        Q10_22(self.0.saturating_neg())
    }
}

impl Sum for Q10_22 {
    fn sum<I: Iterator<Item = Q10_22>>(iter: I) -> Q10_22 {
        iter.fold(Q10_22::ZERO, Add::add)
    }
}

impl From<i16> for Q10_22 {
    fn from(v: i16) -> Self {
        Q10_22::from_int(v as i32)
    }
}

impl fmt::Display for Q10_22 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Q10_22::ONE.to_f64(), 1.0);
        assert_eq!(Q10_22::ZERO.to_f64(), 0.0);
        assert_eq!(Q10_22::EPSILON.raw(), 1);
    }

    #[test]
    fn f64_roundtrip_within_epsilon() {
        for &v in &[0.0, 1.0, -1.0, 0.5, std::f64::consts::PI, -123.456, 511.9, -511.9] {
            let q = Q10_22::from_f64(v);
            assert!((q.to_f64() - v).abs() <= 1.0 / (1 << 22) as f64, "{v}");
        }
    }

    #[test]
    fn add_sub_exact() {
        let a = Q10_22::from_f64(1.25);
        let b = Q10_22::from_f64(2.5);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!((b - a).to_f64(), 1.25);
        assert_eq!((-a).to_f64(), -1.25);
    }

    #[test]
    fn mul_div_basics() {
        let a = Q10_22::from_f64(3.0);
        let b = Q10_22::from_f64(0.5);
        assert_eq!((a * b).to_f64(), 1.5);
        assert_eq!((a / b).to_f64(), 6.0);
    }

    #[test]
    fn saturation_on_overflow() {
        let big = Q10_22::from_f64(500.0);
        assert_eq!(big + big, Q10_22::MAX);
        assert_eq!(big * big, Q10_22::MAX);
        assert_eq!((-big) - big, Q10_22::MIN);
        assert_eq!(Q10_22::from_int(5000), Q10_22::MAX);
        assert_eq!(Q10_22::from_f64(1e9), Q10_22::MAX);
        assert_eq!(Q10_22::from_f64(-1e9), Q10_22::MIN);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Q10_22::ONE / Q10_22::ZERO;
    }

    #[test]
    fn trunc_toward_zero() {
        assert_eq!(Q10_22::from_f64(2.9).trunc(), 2);
        assert_eq!(Q10_22::from_f64(-2.9).trunc(), -2);
        assert_eq!(Q10_22::from_f64(-3.0).trunc(), -3);
        assert_eq!(Q10_22::ZERO.trunc(), 0);
    }

    #[test]
    fn sqrt_matches_reference() {
        for &v in &[0.25, 1.0, 2.0, 10.0, 400.0, 0.0001] {
            let got = Q10_22::from_f64(v).sqrt().to_f64();
            assert!((got - v.sqrt()).abs() < 2e-4, "sqrt({v}) = {got}, want {}", v.sqrt());
        }
        assert_eq!(Q10_22::from_f64(-4.0).sqrt(), Q10_22::ZERO);
        assert_eq!(Q10_22::ZERO.sqrt(), Q10_22::ZERO);
    }

    #[test]
    fn exp_matches_reference_in_domain() {
        for &v in &[-10.0, -2.0, -0.5, 0.0, 0.5, 2.0, 6.0] {
            let got = Q10_22::from_f64(v).exp().to_f64();
            let want: f64 = v.exp();
            let tol = (want * 1e-3).max(2.0 / (1 << 22) as f64);
            assert!((got - want).abs() < tol, "exp({v}) = {got}, want {want}");
        }
        // Deeply negative arguments underflow to zero, as on the chip.
        assert_eq!(Q10_22::from_f64(-40.0).exp().to_f64(), 0.0);
    }

    #[test]
    fn minmax_clamp() {
        let a = Q10_22::from_f64(1.0);
        let b = Q10_22::from_f64(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Q10_22::from_f64(5.0).clamp(a, b), b);
        assert_eq!(Q10_22::from_f64(-5.0).clamp(a, b), a);
        assert!(Q10_22::from_f64(-1.0).is_negative());
        assert!(!a.is_negative());
    }

    #[test]
    fn abs_saturates_min() {
        assert_eq!(Q10_22::MIN.abs(), Q10_22::MAX);
        assert_eq!(Q10_22::from_f64(-3.5).abs().to_f64(), 3.5);
    }

    #[test]
    fn sum_and_from_i16() {
        let total: Q10_22 = (1i16..=4).map(Q10_22::from).sum();
        assert_eq!(total.to_f64(), 10.0);
    }

    #[test]
    fn display_is_decimal() {
        assert_eq!(Q10_22::from_f64(1.5).to_string(), "1.500000");
    }
}
