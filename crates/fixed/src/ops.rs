//! Vector kernels over Q10.22 slices.
//!
//! These are the primitive loops the SVM and similarity-search workloads
//! run on every dpCore: dot products, accumulations and AXPY-style updates.
//! They use a wide `i64` accumulator (the dpCore is a 64-bit machine) so a
//! long dot product does not saturate element-by-element.

use crate::{FRAC_BITS, Q10_22};

/// Dot product of two equal-length Q10.22 slices with an `i64` accumulator.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use dpu_fixed::{dot, Q10_22};
/// let a: Vec<Q10_22> = [1.0, 2.0].iter().map(|&v| Q10_22::from_f64(v)).collect();
/// let b: Vec<Q10_22> = [3.0, 4.0].iter().map(|&v| Q10_22::from_f64(v)).collect();
/// assert_eq!(dot(&a, &b).to_f64(), 11.0);
/// ```
pub fn dot(a: &[Q10_22], b: &[Q10_22]) -> Q10_22 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc: i64 = 0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += (x.raw() as i64 * y.raw() as i64) >> FRAC_BITS;
    }
    Q10_22::from_raw(acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

/// Sum of a Q10.22 slice with an `i64` accumulator.
pub fn sum(xs: &[Q10_22]) -> Q10_22 {
    let acc: i64 = xs.iter().map(|x| x.raw() as i64).sum();
    Q10_22::from_raw(acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

/// In-place `y += alpha * x` (AXPY), the SMO coefficient update kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scale_add(y: &mut [Q10_22], alpha: Q10_22, x: &[Q10_22]) {
    assert_eq!(y.len(), x.len(), "scale_add length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: f64) -> Q10_22 {
        Q10_22::from_f64(v)
    }

    #[test]
    fn dot_matches_float_reference() {
        let a: Vec<Q10_22> = (0..100).map(|i| q(i as f64 * 0.01 - 0.5)).collect();
        let b: Vec<Q10_22> = (0..100).map(|i| q((i % 7) as f64 * 0.1)).collect();
        let want: f64 = a.iter().zip(&b).map(|(x, y)| x.to_f64() * y.to_f64()).sum();
        assert!((dot(&a, &b).to_f64() - want).abs() < 1e-3);
    }

    #[test]
    fn dot_does_not_saturate_midway() {
        // Elementwise products alternate near ±max; the i64 accumulator
        // must cancel them instead of saturating each step.
        let a: Vec<Q10_22> =
            (0..10).map(|i| if i % 2 == 0 { q(500.0) } else { q(-500.0) }).collect();
        let b = vec![q(500.0); 10];
        // Pairwise products are ±250000 (saturating alone), but they cancel.
        assert_eq!(dot(&a, &b).to_f64(), 0.0);
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot(&[], &[]), Q10_22::ZERO);
        assert_eq!(sum(&[]), Q10_22::ZERO);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[Q10_22::ONE], &[]);
    }

    #[test]
    fn sum_matches_reference() {
        let xs: Vec<Q10_22> = (1..=10).map(|i| q(i as f64 * 0.5)).collect();
        assert_eq!(sum(&xs).to_f64(), 27.5);
    }

    #[test]
    fn scale_add_is_axpy() {
        let mut y = vec![q(1.0), q(2.0)];
        let x = vec![q(10.0), q(20.0)];
        scale_add(&mut y, q(0.5), &x);
        assert_eq!(y[0].to_f64(), 6.0);
        assert_eq!(y[1].to_f64(), 12.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scale_add_length_mismatch_panics() {
        scale_add(&mut [Q10_22::ONE], Q10_22::ONE, &[]);
    }
}
