//! Simulated time, measured in core clock cycles.
//!
//! The whole DPU simulation runs on a single clock domain: the 800 MHz
//! dpCore clock. DRAM and crossbar models convert their native latencies
//! into core cycles at configuration time, which keeps the event queue
//! simple and exact (no rational clock-domain crossing arithmetic at run
//! time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulated time, in core clock cycles.
///
/// `Time` is an absolute timestamp when returned by the engine and a span
/// when produced by subtraction; both views share the same representation,
/// mirroring `std::time::Duration` arithmetic.
///
/// # Example
///
/// ```
/// use dpu_sim::Time;
/// let a = Time::from_cycles(100);
/// let b = a + Time::from_cycles(20);
/// assert_eq!((b - a).cycles(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw cycle count.
    ///
    /// ```
    /// # use dpu_sim::Time;
    /// assert_eq!(Time::from_cycles(42).cycles(), 42);
    /// ```
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        Time(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Converts to seconds given the clock frequency.
    ///
    /// ```
    /// # use dpu_sim::{Time, Frequency};
    /// let t = Time::from_cycles(800_000_000);
    /// assert!((t.as_secs(Frequency::DPU_CORE) - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn as_secs(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.hz()
    }

    /// Converts to nanoseconds given the clock frequency.
    #[inline]
    pub fn as_nanos(self, freq: Frequency) -> f64 {
        self.as_secs(freq) * 1e9
    }

    /// Saturating addition; `Time::MAX` absorbs.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at [`Time::ZERO`].
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Time {
    fn from(cycles: u64) -> Self {
        Time(cycles)
    }
}

/// A clock frequency, used to convert cycle counts to wall-clock rates.
///
/// # Example
///
/// ```
/// use dpu_sim::Frequency;
/// let f = Frequency::from_mhz(800);
/// assert_eq!(f.hz(), 8.0e8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency(f64);

impl Frequency {
    /// The dpCore clock of the fabricated 40 nm DPU: 800 MHz.
    pub const DPU_CORE: Frequency = Frequency(800.0e6);

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Frequency(mhz as f64 * 1e6)
    }

    /// Creates a frequency from hertz.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz > 0.0, "frequency must be positive");
        Frequency(hz)
    }

    /// The frequency in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Converts a byte count over a cycle span into bytes/second.
    ///
    /// Returns 0.0 for an empty span to avoid NaN propagation in reports.
    pub fn bytes_per_sec(self, bytes: u64, span: Time) -> f64 {
        if span == Time::ZERO {
            return 0.0;
        }
        bytes as f64 / span.as_secs(self)
    }

    /// Converts bytes/second into bytes-per-cycle at this frequency.
    pub fn bytes_per_cycle(self, bytes_per_sec: f64) -> f64 {
        bytes_per_sec / self.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.0 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let a = Time::from_cycles(7);
        let b = Time::from_cycles(3);
        assert_eq!((a + b).cycles(), 10);
        assert_eq!((a - b).cycles(), 4);
        let mut c = a;
        c += b;
        assert_eq!(c.cycles(), 10);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn time_ordering_and_minmax() {
        let a = Time::from_cycles(5);
        let b = Time::from_cycles(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(Time::MAX.saturating_add(Time::from_cycles(1)), Time::MAX);
        assert_eq!(Time::ZERO.saturating_sub(Time::from_cycles(1)), Time::ZERO);
    }

    #[test]
    fn seconds_conversion_at_core_clock() {
        let t = Time::from_cycles(400_000_000);
        assert!((t.as_secs(Frequency::DPU_CORE) - 0.5).abs() < 1e-12);
        assert!((t.as_nanos(Frequency::DPU_CORE) - 0.5e9).abs() < 1e-3);
    }

    #[test]
    fn bandwidth_conversion() {
        let f = Frequency::DPU_CORE;
        // 16 bytes per cycle at 800 MHz = 12.8 GB/s (DDR3-1600 peak).
        let bps = f.bytes_per_sec(16 * 800_000_000, Time::from_cycles(800_000_000));
        assert!((bps - 12.8e9).abs() < 1.0);
        assert!((f.bytes_per_cycle(12.8e9) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_span_rate_is_zero() {
        assert_eq!(Frequency::DPU_CORE.bytes_per_sec(100, Time::ZERO), 0.0);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1u64, 2, 3].iter().map(|&c| Time::from_cycles(c)).sum();
        assert_eq!(total.cycles(), 6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_cycles(12).to_string(), "12 cyc");
        assert_eq!(Frequency::DPU_CORE.to_string(), "800 MHz");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0.0);
    }
}
