//! Shared-resource queuing models.
//!
//! Hardware resources that serve one request at a time — a DDR data bus, a
//! crossbar port, the DMS hash engine — are modelled as FIFO *servers*: a
//! request arriving at time `t` begins service at `max(t, next_free)` and
//! occupies the resource for a service time derived from the request size.
//! This captures contention between 32 dpCores without simulating
//! per-beat wire activity.

use crate::time::Time;

/// The immutable service parameters of a [`BandwidthServer`]: a byte rate
/// and a fixed per-request overhead.
///
/// Keeping the configuration separate from the occupancy/statistics state
/// gives fork and reset one definition: a forked server reuses the config
/// with pristine state, and `reset` is exactly "replace the state".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bytes moved per cycle once a request is in service.
    pub bytes_per_cycle: u64,
    /// Fixed cycles charged to every request regardless of size.
    pub overhead_cycles: u64,
}

impl ServerConfig {
    /// A config moving `bytes_per_cycle` with `overhead_cycles` of fixed
    /// cost per request.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u64, overhead_cycles: u64) -> Self {
        assert!(bytes_per_cycle > 0, "server rate must be positive");
        ServerConfig { bytes_per_cycle, overhead_cycles }
    }
}

/// The mutable half of a server: queue occupancy plus statistics.
#[derive(Debug, Clone)]
struct ServerState {
    next_free: Time,
    busy_cycles: u64,
    bytes_served: u64,
    requests: u64,
}

impl ServerState {
    const IDLE: ServerState =
        ServerState { next_free: Time::ZERO, busy_cycles: 0, bytes_served: 0, requests: 0 };
}

/// A single FIFO resource with a fixed per-request overhead and a byte rate.
///
/// Service time for a request of `n` bytes is
/// `overhead + ceil(n / bytes_per_cycle)` cycles.
///
/// # Example
///
/// ```
/// use dpu_sim::{BandwidthServer, Time};
/// // A bus moving 16 bytes/cycle with 4 cycles of fixed request overhead.
/// let mut bus = BandwidthServer::new(16, 4);
/// let done1 = bus.request(Time::ZERO, 64);        // 4 + 4 = 8 cycles
/// assert_eq!(done1.cycles(), 8);
/// let done2 = bus.request(Time::ZERO, 64);        // queued behind the first
/// assert_eq!(done2.cycles(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    cfg: ServerConfig,
    state: ServerState,
}

impl BandwidthServer {
    /// Creates a server moving `bytes_per_cycle` with `overhead` cycles of
    /// fixed cost per request.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u64, overhead: u64) -> Self {
        Self::from_config(ServerConfig::new(bytes_per_cycle, overhead))
    }

    /// An idle server with the given configuration.
    pub fn from_config(cfg: ServerConfig) -> Self {
        BandwidthServer { cfg, state: ServerState::IDLE }
    }

    /// The immutable service parameters.
    pub fn config(&self) -> ServerConfig {
        self.cfg
    }

    /// An idle server with this server's configuration — the same split
    /// `reset` uses, but as a value, so callers can build cheap
    /// independent copies of a loaded server.
    pub fn fork(&self) -> Self {
        Self::from_config(self.cfg)
    }

    /// Submits a request of `bytes` arriving at `now`; returns its
    /// completion time.
    pub fn request(&mut self, now: Time, bytes: u64) -> Time {
        self.request_with_extra(now, bytes, 0)
    }

    /// Like [`request`](Self::request) but with `extra` additional service
    /// cycles (e.g. a DRAM row-miss penalty decided by the caller).
    pub fn request_with_extra(&mut self, now: Time, bytes: u64, extra: u64) -> Time {
        let start = self.state.next_free.max(now);
        let service = self.cfg.overhead_cycles + extra + bytes.div_ceil(self.cfg.bytes_per_cycle);
        let done = start + Time::from_cycles(service);
        self.state.next_free = done;
        self.state.busy_cycles += service;
        self.state.bytes_served += bytes;
        self.state.requests += 1;
        done
    }

    /// The earliest time a new request could begin service.
    pub fn next_free(&self) -> Time {
        self.state.next_free
    }

    /// Total cycles this server has spent in service.
    pub fn busy_cycles(&self) -> u64 {
        self.state.busy_cycles
    }

    /// Total bytes moved through the server.
    pub fn bytes_served(&self) -> u64 {
        self.state.bytes_served
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.state.requests
    }

    /// Utilization of the server over `[0, horizon]`: busy / elapsed.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.state.busy_cycles as f64 / horizon.cycles() as f64
    }

    /// Resets occupancy and statistics; the configuration is untouched.
    /// Defined through the same config-vs-state split as
    /// [`fork`](Self::fork): reset = replace the state, keep the config.
    pub fn reset(&mut self) {
        self.state = ServerState::IDLE;
    }
}

/// One stage of an in-order hardware pipeline with double buffering.
///
/// A chunk entering stage `k` can start as soon as both (a) it has left
/// stage `k-1` and (b) the stage has finished its previous chunk. This is
/// exactly the timing of the DMAC's load → hash → store partition pipeline
/// (Figure 10 of the paper), where each stage owns one bank of a
/// double-buffered SRAM.
///
/// # Example
///
/// ```
/// use dpu_sim::{PipelineStage, Time};
/// let mut load = PipelineStage::new("load");
/// let mut hash = PipelineStage::new("hash");
/// // chunk 0
/// let t0 = load.admit(Time::ZERO, Time::from_cycles(100));
/// let t1 = hash.admit(t0, Time::from_cycles(50));
/// // chunk 1 overlaps: load of chunk 1 runs while hash of chunk 0 runs
/// let t2 = load.admit(Time::ZERO, Time::from_cycles(100));
/// assert_eq!(t2.cycles(), 200);
/// assert_eq!(t1.cycles(), 150);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineStage {
    name: &'static str,
    free_at: Time,
    busy_cycles: u64,
    chunks: u64,
}

impl PipelineStage {
    /// Creates an idle stage with a diagnostic name.
    pub fn new(name: &'static str) -> Self {
        PipelineStage { name, free_at: Time::ZERO, busy_cycles: 0, chunks: 0 }
    }

    /// Admits a chunk that becomes available at `ready` and needs `work`
    /// cycles in this stage; returns when the chunk leaves the stage.
    pub fn admit(&mut self, ready: Time, work: Time) -> Time {
        let start = self.free_at.max(ready);
        let done = start + work;
        self.free_at = done;
        self.busy_cycles += work.cycles();
        self.chunks += 1;
        done
    }

    /// Diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// When the stage next becomes free.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total busy cycles accumulated.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of chunks processed.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_requests_queue_up() {
        let mut s = BandwidthServer::new(8, 2);
        let a = s.request(Time::ZERO, 16); // 2 + 2 = 4
        let b = s.request(Time::ZERO, 16); // starts at 4
        assert_eq!(a.cycles(), 4);
        assert_eq!(b.cycles(), 8);
        assert_eq!(s.bytes_served(), 32);
        assert_eq!(s.requests(), 2);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut s = BandwidthServer::new(8, 0);
        let a = s.request(Time::ZERO, 8); // done at 1
        assert_eq!(a.cycles(), 1);
        let b = s.request(Time::from_cycles(100), 8);
        assert_eq!(b.cycles(), 101);
        assert_eq!(s.busy_cycles(), 2);
    }

    #[test]
    fn extra_cycles_extend_service() {
        let mut s = BandwidthServer::new(16, 4);
        let done = s.request_with_extra(Time::ZERO, 16, 10);
        assert_eq!(done.cycles(), 4 + 10 + 1);
    }

    #[test]
    fn partial_beat_rounds_up() {
        let mut s = BandwidthServer::new(16, 0);
        assert_eq!(s.request(Time::ZERO, 1).cycles(), 1);
        assert_eq!(s.request(Time::ZERO, 17).cycles(), 3);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut s = BandwidthServer::new(16, 0);
        s.request(Time::ZERO, 160); // 10 cycles busy
        assert!((s.utilization(Time::from_cycles(40)) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(Time::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = BandwidthServer::new(16, 1);
        s.request(Time::ZERO, 64);
        s.reset();
        assert_eq!(s.next_free(), Time::ZERO);
        assert_eq!(s.busy_cycles(), 0);
        assert_eq!(s.bytes_served(), 0);
    }

    #[test]
    fn fork_shares_config_with_pristine_state() {
        let mut s = BandwidthServer::new(16, 4);
        s.request(Time::ZERO, 1 << 20);
        let mut f = s.fork();
        assert_eq!(f.config(), s.config());
        assert_eq!(f.next_free(), Time::ZERO);
        assert_eq!(f.requests(), 0);
        // The fork serves like a fresh server; the original is untouched.
        assert_eq!(f.request(Time::ZERO, 64), BandwidthServer::new(16, 4).request(Time::ZERO, 64));
        assert!(s.next_free() > f.next_free());
        // reset is the same split: state replaced, config kept.
        s.reset();
        assert_eq!(s.config(), ServerConfig::new(16, 4));
        assert_eq!(s.busy_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = BandwidthServer::new(0, 0);
    }

    #[test]
    fn pipeline_overlaps_stages() {
        let mut s1 = PipelineStage::new("load");
        let mut s2 = PipelineStage::new("hash");
        let mut s3 = PipelineStage::new("store");
        let w = Time::from_cycles(100);
        let mut done = Time::ZERO;
        for i in 0..10u64 {
            let a = s1.admit(Time::ZERO, w);
            let b = s2.admit(a, w);
            done = s3.admit(b, w);
            // steady state: chunk i leaves at (i+3)*100
            assert_eq!(done.cycles(), (i + 3) * 100);
        }
        // 10 chunks in 1200 cycles instead of 3000 serial.
        assert_eq!(done.cycles(), 1200);
        assert_eq!(s2.chunks(), 10);
        assert_eq!(s1.busy_cycles(), 1000);
        assert_eq!(s3.name(), "store");
    }

    #[test]
    fn pipeline_bottleneck_dominates() {
        let mut fast = PipelineStage::new("fast");
        let mut slow = PipelineStage::new("slow");
        let mut done = Time::ZERO;
        for _ in 0..100u64 {
            let a = fast.admit(Time::ZERO, Time::from_cycles(10));
            done = slow.admit(a, Time::from_cycles(40));
        }
        // Steady-state rate is set by the slow stage: ~100 * 40.
        assert_eq!(done.cycles(), 10 + 100 * 40);
        assert!(fast.free_at() < slow.free_at());
    }
}
