//! Deterministic event queue.
//!
//! Events that are scheduled for the same timestamp are delivered in the
//! order they were pushed (FIFO), which makes every simulation in the
//! workspace bit-reproducible regardless of payload type or hash seeds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

#[derive(Debug, PartialEq, Eq)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use dpu_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_cycles(5), 'b');
/// q.push(Time::from_cycles(5), 'c');
/// q.push(Time::from_cycles(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: Time,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: Time::ZERO }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation may
    /// never schedule into its own past.
    pub fn push(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "event scheduled in the past: {at} < now {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time: at, seq, event }));
    }

    /// Removes and returns the earliest event, advancing the queue's notion
    /// of "now" to its timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(30), 3);
        q.push(Time::from_cycles(10), 1);
        q.push(Time::from_cycles(20), 2);
        assert_eq!(q.pop(), Some((Time::from_cycles(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_cycles(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_cycles(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.push(Time::from_cycles(42), ());
        q.pop();
        assert_eq!(q.now(), Time::from_cycles(42));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(10), ());
        q.pop();
        q.push(Time::from_cycles(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(9), 'x');
        assert_eq!(q.peek_time(), Some(Time::from_cycles(9)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(1), 'a');
        q.push(Time::from_cycles(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(Time::from_cycles(3), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
