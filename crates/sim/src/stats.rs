//! Lightweight statistics collection for simulation reports.

use std::fmt;

use crate::time::{Frequency, Time};

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```
/// use dpu_sim::Counter;
/// let mut c = Counter::new("axi_txns");
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A fixed-bucket histogram of `u64` samples (e.g. RPC latencies).
///
/// Buckets are caller-defined upper bounds; samples above the last bound
/// land in an overflow bucket.
///
/// # Example
///
/// ```
/// use dpu_sim::Histogram;
/// let mut h = Histogram::new(vec![10, 100, 1000]);
/// h.record(5);
/// h.record(50);
/// h.record(5000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts(), &[1, 1, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    min: u64,
    max: u64,
    n: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n_buckets = bounds.len() + 1;
        Histogram { bounds, counts: vec![0; n_buckets], sum: 0, min: u64::MAX, max: 0, n: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = self.bounds.iter().position(|&b| sample <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        self.n += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum as f64 / self.n as f64)
        }
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }

    /// Per-bucket sample counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Accumulates bytes over simulated time and reports throughput.
///
/// # Example
///
/// ```
/// use dpu_sim::{RateMeter, Time, Frequency};
/// let mut m = RateMeter::new();
/// m.record(Time::from_cycles(800_000_000), 12_800_000_000);
/// // 12.8 GB moved in one second at the 800 MHz core clock.
/// assert!((m.gbytes_per_sec(Frequency::DPU_CORE) - 12.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RateMeter {
    bytes: u64,
    last: Time,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that by time `at`, `bytes` more bytes have moved.
    pub fn record(&mut self, at: Time, bytes: u64) {
        self.bytes += bytes;
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Time of the last recorded completion.
    pub fn end_time(&self) -> Time {
        self.last
    }

    /// Average throughput in bytes/second over `[0, end_time]`.
    pub fn bytes_per_sec(&self, freq: Frequency) -> f64 {
        freq.bytes_per_sec(self.bytes, self.last)
    }

    /// Average throughput in GB/s (decimal gigabytes, as the paper reports).
    pub fn gbytes_per_sec(&self, freq: Frequency) -> f64 {
        self.bytes_per_sec(freq) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x=10");
    }

    #[test]
    fn histogram_buckets_samples() {
        let mut h = Histogram::new(vec![10, 20]);
        for s in [1, 10, 11, 20, 21, 1000] {
            h.record(s);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2]);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - (1063.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new(vec![1]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(vec![10, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_rejected() {
        let _ = Histogram::new(vec![]);
    }

    #[test]
    fn rate_meter_uses_latest_time() {
        let mut m = RateMeter::new();
        m.record(Time::from_cycles(100), 800);
        m.record(Time::from_cycles(50), 800);
        assert_eq!(m.bytes(), 1600);
        assert_eq!(m.end_time(), Time::from_cycles(100));
        // 1600 bytes in 100 cycles = 16 B/cyc = 12.8 GB/s at 800 MHz.
        assert!((m.gbytes_per_sec(Frequency::DPU_CORE) - 12.8).abs() < 1e-9);
    }
}
