//! Discrete-event simulation kernel for the DPU reproduction.
//!
//! This crate provides the substrate every timing model in the workspace is
//! built on: a cycle-granular notion of [`Time`], a deterministic
//! [`EventQueue`], queuing-theory helpers such as [`BandwidthServer`] for
//! modelling shared resources (a DDR channel, a crossbar port, a hash
//! engine), basic [`stats`] collection, and a small deterministic RNG.
//!
//! The kernel is deliberately generic: it knows nothing about dpCores, the
//! DMS or the ATE. Higher crates (`dpu-mem`, `dpu-dms`, `dpu-ate`,
//! `dpu-core`) define concrete event payloads and drive the queue.
//!
//! # Example
//!
//! ```
//! use dpu_sim::{EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::from_cycles(10), "late");
//! q.push(Time::from_cycles(5), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t.cycles(), 5);
//! assert_eq!(ev, "early");
//! ```

pub mod queue;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use server::{BandwidthServer, PipelineStage, ServerConfig};
pub use stats::{Counter, Histogram, RateMeter};
pub use time::{Frequency, Time};
