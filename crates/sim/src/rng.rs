//! A tiny deterministic RNG for timing jitter and synthetic-data helpers.
//!
//! Workload generation in higher crates uses the `rand` crate; this
//! zero-dependency SplitMix64 exists so the simulation kernel itself can
//! inject deterministic variation (e.g. DRAM refresh jitter) without a
//! dependency edge.

/// SplitMix64 pseudo-random generator (Steele et al., the standard
/// seed-expansion PRNG). Deterministic for a given seed.
///
/// # Example
///
/// ```
/// use dpu_sim::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style widening-multiply range reduction: unbiased enough
        // for simulation jitter, branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn float_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform_buckets() {
        let mut r = SplitMix64::new(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        SplitMix64::new(0).next_below(0);
    }
}
