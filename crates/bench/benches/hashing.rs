//! Criterion microbenchmarks of the hash/partition engines (host-side
//! throughput of the simulator's hot paths).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_dms::PartitionScheme;
use dpu_isa::hash::{crc32c, crc32c_u64, murmur64};

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.bench_function("crc32c_u64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(crc32c_u64(k))
        })
    });
    g.bench_function("murmur64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(murmur64(k))
        })
    });
    let buf = vec![0xA5u8; 4096];
    g.bench_function("crc32c_4k", |b| b.iter(|| black_box(crc32c(&buf))));
    g.finish();
}

fn bench_partition_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_of");
    let hash = PartitionScheme::HashRadix { radix_bits: 5 };
    let radix = PartitionScheme::Radix { bits: 5, shift: 0 };
    let range = PartitionScheme::Range { bounds: (1..32).map(|i| i * 1000).collect() };
    for (name, s) in [("hash", hash), ("radix", radix), ("range", range)] {
        g.bench_function(name, |b| {
            let mut k = 0i64;
            b.iter(|| {
                k = k.wrapping_add(12345);
                black_box(s.partition_of(k))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hashes, bench_partition_schemes);
criterion_main!(benches);
