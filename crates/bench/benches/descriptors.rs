//! Criterion microbenchmarks of the descriptor codec and the DMS engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_dms::{DataDescriptor, Descriptor, Dms, DmsConfig, EventCond};
use dpu_mem::{Dmem, DramChannel, DramConfig, PhysMem};
use dpu_sim::Time;

fn bench_codec(c: &mut Criterion) {
    let d = DataDescriptor::read(0xABCD00, 512, 1024, 4)
        .with_notify(3)
        .with_wait(EventCond::is_clear(7));
    c.bench_function("descriptor_encode", |b| b.iter(|| black_box(d.encode())));
    let w = d.encode();
    c.bench_function("descriptor_decode", |b| {
        b.iter(|| black_box(DataDescriptor::decode(w).unwrap()))
    });
}

fn bench_dms_throughput(c: &mut Criterion) {
    c.bench_function("dms_4kb_descriptor_execution", |b| {
        b.iter_batched(
            || {
                (
                    Dms::new(DmsConfig::default(), 8),
                    PhysMem::new(64 * 1024),
                    DramChannel::new(DramConfig::ddr3_1600()),
                    (0..8).map(|_| Dmem::new(32 * 1024)).collect::<Vec<_>>(),
                )
            },
            |(mut dms, mut phys, mut dram, mut dmems)| {
                let d = DataDescriptor::read(0, 0, 1024, 4);
                dms.push(0, 0, Descriptor::Data(d), Time::ZERO);
                black_box(dms.advance(&mut phys, &mut dram, &mut dmems))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_codec, bench_dms_throughput);
criterion_main!(benches);
