//! Criterion microbenchmarks of the application kernels and the ISA
//! interpreter (host instructions-per-second of the simulator itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_apps::HyperLogLog;
use dpu_isa::hash::HashKind;
use dpu_sql::{measure_filter_kernel, BitVec};

fn bench_interpreter_filter(c: &mut Criterion) {
    let values: Vec<i32> = (0..1024).map(|i| i * 3).collect();
    c.bench_function("isa_filter_kernel_1k_rows", |b| {
        b.iter(|| black_box(measure_filter_kernel(&values, 100, 2000)))
    });
}

fn bench_hll(c: &mut Criterion) {
    c.bench_function("hll_insert", |b| {
        let mut h = HyperLogLog::new(12, HashKind::Crc32);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E37_79B9);
            h.insert(black_box(k));
        })
    });
}

fn bench_bitvec(c: &mut Criterion) {
    let a = BitVec::from_fn(65536, |i| i % 3 == 0);
    let b2 = BitVec::from_fn(65536, |i| i % 5 == 0);
    c.bench_function("bitvec_and_64k", |b| b.iter(|| black_box(a.and(&b2))));
    c.bench_function("bitvec_count_64k", |b| b.iter(|| black_box(a.count())));
}

criterion_group!(benches, bench_interpreter_filter, bench_hll, bench_bitvec);
criterion_main!(benches);
