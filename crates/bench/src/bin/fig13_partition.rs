//! Figure 13: bandwidth of the DMS hardware partitioning engine.
//!
//! 32-way partitioning of a 4-column (4 B) table under each scheme:
//! radix on key bits, CRC32-hash radix, and range matching against 32
//! pre-programmed bounds. Target: ≈9.3 GB/s for every scheme, beating
//! HARP's published 6 GB/s.

use dpu_bench::json::{emit, Json};
use dpu_bench::{gbps, header, row};
use dpu_dms::{Dms, DmsConfig, PartitionJob, PartitionScheme};
use dpu_mem::{Dmem, DramChannel, DramConfig, PhysMem};
use dpu_sim::{Frequency, Time};

fn run(scheme: PartitionScheme) -> f64 {
    let rows = 256 * 1024u64;
    let cols = 4usize;
    let mut phys = PhysMem::new(rows as usize * cols * 4);
    let addrs: Vec<u64> = (0..cols as u64).map(|c| c * rows * 4).collect();
    for &addr in &addrs {
        for r in 0..rows {
            phys.write_u32(addr + r * 4, (r as u32).wrapping_mul(0x9E37_79B9));
        }
    }
    let mut dms = Dms::new(DmsConfig::default(), 32);
    let mut dram = DramChannel::new(DramConfig::ddr3_1600());
    let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(1 << 20)).collect();
    let job = PartitionJob {
        key_col_addr: addrs[0],
        data_col_addrs: addrs[1..].to_vec(),
        rows,
        col_width: 4,
        scheme,
        dest_dmem_base: 0,
        dest_capacity: 256 * 1024,
    };
    let out =
        dms.run_partition(&job, Time::ZERO, &mut phys, &mut dram, &mut dmems).expect("partition");
    Frequency::DPU_CORE.bytes_per_sec(out.bytes_in, out.finish) / 1e9
}

fn main() {
    println!("# Figure 13: DMS partitioning bandwidth (32-way, 4×4 B columns)\n");
    header(&["Scheme", "Bandwidth", "vs HARP 6 GB/s"]);
    let bounds: Vec<i64> =
        (1..32).map(|i| i64::from(i32::MIN) + i * ((u32::MAX as i64) / 32)).collect();
    let schemes: Vec<(&str, PartitionScheme)> = vec![
        ("radix (5 key bits)", PartitionScheme::Radix { bits: 5, shift: 0 }),
        ("hash radix (CRC32)", PartitionScheme::HashRadix { radix_bits: 5 }),
        ("range (32 bounds)", PartitionScheme::Range { bounds }),
    ];
    let mut series: Vec<Json> = Vec::new();
    for (name, scheme) in schemes {
        let bw = run(scheme);
        row(&[name.to_string(), gbps(bw), format!("{:.2}×", bw / 6.0)]);
        series.push(Json::obj([
            ("scheme", Json::str(name)),
            ("gbps", Json::num(bw)),
            ("vs_harp_6gbps", Json::num(bw / 6.0)),
        ]));
    }
    emit(
        "fig13_partition",
        &Json::obj([("figure", Json::str("fig13_partition")), ("schemes", Json::Arr(series))]),
    );
    println!("\nPaper targets: ≈9.3 GB/s for all schemes; >1.5× HARP; the DMS");
    println!("additionally leaves all 32 dpCores free for a parallel software");
    println!("partition pass (1024-way total).");
}
