//! Figure 13: bandwidth of the DMS hardware partitioning engine.
//!
//! 32-way partitioning of a 4-column (4 B) table under each scheme:
//! radix on key bits, CRC32-hash radix, and range matching against 32
//! pre-programmed bounds. Target: ≈9.3 GB/s for every scheme, beating
//! HARP's published 6 GB/s.

use std::time::Instant;

use dpu_bench::json::{emit, Json};
use dpu_bench::{gbps, header, row};
use dpu_dms::{Dms, DmsConfig, PartitionJob, PartitionScheme};
use dpu_mem::{Dmem, DramChannel, DramConfig, PhysMem};
use dpu_sim::{Frequency, Time};
use dpu_sql::{partition_row_ids_with, Kernel};

fn run(scheme: PartitionScheme) -> f64 {
    let rows = 256 * 1024u64;
    let cols = 4usize;
    let mut phys = PhysMem::new(rows as usize * cols * 4);
    let addrs: Vec<u64> = (0..cols as u64).map(|c| c * rows * 4).collect();
    for &addr in &addrs {
        for r in 0..rows {
            phys.write_u32(addr + r * 4, (r as u32).wrapping_mul(0x9E37_79B9));
        }
    }
    let mut dms = Dms::new(DmsConfig::default(), 32);
    let mut dram = DramChannel::new(DramConfig::ddr3_1600());
    let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(1 << 20)).collect();
    let job = PartitionJob {
        key_col_addr: addrs[0],
        data_col_addrs: addrs[1..].to_vec(),
        rows,
        col_width: 4,
        scheme,
        dest_dmem_base: 0,
        dest_capacity: 256 * 1024,
    };
    let out =
        dms.run_partition(&job, Time::ZERO, &mut phys, &mut dram, &mut dmems).expect("partition");
    Frequency::DPU_CORE.bytes_per_sec(out.bytes_in, out.finish) / 1e9
}

/// Host-side comparison for the software partition rounds: bit-serial
/// CRC32-C row routing vs the 4-lane table-driven SWAR variant
/// (`DPU_VECTOR`), 32-way like the DMS runs above. Returns (scalar
/// Mrows/s, vector Mrows/s); panics on any routing mismatch.
fn host_swar_partition(rows: usize) -> (f64, f64) {
    let keys: Vec<i64> =
        (0..rows as i64).map(|r| i64::from((r as u32).wrapping_mul(0x9E37_79B9))).collect();
    let time = |kernel: Kernel| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let start = Instant::now();
            let parts = partition_row_ids_with(&keys, 0, 32, kernel);
            best = best.min(start.elapsed().as_secs_f64());
            out = Some(parts);
        }
        (best, out.expect("reps >= 1"))
    };
    let (scalar_s, scalar) = time(Kernel::Scalar);
    let (vector_s, vector) = time(Kernel::Swar);
    assert_eq!(scalar, vector, "host SWAR partition diverged from scalar");
    (rows as f64 / scalar_s / 1e6, rows as f64 / vector_s / 1e6)
}

fn main() {
    println!("# Figure 13: DMS partitioning bandwidth (32-way, 4×4 B columns)\n");
    header(&["Scheme", "Bandwidth", "vs HARP 6 GB/s"]);
    let bounds: Vec<i64> =
        (1..32).map(|i| i64::from(i32::MIN) + i * ((u32::MAX as i64) / 32)).collect();
    let schemes: Vec<(&str, PartitionScheme)> = vec![
        ("radix (5 key bits)", PartitionScheme::Radix { bits: 5, shift: 0 }),
        ("hash radix (CRC32)", PartitionScheme::HashRadix { radix_bits: 5 }),
        ("range (32 bounds)", PartitionScheme::Range { bounds }),
    ];
    let mut series: Vec<Json> = Vec::new();
    for (name, scheme) in schemes {
        let bw = run(scheme);
        row(&[name.to_string(), gbps(bw), format!("{:.2}×", bw / 6.0)]);
        series.push(Json::obj([
            ("scheme", Json::str(name)),
            ("gbps", Json::num(bw)),
            ("vs_harp_6gbps", Json::num(bw / 6.0)),
        ]));
    }
    let host_rows = 2_000_000usize;
    let (host_scalar, host_vector) = host_swar_partition(host_rows);
    println!(
        "\nHost software rounds (wall-clock, {host_rows} rows, 32-way CRC32): \
         scalar {host_scalar:.0} Mrows/s, SWAR {host_vector:.0} Mrows/s ({:.2}x), \
         identical routing.",
        host_vector / host_scalar
    );
    emit(
        "fig13_partition",
        &Json::obj([
            ("figure", Json::str("fig13_partition")),
            ("schemes", Json::Arr(series)),
            (
                "host_swar",
                Json::obj([
                    ("rows", Json::num(host_rows as f64)),
                    ("fanout", Json::num(32.0)),
                    ("scalar_mrows_s", Json::num(host_scalar)),
                    ("vector_mrows_s", Json::num(host_vector)),
                    ("speedup", Json::num(host_vector / host_scalar)),
                ]),
            ),
        ]),
    );
    println!("\nPaper targets: ≈9.3 GB/s for all schemes; >1.5× HARP; the DMS");
    println!("additionally leaves all 32 dpCores free for a parallel software");
    println!("partition pass (1024-way total).");
}
