//! Figure 2: performance of ATE remote procedure calls.
//!
//! Measures round-trip latency of each hardware RPC type and a software
//! RPC, intra-macro and inter-macro. The paper's figure shows response
//! times on this order; the shape targets are store < load ≤ atomics,
//! inter-macro > intra-macro, and software RPCs costing several times a
//! hardware RPC.

use dpu_ate::{Ate, AteConfig, AteOp, AteRequest, AteTarget};
use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_mem::{Dmem, PhysMem};
use dpu_sim::Time;

fn measure(op: AteOp, from: usize, to: usize) -> u64 {
    let mut ate = Ate::new(AteConfig::default(), 32);
    let mut phys = PhysMem::new(1024);
    let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(256)).collect();
    ate.request(
        AteRequest { from, to, target: AteTarget::Ddr(0), op },
        Time::ZERO,
        &mut phys,
        &mut dmems,
    )
    .finish
    .cycles()
}

fn main() {
    println!("# Figure 2: ATE remote procedure call response times (cycles)\n");
    header(&["RPC type", "intra-macro (core 0→1)", "inter-macro (core 0→31)"]);
    let ops: [(&str, AteOp); 4] = [
        ("HW store", AteOp::Store(1)),
        ("HW load", AteOp::Load),
        ("HW fetch-add", AteOp::FetchAdd(1)),
        ("HW compare-swap", AteOp::CompareSwap { expect: 0, new: 1 }),
    ];
    let mut series: Vec<Json> = Vec::new();
    for (name, op) in ops {
        let (intra, inter) = (measure(op, 0, 1), measure(op, 0, 31));
        row(&[name.to_string(), intra.to_string(), inter.to_string()]);
        series.push(Json::obj([
            ("rpc", Json::str(name)),
            ("intra_macro_cycles", Json::num(intra as f64)),
            ("inter_macro_cycles", Json::num(inter as f64)),
        ]));
    }
    // Software RPC with a 100-cycle handler.
    let mut ate = Ate::new(AteConfig::default(), 32);
    let near = ate.sw_rpc(0, 1, Time::ZERO, 100).response_at.cycles();
    let mut ate = Ate::new(AteConfig::default(), 32);
    let far = ate.sw_rpc(0, 31, Time::ZERO, 100).response_at.cycles();
    row(&["SW RPC (100-cycle handler)".into(), near.to_string(), far.to_string()]);
    series.push(Json::obj([
        ("rpc", Json::str("SW RPC (100-cycle handler)")),
        ("intra_macro_cycles", Json::num(near as f64)),
        ("inter_macro_cycles", Json::num(far as f64)),
    ]));

    println!("\nThroughput note (paper §2.3): software overlaps independent");
    println!("instructions for the response latency before blocking on `wfe`.");
    emit(
        "fig02_ate_rpc",
        &Json::obj([("figure", Json::str("fig02_ate_rpc")), ("rpcs", Json::Arr(series))]),
    );
}
