//! Figure 5: DPU power breakdown (total 5.8 W at 40 nm), plus the §2.5
//! 16 nm shrink comparison.

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_core::{DpuConfig, PowerBreakdown};

fn print_node(name: &str, cfg: &DpuConfig) -> Json {
    let b = PowerBreakdown::for_config(cfg);
    println!("\n## {name} (total = {:.2} W)\n", b.total_watts());
    header(&["Component", "Watts", "Share"]);
    let mut comps: Vec<Json> = Vec::new();
    for c in &b.components {
        row(&[
            c.name.to_string(),
            format!("{:.3}", c.watts),
            format!("{:.1}%", 100.0 * c.watts / b.total_watts()),
        ]);
        comps.push(Json::obj([("component", Json::str(c.name)), ("watts", Json::num(c.watts))]));
    }
    Json::obj([
        ("node", Json::str(name.to_string())),
        ("total_watts", Json::num(b.total_watts())),
        ("components", Json::Arr(comps)),
    ])
}

fn main() {
    println!("# Figure 5: DPU power breakdown");
    let nm40 = DpuConfig::nm40();
    let nm16 = DpuConfig::nm16();
    let j40 = print_node("40 nm (fabricated)", &nm40);
    let j16 = print_node("16 nm shrink", &nm16);

    let eff = (nm16.compute_proxy() / nm16.provisioned_watts)
        / (nm40.compute_proxy() / nm40.provisioned_watts);
    println!(
        "\n16 nm: {} dpCores at {:.1} W TDP → {eff:.2}× performance/watt (paper: 2.5×)",
        nm16.n_cores, nm16.provisioned_watts
    );
    emit(
        "fig05_power",
        &Json::obj([
            ("figure", Json::str("fig05_power")),
            ("nodes", Json::Arr(vec![j40, j16])),
            ("shrink_perf_per_watt_gain", Json::num(eff)),
        ]),
    );
}
