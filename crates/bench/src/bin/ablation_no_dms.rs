//! Ablation: what if the dpCores loaded data through their caches
//! instead of the DMS?
//!
//! The paper's central design decision (§2.1): replace hardware
//! prefetchers and big caches with the DMS + DMEM. This ablation streams
//! the same data (a) through the DMS into DMEM, and (b) through each
//! core's L1 via cache-line loads from DDR, where every miss pays the
//! full memory round trip (the dpCore is in-order: one outstanding miss,
//! no prefetcher). Also sweeps the ATE-vs-static scheduling ablation.

use dpu_bench::json::{emit, Json};
use dpu_bench::{gbps, header, row};
use dpu_core::{CoreProgram, Dpu, DpuConfig, StreamKernel, StreamSpec};
use dpu_mem::{Cache, CacheConfig, DramChannel, DramConfig};
use dpu_sim::Time;

/// DMS path: the fig11 streaming kernel.
fn dms_stream_gbps() -> f64 {
    let mut dpu = Dpu::new(DpuConfig::nm40());
    let n = dpu.n_cores();
    let rows = 16 * 1024u64;
    let region = rows * 4;
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    for core in 0..n as u64 {
        let spec = StreamSpec {
            cols: vec![core * region],
            rows_total: rows,
            rows_per_tile: 1024,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        programs.push(Box::new(StreamKernel::new(spec, |_, _| 0)));
    }
    let report = dpu.run(&mut programs).expect("run");
    report.dms_gbytes_per_sec(dpu.config().clock)
}

/// Cached path: 32 in-order cores issue sequential loads; every 64 B
/// line misses (streaming working set), each miss is a blocking DDR
/// access (no prefetcher, one outstanding miss per core — §2.1's
/// description of what the DPU deliberately does not build).
fn cached_stream_gbps() -> f64 {
    let mut dram = DramChannel::new(DramConfig::ddr3_1600());
    let mut caches: Vec<Cache> = (0..32).map(|_| Cache::new(CacheConfig::dpcore_l1d())).collect();
    let bytes_per_core = 64 * 1024u64;
    let line = 64u64;
    // Round-robin the cores' blocking misses: core i's miss k is issued
    // only after its miss k-1 returned (latency-bound, not bandwidth-
    // bound). The DRAM round trip includes the uncontended access plus
    // crossbar/queueing of ~40 core cycles each way.
    let roundtrip_overhead = 80u64;
    let mut t = vec![Time::ZERO; 32];
    let mut moved = 0u64;
    for k in 0..(bytes_per_core / line) {
        for (core, tc) in t.iter_mut().enumerate() {
            let addr = core as u64 * (1 << 20) + k * line;
            let a = caches[core].access(addr, false);
            assert!(!a.hit, "streaming never hits");
            let done = dram.request(*tc, addr, line);
            *tc = done + Time::from_cycles(roundtrip_overhead);
            moved += line;
        }
    }
    let finish = t.into_iter().max().unwrap();
    dpu_sim::Frequency::DPU_CORE.bytes_per_sec(moved, finish) / 1e9
}

fn main() {
    println!("# Ablation: DMS vs core-driven cached loads (the §2.1 design choice)\n");
    header(&["Data path", "32-core streaming bandwidth"]);
    let dms = dms_stream_gbps();
    let cached = cached_stream_gbps();
    row(&["DMS → DMEM (double-buffered)".into(), gbps(dms)]);
    row(&["L1 miss path, blocking loads".into(), gbps(cached)]);
    println!(
        "\nThe DMS delivers {:.1}× the bandwidth of the cache path — the gap\n\
         hardware prefetchers + big caches would have to close at a power\n\
         cost the 6 W budget cannot pay (paper §1, §2.1).",
        dms / cached
    );
    emit(
        "ablation_no_dms",
        &Json::obj([
            ("figure", Json::str("ablation_no_dms")),
            ("dms_gbps", Json::num(dms)),
            ("cached_gbps", Json::num(cached)),
            ("dms_over_cached", Json::num(dms / cached)),
        ]),
    );
}
