//! Cost-based planner baseline: estimated vs actual cost for every
//! planner-chosen TPC-H plan, the Q10 placement decision (gather vs
//! shuffle) in detail, and a static-vs-adaptive serving comparison
//! under a Q10-skewed traffic trace.
//!
//! Everything here is simulated and deterministic: costs come from the
//! roofline + fabric models, the serve loop is seeded, and the
//! host-pool fan-outs do not affect simulated results — so the emitted
//! `BENCH_rack_planner.json` is byte-identical on every machine at any
//! `DPU_THREADS`, and CI byte-diffs it (the `cluster-planner` job).
//!
//! The interesting object is the estimate's *systematic* error: the
//! catalog has no correlation statistics, so it caps Q10's group count
//! (`o_custkey`) at the estimated join cardinality — as if every
//! order in the date band belonged to a distinct customer. Repeat
//! buyers actually collapse the partials to roughly half that, which
//! puts the estimate and the truth on *opposite sides* of the
//! gather/shuffle crossover: the planner expects partials big enough
//! that shuffling them across all NICs beats funnelling them through
//! the coordinator's one RX NIC, while the real partials are small
//! enough that the gather's single serialized hop is cheaper than the
//! shuffle's two message barriers. Serving traffic exposes the error,
//! and the adaptive planner must switch Q10 from shuffle to gather
//! mid-run without hurting mean latency. Both facts are asserted below
//! and pinned in the JSON.

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_cluster::{
    serve_pipeline_hooked, Cluster, ClusterConfig, ClusterCore, PlannedRun, QueryId, ServeConfig,
    ShardPolicy, Template,
};
use dpu_planner::{explain, AdaptiveServer, CandidatePlan, PlanChoice, Planner, PlannerMode};
use dpu_sql::tpch;
use xeon_model::XeonRack;

/// Completed queries of a template before the adaptive planner may
/// re-rank its candidates.
const REOPT_THRESHOLD: usize = 8;

/// One query's planner verdict plus the executed runs of its chosen
/// plan and every rejected alternative (chosen first).
type ProfiledQuery = (QueryId, PlanChoice, Vec<(CandidatePlan, PlannedRun)>);

fn main() {
    const NODES: usize = 8;
    // A larger base than rack_tpch's (and a proportionally smaller scale
    // multiplier, so the simulated full-scale work is the same): the
    // planner's cardinality errors only become decision-relevant once
    // Q10's partial aggregates reach the gather/shuffle crossover. The
    // datagen seed was re-picked after FOR/bit-packing cut the resident
    // bytes every scan streams (shifting each shard's local finish time
    // and with it the overlap the gather's serialized hop hides in): at
    // this seed the estimate's over-capped partials still price shuffle
    // ahead by ~1 µs while the real, repeat-buyer-collapsed partials
    // make gather ~6 µs cheaper in the profile.
    let scale = 3_750u64;
    let db = tpch::generate(40_000, 2028);
    let core = ClusterCore::new(
        db,
        &ShardPolicy::hash(NODES),
        ClusterConfig::prototype_slice(NODES, scale),
    );
    let mut cluster = Cluster::from_core(core.clone());
    let planner = Planner::new(&core);

    println!(
        "# Cost-based planner on the {NODES}-node rack ({} lineitem rows, scale {scale}×)\n",
        cluster.full().lineitem.rows()
    );

    // ── Estimated vs actual, every query through the planner path ────
    header(&["Query", "merge", "est (ms)", "actual (ms)", "est/actual", "== hand-wired"]);
    let mut queries_json: Vec<Json> = Vec::new();
    let mut profiled: Vec<ProfiledQuery> = Vec::new();
    for id in QueryId::ALL {
        let choice = planner.plan(id);
        let reference = cluster.try_run_at(id, 0.0).expect("healthy cluster");
        assert!(reference.matches_single(), "{} hand-wired diverged", id.name());
        // Execute the chosen plan and every rejected alternative: all of
        // them must be bit-identical to the hand-wired pipeline.
        let mut runs: Vec<(CandidatePlan, PlannedRun)> = Vec::new();
        for (plan, est) in std::iter::once((choice.plan.clone(), choice.estimate.clone()))
            .chain(choice.alternatives.iter().cloned())
        {
            let run = cluster.run_planned(&plan, 0.0).expect("healthy cluster");
            assert!(
                run.query.matches_single(),
                "{} planner plan diverged from single-node",
                id.name()
            );
            assert_eq!(
                run.query.output,
                reference.output,
                "{} planner plan diverged from hand-wired",
                id.name()
            );
            runs.push((
                CandidatePlan {
                    name: plan.merge.name().into(),
                    plan,
                    est_seconds: est.total_seconds(),
                    profiled: run.query.cost.clone(),
                },
                run,
            ));
        }
        let est_s = choice.estimate.total_seconds();
        let act_s = runs[0].1.query.cost.total_seconds();
        row(&[
            id.name().to_string(),
            choice.plan.merge.name().to_string(),
            format!("{:.3}", est_s * 1e3),
            format!("{:.3}", act_s * 1e3),
            format!("{:.2}", est_s / act_s),
            "yes".into(),
        ]);
        queries_json.push(Json::obj([
            ("query", Json::str(id.name())),
            ("merge", Json::str(choice.plan.merge.name())),
            ("est_seconds", Json::num(est_s)),
            ("actual_seconds", Json::num(act_s)),
            ("est_fabric_bytes", Json::num(choice.estimate.fabric_bytes as f64)),
            ("actual_fabric_bytes", Json::num(runs[0].1.query.cost.fabric_bytes as f64)),
            ("matches_hand_wired", Json::Bool(true)),
        ]));
        profiled.push((id, choice, runs));
    }
    println!(
        "\nAll planner-chosen plans (and every rejected alternative) are bit-identical \
         to the hand-wired pipelines and to single-node execution.\n"
    );

    // ── EXPLAIN for each chosen plan (estimates vs actuals) ──────────
    println!("## EXPLAIN (chosen plans, est vs actual)\n");
    for (_, choice, runs) in &profiled {
        println!("{}", explain(&choice.plan, &choice.estimate, Some(&runs[0].1)));
    }

    // ── The Q10 placement decision in detail ─────────────────────────
    let (_, q10_choice, q10_runs) =
        profiled.iter().find(|(id, _, _)| *id == QueryId::Q10).expect("Q10 profiled");
    println!("## Q10 placement: estimate vs profile\n");
    header(&["placement", "est (ms)", "profiled (ms)", "est partials", "actual partials"]);
    let mut placements_json: Vec<Json> = Vec::new();
    let q10_ests: Vec<&dpu_planner::PlanEstimate> = std::iter::once(&q10_choice.estimate)
        .chain(q10_choice.alternatives.iter().map(|(_, e)| e))
        .collect();
    for ((cand, run), est) in q10_runs.iter().zip(q10_ests) {
        let actual_partials: usize =
            run.shard_traces.iter().map(|t| t.last().map_or(0, |o| o.rows)).sum();
        row(&[
            cand.name.clone(),
            format!("{:.3}", cand.est_seconds * 1e3),
            format!("{:.3}", cand.profiled.total_seconds() * 1e3),
            format!("{:.0}", est.partial_rows),
            format!("{actual_partials}"),
        ]);
        placements_json.push(Json::obj([
            ("merge", Json::str(&cand.name)),
            ("est_seconds", Json::num(cand.est_seconds)),
            ("profiled_seconds", Json::num(cand.profiled.total_seconds())),
            ("est_partial_rows", Json::num(est.partial_rows)),
            ("actual_partial_rows", Json::num(actual_partials as f64)),
        ]));
    }

    // The no-correlation assumption must over-estimate the Q10 partials
    // (repeat customers collapse the o_custkey groups well below the
    // join cardinality the estimate caps at), and that error must be
    // decision-relevant: the estimate picks shuffle, the profile shows
    // gather is cheaper. That is the gap the adaptive layer closes.
    let q10_est_partials = q10_choice.estimate.partial_rows;
    let q10_actual_partials: usize =
        q10_runs[0].1.shard_traces.iter().map(|t| t.last().map_or(0, |o| o.rows)).sum();
    assert!(
        q10_est_partials > 1.5 * q10_actual_partials as f64,
        "Q10 partials must be over-estimated: est {q10_est_partials:.0} vs actual {q10_actual_partials}"
    );
    assert_eq!(q10_choice.plan.merge.name(), "shuffle-topk", "estimate must pick shuffle");
    let q10_profiled_best = q10_runs
        .iter()
        .min_by(|a, b| a.0.profiled.total_seconds().total_cmp(&b.0.profiled.total_seconds()))
        .expect("candidates");
    assert_eq!(q10_profiled_best.0.name, "gather-topk", "profile must prefer gather");

    // ── Static vs adaptive serving under a Q10-skewed trace ──────────
    // Half the offered traffic is Q10 (four template slots of eight),
    // so the mis-planned placement dominates the mix and re-planning
    // has something to win.
    let serve_ids = [
        QueryId::Q10,
        QueryId::Q10,
        QueryId::Q10,
        QueryId::Q10,
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q6,
        QueryId::Q12,
    ];
    let mut templates: Vec<Template> = Vec::new();
    let mut candidate_sets: Vec<Vec<CandidatePlan>> = Vec::new();
    for id in serve_ids {
        let (_, _, runs) = profiled.iter().find(|(pid, _, _)| *pid == id).expect("profiled");
        templates.push(Template {
            name: id.name(),
            cost: runs[0].0.profiled.clone(),
            xeon_seconds: runs[0].1.query.single_cost.xeon.seconds,
        });
        candidate_sets.push(runs.iter().map(|(c, _)| c.clone()).collect());
    }
    let rack = XeonRack::rack_42u();
    let serve_cfg = ServeConfig { duration_seconds: 30.0, ..ServeConfig::default() };
    let fabric = cluster.cfg().fabric.clone();

    let mut static_hook =
        AdaptiveServer::new(PlannerMode::Static, REOPT_THRESHOLD, candidate_sets.clone());
    let static_report = serve_pipeline_hooked(
        &templates,
        cluster.watts(),
        &rack,
        &serve_cfg,
        None,
        Some((&fabric, NODES)),
        Some(&mut static_hook),
    );
    let mut adaptive_hook =
        AdaptiveServer::new(PlannerMode::Adaptive, REOPT_THRESHOLD, candidate_sets);
    let adaptive_report = serve_pipeline_hooked(
        &templates,
        cluster.watts(),
        &rack,
        &serve_cfg,
        None,
        Some((&fabric, NODES)),
        Some(&mut adaptive_hook),
    );

    assert!(static_hook.switches.is_empty(), "static mode must never switch plans");
    assert!(
        !adaptive_hook.switches.is_empty(),
        "the adaptive planner must switch at least one Q10 plan mid-run"
    );
    assert!(
        adaptive_report.mean_latency <= static_report.mean_latency,
        "adaptive serving must not be slower than static: {} vs {}",
        adaptive_report.mean_latency,
        static_report.mean_latency
    );

    println!(
        "\n## Serving: static vs adaptive planner (Q10-skewed trace, {} clients)\n",
        serve_cfg.clients
    );
    header(&["mode", "QPS", "mean latency (ms)", "p99 (ms)", "plan switches"]);
    row(&[
        "static".into(),
        format!("{:.1}", static_report.qps),
        format!("{:.2}", static_report.mean_latency * 1e3),
        format!("{:.2}", static_report.p99 * 1e3),
        "0".into(),
    ]);
    row(&[
        "adaptive".into(),
        format!("{:.1}", adaptive_report.qps),
        format!("{:.2}", adaptive_report.mean_latency * 1e3),
        format!("{:.2}", adaptive_report.p99 * 1e3),
        format!("{}", adaptive_hook.switches.len()),
    ]);
    println!();
    for s in &adaptive_hook.switches {
        println!(
            "Plan switch: template {} ({}) {} → {} at t={:.3} s (estimate said {:.3} ms, profile says {:.3} ms)",
            s.template,
            templates[s.template].name,
            s.from,
            s.to,
            s.at_seconds,
            s.from_est_seconds * 1e3,
            s.to_profiled_seconds * 1e3,
        );
    }

    emit(
        "rack_planner",
        &Json::obj([
            ("figure", Json::str("rack_planner")),
            ("nodes", Json::num(NODES as f64)),
            ("scale", Json::num(scale as f64)),
            ("queries", Json::Arr(queries_json)),
            ("q10_placements", Json::Arr(placements_json)),
            (
                "serving",
                Json::obj([
                    ("trace", Json::str("q10-skewed")),
                    ("reopt_threshold", Json::num(REOPT_THRESHOLD as f64)),
                    (
                        "static",
                        Json::obj([
                            ("qps", Json::num(static_report.qps)),
                            ("mean_latency_seconds", Json::num(static_report.mean_latency)),
                            ("p99_seconds", Json::num(static_report.p99)),
                            ("switches", Json::num(0.0)),
                        ]),
                    ),
                    (
                        "adaptive",
                        Json::obj([
                            ("qps", Json::num(adaptive_report.qps)),
                            ("mean_latency_seconds", Json::num(adaptive_report.mean_latency)),
                            ("p99_seconds", Json::num(adaptive_report.p99)),
                            ("switches", Json::num(adaptive_hook.switches.len() as f64)),
                        ]),
                    ),
                    (
                        "switch_events",
                        Json::Arr(
                            adaptive_hook
                                .switches
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("template", Json::str(templates[s.template].name)),
                                        ("at_seconds", Json::num(s.at_seconds)),
                                        ("from", Json::str(&s.from)),
                                        ("to", Json::str(&s.to)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]),
    );
}
