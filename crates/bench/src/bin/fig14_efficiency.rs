//! Figure 14: DPU performance/watt gains over the Xeon baseline for the
//! co-design applications, normalized to provisioned power (6 W DPU vs
//! 145 W Xeon).
//!
//! DPU-side throughputs come from the simulator / counted-execution
//! models; Xeon-side throughputs use the paper's own measured anchors
//! where it reports them (see `xeon_model::calibration`) and the
//! analytic machine model elsewhere. EXPERIMENTS.md lists which is which.

use dpu_apps::{disparity, hll, json, simsearch, svm};
use dpu_bench::json::{emit, Json};
use dpu_bench::{gain, header, row};
use dpu_isa::hash::HashKind;
use dpu_sql::agg::GroupByPlan;
use dpu_sql::CostAcc;
use xeon_model::{calibration::reported_gains, Xeon};

fn groupby_gain(ndv: u64, xeon: &Xeon) -> f64 {
    let plan = GroupByPlan::plan(ndv, 16);
    let bytes = 1u64 << 30;
    let mut acc = CostAcc::new();
    acc.stream(bytes * plan.dpu_bytes_factor(), bytes * plan.xeon_bytes_factor());
    acc.finish(xeon).gain(xeon)
}

fn main() {
    let xeon = Xeon::new();
    println!("# Figure 14: DPU efficiency gains (performance/watt vs Xeon)\n");
    header(&["Application", "measured gain", "paper gain"]);

    let corpus = simsearch::generate_corpus(2000, 8000, 80, 11);
    let index = simsearch::InvertedIndex::build(&corpus);
    let json_corpus = json::generate_records(2000, 5);

    let rows: Vec<(&str, f64, f64)> = vec![
        ("SVM (parallel SMO, 128K × 28)", svm::gain(128 * 1024, 28, &xeon), reported_gains::SVM),
        ("Similarity search (SpMM)", simsearch::gain(&index, &xeon), reported_gains::SIMSEARCH),
        ("Group-by, low NDV", groupby_gain(10, &xeon), reported_gains::GROUPBY_LOW_NDV),
        ("Group-by, high NDV", groupby_gain(2_000_000, &xeon), reported_gains::GROUPBY_HIGH_NDV),
        ("HyperLogLog (CRC32)", hll::gain(HashKind::Crc32, &xeon), reported_gains::HLL_CRC32),
        ("JSON parsing", json::gain(&json_corpus, &xeon), reported_gains::JSON),
        (
            "Disparity (640×480, 32 shifts)",
            disparity::gain(640, 480, 32, &xeon),
            reported_gains::DISPARITY,
        ),
    ];
    let mut apps: Vec<Json> = Vec::new();
    for (name, got, paper) in rows {
        row(&[name.to_string(), gain(got), gain(paper)]);
        apps.push(Json::obj([
            ("application", Json::str(name)),
            ("measured_gain", Json::num(got)),
            ("paper_gain", Json::num(paper)),
        ]));
    }

    println!("\n## Detail: HyperLogLog hash choice (§5.4)\n");
    header(&["Hash", "DPU items/s", "Xeon items/s", "gain"]);
    for kind in [HashKind::Crc32, HashKind::Murmur64] {
        row(&[
            format!("{kind:?}"),
            format!("{:.2e}", hll::dpu_items_per_sec(kind, hll::RankMethod::TrailingZeros)),
            format!("{:.2e}", hll::xeon_items_per_sec(kind, &xeon)),
            gain(hll::gain(kind, &xeon)),
        ]);
    }
    println!(
        "\nNTZ rank: {} cycles; NLZ rank: {} cycles (§5.4: 4 vs 13).",
        hll::RankMethod::TrailingZeros.dpcore_cycles(),
        hll::RankMethod::LeadingZeros.dpcore_cycles()
    );

    println!("\n## Detail: SpMM tile strategy (§5.2)\n");
    header(&["Strategy", "effective bandwidth"]);
    for (name, s) in [
        ("naive (one tile per buffer)", simsearch::TileStrategy::NaiveOneTilePerBuffer),
        ("dynamic multi-tile", simsearch::TileStrategy::DynamicMultiTile),
    ] {
        row(&[
            name.to_string(),
            format!("{:.2} GB/s", simsearch::dpu_effective_bandwidth(&index, s, 8192, 32) / 1e9),
        ]);
    }
    println!("\nPaper: naive 0.26 GB/s → dynamic 5.24 GB/s.");

    println!("\n## Detail: disparity decomposition (§5.6)\n");
    header(&["Decomposition", "seconds (640×480, 32 shifts)"]);
    let mut decompositions: Vec<Json> = Vec::new();
    for (name, d) in [
        ("fine-grained (tiles + ATE barriers)", disparity::Decomposition::FineGrained),
        ("coarse-grained (shift per core)", disparity::Decomposition::CoarseGrained),
    ] {
        let secs = disparity::dpu_seconds(640, 480, 32, d);
        row(&[name.to_string(), format!("{secs:.4}")]);
        decompositions
            .push(Json::obj([("decomposition", Json::str(name)), ("seconds", Json::num(secs))]));
    }

    emit(
        "fig14_efficiency",
        &Json::obj([
            ("figure", Json::str("fig14_efficiency")),
            ("applications", Json::Arr(apps)),
            ("disparity_decompositions", Json::Arr(decompositions)),
        ]),
    );
}
