//! Rack-scale TPC-H: the 8-query suite sharded across 8 simulated DPU
//! nodes, checked bit-identical against single-node execution, then
//! served to a closed-loop client population and compared against a
//! 42U multi-socket Xeon rack on QPS, latency, and performance/watt.
//!
//! Flags:
//!
//! - `--replicas <k>` — store each fact shard on `k` nodes under chained
//!   declustering (default 1).
//! - `--kill <node>@<seconds>` — crash `node` at the given query-relative
//!   time (repeatable). Queries fail over to surviving replicas and the
//!   results must stay bit-identical; with `k = 1` a kill makes its
//!   shard unavailable and the run aborts with the error.
//!
//! Regardless of flags, the binary also sweeps k ∈ {1, 2, 3} ×
//! {0, 1, 2} failed nodes and emits `BENCH_rack_failover.json` with QPS
//! and p99 per configuration. Everything is seeded: the same build
//! produces byte-identical reports on every run.

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_cluster::{
    serve, Cluster, ClusterConfig, FaultPlan, QueryId, ServeConfig, ShardPolicy, Template,
};
use dpu_sql::tpch;
use xeon_model::XeonRack;

fn parse_args() -> (usize, Vec<(usize, f64)>) {
    let mut replicas = 1usize;
    let mut kills: Vec<(usize, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--replicas" => {
                let v = args.next().expect("--replicas needs a value");
                replicas = v.parse().expect("--replicas takes an integer");
            }
            "--kill" => {
                let v = args.next().expect("--kill needs <node>@<seconds>");
                let (n, t) = v.split_once('@').expect("--kill format is <node>@<seconds>");
                kills.push((
                    n.parse().expect("--kill node must be an integer"),
                    t.parse().expect("--kill time must be seconds"),
                ));
            }
            other => panic!("unknown flag {other} (use --replicas <k> / --kill <node>@<seconds>)"),
        }
    }
    (replicas, kills)
}

fn main() {
    const NODES: usize = 8;
    let (replicas, kills) = parse_args();
    let scale = 30_000u64; // cost queries at SF≈100 cardinalities
    let db = tpch::generate(5000, 2026);
    let policy = ShardPolicy::hash(NODES);
    let cfg = ClusterConfig::prototype_slice(NODES, scale).with_replicas(replicas);
    let mut cluster = Cluster::new(db.clone(), &policy, cfg);
    let mut plan = FaultPlan::none();
    for &(node, at) in &kills {
        plan = plan.crash(node, at);
    }
    cluster.set_faults(plan);

    println!(
        "# Rack-scale TPC-H: {NODES} DPU nodes, hash-sharded on orderkey, k={replicas} \
         ({} lineitem rows)\n",
        cluster.full.lineitem.rows()
    );
    if !kills.is_empty() {
        for &(node, at) in &kills {
            println!("Injected fault: node {node} crashes at t={at:.3} s");
        }
        println!();
    }
    let load = cluster.load_seconds();
    println!("Initial shard load (scatter + dimension broadcast): {:.3} ms\n", load * 1e3);

    header(&[
        "Query",
        "local (ms)",
        "fabric (ms)",
        "merge (ms)",
        "total (ms)",
        "failovers",
        "== single-node",
    ]);
    let mut queries: Vec<Json> = Vec::new();
    let mut templates: Vec<Template> = Vec::new();
    for id in QueryId::ALL {
        let r = match cluster.try_run_at(id, 0.0) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e} — raise --replicas to survive these kills", id.name());
                std::process::exit(1);
            }
        };
        assert!(r.matches_single(), "{} distributed result diverged from single-node", r.id.name());
        row(&[
            r.id.name().to_string(),
            format!("{:.3}", r.cost.local_seconds * 1e3),
            format!("{:.3}", r.cost.fabric_seconds * 1e3),
            format!("{:.3}", r.cost.merge_seconds * 1e3),
            format!("{:.3}", r.cost.total_seconds() * 1e3),
            format!("{}", r.cost.failovers),
            "yes".into(),
        ]);
        queries.push(Json::obj([
            ("query", Json::str(r.id.name())),
            ("local_seconds", Json::num(r.cost.local_seconds)),
            ("fabric_seconds", Json::num(r.cost.fabric_seconds)),
            ("merge_seconds", Json::num(r.cost.merge_seconds)),
            ("total_seconds", Json::num(r.cost.total_seconds())),
            ("fabric_bytes", Json::num(r.cost.fabric_bytes as f64)),
            ("failovers", Json::num(r.cost.failovers as f64)),
            ("matches_single_node", Json::Bool(true)),
        ]));
        templates.push(Template {
            name: r.id.name(),
            cost: r.cost.clone(),
            xeon_seconds: r.single_cost.xeon.seconds,
        });
    }
    println!("\nAll {} distributed query results are bit-identical to single-node.", queries.len());

    // Serve the suite to a closed-loop client population.
    let rack = XeonRack::rack_42u();
    let serve_cfg = ServeConfig::default();
    let report = serve(&templates, cluster.watts(), &rack, &serve_cfg);

    println!(
        "\n## Serving ({} clients, {:.0} s horizon, batch ≤ {})\n",
        serve_cfg.clients, serve_cfg.duration_seconds, serve_cfg.max_batch
    );
    header(&["Metric", "DPU rack slice", "Xeon rack (42U)"]);
    row(&["QPS".into(), format!("{:.1}", report.qps), format!("{:.1}", report.xeon_qps)]);
    row(&[
        "Watts".into(),
        format!("{:.0}", report.cluster_watts),
        format!("{:.0}", report.xeon_watts),
    ]);
    row(&[
        "QPS/W".into(),
        format!("{:.3}", report.qps / report.cluster_watts),
        format!("{:.3}", report.xeon_qps / report.xeon_watts),
    ]);
    println!(
        "\nLatency: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, mean {:.1} ms (mean batch {:.1})",
        report.p50 * 1e3,
        report.p95 * 1e3,
        report.p99 * 1e3,
        report.mean_latency * 1e3,
        report.mean_batch
    );
    println!("Admission: {} completed, {} rejected.", report.completed, report.rejected);
    println!(
        "\nPerformance/watt vs Xeon rack: {:.1}× (paper's single-node TPC-H geomean: 15×)",
        report.perf_per_watt_gain
    );

    emit(
        "rack_tpch",
        &Json::obj([
            ("figure", Json::str("rack_tpch")),
            ("nodes", Json::num(NODES as f64)),
            ("replicas", Json::num(replicas as f64)),
            ("scale", Json::num(scale as f64)),
            ("load_seconds", Json::num(load)),
            ("queries", Json::Arr(queries)),
            ("qps", Json::num(report.qps)),
            ("p50_seconds", Json::num(report.p50)),
            ("p95_seconds", Json::num(report.p95)),
            ("p99_seconds", Json::num(report.p99)),
            ("mean_batch", Json::num(report.mean_batch)),
            ("completed", Json::num(report.completed as f64)),
            ("rejected", Json::num(report.rejected as f64)),
            ("cluster_watts", Json::num(report.cluster_watts)),
            ("xeon_qps", Json::num(report.xeon_qps)),
            ("xeon_watts", Json::num(report.xeon_watts)),
            ("perf_per_watt_gain", Json::num(report.perf_per_watt_gain)),
        ]),
    );

    // Failover sweep: QPS and p99 vs number of failed nodes at each
    // replication factor. Failed sets are non-adjacent ({1}, {1, 4}) so
    // chained declustering at k = 2 still covers every shard with two
    // failures; k = 1 loses shards to any failure and reports QPS 0.
    println!("\n## Failover sweep (8 nodes, crash at t=0)\n");
    header(&["k", "failed nodes", "available", "QPS", "p99 (ms)", "failovers"]);
    let fail_sets: [&[usize]; 3] = [&[], &[1], &[1, 4]];
    let mut sweep: Vec<Json> = Vec::new();
    for k in 1..=3usize {
        for fails in fail_sets {
            let cfg = ClusterConfig::prototype_slice(NODES, scale).with_replicas(k);
            let mut c = Cluster::new(db.clone(), &policy, cfg);
            let mut plan = FaultPlan::none();
            for &f in fails {
                plan = plan.crash(f, 0.0);
            }
            c.set_faults(plan);
            let mut available = true;
            let mut failovers = 0usize;
            let mut tmpls: Vec<Template> = Vec::new();
            for id in QueryId::ALL {
                match c.try_run_at(id, 0.0) {
                    Ok(q) => {
                        assert!(q.matches_single(), "{} diverged under faults", id.name());
                        failovers += q.cost.failovers;
                        tmpls.push(Template {
                            name: q.id.name(),
                            cost: q.cost.clone(),
                            xeon_seconds: q.single_cost.xeon.seconds,
                        });
                    }
                    Err(_) => {
                        available = false;
                        break;
                    }
                }
            }
            let (qps, p99) = if available {
                let r = serve(&tmpls, c.watts(), &rack, &serve_cfg);
                (r.qps, r.p99)
            } else {
                (0.0, 0.0)
            };
            row(&[
                format!("{k}"),
                format!("{fails:?}"),
                if available { "yes".into() } else { "no".into() },
                format!("{qps:.1}"),
                format!("{:.1}", p99 * 1e3),
                format!("{failovers}"),
            ]);
            sweep.push(Json::obj([
                ("replicas", Json::num(k as f64)),
                ("failed_nodes", Json::num(fails.len() as f64)),
                ("available", Json::Bool(available)),
                ("qps", Json::num(qps)),
                ("p99_seconds", Json::num(p99)),
                ("failovers", Json::num(failovers as f64)),
            ]));
        }
    }
    emit(
        "rack_failover",
        &Json::obj([
            ("figure", Json::str("rack_failover")),
            ("nodes", Json::num(NODES as f64)),
            ("scale", Json::num(scale as f64)),
            ("serve_seed", Json::num(serve_cfg.seed as f64)),
            ("sweep", Json::Arr(sweep)),
        ]),
    );
}
