//! Rack-scale TPC-H: the 8-query suite sharded across 8 simulated DPU
//! nodes, checked bit-identical against single-node execution, then
//! served to a closed-loop client population and compared against a
//! 42U multi-socket Xeon rack on QPS, latency, and performance/watt.

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_cluster::{serve, Cluster, ClusterConfig, ServeConfig, ShardPolicy, Template};
use dpu_sql::tpch;
use xeon_model::XeonRack;

fn main() {
    const NODES: usize = 8;
    let scale = 30_000u64; // cost queries at SF≈100 cardinalities
    let db = tpch::generate(5000, 2026);
    let policy = ShardPolicy::hash(NODES);
    let cfg = ClusterConfig::prototype_slice(NODES, scale);
    let mut cluster = Cluster::new(db, &policy, cfg);

    println!(
        "# Rack-scale TPC-H: {NODES} DPU nodes, hash-sharded on orderkey ({} lineitem rows)\n",
        cluster.full.lineitem.rows()
    );
    let load = cluster.load_seconds();
    println!("Initial shard load (scatter + dimension broadcast): {:.3} ms\n", load * 1e3);

    header(&["Query", "local (ms)", "fabric (ms)", "merge (ms)", "total (ms)", "== single-node"]);
    let results = cluster.run_all();
    let mut queries: Vec<Json> = Vec::new();
    let mut templates: Vec<Template> = Vec::new();
    for r in &results {
        assert!(r.matches_single(), "{} distributed result diverged from single-node", r.id.name());
        row(&[
            r.id.name().to_string(),
            format!("{:.3}", r.cost.local_seconds * 1e3),
            format!("{:.3}", r.cost.fabric_seconds * 1e3),
            format!("{:.3}", r.cost.merge_seconds * 1e3),
            format!("{:.3}", r.cost.total_seconds() * 1e3),
            "yes".into(),
        ]);
        queries.push(Json::obj([
            ("query", Json::str(r.id.name())),
            ("local_seconds", Json::num(r.cost.local_seconds)),
            ("fabric_seconds", Json::num(r.cost.fabric_seconds)),
            ("merge_seconds", Json::num(r.cost.merge_seconds)),
            ("total_seconds", Json::num(r.cost.total_seconds())),
            ("fabric_bytes", Json::num(r.cost.fabric_bytes as f64)),
            ("matches_single_node", Json::Bool(true)),
        ]));
        templates.push(Template {
            name: r.id.name(),
            cost: r.cost.clone(),
            xeon_seconds: r.single_cost.xeon.seconds,
        });
    }
    println!("\nAll {} distributed query results are bit-identical to single-node.", results.len());

    // Serve the suite to a closed-loop client population.
    let rack = XeonRack::rack_42u();
    let serve_cfg = ServeConfig::default();
    let report = serve(&templates, cluster.watts(), &rack, &serve_cfg);

    println!(
        "\n## Serving ({} clients, {:.0} s horizon, batch ≤ {})\n",
        serve_cfg.clients, serve_cfg.duration_seconds, serve_cfg.max_batch
    );
    header(&["Metric", "DPU rack slice", "Xeon rack (42U)"]);
    row(&["QPS".into(), format!("{:.1}", report.qps), format!("{:.1}", report.xeon_qps)]);
    row(&[
        "Watts".into(),
        format!("{:.0}", report.cluster_watts),
        format!("{:.0}", report.xeon_watts),
    ]);
    row(&[
        "QPS/W".into(),
        format!("{:.3}", report.qps / report.cluster_watts),
        format!("{:.3}", report.xeon_qps / report.xeon_watts),
    ]);
    println!(
        "\nLatency: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, mean {:.1} ms (mean batch {:.1})",
        report.p50 * 1e3,
        report.p95 * 1e3,
        report.p99 * 1e3,
        report.mean_latency * 1e3,
        report.mean_batch
    );
    println!("Admission: {} completed, {} rejected.", report.completed, report.rejected);
    println!(
        "\nPerformance/watt vs Xeon rack: {:.1}× (paper's single-node TPC-H geomean: 15×)",
        report.perf_per_watt_gain
    );

    emit(
        "rack_tpch",
        &Json::obj([
            ("figure", Json::str("rack_tpch")),
            ("nodes", Json::num(NODES as f64)),
            ("scale", Json::num(scale as f64)),
            ("load_seconds", Json::num(load)),
            ("queries", Json::Arr(queries)),
            ("qps", Json::num(report.qps)),
            ("p50_seconds", Json::num(report.p50)),
            ("p95_seconds", Json::num(report.p95)),
            ("p99_seconds", Json::num(report.p99)),
            ("mean_batch", Json::num(report.mean_batch)),
            ("completed", Json::num(report.completed as f64)),
            ("rejected", Json::num(report.rejected as f64)),
            ("cluster_watts", Json::num(report.cluster_watts)),
            ("xeon_qps", Json::num(report.xeon_qps)),
            ("xeon_watts", Json::num(report.xeon_watts)),
            ("perf_per_watt_gain", Json::num(report.perf_per_watt_gain)),
        ]),
    );
}
