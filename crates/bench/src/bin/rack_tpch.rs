//! Rack-scale TPC-H: the 8-query suite sharded across 8 simulated DPU
//! nodes, checked bit-identical against single-node execution, then
//! served to a closed-loop client population and compared against a
//! 42U multi-socket Xeon rack on QPS, latency, and performance/watt.
//!
//! Flags:
//!
//! - `--replicas <k>` — store each fact shard on `k` nodes under chained
//!   declustering (default 1).
//! - `--kill <node>@<seconds>` — crash `node` at the given query-relative
//!   time (repeatable). Queries fail over to surviving replicas and the
//!   results must stay bit-identical; with `k = 1` a kill makes its
//!   shard unavailable and the run aborts with the error.
//! - `--concurrency <n>` — in-flight batches for an extra serving run
//!   printed alongside the default one (shares the fabric model).
//! - `--slo-ms <ms>` — latency SLO for that run; turns the adaptive
//!   batch controller on and reports SLO attainment.
//! - `--speculate` — race deadline-missing shard sub-plans against a
//!   backup replica (visible under `--kill`/straggler fault plans; a
//!   healthy cluster never trips the deadline).
//! - `--explain` — print the cost-based planner's chosen plan for every
//!   query, with estimated vs actual rows per operator (the rendering
//!   snapshot-tested in `dpu-planner`).
//! - `--planner <off|static|adaptive>` — re-serve the suite through
//!   planner-selected plans: `static` trusts the estimates for the whole
//!   run, `adaptive` re-ranks candidates from observed traffic and
//!   prints any plan switches (`off`, the default, skips the section).
//! - `--racks <r>` — spread the 8 nodes over `r` racks behind a
//!   spine/leaf fabric (default 1, the flat committed baseline).
//! - `--oversub <x>` — leaf-uplink oversubscription ratio ≥ 1 (default
//!   1, a non-blocking spine). Only meaningful with `--racks > 1`.
//! - `--tenants <t>` — serve the suite to `t` open-loop tenants
//!   (weighted-fair shares, priority preemption) and print the
//!   per-tenant breakdown (default 1: section skipped unless the trace
//!   is open-loop).
//! - `--trace <closed|diurnal|burst>` — arrival shape for the tenant
//!   section: `closed` keeps the default closed-loop serving only,
//!   `diurnal`/`burst` run the open-loop multi-tenant loop under the
//!   corresponding trace.
//!
//! Regardless of flags, the binary also sweeps k ∈ {1, 2, 3} ×
//! {0, 1, 2} failed nodes and emits `BENCH_rack_failover.json`, plus the
//! serving-pipeline baseline `BENCH_rack_serve.json`: the SLO-attainment
//! curve of adaptive vs fixed batching across offered loads, Q10 fabric
//! interference under concurrency, and speculative straggler recovery.
//! The emitted JSON never depends on flags: the suite baseline
//! `BENCH_rack_tpch.json` (per-query costs + QPS/latency regression
//! notes, byte-diffed by the nightly tpch-scale CI job) is only written
//! by a default-config run — flags that reshape the cluster (replicas,
//! kills, speculation) print their sections but leave the committed
//! baseline untouched.
//!
//! Every sweep is host-parallel: the database is generated once, each
//! (policy, k) combination is sharded once into a shared
//! [`ClusterCore`], and every sweep cell is an O(1) [`Cluster::fork`]
//! dispatched through `Pool::par_map`. Cell results are collected and
//! printed in input order, so the same build produces byte-identical
//! reports on every run, at any `DPU_THREADS`.

use std::sync::Arc;

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_cluster::{
    serve, serve_pipeline, serve_pipeline_hooked, serve_tenants, Cluster, ClusterConfig,
    ClusterCore, FaultPlan, QueryId, ServeConfig, ShardPolicy, SingleRefCache, Speculation,
    Template, Tenant, TenantServeConfig, TraceShape,
};
use dpu_planner::{explain, AdaptiveServer, CandidatePlan, Planner, PlannerMode};
use dpu_pool::Pool;
use dpu_sql::tpch;
use xeon_model::XeonRack;

struct Args {
    replicas: usize,
    kills: Vec<(usize, f64)>,
    concurrency: usize,
    slo_ms: Option<f64>,
    speculate: bool,
    explain: bool,
    planner: Option<PlannerMode>,
    racks: usize,
    oversub: f64,
    tenants: usize,
    trace: Option<TraceShape>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        replicas: 1,
        kills: Vec::new(),
        concurrency: 1,
        slo_ms: None,
        speculate: false,
        explain: false,
        planner: None,
        racks: 1,
        oversub: 1.0,
        tenants: 1,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--replicas" => {
                let v = args.next().expect("--replicas needs a value");
                parsed.replicas = v.parse().expect("--replicas takes an integer");
            }
            "--kill" => {
                let v = args.next().expect("--kill needs <node>@<seconds>");
                let (n, t) = v.split_once('@').expect("--kill format is <node>@<seconds>");
                parsed.kills.push((
                    n.parse().expect("--kill node must be an integer"),
                    t.parse().expect("--kill time must be seconds"),
                ));
            }
            "--concurrency" => {
                let v = args.next().expect("--concurrency needs a value");
                parsed.concurrency = v.parse().expect("--concurrency takes an integer");
            }
            "--slo-ms" => {
                let v = args.next().expect("--slo-ms needs a value");
                parsed.slo_ms = Some(v.parse().expect("--slo-ms takes milliseconds"));
            }
            "--speculate" => parsed.speculate = true,
            "--explain" => parsed.explain = true,
            "--planner" => {
                let v = args.next().expect("--planner needs off|static|adaptive");
                parsed.planner = match v.as_str() {
                    "off" => None,
                    "static" => Some(PlannerMode::Static),
                    "adaptive" => Some(PlannerMode::Adaptive),
                    other => panic!("--planner takes off|static|adaptive, got {other}"),
                };
            }
            "--racks" => {
                let v = args.next().expect("--racks needs a value");
                parsed.racks = v.parse().expect("--racks takes an integer");
            }
            "--oversub" => {
                let v = args.next().expect("--oversub needs a value");
                parsed.oversub = v.parse().expect("--oversub takes a ratio");
            }
            "--tenants" => {
                let v = args.next().expect("--tenants needs a value");
                parsed.tenants = v.parse().expect("--tenants takes an integer");
            }
            "--trace" => {
                let v = args.next().expect("--trace needs closed|diurnal|burst");
                parsed.trace = match v.as_str() {
                    "closed" => None,
                    "diurnal" => {
                        Some(TraceShape::Diurnal { period_seconds: 20.0, amplitude: 0.8 })
                    }
                    "burst" => Some(TraceShape::Burst {
                        period_seconds: 10.0,
                        burst_seconds: 2.0,
                        multiplier: 4.0,
                    }),
                    other => panic!("--trace takes closed|diurnal|burst, got {other}"),
                };
            }
            other => panic!(
                "unknown flag {other} (use --replicas <k> / --kill <node>@<seconds> / \
                 --concurrency <n> / --slo-ms <ms> / --speculate / --explain / \
                 --planner <off|static|adaptive> / --racks <r> / --oversub <x> / \
                 --tenants <t> / --trace <closed|diurnal|burst>)"
            ),
        }
    }
    parsed
}

/// Runs the 8-query suite on `c`, asserting bit-identical distributed
/// results, and returns serving templates for the pipeline.
fn suite_templates(c: &mut Cluster) -> Vec<Template> {
    QueryId::ALL
        .iter()
        .map(|&id| {
            let q = c.try_run_at(id, 0.0).expect("suite must run on a healthy/replicated cluster");
            assert!(q.matches_single(), "{} diverged from single-node", id.name());
            Template {
                name: q.id.name(),
                cost: q.cost.clone(),
                xeon_seconds: q.single_cost.xeon.seconds,
            }
        })
        .collect()
}

/// The `--planner` serving re-run: every suite query is served through
/// its planner-selected plan (profiled by an instrumented execution);
/// `adaptive` mode may re-rank candidates from observed traffic.
/// Print-only — the committed JSON baselines never depend on it.
fn planner_serve(mode: PlannerMode, planner: &Planner, cluster: &mut Cluster, suite: &[Template]) {
    let candidate_sets: Vec<Vec<CandidatePlan>> = QueryId::ALL
        .iter()
        .map(|&id| {
            planner
                .candidates(id)
                .into_iter()
                .map(|(plan, est)| {
                    let run = cluster.run_planned(&plan, 0.0).expect("healthy cluster");
                    assert!(run.query.matches_single(), "{} planner plan diverged", id.name());
                    CandidatePlan {
                        name: plan.merge.name().into(),
                        plan,
                        est_seconds: est.total_seconds(),
                        profiled: run.query.cost.clone(),
                    }
                })
                .collect()
        })
        .collect();
    let rack = XeonRack::rack_42u();
    let cfg = ServeConfig::default();
    let fabric = cluster.cfg().fabric.clone();
    let n = cluster.cfg().n_nodes;
    let mut hook = AdaptiveServer::new(mode, 8, candidate_sets);
    let report = serve_pipeline_hooked(
        suite,
        cluster.watts(),
        &rack,
        &cfg,
        None,
        Some((&fabric, n)),
        Some(&mut hook),
    );
    let mode_name = match mode {
        PlannerMode::Static => "static",
        PlannerMode::Adaptive => "adaptive",
    };
    println!("\n## Serving through the {mode_name} planner\n");
    println!(
        "QPS {:.1}, mean latency {:.2} ms, p99 {:.2} ms, plan switches {}.",
        report.qps,
        report.mean_latency * 1e3,
        report.p99 * 1e3,
        hook.switches.len()
    );
    for s in &hook.switches {
        println!(
            "Plan switch: {} {} → {} at t={:.3} s",
            suite[s.template].name, s.from, s.to, s.at_seconds
        );
    }
}

fn main() {
    const NODES: usize = 8;
    let args = parse_args();
    let replicas = args.replicas;
    let scale = 30_000u64; // cost queries at SF≈100 cardinalities
    let db = Arc::new(tpch::generate(5000, 2026));
    let policy = ShardPolicy::hash(NODES);
    // One shared single-node reference cache for every core below: the
    // reference is a function of the (shared) full database alone, so no
    // sweep cell ever recomputes it.
    let single = Arc::new(SingleRefCache::new());
    let core_for = |k: usize| {
        ClusterCore::with_shared(
            db.clone(),
            &policy,
            ClusterConfig::prototype_slice(NODES, scale).with_replicas(k),
            single.clone(),
        )
    };
    // One core per sweep replication factor — each (policy, k) sharded
    // exactly once. Every sweep cell below is an O(1) fork of its core.
    let cores: Vec<Arc<ClusterCore>> = (1..=3).map(core_for).collect();
    let default_topology = args.racks == 1 && args.oversub == 1.0;
    let main_core = if (1..=3).contains(&replicas) && default_topology {
        cores[replicas - 1].clone()
    } else {
        ClusterCore::with_shared(
            db.clone(),
            &policy,
            ClusterConfig::prototype_slice(NODES, scale)
                .with_replicas(replicas)
                .with_topology(args.racks, args.oversub),
            single.clone(),
        )
    };
    // Warm the shared cache once (no-op at one thread; values identical
    // either way) so parallel sweep cells start fully warm.
    main_core.warm_single_refs();
    let mut cluster = Cluster::from_core(main_core);
    let mut plan = FaultPlan::none();
    for &(node, at) in &args.kills {
        plan = plan.crash(node, at);
    }
    cluster.set_faults(plan);
    if args.speculate {
        cluster.set_speculation(Some(Speculation::default()));
    }

    println!(
        "# Rack-scale TPC-H: {NODES} DPU nodes, hash-sharded on orderkey, k={replicas} \
         ({} lineitem rows)\n",
        cluster.full().lineitem.rows()
    );
    if !default_topology {
        println!(
            "Topology: {} racks of {} nodes, spine/leaf, {}:1 oversubscription \
             (failover timeout {:.1} µs)\n",
            args.racks,
            NODES / args.racks,
            args.oversub,
            cluster.fabric.failover_timeout_seconds() * 1e6
        );
    }
    if !args.kills.is_empty() {
        for &(node, at) in &args.kills {
            println!("Injected fault: node {node} crashes at t={at:.3} s");
        }
        println!();
    }
    if args.speculate {
        println!("Speculative re-execution armed (deadline = p50 shard time × 1.25).\n");
    }
    let load = cluster.load_seconds();
    println!("Initial shard load (scatter + dimension broadcast): {:.3} ms", load * 1e3);
    let skew = cluster.sharded().skew_report();
    println!(
        "Shard balance: max {} rows vs mean {:.1} (imbalance {:.3}×, CV {:.4}, Gini {:.4})\n",
        skew.max_rows, skew.mean_rows, skew.imbalance, skew.cv, skew.gini
    );

    // Resident footprint of the FOR/bit-packed columns, merged across
    // every shard (dimensions really are replicated per shard, so the
    // sums are the rack's resident bytes). Indented lines break each
    // table down per column with its average stored bits per value.
    println!("## Columnar compression (FOR/bit-packed, per shard column)\n");
    header(&["Table / column", "rows", "flat (KiB)", "resident (KiB)", "ratio", "bits/value"]);
    let comp = cluster.sharded().compression_report();
    for t in &comp {
        let (flat, packed) = (t.flat_bytes(), t.packed_bytes());
        row(&[
            t.table.clone(),
            format!("{}", t.rows),
            format!("{:.1}", flat as f64 / 1024.0),
            format!("{:.1}", packed as f64 / 1024.0),
            format!("{:.2}x", t.ratio()),
            format!("{:.1}", if t.rows == 0 { 0.0 } else { packed as f64 * 8.0 / t.rows as f64 }),
        ]);
        for c in &t.columns {
            row(&[
                format!("  {}", c.name),
                format!("{}", c.rows),
                format!("{:.1}", c.flat_bytes as f64 / 1024.0),
                format!("{:.1}", c.packed_bytes as f64 / 1024.0),
                format!(
                    "{:.2}x",
                    if c.packed_bytes == 0 {
                        1.0
                    } else {
                        c.flat_bytes as f64 / c.packed_bytes as f64
                    }
                ),
                format!("{:.1}", c.bits_per_value()),
            ]);
        }
    }
    let flat_total: u64 = comp.iter().map(|t| t.flat_bytes()).sum();
    let packed_total: u64 = comp.iter().map(|t| t.packed_bytes()).sum();
    println!(
        "\nResident total: {:.2} MiB packed vs {:.2} MiB flat ({:.2}x compression).\n",
        packed_total as f64 / (1024.0 * 1024.0),
        flat_total as f64 / (1024.0 * 1024.0),
        flat_total as f64 / packed_total.max(1) as f64
    );

    header(&[
        "Query",
        "local (ms)",
        "fabric (ms)",
        "merge (ms)",
        "total (ms)",
        "failovers",
        "== single-node",
    ]);
    let mut queries: Vec<Json> = Vec::new();
    let mut templates: Vec<Template> = Vec::new();
    for id in QueryId::ALL {
        let r = match cluster.try_run_at(id, 0.0) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e} — raise --replicas to survive these kills", id.name());
                std::process::exit(1);
            }
        };
        assert!(r.matches_single(), "{} distributed result diverged from single-node", r.id.name());
        row(&[
            r.id.name().to_string(),
            format!("{:.3}", r.cost.local_seconds * 1e3),
            format!("{:.3}", r.cost.fabric_seconds * 1e3),
            format!("{:.3}", r.cost.merge_seconds * 1e3),
            format!("{:.3}", r.cost.total_seconds() * 1e3),
            format!("{}", r.cost.failovers),
            "yes".into(),
        ]);
        queries.push(Json::obj([
            ("query", Json::str(r.id.name())),
            ("local_seconds", Json::num(r.cost.local_seconds)),
            ("fabric_seconds", Json::num(r.cost.fabric_seconds)),
            ("merge_seconds", Json::num(r.cost.merge_seconds)),
            ("total_seconds", Json::num(r.cost.total_seconds())),
            ("fabric_bytes", Json::num(r.cost.fabric_bytes as f64)),
            ("failovers", Json::num(r.cost.failovers as f64)),
            ("matches_single_node", Json::Bool(true)),
        ]));
        templates.push(Template {
            name: r.id.name(),
            cost: r.cost.clone(),
            xeon_seconds: r.single_cost.xeon.seconds,
        });
    }
    println!("\nAll {} distributed query results are bit-identical to single-node.", queries.len());
    if args.speculate {
        let specs: usize = templates.iter().map(|t| t.cost.speculations).sum();
        println!("Speculative backups launched across the suite: {specs}.");
    }

    // Print-only planner sections: EXPLAIN and/or a planner-driven
    // serving re-run. Neither touches the emitted JSON.
    if args.explain || args.planner.is_some() {
        let planner = Planner::new(cluster.core());
        if args.explain {
            println!("\n## EXPLAIN (planner-chosen plans, est vs actual)\n");
            for id in QueryId::ALL {
                let choice = planner.plan(id);
                let run = cluster
                    .run_planned(&choice.plan, 0.0)
                    .expect("planner plans run on the same cluster as the suite");
                assert!(run.query.matches_single(), "{} planner plan diverged", id.name());
                println!("{}", explain(&choice.plan, &choice.estimate, Some(&run)));
            }
        }
        if let Some(mode) = args.planner {
            planner_serve(mode, &planner, &mut cluster, &templates);
        }
    }

    // Serve the suite to a closed-loop client population.
    let rack = XeonRack::rack_42u();
    let serve_cfg = ServeConfig::default();
    let report = serve(&templates, cluster.watts(), &rack, &serve_cfg);

    println!(
        "\n## Serving ({} clients, {:.0} s horizon, batch ≤ {})\n",
        serve_cfg.clients, serve_cfg.duration_seconds, serve_cfg.max_batch
    );
    header(&["Metric", "DPU rack slice", "Xeon rack (42U)"]);
    row(&["QPS".into(), format!("{:.1}", report.qps), format!("{:.1}", report.xeon_qps)]);
    row(&[
        "Watts".into(),
        format!("{:.0}", report.cluster_watts),
        format!("{:.0}", report.xeon_watts),
    ]);
    row(&[
        "QPS/W".into(),
        format!("{:.3}", report.qps / report.cluster_watts),
        format!("{:.3}", report.xeon_qps / report.xeon_watts),
    ]);
    println!(
        "\nLatency: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, mean {:.1} ms (mean batch {:.1})",
        report.p50 * 1e3,
        report.p95 * 1e3,
        report.p99 * 1e3,
        report.mean_latency * 1e3,
        report.mean_batch
    );
    println!("Admission: {} completed, {} rejected.", report.completed, report.rejected);
    println!(
        "\nPerformance/watt vs Xeon rack: {:.1}× (paper's single-node TPC-H geomean: 15×)",
        report.perf_per_watt_gain
    );

    // Extra flag-driven serving run: concurrency and/or SLO-adaptive
    // batching over the shared fabric. Printed only — the emitted JSON
    // below never depends on flags.
    if args.concurrency > 1 || args.slo_ms.is_some() {
        let flagged = ServeConfig {
            concurrency: args.concurrency.max(1),
            adaptive: args.slo_ms.is_some(),
            slo_seconds: args.slo_ms.map(|ms| ms / 1e3),
            ..serve_cfg.clone()
        };
        let fabric = cluster.cfg().fabric.clone();
        let r = serve_pipeline(
            &templates,
            cluster.watts(),
            &rack,
            &flagged,
            None,
            Some((&fabric, NODES)),
        );
        println!(
            "\n## Serving with flags (concurrency {}, adaptive {}, SLO {})\n",
            flagged.concurrency,
            if flagged.adaptive { "on" } else { "off" },
            flagged.slo_seconds.map_or("none".to_string(), |s| format!("{:.0} ms", s * 1e3)),
        );
        println!(
            "QPS {:.1}, p99 {:.1} ms, SLO attainment {:.4}, mean batch {:.2}",
            r.qps,
            r.p99 * 1e3,
            r.slo_attainment,
            r.mean_batch
        );
        println!(
            "Fabric per batch: {:.3} ms shared vs {:.3} ms isolated",
            r.mean_fabric_seconds * 1e3,
            r.mean_fabric_isolated_seconds * 1e3
        );
    }

    // Open-loop multi-tenant serving: weighted-fair shares, priority
    // preemption, and the flagged arrival trace over this cluster's
    // topology. Printed only — the emitted JSON never depends on it.
    if args.tenants > 1 || args.trace.is_some() {
        const TENANT_NAMES: [&str; 8] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
        let t = args.tenants.clamp(1, TENANT_NAMES.len());
        // Tenant 0 is the latency class (highest priority, tightest
        // share); the rest split the remaining weight evenly.
        let tenants: Vec<Tenant> = (0..t)
            .map(|i| Tenant {
                name: TENANT_NAMES[i],
                weight: if i == 0 { 2.0 } else { 1.0 },
                priority: u8::from(i == 0),
                slo_seconds: 1.0,
                rate_qps: 24.0 / t as f64,
            })
            .collect();
        let tcfg = TenantServeConfig {
            trace: args.trace.unwrap_or(TraceShape::Steady),
            ..TenantServeConfig::default()
        };
        let fabric = cluster.cfg().fabric.clone();
        let topo = cluster.cfg().topology();
        let mt = serve_tenants(&templates, &tenants, &tcfg, Some((&fabric, &topo)), None);
        println!(
            "\n## Multi-tenant serving ({} tenants, {:?} trace, preemption {})\n",
            t,
            tcfg.trace,
            if tcfg.preemption { "on" } else { "off" }
        );
        header(&["tenant", "arrived", "rejected", "QPS", "p50 (ms)", "p99 (ms)", "SLO att"]);
        for r in &mt.tenants {
            row(&[
                r.name.into(),
                format!("{}", r.arrived),
                format!("{}", r.rejected),
                format!("{:.2}", r.qps),
                format!("{:.1}", r.p50 * 1e3),
                format!("{:.1}", r.p99 * 1e3),
                format!("{:.4}", r.slo_attainment),
            ]);
        }
        println!(
            "\nAggregate: {:.1} QPS, {} preemptions ({:.3} s wasted), fabric {:.3} ms \
             shared vs {:.3} ms isolated.",
            mt.qps,
            mt.preemptions,
            mt.wasted_seconds,
            mt.mean_fabric_seconds * 1e3,
            mt.mean_fabric_isolated_seconds * 1e3
        );
    }

    // The suite baseline is a committed, nightly-byte-diffed file, so a
    // run whose flags reshape the cluster (and hence costs, failovers,
    // or load) must not rewrite it. Serving flags don't matter: the
    // flagged serving run above is print-only.
    let default_cluster =
        replicas == 1 && args.kills.is_empty() && !args.speculate && default_topology;
    if !default_cluster {
        println!(
            "\n(BENCH_rack_tpch.json not rewritten: cluster flags are set; the \
             committed baseline is the default-config run.)"
        );
    }
    if default_cluster {
        emit(
            "rack_tpch",
            &Json::obj([
                ("figure", Json::str("rack_tpch")),
                ("nodes", Json::num(NODES as f64)),
                ("replicas", Json::num(replicas as f64)),
                ("scale", Json::num(scale as f64)),
                ("load_seconds", Json::num(load)),
                ("queries", Json::Arr(queries)),
                // Per-query regression notes: simulated single-query QPS and
                // latency, byte-diffed in the nightly tpch-scale job so a
                // kernel or coordinator change that moves simulated cost
                // shows up as a baseline diff.
                (
                    "regression",
                    Json::Arr(
                        templates
                            .iter()
                            .map(|t| {
                                Json::obj([
                                    ("query", Json::str(t.name)),
                                    ("qps", Json::num(1.0 / t.cost.total_seconds())),
                                    ("latency_seconds", Json::num(t.cost.total_seconds())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("qps", Json::num(report.qps)),
                ("p50_seconds", Json::num(report.p50)),
                ("p95_seconds", Json::num(report.p95)),
                ("p99_seconds", Json::num(report.p99)),
                ("mean_batch", Json::num(report.mean_batch)),
                ("completed", Json::num(report.completed as f64)),
                ("rejected", Json::num(report.rejected as f64)),
                ("cluster_watts", Json::num(report.cluster_watts)),
                ("xeon_qps", Json::num(report.xeon_qps)),
                ("xeon_watts", Json::num(report.xeon_watts)),
                ("perf_per_watt_gain", Json::num(report.perf_per_watt_gain)),
            ]),
        );
    }

    // Failover sweep: QPS and p99 vs number of failed nodes at each
    // replication factor. Failed sets are non-adjacent ({1}, {1, 4}) so
    // chained declustering at k = 2 still covers every shard with two
    // failures; k = 1 loses shards to any failure and reports QPS 0.
    //
    // Each of the nine cells forks its (policy, k) core — no database
    // clone, no re-shard — and runs on the host pool. Results come back
    // in input order and all printing/JSON assembly happens after the
    // fan-out, so the report is byte-identical at any DPU_THREADS.
    println!("\n## Failover sweep (8 nodes, crash at t=0)\n");
    header(&["k", "failed nodes", "available", "QPS", "p99 (ms)", "failovers"]);
    let fail_sets: [&[usize]; 3] = [&[], &[1], &[1, 4]];
    let mut cells: Vec<(usize, &[usize])> = Vec::new();
    for k in 1..=3usize {
        for fails in fail_sets {
            cells.push((k, fails));
        }
    }
    let cell_results = Pool::global().par_map(cells, |(k, fails)| {
        let mut c = Cluster::from_core(cores[k - 1].clone());
        let mut plan = FaultPlan::none();
        for &f in fails {
            plan = plan.crash(f, 0.0);
        }
        c.set_faults(plan);
        let mut available = true;
        let mut failovers = 0usize;
        let mut tmpls: Vec<Template> = Vec::new();
        for id in QueryId::ALL {
            match c.try_run_at(id, 0.0) {
                Ok(q) => {
                    assert!(q.matches_single(), "{} diverged under faults", id.name());
                    failovers += q.cost.failovers;
                    tmpls.push(Template {
                        name: q.id.name(),
                        cost: q.cost.clone(),
                        xeon_seconds: q.single_cost.xeon.seconds,
                    });
                }
                Err(_) => {
                    available = false;
                    break;
                }
            }
        }
        let (qps, p99) = if available {
            let r = serve(&tmpls, c.watts(), &rack, &serve_cfg);
            (r.qps, r.p99)
        } else {
            (0.0, 0.0)
        };
        (k, fails, available, qps, p99, failovers)
    });
    let mut sweep: Vec<Json> = Vec::new();
    for (k, fails, available, qps, p99, failovers) in cell_results {
        row(&[
            format!("{k}"),
            format!("{fails:?}"),
            if available { "yes".into() } else { "no".into() },
            format!("{qps:.1}"),
            format!("{:.1}", p99 * 1e3),
            format!("{failovers}"),
        ]);
        sweep.push(Json::obj([
            ("replicas", Json::num(k as f64)),
            ("failed_nodes", Json::num(fails.len() as f64)),
            ("available", Json::Bool(available)),
            ("qps", Json::num(qps)),
            ("p99_seconds", Json::num(p99)),
            ("failovers", Json::num(failovers as f64)),
        ]));
    }
    emit(
        "rack_failover",
        &Json::obj([
            ("figure", Json::str("rack_failover")),
            ("nodes", Json::num(NODES as f64)),
            ("scale", Json::num(scale as f64)),
            ("serve_seed", Json::num(serve_cfg.seed as f64)),
            ("sweep", Json::Arr(sweep)),
        ]),
    );

    // ── Serving-pipeline baseline ─────────────────────────────────────
    // Everything below runs on dedicated forks so the emitted
    // BENCH_rack_serve.json is byte-identical regardless of flags.
    let slo = 1.5f64;
    let mut base = Cluster::from_core(cores[0].clone());
    let base_templates = suite_templates(&mut base);
    let base_watts = base.watts();

    // Batching-policy sweep: SLO attainment of the adaptive controller
    // vs every fixed depth across offered loads. The acceptance bar is
    // weak dominance at the two highest loads — the deep-overload regime
    // where the queue-pressure override batches at the cap — asserted
    // here so CI fails if a controller change regresses it. The grid sits
    // one octave higher than the pre-compression sweep: FOR/bit-packing
    // cut scan bytes ~2×, so the crossover where mid depths briefly edge
    // the cap moved from ~32 to ~64 clients and the top two loads must
    // stay past it. Each (load, policy) cell is an independent serve over
    // the shared templates — the whole grid fans out on the host pool,
    // then prints in input order.
    println!("\n## Batching policy sweep (SLO {slo:.1} s, concurrency 1)\n");
    header(&["clients", "policy", "QPS", "p99 (ms)", "SLO att", "mean batch"]);
    let policies: [(&str, usize, bool); 5] = [
        ("fixed-1", 1, false),
        ("fixed-4", 4, false),
        ("fixed-8", 8, false),
        ("fixed-16", 16, false),
        ("adaptive", 16, true),
    ];
    let load_points = [16usize, 32, 64, 128, 256];
    let mut grid_cells: Vec<(usize, (&str, usize, bool))> = Vec::new();
    for &clients in &load_points {
        for p in policies {
            grid_cells.push((clients, p));
        }
    }
    let grid = Pool::global().par_map(grid_cells, |(clients, (label, mb, adaptive))| {
        let cfg = ServeConfig {
            clients,
            max_batch: mb,
            adaptive,
            slo_seconds: Some(slo),
            ..ServeConfig::default()
        };
        let r = serve(&base_templates, base_watts, &rack, &cfg);
        (clients, label, adaptive, r)
    });
    let mut loads_json: Vec<Json> = Vec::new();
    for (li, load_cells) in grid.chunks(policies.len()).enumerate() {
        let mut best_fixed = 0.0f64;
        let mut adaptive_att = 0.0f64;
        let clients = load_points[li];
        for (clients, label, adaptive, r) in load_cells {
            row(&[
                format!("{clients}"),
                (*label).into(),
                format!("{:.1}", r.qps),
                format!("{:.1}", r.p99 * 1e3),
                format!("{:.4}", r.slo_attainment),
                format!("{:.2}", r.mean_batch),
            ]);
            if *adaptive {
                adaptive_att = r.slo_attainment;
            } else {
                best_fixed = best_fixed.max(r.slo_attainment);
            }
            loads_json.push(Json::obj([
                ("clients", Json::num(*clients as f64)),
                ("policy", Json::str(*label)),
                ("qps", Json::num(r.qps)),
                ("p99_seconds", Json::num(r.p99)),
                ("slo_attainment", Json::num(r.slo_attainment)),
                ("mean_batch", Json::num(r.mean_batch)),
            ]));
        }
        if li >= load_points.len() - 2 {
            assert!(
                adaptive_att >= best_fixed,
                "adaptive batching must weakly dominate every fixed depth at {clients} clients: \
                 {adaptive_att} vs best fixed {best_fixed}"
            );
        }
    }

    // Q10 fabric interference: eight concurrent all-to-all shuffles
    // queue on the shared switch, so the per-batch fabric time must sit
    // strictly above the isolated cost; a lone slot pays exactly it.
    let q10 = base_templates.iter().find(|t| t.name == "Q10").expect("Q10 in suite").clone();
    let fabric = base.cfg().fabric.clone();
    let icfg = ServeConfig {
        clients: 32,
        think_seconds: 0.0,
        max_batch: 4,
        duration_seconds: 20.0,
        concurrency: 8,
        ..ServeConfig::default()
    };
    let shared = serve_pipeline(
        std::slice::from_ref(&q10),
        base.watts(),
        &rack,
        &icfg,
        None,
        Some((&fabric, NODES)),
    );
    let solo_cfg = ServeConfig { clients: 1, max_batch: 1, concurrency: 1, ..icfg.clone() };
    let solo = serve_pipeline(&[q10], base.watts(), &rack, &solo_cfg, None, Some((&fabric, NODES)));
    assert!(
        shared.mean_fabric_seconds > shared.mean_fabric_isolated_seconds,
        "concurrent Q10 shuffles must contend on the shared switch"
    );
    assert!(
        (solo.mean_fabric_seconds - solo.mean_fabric_isolated_seconds).abs() < 1e-12,
        "an uncontended shuffle must cost exactly the isolated time"
    );
    println!("\n## Q10 fabric interference (concurrency {}, zero think time)\n", icfg.concurrency);
    println!(
        "Shared fabric per batch: {:.3} µs vs isolated {:.3} µs ({:.4}× inflation); \
         solo slot: {:.3} µs (exactly isolated).",
        shared.mean_fabric_seconds * 1e6,
        shared.mean_fabric_isolated_seconds * 1e6,
        shared.mean_fabric_seconds / shared.mean_fabric_isolated_seconds,
        solo.mean_fabric_seconds * 1e6
    );

    // Speculative straggler re-execution: one node computing at quarter
    // speed for the whole horizon. The backup replica must recover most
    // of the straggler-free QPS, bit-identically (suite_templates
    // asserts every result against single-node execution).
    // Offered load sits between the unmitigated straggler's capacity and
    // the speculative one: the straggler saturates and sheds throughput,
    // speculation keeps the rack close to the healthy closed-loop rate.
    // The three configurations fork the shared k=2 core and run
    // concurrently on the host pool.
    let straggle = FaultPlan::none().straggle(3, 0.0, 1e9, 0.25);
    let spec_serve = ServeConfig {
        clients: 96,
        think_seconds: 6.0,
        max_batch: 16,
        duration_seconds: 30.0,
        ..ServeConfig::default()
    };
    let spec_cells: Vec<(bool, bool)> = vec![(false, false), (true, false), (true, true)];
    let spec_results = Pool::global().par_map(spec_cells, |(straggled, speculate)| {
        let mut c = Cluster::from_core(cores[1].clone()); // k = 2
        if straggled {
            c.set_faults(straggle.clone());
        }
        if speculate {
            c.set_speculation(Some(Speculation::default()));
        }
        let tmpls = suite_templates(&mut c);
        let speculations: usize = tmpls.iter().map(|t| t.cost.speculations).sum();
        let qps = serve(&tmpls, c.watts(), &rack, &spec_serve).qps;
        (qps, speculations)
    });
    let (healthy_qps, _) = spec_results[0];
    let (straggled_qps, _) = spec_results[1];
    let (spec_qps, speculations) = spec_results[2];
    assert!(speculations > 0, "the 4× straggler must trip the speculation deadline");
    let recovery = spec_qps / healthy_qps;
    assert!(
        recovery >= 0.70,
        "speculation must recover ≥70% of straggler-free QPS: {spec_qps} vs {healthy_qps}"
    );
    println!("\n## Speculative straggler re-execution (node 3 at 0.25× compute, k=2)\n");
    header(&["configuration", "QPS", "vs healthy"]);
    row(&["healthy".into(), format!("{healthy_qps:.1}"), "1.000".into()]);
    row(&[
        "straggler, no mitigation".into(),
        format!("{straggled_qps:.1}"),
        format!("{:.3}", straggled_qps / healthy_qps),
    ]);
    row(&[
        format!("straggler + speculation ({speculations} backups)"),
        format!("{spec_qps:.1}"),
        format!("{recovery:.3}"),
    ]);

    emit(
        "rack_serve",
        &Json::obj([
            ("figure", Json::str("rack_serve")),
            ("nodes", Json::num(NODES as f64)),
            ("scale", Json::num(scale as f64)),
            ("slo_seconds", Json::num(slo)),
            ("loads", Json::Arr(loads_json)),
            (
                "q10_interference",
                Json::obj([
                    ("concurrency", Json::num(icfg.concurrency as f64)),
                    ("shared_fabric_seconds", Json::num(shared.mean_fabric_seconds)),
                    ("isolated_fabric_seconds", Json::num(shared.mean_fabric_isolated_seconds)),
                    ("solo_fabric_seconds", Json::num(solo.mean_fabric_seconds)),
                ]),
            ),
            (
                "speculation",
                Json::obj([
                    ("healthy_qps", Json::num(healthy_qps)),
                    ("straggled_qps", Json::num(straggled_qps)),
                    ("speculative_qps", Json::num(spec_qps)),
                    ("recovery", Json::num(recovery)),
                    ("speculations", Json::num(speculations as f64)),
                ]),
            ),
        ]),
    );
}
