//! Figure 15: the filter primitive on a dpCore.
//!
//! Runs the real BVLD/FILT inner loop on the ISA interpreter across tile
//! sizes and reports tuples/second, plus the 32-core aggregate bandwidth
//! with the DMS streaming the column. Targets: ≈482 Mtuples/s
//! (1.65 cycles/tuple) at large tiles and ≈9.6 GB/s aggregate.

use std::time::Instant;

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_core::{CoreProgram, Dpu, DpuConfig, StreamKernel, StreamSpec};
use dpu_sql::{measure_filter_kernel, Column, CompareOp, FilterSpec, Kernel, Table};

fn aggregate_bandwidth() -> f64 {
    let mut dpu = Dpu::new(DpuConfig::nm40());
    let n = dpu.n_cores();
    let rows_total = 32 * 1024u64;
    let region = rows_total * 4;
    for core in 0..n as u64 {
        for r in 0..rows_total {
            dpu.phys_mut().write_u32(core * region + r * 4, r as u32);
        }
    }
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    for core in 0..n as u64 {
        let spec = StreamSpec {
            cols: vec![core * region],
            rows_total,
            rows_per_tile: 2048,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        // 1.65 cycles/tuple of FILT work per tile (measured below).
        programs
            .push(Box::new(StreamKernel::new(spec, |_, tile| (tile.rows as f64 * 1.65) as u64)));
    }
    let report = dpu.run(&mut programs).expect("run");
    report.dms_gbytes_per_sec(dpu.config().clock)
}

/// Host-side comparison: the scalar reference filter vs the SWAR word
/// builder (`DPU_VECTOR`), same predicate shape as the dpCore kernel.
/// Returns (scalar Mrows/s, vector Mrows/s); panics on any bit mismatch.
fn host_swar_filter(rows: usize) -> (f64, f64) {
    let values: Vec<i64> = (0..rows as i64)
        .map(|i| i64::from((i as i32).wrapping_mul(2654435761u32 as i32)))
        .collect();
    let t = Table::new(vec![Column::i64("x", values)]);
    let spec = FilterSpec::new("x", CompareOp::Between(-1_000_000, 1_000_000));
    let time = |kernel: Kernel| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let start = Instant::now();
            let bv = spec.apply_with(&t, kernel);
            best = best.min(start.elapsed().as_secs_f64());
            out = Some(bv);
        }
        (best, out.expect("reps >= 1"))
    };
    let (scalar_s, scalar) = time(Kernel::Scalar);
    let (vector_s, vector) = time(Kernel::Swar);
    assert_eq!(scalar, vector, "host SWAR filter diverged from scalar");
    (rows as f64 / scalar_s / 1e6, rows as f64 / vector_s / 1e6)
}

fn main() {
    println!("# Figure 15: filter primitive performance\n");
    header(&["Tile rows", "cycles/tuple", "Mtuples/s per dpCore"]);
    let mut series: Vec<Json> = Vec::new();
    for rows in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let values: Vec<i32> =
            (0..rows as i32).map(|i| i.wrapping_mul(2654435761u32 as i32)).collect();
        let (m, _) = measure_filter_kernel(&values, -1_000_000, 1_000_000);
        row(&[
            rows.to_string(),
            format!("{:.2}", m.cycles_per_tuple()),
            format!("{:.0}", m.tuples_per_sec() / 1e6),
        ]);
        series.push(Json::obj([
            ("tile_rows", Json::num(rows as f64)),
            ("cycles_per_tuple", Json::num(m.cycles_per_tuple())),
            ("mtuples_per_sec", Json::num(m.tuples_per_sec() / 1e6)),
        ]));
    }
    println!("\nPaper targets: 482 Mtuples/s = 1.65 cycles/tuple at large tiles.");
    let aggregate = aggregate_bandwidth();
    println!(
        "\n32-dpCore aggregate filter bandwidth (DMS-fed): {aggregate:.2} GB/s (paper: 9.6 GB/s)"
    );
    let host_rows = 4_000_000usize;
    let (host_scalar, host_vector) = host_swar_filter(host_rows);
    println!(
        "\nHost reference (wall-clock, {host_rows} rows): scalar {host_scalar:.0} Mrows/s, \
         SWAR {host_vector:.0} Mrows/s ({:.2}x), bit-identical.",
        host_vector / host_scalar
    );
    emit(
        "fig15_filter",
        &Json::obj([
            ("figure", Json::str("fig15_filter")),
            ("tiles", Json::Arr(series)),
            ("aggregate_gbps", Json::num(aggregate)),
            (
                "host_swar",
                Json::obj([
                    ("rows", Json::num(host_rows as f64)),
                    ("scalar_mrows_s", Json::num(host_scalar)),
                    ("vector_mrows_s", Json::num(host_vector)),
                    ("speedup", Json::num(host_vector / host_scalar)),
                ]),
            ),
        ]),
    );
}
