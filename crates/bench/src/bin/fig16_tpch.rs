//! Figure 16: TPC-H performance/watt gains per query (paper geometric
//! mean: 15×).

use dpu_bench::json::{emit, Json};
use dpu_bench::{gain, header, row};
use dpu_sql::tpch;
use xeon_model::Xeon;

fn main() {
    let xeon = Xeon::new();
    let db = tpch::generate(5000, 2026);
    println!("# Figure 16: TPC-H efficiency gains ({} lineitem rows)\n", db.lineitem.rows());
    header(&["Query", "gain (perf/watt vs Xeon)"]);
    // Execute on the miniature data, cost at SF≈100 cardinalities.
    let scale = 30_000u64;
    let (gains, geomean) = tpch::run_all(&db, &xeon, scale);
    let mut series: Vec<Json> = Vec::new();
    for (name, g) in &gains {
        row(&[name.to_string(), gain(*g)]);
        series.push(Json::obj([
            ("query", Json::str(name.to_string())),
            ("perf_per_watt_gain", Json::num(*g)),
        ]));
    }
    println!("\nGeometric mean: {geomean:.1}× (paper: 15×)");
    emit(
        "fig16_tpch",
        &Json::obj([
            ("figure", Json::str("fig16_tpch")),
            ("scale", Json::num(scale as f64)),
            ("queries", Json::Arr(series)),
            ("geomean_gain", Json::num(geomean)),
        ]),
    );
}
