//! Figure 16: TPC-H performance/watt gains per query (paper geometric
//! mean: 15×).

use std::time::Instant;

use dpu_bench::json::{emit, Json};
use dpu_bench::{gain, header, row};
use dpu_sql::tpch::{self, TpchDb};
use dpu_sql::{set_vector_kernel, vector_kernel, Kernel};
use xeon_model::Xeon;

/// Host-side comparison: the full 8-query suite under the scalar
/// reference kernels vs the SWAR kernels (`DPU_VECTOR`), best of 3.
/// Returns (scalar s, vector s); panics if any query's gain changes,
/// and restores the process-wide kernel it found.
fn host_swar_suite(db: &TpchDb, xeon: &Xeon, scale: u64) -> (f64, f64) {
    let prior = vector_kernel();
    let time = |kernel: Kernel| {
        set_vector_kernel(kernel);
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let start = Instant::now();
            let r = tpch::run_all(db, xeon, scale);
            best = best.min(start.elapsed().as_secs_f64());
            out = Some(r);
        }
        (best, out.expect("reps >= 1"))
    };
    let (scalar_s, scalar) = time(Kernel::Scalar);
    let (vector_s, vector) = time(Kernel::Swar);
    set_vector_kernel(prior);
    assert_eq!(scalar, vector, "SWAR suite results diverged from scalar");
    (scalar_s, vector_s)
}

fn main() {
    let xeon = Xeon::new();
    let db = tpch::generate(5000, 2026);
    println!("# Figure 16: TPC-H efficiency gains ({} lineitem rows)\n", db.lineitem.rows());
    header(&["Query", "gain (perf/watt vs Xeon)"]);
    // Execute on the miniature data, cost at SF≈100 cardinalities.
    let scale = 30_000u64;
    let (gains, geomean) = tpch::run_all(&db, &xeon, scale);
    let mut series: Vec<Json> = Vec::new();
    for (name, g) in &gains {
        row(&[name.to_string(), gain(*g)]);
        series.push(Json::obj([
            ("query", Json::str(name.to_string())),
            ("perf_per_watt_gain", Json::num(*g)),
        ]));
    }
    println!("\nGeometric mean: {geomean:.1}× (paper: 15×)");
    let (host_scalar_s, host_vector_s) = host_swar_suite(&db, &xeon, scale);
    println!(
        "\nHost reference (wall-clock, 8-query suite): scalar {host_scalar_s:.3}s, \
         SWAR {host_vector_s:.3}s ({:.2}x), result-identical.",
        host_scalar_s / host_vector_s
    );
    emit(
        "fig16_tpch",
        &Json::obj([
            ("figure", Json::str("fig16_tpch")),
            ("scale", Json::num(scale as f64)),
            ("queries", Json::Arr(series)),
            ("geomean_gain", Json::num(geomean)),
            (
                "host_swar",
                Json::obj([
                    ("suite_scalar_s", Json::num(host_scalar_s)),
                    ("suite_vector_s", Json::num(host_vector_s)),
                    ("speedup", Json::num(host_scalar_s / host_vector_s)),
                ]),
            ),
        ]),
    );
}
