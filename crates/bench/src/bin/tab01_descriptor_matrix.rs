//! Table 1: DMS data-descriptor types and supported operations.

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_dms::{DescKind, DmsOp};

fn main() {
    println!("# Table 1: DMS descriptor types and supported operations\n");
    let ops = [
        DmsOp::Scatter,
        DmsOp::Gather,
        DmsOp::Stride,
        DmsOp::Partition,
        DmsOp::Key,
        DmsOp::LastCol,
    ];
    header(&["Direction", "Scatter", "Gather", "Stride", "Partition", "Key", "LastCol"]);
    let op_names = ["scatter", "gather", "stride", "partition", "key", "last_col"];
    let mut kinds: Vec<Json> = Vec::new();
    for kind in DescKind::all() {
        let mut cells = vec![kind.to_string()];
        let mut supported = Vec::new();
        for (op, name) in ops.into_iter().zip(op_names) {
            cells.push(if kind.supports(op) { "X".into() } else { "".into() });
            supported.push((name, Json::Bool(kind.supports(op))));
        }
        row(&cells);
        kinds.push(Json::obj(
            [("direction", Json::str(kind.to_string()))].into_iter().chain(supported),
        ));
    }
    println!("\n(Table 2's DDR→DMEM bit layout is verified by the descriptor");
    println!("round-trip tests in `dpu-dms::descriptor`.)");
    emit(
        "tab01_descriptor_matrix",
        &Json::obj([("figure", Json::str("tab01_descriptor_matrix")), ("kinds", Json::Arr(kinds))]),
    );
}
