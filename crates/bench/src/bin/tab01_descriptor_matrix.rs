//! Table 1: DMS data-descriptor types and supported operations.

use dpu_bench::{header, row};
use dpu_dms::{DescKind, DmsOp};

fn main() {
    println!("# Table 1: DMS descriptor types and supported operations\n");
    let ops = [
        DmsOp::Scatter,
        DmsOp::Gather,
        DmsOp::Stride,
        DmsOp::Partition,
        DmsOp::Key,
        DmsOp::LastCol,
    ];
    header(&["Direction", "Scatter", "Gather", "Stride", "Partition", "Key", "LastCol"]);
    for kind in DescKind::all() {
        let mut cells = vec![kind.to_string()];
        for op in ops {
            cells.push(if kind.supports(op) { "X".into() } else { "".into() });
        }
        row(&cells);
    }
    println!("\n(Table 2's DDR→DMEM bit layout is verified by the descriptor");
    println!("round-trip tests in `dpu-dms::descriptor`.)");
}
