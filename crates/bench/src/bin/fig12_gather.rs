//! Figure 12: DMS bit-vector gather bandwidth.
//!
//! Gathers rows matching a dense (0xF7) and a sparse (0x13) bit vector.
//! First silicon had an RTL bug — concurrent gathers overflow a count
//! FIFO — so the shipped software workaround serializes gathers to one
//! core at a time, which is why the paper's measured gather bandwidth is
//! far below line rate. We reproduce the workaround number and, as an
//! ablation, the fixed-RTL behaviour.

use dpu_bench::json::{emit, Json};
use dpu_bench::{gbps, header, row};
use dpu_dms::{DataDescriptor, DescKind, Descriptor, Dms, DmsConfig, GatherMode};
use dpu_mem::{Dmem, DramChannel, DramConfig, PhysMem};
use dpu_sim::{Frequency, Time};

fn run(pattern: u8, mode: GatherMode, serialize: bool) -> f64 {
    let cfg = DmsConfig { gather_mode: mode, ..DmsConfig::default() };
    let mut dms = Dms::new(cfg, 32);
    let mut phys = PhysMem::new(32 << 20);
    let mut dram = DramChannel::new(DramConfig::ddr3_1600());
    let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(32 * 1024)).collect();

    let rows_per_gather = 4096u16; // 16 KB of 4 B rows per descriptor
    let gathers_per_core = 4u64;
    for dmem in dmems.iter_mut() {
        dmem.write(16 * 1024, &vec![pattern; (rows_per_gather as usize) / 8]);
    }
    let mut moved = 0u64;
    let mut finish = Time::ZERO;
    if serialize {
        // The workaround: one core's gathers at a time, chained in time.
        let mut t = Time::ZERO;
        for core in 0..32usize {
            let stage = DataDescriptor {
                kind: DescKind::DmemToDms,
                ..DataDescriptor::read(0, (16 * 1024u32) as u16, rows_per_gather / 8, 1)
            };
            dms.push(core, 0, Descriptor::Data(stage), t);
            for g in 0..gathers_per_core {
                let d = DataDescriptor {
                    gather_src: true,
                    ..DataDescriptor::read(
                        (core as u64) * (1 << 20) + g * 65536,
                        0,
                        rows_per_gather,
                        4,
                    )
                };
                dms.push(core, 0, Descriptor::Data(d), t);
            }
            let comps = dms.advance(&mut phys, &mut dram, &mut dmems);
            for c in &comps {
                if c.kind == DescKind::DdrToDmem {
                    moved += c.bytes;
                }
                finish = finish.max(c.finish);
            }
            t = finish;
        }
    } else {
        for core in 0..32usize {
            let stage = DataDescriptor {
                kind: DescKind::DmemToDms,
                ..DataDescriptor::read(0, (16 * 1024u32) as u16, rows_per_gather / 8, 1)
            };
            dms.push(core, 0, Descriptor::Data(stage), Time::ZERO);
            for g in 0..gathers_per_core {
                let d = DataDescriptor {
                    gather_src: true,
                    ..DataDescriptor::read(
                        (core as u64) * (1 << 20) + g * 65536,
                        0,
                        rows_per_gather,
                        4,
                    )
                };
                dms.push(core, 0, Descriptor::Data(d), Time::ZERO);
            }
        }
        let comps = dms.advance(&mut phys, &mut dram, &mut dmems);
        for c in &comps {
            if c.kind == DescKind::DdrToDmem {
                moved += c.bytes;
            }
            finish = finish.max(c.finish);
        }
        if dms.error().is_some() {
            return f64::NAN; // hung silicon
        }
    }
    Frequency::DPU_CORE.bytes_per_sec(moved, finish) / 1e9
}

fn main() {
    println!("# Figure 12: DMS gather bandwidth across 32 dpCores\n");
    header(&["Bit vector", "first silicon + workaround", "fixed RTL (ablation)"]);
    let mut series: Vec<Json> = Vec::new();
    for (name, pat) in [("dense 0xF7", 0xF7u8), ("sparse 0x13", 0x13u8)] {
        let workaround = run(pat, GatherMode::BugWorkaround, true);
        let fixed = run(pat, GatherMode::Fixed, false);
        row(&[name.to_string(), gbps(workaround), gbps(fixed)]);
        series.push(Json::obj([
            ("bit_vector", Json::str(name)),
            ("workaround_gbps", Json::num(workaround)),
            ("fixed_rtl_gbps", Json::num(fixed)),
        ]));
    }
    println!("\nConcurrent gathers on the buggy silicon hang the DMADs:");
    let hung = run(0xF7, GatherMode::BugWorkaround, false);
    println!(
        "  concurrent issue without workaround → {}",
        if hung.is_nan() {
            "gather count FIFO overflow (hang detected)"
        } else {
            "unexpected success"
        }
    );
    println!("\nPaper targets: workaround bandwidth far below line rate;");
    println!("dense > sparse (gathered bytes per scanned row).");
    emit(
        "fig12_gather",
        &Json::obj([
            ("figure", Json::str("fig12_gather")),
            ("patterns", Json::Arr(series)),
            ("concurrent_buggy_issue_hangs", Json::Bool(hung.is_nan())),
        ]),
    );
}
