//! Figure 11: DMS read (R) and read+write (RW) bandwidth across 32
//! dpCores, sweeping columns per row and tile size.
//!
//! Setup mirrors §3.4: each dpCore reads (or reads and writes back) a
//! 4K-row table in column-major format through double-buffered DMEM
//! tiles. Shape targets: bandwidth rises with tile size, dips slightly
//! with more columns, exceeds 9 GB/s for 8 KB tiles (≈75% of the
//! 12.8 GB/s DDR3 peak), and RW is below R.

use dpu_bench::json::{emit, Json};
use dpu_bench::{gbps, header, row};
use dpu_core::{CoreAction, CoreCtx, CoreProgram, Dpu, DpuConfig, StreamKernel, StreamSpec};

fn run(cols: usize, rows_per_tile: u32, write_back: bool) -> f64 {
    let mut dpu = Dpu::new(DpuConfig::nm40());
    let n = dpu.n_cores();
    let rows_total = 4096u64;
    let col_span = rows_total * 4;
    // Each core owns a region: [core][col] column-major layout.
    let region = (cols as u64 + 1) * col_span * 2; // + write-back mirror space
    for core in 0..n as u64 {
        for c in 0..cols as u64 {
            for r in 0..rows_total {
                dpu.phys_mut().write_u32(core * region + c * col_span + r * 4, (r ^ c) as u32);
            }
        }
    }
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    for core in 0..n as u64 {
        let spec = StreamSpec {
            cols: (0..cols as u64).map(|c| core * region + c * col_span).collect(),
            rows_total,
            rows_per_tile,
            col_width: 4,
            dmem_base: 0,
            write_back: write_back.then_some(core * region + cols as u64 * col_span),
            buffers: 2,
        };
        programs.push(Box::new(StreamKernel::new(spec, |_, _| 0)));
    }
    let report = dpu.run(&mut programs).expect("run");
    let total = report.dms_gbytes_per_sec(dpu.config().clock);
    // Report table goodput: in RW mode half the moved bytes are the
    // write-back, so the table streams at half the bus rate.
    if write_back {
        total / 2.0
    } else {
        total
    }
}

fn main() {
    println!("# Figure 11: DMS bandwidth across 32 dpCores (4 B columns, 4K rows)\n");
    let tile_rows = [16u32, 32, 64, 128, 256, 512];
    let mut series: Vec<Json> = Vec::new();
    for mode in ["R", "RW"] {
        println!("\n## {mode} bandwidth\n");
        let mut cells = vec!["columns \\ tile".to_string()];
        cells.extend(tile_rows.iter().map(|t| format!("{} B", t * 4)));
        header(&cells.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for cols in [1usize, 2, 4, 8] {
            let mut out = vec![format!("{cols}")];
            for &t in &tile_rows {
                let bw = run(cols, t, mode == "RW");
                out.push(gbps(bw));
                series.push(Json::obj([
                    ("mode", Json::str(mode)),
                    ("columns", Json::num(cols as f64)),
                    ("tile_bytes", Json::num(f64::from(t * 4))),
                    ("gbps", Json::num(bw)),
                ]));
            }
            row(&out);
        }
    }
    println!("\nPaper targets: >9 GB/s at 8 KB buffers; slight decrease with");
    println!("more columns; RW < R; large tiles amortize descriptor overheads.");
    emit(
        "fig11_dms_bandwidth",
        &Json::obj([("figure", Json::str("fig11_dms_bandwidth")), ("points", Json::Arr(series))]),
    );

    // Keep the unused-import lints honest.
    let _ = |_: &mut CoreCtx<'_>| CoreAction::Done;
}
