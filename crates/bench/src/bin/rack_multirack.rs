//! Spine/leaf multi-rack study: the TPC-H suite and the open-loop
//! multi-tenant serving loop swept across rack counts, uplink
//! oversubscription ratios, tenant mixes and offered loads, plus a
//! whole-rack-failure drill.
//!
//! Four sections, each asserting its headline property:
//!
//! 1. **Rack-count sweep** — the suite over 1/2/4 racks (non-blocking
//!    spine): every distributed result stays bit-identical to
//!    single-node execution at every rack count, and the
//!    topology-derived failover timeout grows from the flat round trip.
//! 2. **Oversubscription sweep** — Q10's all-to-all shuffle at the full
//!    rack count as the uplinks thin from 1:1 to 8:1: cross-rack bytes
//!    are invariant, fabric seconds must not decrease, and the 8:1
//!    spine must be strictly slower than 1:1 (spine saturation).
//! 3. **Tenant × load sweep** — open-loop diurnal serving with 1/2/4
//!    weighted-fair tenants at 0.5/1/2× the suite's serial capacity,
//!    reporting per-tenant QPS, p99 and SLO attainment.
//! 4. **Whole-rack failure** — all nodes of one rack crash at once.
//!    With k = 2 rack-aware placement every shard keeps a live replica
//!    in another rack, so the suite still runs bit-identically (with
//!    failovers); with k = 1 the same kill is a clean unavailability
//!    error, never a wrong answer. The dead rack is then re-replicated
//!    from cross-rack survivors and the serving loop is driven through
//!    the degraded window, showing the QPS dip and recovery.
//!
//! Flags (`--racks <r>`, `--oversub <x>`, `--tenants <t>`,
//! `--trace <closed|diurnal|burst>`) pin a sweep axis to one value for
//! exploration. The committed `BENCH_multirack.json` is only written by
//! a default (flagless) run, and every number in it derives from the
//! deterministic simulation — byte-identical at any `DPU_THREADS`.

use std::sync::Arc;

use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_cluster::{
    serve_tenants, Cluster, ClusterConfig, ClusterCore, DegradedWindow, Fabric, FaultPlan,
    QueryId, ShardPolicy, SingleRefCache, Template, Tenant, TenantServeConfig, Topology,
    TraceShape,
};
use dpu_pool::Pool;
use dpu_sim::Time;
use dpu_sql::tpch;

const NODES: usize = 16;
const REPLICAS: usize = 2;

struct Args {
    racks: Option<usize>,
    oversub: Option<f64>,
    tenants: Option<usize>,
    trace: Option<TraceShape>,
}

fn parse_args() -> Args {
    let mut parsed = Args { racks: None, oversub: None, tenants: None, trace: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--racks" => {
                let v = args.next().expect("--racks needs a value");
                parsed.racks = Some(v.parse().expect("--racks takes an integer"));
            }
            "--oversub" => {
                let v = args.next().expect("--oversub needs a value");
                parsed.oversub = Some(v.parse().expect("--oversub takes a ratio"));
            }
            "--tenants" => {
                let v = args.next().expect("--tenants needs a value");
                parsed.tenants = Some(v.parse().expect("--tenants takes an integer"));
            }
            "--trace" => {
                let v = args.next().expect("--trace needs closed|diurnal|burst");
                parsed.trace = Some(match v.as_str() {
                    "closed" => TraceShape::Steady,
                    "diurnal" => TraceShape::Diurnal { period_seconds: 20.0, amplitude: 0.8 },
                    "burst" => TraceShape::Burst {
                        period_seconds: 10.0,
                        burst_seconds: 2.0,
                        multiplier: 4.0,
                    },
                    other => panic!("--trace takes closed|diurnal|burst, got {other}"),
                });
            }
            other => panic!(
                "unknown flag {other} (use --racks <r> / --oversub <x> / --tenants <t> / \
                 --trace <closed|diurnal|burst>)"
            ),
        }
    }
    parsed
}

/// Runs the 8-query suite, asserting bit-identity against single-node
/// execution; returns serving templates and the total failover count.
fn suite_templates(c: &mut Cluster) -> (Vec<Template>, usize) {
    let mut failovers = 0usize;
    let templates = QueryId::ALL
        .iter()
        .map(|&id| {
            let q = c.try_run_at(id, 0.0).expect("every shard must have a live replica");
            assert!(q.matches_single(), "{} diverged from single-node", id.name());
            failovers += q.cost.failovers;
            Template {
                name: q.id.name(),
                cost: q.cost.clone(),
                xeon_seconds: q.single_cost.xeon.seconds,
            }
        })
        .collect();
    (templates, failovers)
}

/// The sweep's tenant mix: tenant 0 is the latency class (double
/// weight, higher priority); the rest split the remainder evenly.
fn tenant_mix(t: usize, total_rate: f64) -> Vec<Tenant> {
    const NAMES: [&str; 8] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
    assert!(t >= 1 && t <= NAMES.len(), "tenant count must be 1..=8");
    (0..t)
        .map(|i| Tenant {
            name: NAMES[i],
            weight: if i == 0 { 2.0 } else { 1.0 },
            priority: u8::from(i == 0),
            slo_seconds: 1.0,
            rate_qps: total_rate / t as f64,
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let default_run = args.racks.is_none()
        && args.oversub.is_none()
        && args.tenants.is_none()
        && args.trace.is_none();
    let rack_list: Vec<usize> = args.racks.map_or_else(|| vec![1, 2, 4], |r| vec![r]);
    let oversub_list: Vec<f64> = args.oversub.map_or_else(|| vec![1.0, 2.0, 4.0, 8.0], |o| vec![o]);
    let tenant_list: Vec<usize> = args.tenants.map_or_else(|| vec![1, 2, 4], |t| vec![t]);
    let trace =
        args.trace.unwrap_or(TraceShape::Diurnal { period_seconds: 20.0, amplitude: 0.8 });
    // The deep-sweep rack count / oversubscription (sections 2–4).
    let spine_racks = *rack_list.last().expect("rack list is non-empty");
    let spine_oversub = args.oversub.unwrap_or(4.0);

    let scale = 30_000u64; // cost queries at SF≈100 cardinalities
    let db = Arc::new(tpch::generate(3000, 2026));
    let policy = ShardPolicy::hash(NODES);
    let single = Arc::new(SingleRefCache::new());
    let core_for = |racks: usize, oversub: f64, k: usize| {
        ClusterCore::with_shared(
            db.clone(),
            &policy,
            ClusterConfig::prototype_slice(NODES, scale)
                .with_replicas(k)
                .with_topology(racks, oversub),
            single.clone(),
        )
    };

    println!(
        "# Spine/leaf multi-rack: {NODES} DPU nodes, k={REPLICAS} rack-aware chained \
         declustering ({} lineitem rows)\n",
        db.lineitem.rows()
    );

    // ── 1. Rack-count sweep ──────────────────────────────────────────
    println!("## Rack-count sweep (non-blocking spine, suite bit-identity)\n");
    header(&["racks", "nodes/rack", "timeout (µs)", "load (ms)", "suite total (ms)", "== single"]);
    let rack_cells = Pool::global().par_map(rack_list.clone(), |racks| {
        let core = core_for(racks, 1.0, REPLICAS);
        core.warm_single_refs();
        let mut c = Cluster::from_core(core);
        let timeout = c.fabric.failover_timeout_seconds();
        let load = c.load_seconds();
        let (templates, failovers) = suite_templates(&mut c);
        assert_eq!(failovers, 0, "a healthy cluster never fails over");
        (racks, timeout, load, templates)
    });
    let flat_timeout = rack_cells.iter().find(|(r, ..)| *r == 1).map(|(_, t, ..)| *t);
    let mut rack_json: Vec<Json> = Vec::new();
    for (racks, timeout, load, templates) in &rack_cells {
        let suite_total: f64 = templates.iter().map(|t| t.cost.total_seconds()).sum();
        if let (true, Some(flat)) = (*racks > 1, flat_timeout) {
            assert!(
                *timeout > flat,
                "spine probes cross two extra hops, so the timeout must grow"
            );
        }
        row(&[
            format!("{racks}"),
            format!("{}", NODES / racks),
            format!("{:.1}", timeout * 1e6),
            format!("{:.3}", load * 1e3),
            format!("{:.3}", suite_total * 1e3),
            "yes".into(),
        ]);
        rack_json.push(Json::obj([
            ("racks", Json::num(*racks as f64)),
            ("failover_timeout_seconds", Json::num(*timeout)),
            ("load_seconds", Json::num(*load)),
            (
                "suite",
                Json::Arr(
                    templates
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("query", Json::str(t.name)),
                                ("total_seconds", Json::num(t.cost.total_seconds())),
                                ("fabric_seconds", Json::num(t.cost.fabric_seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    println!("\nAll suite results bit-identical to single-node at every rack count.");

    // Serial capacity (1 / mean suite query time) at the deep-sweep
    // topology — the tenant sweeps express offered load against it.
    let spine_templates = rack_cells
        .iter()
        .find(|(r, ..)| *r == spine_racks)
        .map(|(_, _, _, t)| t.clone())
        .unwrap_or_else(|| {
            let core = core_for(spine_racks, 1.0, REPLICAS);
            core.warm_single_refs();
            suite_templates(&mut Cluster::from_core(core)).0
        });
    let mean_total: f64 = spine_templates.iter().map(|t| t.cost.total_seconds()).sum::<f64>()
        / spine_templates.len() as f64;
    let capacity = 1.0 / mean_total;

    // ── 2. Oversubscription sweep ────────────────────────────────────
    println!(
        "\n## Oversubscription sweep ({spine_racks} racks, Q10 shuffle + bulk cross-rack \
         all-to-all)\n"
    );
    header(&[
        "oversub",
        "uplink (B/cyc)",
        "Q10 fabric (ms)",
        "spine bytes",
        "x-rack 16 MiB (µs)",
        "agg GB/s",
    ]);
    const BULK: u64 = 1 << 20; // 1 MiB per node, cross-rack
    let oversub_cells = Pool::global().par_map(oversub_list.clone(), |oversub| {
        let core = core_for(spine_racks, oversub, REPLICAS);
        core.warm_single_refs();
        let mut c = Cluster::from_core(core);
        let q10 = c.try_run_at(QueryId::Q10, 0.0).expect("healthy cluster");
        assert!(q10.matches_single(), "Q10 diverged at oversub {oversub}");
        let spine_bytes = c.fabric.spine_bytes();
        let fabric_cfg = c.cfg().fabric.clone();
        let topo = c.cfg().topology();
        let uplink = topo.uplink_bytes_per_cycle(&fabric_cfg);
        // Bulk stress: every node streams 1 MiB to its cross-rack
        // partner at t = 0, loading every uplink at once. This is where
        // oversubscription bites — the suite's shuffles are latency-
        // dominated, but bulk re-replication and spills are not.
        let m = NODES / spine_racks;
        let mut f =
            Fabric::with_topology(Topology::new(NODES, spine_racks, oversub), fabric_cfg.clone());
        let mut done = Time::ZERO;
        for src in 0..NODES {
            let dst = if spine_racks > 1 { (src + m) % NODES } else { (src + 1) % NODES };
            done = done.max(f.transfer(Time::ZERO, src, dst, BULK));
        }
        let bulk_seconds = done.as_secs(fabric_cfg.clock);
        (oversub, uplink, q10.cost.fabric_seconds, spine_bytes, bulk_seconds)
    });
    let mut oversub_json: Vec<Json> = Vec::new();
    for (i, (oversub, uplink, q10_fabric, spine_bytes, bulk_seconds)) in
        oversub_cells.iter().enumerate()
    {
        if spine_racks > 1 {
            assert!(*spine_bytes > 0, "Q10's shuffle must cross the spine");
            assert_eq!(
                *spine_bytes, oversub_cells[0].3,
                "routing is topology-determined: oversub changes rates, not bytes"
            );
            if i > 0 {
                assert!(
                    *q10_fabric >= oversub_cells[i - 1].2,
                    "thinner uplinks cannot speed the shuffle up"
                );
                assert!(
                    *bulk_seconds >= oversub_cells[i - 1].4,
                    "thinner uplinks cannot speed bulk cross-rack traffic up"
                );
            }
        }
        let gbps = (NODES as u64 * BULK) as f64 / bulk_seconds / 1e9;
        row(&[
            format!("{oversub}"),
            format!("{uplink}"),
            format!("{:.3}", q10_fabric * 1e3),
            format!("{spine_bytes}"),
            format!("{:.1}", bulk_seconds * 1e6),
            format!("{gbps:.2}"),
        ]);
        oversub_json.push(Json::obj([
            ("oversub", Json::num(*oversub)),
            ("uplink_bytes_per_cycle", Json::num(*uplink as f64)),
            ("q10_fabric_seconds", Json::num(*q10_fabric)),
            ("spine_bytes", Json::num(*spine_bytes as f64)),
            ("bulk_crossrack_seconds", Json::num(*bulk_seconds)),
            ("bulk_aggregate_gbps", Json::num(gbps)),
        ]));
    }
    if spine_racks > 1 && oversub_cells.len() > 1 {
        let (first, last) = (oversub_cells.first().unwrap(), oversub_cells.last().unwrap());
        assert!(
            last.4 > first.4,
            "spine saturation must be visible in bulk traffic: {}:1 took {} s vs {}:1 {} s",
            last.0,
            last.4,
            first.0,
            first.4
        );
        println!(
            "\nSpine saturation: 16 MiB cross-rack all-to-all takes {:.1} µs at {}:1 vs \
             {:.1} µs at {}:1 ({:.2}× slower on thin uplinks).",
            last.4 * 1e6,
            last.0,
            first.4 * 1e6,
            first.0,
            last.4 / first.4
        );
    }

    // ── 3. Tenant × load sweep ───────────────────────────────────────
    let spine_core = core_for(spine_racks, spine_oversub, REPLICAS);
    spine_core.warm_single_refs();
    let mut spine_cluster = Cluster::from_core(spine_core.clone());
    let (serve_templates, _) = suite_templates(&mut spine_cluster);
    let serve_fabric = spine_cluster.cfg().fabric.clone();
    let serve_topo = spine_cluster.cfg().topology();
    println!(
        "\n## Tenant × load sweep ({spine_racks} racks, {spine_oversub}:1, {trace:?} trace)\n"
    );
    header(&["tenants", "load", "QPS", "rejected", "preempt", "t0 p99 (ms)", "t0 SLO att"]);
    let loads = [0.5f64, 1.0, 2.0];
    let mut sweep_cells: Vec<(usize, f64)> = Vec::new();
    for &t in &tenant_list {
        for &load in &loads {
            sweep_cells.push((t, load));
        }
    }
    let tenant_cells = Pool::global().par_map(sweep_cells, |(t, load)| {
        let cfg = TenantServeConfig { trace, ..TenantServeConfig::default() };
        let mt = serve_tenants(
            &serve_templates,
            &tenant_mix(t, load * capacity),
            &cfg,
            Some((&serve_fabric, &serve_topo)),
            None,
        );
        (t, load, mt)
    });
    let mut tenant_json: Vec<Json> = Vec::new();
    for (t, load, mt) in &tenant_cells {
        let rejected: u64 = mt.tenants.iter().map(|r| r.rejected).sum();
        row(&[
            format!("{t}"),
            format!("{load}"),
            format!("{:.1}", mt.qps),
            format!("{rejected}"),
            format!("{}", mt.preemptions),
            format!("{:.1}", mt.tenants[0].p99 * 1e3),
            format!("{:.4}", mt.tenants[0].slo_attainment),
        ]);
        tenant_json.push(Json::obj([
            ("tenants", Json::num(*t as f64)),
            ("load", Json::num(*load)),
            ("qps", Json::num(mt.qps)),
            ("rejected", Json::num(rejected as f64)),
            ("preemptions", Json::num(mt.preemptions as f64)),
            ("wasted_seconds", Json::num(mt.wasted_seconds)),
            (
                "per_tenant",
                Json::Arr(
                    mt.tenants
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::str(r.name)),
                                ("qps", Json::num(r.qps)),
                                ("p50_seconds", Json::num(r.p50)),
                                ("p99_seconds", Json::num(r.p99)),
                                ("slo_attainment", Json::num(r.slo_attainment)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    // ── 4. Whole-rack failure ────────────────────────────────────────
    let mut failure_json = Json::obj([("skipped", Json::Bool(true))]);
    if spine_racks > 1 {
        let m = NODES / spine_racks;
        let dead: Vec<usize> = (m..2 * m).collect(); // all of rack 1
        // Crash 1 µs into execution: the dead primaries are already
        // dispatched, so every query pays the timeout-based failover
        // before re-issuing to a cross-rack replica.
        let crash_at = 1e-6;
        println!(
            "\n## Whole-rack failure (rack 1 = nodes {:?} crash at t=1 µs, k={REPLICAS})\n",
            dead
        );
        let mut c = Cluster::from_core(spine_core.clone());
        let mut plan = FaultPlan::none();
        for &node in &dead {
            plan = plan.crash(node, crash_at);
        }
        c.set_faults(plan.clone());
        let (_, failovers) = suite_templates(&mut c);
        assert!(failovers > 0, "a dead rack must force failovers");
        println!(
            "Suite survived the rack loss bit-identically ({failovers} failovers: every \
             shard kept a cross-rack replica)."
        );

        // k = 1 control: the same kill has no replicas to hide behind —
        // a clean unavailability error, never a wrong answer.
        let k1 = core_for(spine_racks, spine_oversub, 1);
        let mut c1 = Cluster::from_core(k1);
        c1.set_faults(plan);
        assert!(
            c1.try_run_at(QueryId::Q1, 0.0).is_err(),
            "k=1 must report the dead rack's shards as unavailable"
        );
        println!("k=1 control: the same kill is a clean ShardUnavailable error.");

        // Re-replicate the dead rack from cross-rack survivors.
        let mut rebuild_seconds = 0.0f64;
        let mut bytes_moved = 0u64;
        for &node in &dead {
            let r = c.recover(node, 1.0); // well after the crash: only cross-rack sources are live
            rebuild_seconds += r.rebuild_seconds;
            bytes_moved += r.bytes_moved;
        }
        println!(
            "Recovery: {} B re-streamed, {:.3} ms prototype rebuild ({:.1} s at SF≈100).",
            bytes_moved,
            rebuild_seconds * 1e3,
            rebuild_seconds * scale as f64
        );

        // Serve through the outage: survivors carry racks/(racks-1)× load
        // from the crash until re-replication completes (rebuild scaled
        // to SF≈100 cardinalities, clamped inside the horizon).
        let factor = spine_racks as f64 / (spine_racks - 1) as f64;
        let window = DegradedWindow {
            from_seconds: 10.0,
            until_seconds: (10.0 + rebuild_seconds * scale as f64).min(45.0),
            cost_factor: factor,
        };
        let cfg = TenantServeConfig { trace, ..TenantServeConfig::default() };
        let mt = serve_tenants(
            &serve_templates,
            &tenant_mix(2, 10.0 * capacity),
            &cfg,
            Some((&serve_fabric, &serve_topo)),
            Some(&window),
        );
        assert!(
            mt.qps_during_fault < mt.qps_pre_fault,
            "the degraded window must dip saturated QPS: {} vs {}",
            mt.qps_during_fault,
            mt.qps_pre_fault
        );
        println!(
            "Serving through the outage (saturated, {:.2}× degraded {:.1}–{:.1} s): \
             QPS {:.1} → {:.1} → {:.1} (pre/during/post).",
            factor,
            window.from_seconds,
            window.until_seconds,
            mt.qps_pre_fault,
            mt.qps_during_fault,
            mt.qps_post_fault
        );
        failure_json = Json::obj([
            ("skipped", Json::Bool(false)),
            ("dead_nodes", Json::num(dead.len() as f64)),
            ("failovers", Json::num(failovers as f64)),
            ("bytes_moved", Json::num(bytes_moved as f64)),
            ("rebuild_seconds", Json::num(rebuild_seconds)),
            ("degraded_factor", Json::num(factor)),
            ("qps_pre_fault", Json::num(mt.qps_pre_fault)),
            ("qps_during_fault", Json::num(mt.qps_during_fault)),
            ("qps_post_fault", Json::num(mt.qps_post_fault)),
        ]);
    } else {
        println!("\n(Whole-rack failure drill skipped: one rack has no failure domain to lose.)");
    }

    if default_run {
        emit(
            "multirack",
            &Json::obj([
                ("figure", Json::str("rack_multirack")),
                ("nodes", Json::num(NODES as f64)),
                ("replicas", Json::num(REPLICAS as f64)),
                ("scale", Json::num(scale as f64)),
                ("capacity_qps", Json::num(capacity)),
                ("rack_sweep", Json::Arr(rack_json)),
                ("oversub_sweep", Json::Arr(oversub_json)),
                ("tenant_sweep", Json::Arr(tenant_json)),
                ("rack_failure", failure_json),
            ]),
        );
    } else {
        println!(
            "\n(BENCH_multirack.json not rewritten: sweep flags are set; the committed \
             baseline is the default run.)"
        );
    }
}
