//! Host wall-clock benchmark for the work-stealing parallel engine.
//!
//! Everything else in this workspace measures *simulated* DPU time;
//! this binary measures the *host* seconds the simulator itself burns,
//! comparing one worker thread against the resolved pool width on the
//! three hot paths the pool parallelises:
//!
//! 1. chunked deterministic TPC-H generation (`tpch::generate_parallel`),
//! 2. single-node `Cluster::run_all` (partitioned join/agg kernels),
//! 3. 8-node `Cluster::run_all` (shard fan-out + single-node references),
//! 4. the `rack_tpch` failover matrix (replication × kill patterns), one
//!    O(1) `Cluster` fork per cell from shared per-k cores,
//! 5. the SWAR kernels (`DPU_VECTOR`): scalar vs vector filter, CRC32
//!    partition (table and, where SSE4.2 exists, hardware CRC),
//!    single- and multi-key group-by, threshold-prefiltered top-k,
//!    word-key sort, and lane-batched expression evaluation, single-
//!    threaded so the comparison isolates the kernel itself. The
//!    expression row is informational (the scalar arm is already
//!    columnar) and carries no speedup floor.
//! 6. the packed kernels (`DPU_PACK`): every hot kernel timed flat vs
//!    FOR/bit-packed on the same encoded tables, with resident
//!    bytes-scanned and compression ratios reported per kernel. The
//!    filter row evaluates its band in the encoded domain and carries a
//!    ≥1.2× packed-over-flat floor; the unpack-batch kernels are
//!    informational. The TPC-H shard columns must average ≥2×
//!    compression (asserted unconditionally — it is deterministic).
//!
//! The 1-thread runs pin the pool to one worker, which takes the exact
//! pre-pool sequential code paths, and every parallel result is asserted
//! bit-identical to its sequential twin before any time is reported.
//!
//! `BENCH_wallclock.json` records speedups, the thread count, and the
//! host CPU count — never raw seconds, which are printed to stdout only,
//! so the file carries no machine-speed noise. Because speedups still
//! vary run to run, this file is informational and is NOT byte-diffed in
//! CI (unlike the simulated-time `BENCH_rack_*.json` baselines). The
//! ≥2× (pool) and ≥1.3× (SWAR kernel) speedup assertions only arm when
//! the host has ≥ 4 CPUs; on smaller hosts the binary still checks
//! determinism and reports what it measured.

use std::sync::Arc;
use std::time::Instant;

use criterion::{Criterion, Throughput};
use dpu_bench::json::{emit, Json};
use dpu_bench::{header, row};
use dpu_cluster::{
    Cluster, ClusterConfig, ClusterCore, ClusterQueryCost, FaultPlan, QueryError, QueryId,
    QueryOutput, ShardPolicy, SingleRefCache,
};
use dpu_isa::hash::hw_crc_available;
use dpu_pool::{set_global_threads, Pool};
use dpu_sql::tpch::{self, TpchDb};
use dpu_sql::{
    partition_row_ids_with, sort_indices_multi_packed_with, sort_indices_multi_with,
    top_k_packed_with, top_k_with, AggFunc, Column, CompareOp, Expr, FilterSpec, GroupBySpec,
    Kernel, Pack, Table,
};

const SEED: u64 = 2026;
const NODES: usize = 8;
const SCALE: u64 = 30_000; // cost queries at SF≈100 cardinalities
const DATAGEN_ORDERS: [usize; 2] = [20_000, 100_000];
const CLUSTER_ORDERS: usize = 10_000;
const REPS: usize = 3;

/// Best-of-`REPS` wall-clock seconds for `f`, plus its (deterministic)
/// result from the final rep.
fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("REPS >= 1"))
}

/// The bench-relevant slice of a suite run: per-query outputs and
/// simulated costs, everything `BENCH_rack_tpch.json` is derived from.
type SuiteResult = Vec<(QueryOutput, ClusterQueryCost)>;

/// Runs the 8-query suite on a fresh `nodes`-way cluster (construction
/// untimed), asserting distributed-vs-single bit-identity.
fn run_suite(db: &TpchDb, nodes: usize) -> (f64, SuiteResult) {
    let policy = ShardPolicy::hash(nodes);
    best_of(|| {
        let mut c = Cluster::new(db.clone(), &policy, ClusterConfig::prototype_slice(nodes, SCALE));
        let start = Instant::now();
        let runs = c.run_all();
        let took = start.elapsed().as_secs_f64();
        for q in &runs {
            assert!(q.matches_single(), "{} diverged from single-node", q.id.name());
        }
        (took, runs.into_iter().map(|q| (q.output, q.cost)).collect::<SuiteResult>())
    })
    .1
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The parallel arm uses the resolved pool width (DPU_THREADS or the
    // host CPU count), but at least two workers so the comparison is
    // meaningful even on a single-CPU host.
    let threads = dpu_pool::global_threads().max(2);
    let assert_speedups = host_cpus >= 4;
    println!(
        "# Host wall-clock: 1 thread vs {threads} ({host_cpus} host CPUs; \
         speedup floor {})\n",
        if assert_speedups { "armed" } else { "not armed — needs >= 4 CPUs" }
    );

    // ── Datagen: sequential vs chunked-parallel, bit-identical ───────
    header(&["orders_n", "seq (s)", "par (s)", "speedup", "bit-identical"]);
    let mut datagen_json: Vec<Json> = Vec::new();
    let mut datagen_speedup_at_largest = 0.0f64;
    for orders_n in DATAGEN_ORDERS {
        set_global_threads(1);
        let (seq_s, seq_db) = best_of(|| tpch::generate(orders_n, SEED));
        set_global_threads(threads);
        let (par_s, par_db) = best_of(|| tpch::generate_parallel(orders_n, SEED));
        assert_eq!(seq_db, par_db, "chunked datagen diverged at orders_n={orders_n}");
        let speedup = seq_s / par_s;
        datagen_speedup_at_largest = speedup;
        row(&[
            format!("{orders_n}"),
            format!("{seq_s:.3}"),
            format!("{par_s:.3}"),
            format!("{speedup:.2}x"),
            "yes".into(),
        ]);
        datagen_json.push(Json::obj([
            ("orders_n", Json::num(orders_n as f64)),
            ("speedup", Json::num(speedup)),
        ]));
    }

    // ── Cluster::run_all: single node and 8 nodes ─────────────────────
    let db = tpch::generate(CLUSTER_ORDERS, SEED);
    let mut suite_json: Vec<Json> = Vec::new();
    let mut cluster_speedup = 0.0f64;
    println!();
    header(&["suite", "seq (s)", "par (s)", "speedup", "thread-invariant"]);
    for nodes in [1, NODES] {
        set_global_threads(1);
        let (seq_s, seq_out) = run_suite(&db, nodes);
        set_global_threads(threads);
        let (par_s, par_out) = run_suite(&db, nodes);
        assert_eq!(seq_out, par_out, "{nodes}-node suite output changed with thread count");
        let speedup = seq_s / par_s;
        if nodes == NODES {
            cluster_speedup = speedup;
        }
        row(&[
            format!("{nodes}-node run_all"),
            format!("{seq_s:.3}"),
            format!("{par_s:.3}"),
            format!("{speedup:.2}x"),
            "yes".into(),
        ]);
        suite_json.push(Json::obj([
            ("nodes", Json::num(nodes as f64)),
            ("orders_n", Json::num(CLUSTER_ORDERS as f64)),
            ("speedup", Json::num(speedup)),
        ]));
    }

    // ── rack_tpch failover matrix: sequential vs pool-parallel ───────
    // The same k ∈ {1,2,3} × kill-pattern sweep `rack_tpch` runs, with
    // the database generated once and each replication factor sharded
    // once into a shared core; every cell is an O(1) fork. The shared
    // single-node reference cache is warmed up front so both arms time
    // only the distributed sweep, not reference computation.
    let fails_sets: [&[usize]; 3] = [&[], &[1], &[1, 4]];
    let single = Arc::new(SingleRefCache::new());
    let shared_db = Arc::new(db.clone());
    let policy = ShardPolicy::hash(NODES);
    let cores: [Arc<ClusterCore>; 3] = [1, 2, 3].map(|k| {
        ClusterCore::with_shared(
            shared_db.clone(),
            &policy,
            ClusterConfig::prototype_slice(NODES, SCALE).with_replicas(k),
            single.clone(),
        )
    });
    Cluster::from_core(cores[0].clone()).run_all();

    type CellResult = Vec<Result<(QueryOutput, ClusterQueryCost), QueryError>>;
    let sweep = |cores: &[Arc<ClusterCore>; 3]| -> Vec<(usize, CellResult)> {
        let mut cells: Vec<(usize, &[usize])> = Vec::new();
        for k in 1..=3usize {
            for fails in fails_sets {
                cells.push((k, fails));
            }
        }
        Pool::global().par_map(cells, |(k, fails)| {
            let mut c = Cluster::from_core(cores[k - 1].clone());
            let mut plan = FaultPlan::none();
            for &node in fails {
                plan = plan.crash(node, 0.0);
            }
            c.set_faults(plan);
            let runs: CellResult = QueryId::ALL
                .iter()
                .map(|&id| c.try_run_at(id, 0.0).map(|q| (q.output, q.cost)))
                .collect();
            (k, runs)
        })
    };
    set_global_threads(1);
    let (seq_s, seq_cells) = best_of(|| sweep(&cores));
    set_global_threads(threads);
    let (par_s, par_cells) = best_of(|| sweep(&cores));
    assert_eq!(seq_cells, par_cells, "failover matrix changed with thread count");
    let matrix_speedup = seq_s / par_s;
    println!();
    header(&["sweep", "seq (s)", "par (s)", "speedup", "thread-invariant"]);
    row(&[
        format!("failover {}x{} cells", cores.len(), fails_sets.len()),
        format!("{seq_s:.3}"),
        format!("{par_s:.3}"),
        format!("{matrix_speedup:.2}x"),
        "yes".into(),
    ]);

    // ── SWAR kernels: scalar vs vector inner loops ───────────────────
    // Single-threaded, bit-identity asserted before any time is
    // reported. The ≥1.3× floor arms with the others (≥ 4 CPUs) even
    // though the comparison itself is width-independent, so small CI
    // hosts never fail on scheduling noise.
    let kernel_rows = 2_000_000usize;
    let mut splitmix = {
        let mut state = SEED;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    };
    let keys: Vec<i64> = (0..kernel_rows).map(|_| (splitmix() % 65_536) as i64 - 32_768).collect();
    let vals: Vec<i64> = (0..kernel_rows).map(|_| (splitmix() % 1_000_000) as i64).collect();
    // Extra columns for the multi-key and sort kernels, drawn *after*
    // keys/vals so the established streams stay seed-stable.
    let g2: Vec<i64> = (0..kernel_rows).map(|_| (splitmix() % 256) as i64).collect();
    let s2: Vec<i64> = (0..kernel_rows).map(|_| (splitmix() % 1024) as i64 - 512).collect();
    let kt = Table::new(vec![Column::i64("k", keys.clone()), Column::i64("v", vals.clone())]);
    let mt = Table::new(vec![
        Column::i64("s1", keys.iter().map(|&k| k.rem_euclid(256)).collect()),
        Column::i64("g2", g2),
        Column::i64("s2", s2),
        Column::i64("v", vals),
    ]);

    println!();
    header(&["kernel", "scalar (s)", "vector (s)", "speedup", "Mrows/s", "bit-identical"]);
    let mut kernels_json: Vec<Json> = Vec::new();
    let mut kernel_speedups: Vec<(&'static str, f64)> = Vec::new();
    // `floored`: whether this kernel participates in the ≥1.3× speedup
    // assertion. Informational rows (where the scalar arm is already
    // columnar) report but never gate.
    let mut kernel_row = |name: &'static str, scalar_s: f64, vector_s: f64, floored: bool| {
        let speedup = scalar_s / vector_s;
        let mrows = kernel_rows as f64 / vector_s / 1e6;
        row(&[
            name.to_string(),
            format!("{scalar_s:.3}"),
            format!("{vector_s:.3}"),
            format!("{speedup:.2}x"),
            format!("{mrows:.0}"),
            "yes".into(),
        ]);
        kernels_json.push(Json::obj([
            ("kernel", Json::str(name)),
            ("rows", Json::num(kernel_rows as f64)),
            ("speedup", Json::num(speedup)),
            ("scalar_mrows_s", Json::num(kernel_rows as f64 / scalar_s / 1e6)),
            ("vector_mrows_s", Json::num(mrows)),
        ]));
        if floored {
            kernel_speedups.push((name, speedup));
        }
    };

    let fspec = FilterSpec::new("v", CompareOp::Between(100_000, 700_000));
    let (f_scalar_s, f_scalar) = best_of(|| fspec.apply_with(&kt, Kernel::Scalar));
    let (f_vector_s, f_vector) = best_of(|| fspec.apply_with(&kt, Kernel::Swar));
    assert_eq!(f_scalar, f_vector, "SWAR filter diverged from scalar");
    kernel_row("filter", f_scalar_s, f_vector_s, true);

    let (p_scalar_s, p_scalar) = best_of(|| partition_row_ids_with(&keys, 0, 32, Kernel::Scalar));
    let (p_vector_s, p_vector) = best_of(|| partition_row_ids_with(&keys, 0, 32, Kernel::Swar));
    assert_eq!(p_scalar, p_vector, "SWAR partition diverged from scalar");
    kernel_row("partition", p_scalar_s, p_vector_s, true);

    if hw_crc_available() {
        let (h_vector_s, h_vector) =
            best_of(|| partition_row_ids_with(&keys, 0, 32, Kernel::HwCrc));
        assert_eq!(p_scalar, h_vector, "hardware-CRC partition diverged from scalar");
        kernel_row("partition_hwcrc", p_scalar_s, h_vector_s, true);
    } else {
        println!("  (partition_hwcrc skipped: host lacks SSE4.2)");
    }

    let gspec = GroupBySpec {
        group_cols: vec!["k".into()],
        aggs: vec![
            ("cnt".into(), AggFunc::Count),
            ("s".into(), AggFunc::Sum("v".into())),
            ("hi".into(), AggFunc::Max("v".into())),
        ],
    };
    let (a_scalar_s, a_scalar) = best_of(|| gspec.execute_seq(&kt, None));
    let (a_vector_s, a_vector) = best_of(|| gspec.execute_vector(&kt, None));
    assert_eq!(a_scalar, a_vector, "SWAR group-by diverged from scalar");
    kernel_row("agg", a_scalar_s, a_vector_s, true);

    // Multi-key group-by: two-column composite keys (≤65 536 groups)
    // through the flattened wide-CRC probe.
    let mspec = GroupBySpec {
        group_cols: vec!["s1".into(), "g2".into()],
        aggs: vec![
            ("cnt".into(), AggFunc::Count),
            ("s".into(), AggFunc::Sum("v".into())),
            ("hi".into(), AggFunc::Max("v".into())),
        ],
    };
    let (m_scalar_s, m_scalar) = best_of(|| mspec.execute_seq(&mt, None));
    let (m_vector_s, m_vector) = best_of(|| mspec.execute_vector(&mt, None));
    assert_eq!(m_scalar, m_vector, "SWAR multi-key group-by diverged from scalar");
    kernel_row("groupby_multi", m_scalar_s, m_vector_s, true);

    // Top-k: the threshold pre-filter rejects whole 64-row blocks once
    // the heap fills (k=100 over 2M uniform rows ⇒ almost all of them).
    let (t_scalar_s, t_scalar) = best_of(|| top_k_with(&kt, "v", 100, 1, None, Kernel::Scalar));
    let (t_vector_s, t_vector) = best_of(|| top_k_with(&kt, "v", 100, 1, None, Kernel::Swar));
    assert_eq!(t_scalar, t_vector, "SWAR top-k diverged from scalar");
    kernel_row("topk", t_scalar_s, t_vector_s, true);

    // Sort-key extraction: duplicate-heavy two-column sort where the
    // scalar arm runs a per-row column-by-column comparator and the
    // vector arm compares materialized order-normalized words.
    let (s_scalar_s, s_scalar) =
        best_of(|| sort_indices_multi_with(&mt, &["s1", "s2"], 1, None, Kernel::Scalar));
    let (s_vector_s, s_vector) =
        best_of(|| sort_indices_multi_with(&mt, &["s1", "s2"], 1, None, Kernel::Swar));
    assert_eq!(s_scalar, s_vector, "SWAR sort diverged from scalar");
    kernel_row("sortkey", s_scalar_s, s_vector_s, true);

    // Expression evaluation: the TPC-H revenue shape. Informational —
    // the scalar arm is already columnar, so no floor is armed.
    let revenue =
        Expr::col("v") * (Expr::lit(100) - Expr::col("s1")) * (Expr::lit(100) + Expr::col("g2"));
    let (e_scalar_s, e_scalar) = best_of(|| revenue.eval_with(&mt, Kernel::Scalar));
    let (e_vector_s, e_vector) = best_of(|| revenue.eval_with(&mt, Kernel::Swar));
    assert_eq!(e_scalar, e_vector, "SWAR expression eval diverged from scalar");
    kernel_row("expr", e_scalar_s, e_vector_s, false);

    // ── Packed kernels: FOR/bit-packed vs flat, same SWAR kernel ─────
    // Each row times the same operator over the same encoded tables with
    // packing off (flat copy) vs on. The filter evaluates its band in
    // the encoded domain (SWAR lane compares on packed words, zone-map
    // short-circuits) and carries the ≥1.2× floor; the remaining kernels
    // unpack lane batches up front and are informational — they measure
    // what decode costs against the full flat scan.
    let mut kt_p = kt.clone();
    kt_p.encode_packed();
    let mut mt_p = mt.clone();
    mt_p.encode_packed();
    // A discount-like small-domain column (TPC-H `l_discount` shape, 11
    // distinct values): the 4-bit lanes pack 16 values per word, the
    // payoff case the paper's compressed scans live on. Wider lanes pay
    // progressively more for the per-field flag compaction — 8-bit sits
    // near break-even and 16-bit loses — so the floored row uses the
    // narrow-lane shape the encoded-domain filter is built for.
    let discounts: Vec<i64> = (0..kernel_rows).map(|_| (splitmix() % 11) as i64).collect();
    let mut qt_p = Table::new(vec![Column::i64("q", discounts)]);
    qt_p.encode_packed();

    println!();
    header(&["packed kernel", "flat (s)", "packed (s)", "speedup", "compression", "bit-identical"]);
    let mut packed_json: Vec<Json> = Vec::new();
    let mut packed_speedups: Vec<(&'static str, f64)> = Vec::new();
    let mut packed_row =
        |name: &'static str, flat_s: f64, packed_s: f64, cols: &[&Column], floored: bool| {
            let speedup = flat_s / packed_s;
            let flat_bytes: u64 = cols.iter().map(|c| c.bytes()).sum();
            let resident: u64 = cols.iter().map(|c| c.resident_bytes()).sum();
            let ratio = flat_bytes as f64 / resident.max(1) as f64;
            row(&[
                name.to_string(),
                format!("{flat_s:.3}"),
                format!("{packed_s:.3}"),
                format!("{speedup:.2}x"),
                format!("{ratio:.2}x"),
                "yes".into(),
            ]);
            packed_json.push(Json::obj([
                ("kernel", Json::str(name)),
                ("rows", Json::num(kernel_rows as f64)),
                ("speedup", Json::num(speedup)),
                ("flat_bytes_scanned", Json::num(flat_bytes as f64)),
                ("packed_bytes_scanned", Json::num(resident as f64)),
                ("compression_ratio", Json::num(ratio)),
            ]));
            if floored {
                packed_speedups.push((name, speedup));
            }
        };

    let qspec = FilterSpec::new("q", CompareOp::Between(2, 7));
    let (qf_s, qf) = best_of(|| qspec.apply_packed_with(&qt_p, Kernel::Swar, Pack::Off));
    let (qp_s, qp) = best_of(|| qspec.apply_packed_with(&qt_p, Kernel::Swar, Pack::On));
    assert_eq!(qf, qp, "packed filter diverged from flat");
    packed_row("filter_pack", qf_s, qp_s, &[&qt_p.columns[0]], true);

    let kcol = &kt_p.columns[kt_p.col_index("k")];
    let vcol = &kt_p.columns[kt_p.col_index("v")];
    let (pf_s, pf) = best_of(|| {
        let kv = kcol.values(Pack::Off);
        partition_row_ids_with(&kv, 0, 32, Kernel::Swar)
    });
    let (pp_s, pp) = best_of(|| {
        let kv = kcol.values(Pack::On);
        partition_row_ids_with(&kv, 0, 32, Kernel::Swar)
    });
    assert_eq!(pf, pp, "packed partition diverged from flat");
    packed_row("partition_pack", pf_s, pp_s, &[kcol], false);

    let acols = gspec.columns_read();
    let arefs: Vec<&str> = acols.iter().map(String::as_str).collect();
    let (af_s, af) = best_of(|| gspec.execute_seq(&kt_p, None));
    let (ap_s, ap) = best_of(|| {
        let d = kt_p.decode_for(&arefs, Pack::On).expect("kt columns are packed");
        gspec.execute_seq(&d, None)
    });
    assert_eq!(af, ap, "packed group-by diverged from flat");
    packed_row("agg_pack", af_s, ap_s, &[kcol, vcol], false);

    let (tf_s, tf) =
        best_of(|| top_k_packed_with(&kt_p, "v", 100, 1, None, Kernel::Swar, Pack::Off));
    let (tp_s, tp) =
        best_of(|| top_k_packed_with(&kt_p, "v", 100, 1, None, Kernel::Swar, Pack::On));
    assert_eq!(tf, tp, "packed top-k diverged from flat");
    packed_row("topk_pack", tf_s, tp_s, &[vcol], false);

    let (sf_s, sf) = best_of(|| {
        sort_indices_multi_packed_with(&mt_p, &["s1", "s2"], 1, None, Kernel::Swar, Pack::Off)
    });
    let (sp_s, sp) = best_of(|| {
        sort_indices_multi_packed_with(&mt_p, &["s1", "s2"], 1, None, Kernel::Swar, Pack::On)
    });
    assert_eq!(sf, sp, "packed sort diverged from flat");
    packed_row(
        "sortkey_pack",
        sf_s,
        sp_s,
        &[&mt_p.columns[mt_p.col_index("s1")], &mt_p.columns[mt_p.col_index("s2")]],
        false,
    );

    let (ef_s, ef) = best_of(|| revenue.eval_packed_with(&mt_p, Kernel::Swar, Pack::Off));
    let (ep_s, ep) = best_of(|| revenue.eval_packed_with(&mt_p, Kernel::Swar, Pack::On));
    assert_eq!(ef, ep, "packed expression eval diverged from flat");
    let ecols: Vec<&Column> =
        revenue.columns_read().iter().map(|c| &mt_p.columns[mt_p.col_index(c)]).collect();
    packed_row("expr_pack", ef_s, ep_s, &ecols, false);

    // TPC-H shard-column compression: deterministic, so asserted on
    // every host regardless of CPU count.
    let comp = cores[0].sharded().compression_report();
    let flat_total: u64 = comp.iter().map(|t| t.flat_bytes()).sum();
    let resident_total: u64 = comp.iter().map(|t| t.packed_bytes()).sum();
    let ratios: Vec<f64> = comp
        .iter()
        .flat_map(|t| t.columns.iter())
        .map(|c| c.flat_bytes as f64 / c.packed_bytes.max(1) as f64)
        .collect();
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\nTPC-H shard columns: mean per-column compression {:.2}x \
         (resident {:.2} MiB vs flat {:.2} MiB, {:.2}x overall).",
        mean_ratio,
        resident_total as f64 / (1024.0 * 1024.0),
        flat_total as f64 / (1024.0 * 1024.0),
        flat_total as f64 / resident_total.max(1) as f64
    );
    assert!(
        mean_ratio >= 2.0,
        "TPC-H shard columns must average >= 2x compression: got {mean_ratio:.2}x"
    );

    // ── Criterion throughput report (elements/s) ──────────────────────
    // The stand-in criterion's `Throughput` prints a rate next to
    // ns/iter; datagen throughput is in generated orders per second.
    set_global_threads(threads);
    let orders_n = DATAGEN_ORDERS[0];
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("wallclock/datagen");
    g.throughput(Throughput::Elements(orders_n as u64));
    g.bench_function(format!("orders_{orders_n}").as_str(), |b| {
        b.iter(|| tpch::generate_parallel(orders_n, SEED))
    });
    g.finish();

    if assert_speedups {
        assert!(
            datagen_speedup_at_largest >= 2.0,
            "datagen at orders_n={} must speed up >= 2x on {threads} threads \
             ({host_cpus} CPUs): got {datagen_speedup_at_largest:.2}x",
            DATAGEN_ORDERS[DATAGEN_ORDERS.len() - 1],
        );
        assert!(
            cluster_speedup >= 2.0,
            "{NODES}-node run_all must speed up >= 2x on {threads} threads \
             ({host_cpus} CPUs): got {cluster_speedup:.2}x"
        );
        assert!(
            matrix_speedup >= 2.0,
            "failover matrix must speed up >= 2x on {threads} threads \
             ({host_cpus} CPUs): got {matrix_speedup:.2}x"
        );
        for &(name, speedup) in &kernel_speedups {
            assert!(
                speedup >= 1.3,
                "SWAR {name} kernel must speed up >= 1.3x over scalar \
                 ({host_cpus} CPUs): got {speedup:.2}x"
            );
        }
        for &(name, speedup) in &packed_speedups {
            assert!(
                speedup >= 1.2,
                "packed {name} kernel must speed up >= 1.2x over flat \
                 ({host_cpus} CPUs): got {speedup:.2}x"
            );
        }
        println!(
            "\nSpeedup floor (>= 2.0x) holds for datagen, {NODES}-node run_all, \
             and the failover matrix; SWAR kernels hold >= 1.3x over scalar; \
             the packed filter holds >= 1.2x over flat."
        );
    } else {
        println!("\nSpeedup floor not asserted: {host_cpus} host CPUs < 4.");
    }

    emit(
        "wallclock",
        &Json::obj([
            ("figure", Json::str("wallclock")),
            ("host_cpus", Json::num(host_cpus as f64)),
            ("threads", Json::num(threads as f64)),
            ("speedups_asserted", Json::Bool(assert_speedups)),
            ("deterministic", Json::Bool(true)),
            ("datagen", Json::Arr(datagen_json)),
            ("run_all", Json::Arr(suite_json)),
            ("kernels", Json::Arr(kernels_json)),
            ("packed_kernels", Json::Arr(packed_json)),
            (
                "compression",
                Json::obj([
                    ("mean_column_ratio", Json::num(mean_ratio)),
                    ("flat_bytes", Json::num(flat_total as f64)),
                    ("resident_bytes", Json::num(resident_total as f64)),
                ]),
            ),
            (
                "failover_matrix",
                Json::obj([
                    ("cells", Json::num((cores.len() * fails_sets.len()) as f64)),
                    ("orders_n", Json::num(CLUSTER_ORDERS as f64)),
                    ("speedup", Json::num(matrix_speedup)),
                ]),
            ),
        ]),
    );
}
