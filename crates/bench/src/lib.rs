//! Benchmark harness utilities.
//!
//! Each `bin/figXX_*` binary regenerates one table or figure from the
//! paper's evaluation, printing the same rows/series the paper reports.
//! The `benches/` directory holds Criterion microbenchmarks of the
//! library's own hot paths (hashing, descriptor codec, the partition
//! engines, the ISA interpreter).

pub mod json;

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a header row with a separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Formats a gigabytes-per-second value.
pub fn gbps(v: f64) -> String {
    format!("{v:.2} GB/s")
}

/// Formats a gain multiplier.
pub fn gain(v: f64) -> String {
    format!("{v:.1}×")
}
