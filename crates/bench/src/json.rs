//! Machine-readable benchmark output.
//!
//! Every figure binary emits a `BENCH_<figure>.json` file next to its
//! human-readable table so downstream tooling (plotting, regression
//! tracking) can consume the numbers without scraping stdout. The
//! environment has no serde, so this is a small hand-rolled JSON value
//! type — strings, finite numbers, booleans, arrays, ordered objects —
//! which is all the figures need.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from anything convertible to `f64`.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    // Integers print without a fraction; `{}` on f64 is
                    // shortest-roundtrip, always a valid JSON number.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `BENCH_<figure>.json` in the working directory and prints where
/// it went. Benchmark output is best-effort: an unwritable directory
/// prints a warning instead of failing the run.
pub fn emit(figure: &str, value: &Json) {
    let path = PathBuf::from(format!("BENCH_{figure}.json"));
    let text = format!("{}\n", value.render());
    match std::fs::write(&path, text) {
        Ok(()) => println!("\n[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let j = Json::obj([
            ("figure", Json::str("fig16")),
            ("gains", Json::Arr(vec![Json::num(12.5), Json::num(3.0)])),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(j.render(), r#"{"figure":"fig16","gains":[12.5,3],"ok":true}"#);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), r#""\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42.0).render(), "42");
        assert_eq!(Json::num(0.5).render(), "0.5");
    }
}
