//! The owner-pinned serialized-access discipline.
//!
//! §4: shared structures are pinned to one owner dpCore and mutated only
//! through `dpu_serialized(...)` — a software RPC that (a) flushes the
//! argument objects on the issuing core, (b) invalidates them on the
//! remote core, (c) runs the manipulator on the owner, (d) flushes the
//! results remotely, and (e) invalidates them locally on return.
//! [`serialized_call`] reproduces that five-step protocol with real cache
//! bookkeeping and ATE timing.

use dpu_ate::Ate;
use dpu_mem::{Cache, PhysMem};
use dpu_sim::Time;

/// A shared region pinned to an owner core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerializedRegion {
    /// The owner (home) dpCore.
    pub owner: usize,
    /// Physical base address of the shared object.
    pub addr: u64,
    /// Object size in bytes.
    pub len: u32,
}

impl SerializedRegion {
    /// Cache lines the region spans.
    pub fn lines(&self, line_size: u64) -> u64 {
        let first = self.addr / line_size;
        let last = (self.addr + self.len as u64 - 1) / line_size;
        last - first + 1
    }
}

/// Cycles to flush or invalidate one cache line.
const LINE_OP_CYCLES: u64 = 4;

/// Executes `manipulator` on the region's owner core via a software RPC,
/// performing the full flush/invalidate protocol on the given caches.
///
/// Returns the manipulator's result and the time at which the issuing
/// core resumes. `caller_cache` and `owner_cache` are the L1-D models of
/// the two cores; `handler_cycles` estimates the manipulator's compute.
#[allow(clippy::too_many_arguments)]
pub fn serialized_call<R>(
    region: SerializedRegion,
    from_core: usize,
    now: Time,
    ate: &mut Ate,
    phys: &mut PhysMem,
    caller_cache: &mut Cache,
    owner_cache: &mut Cache,
    handler_cycles: u64,
    manipulator: impl FnOnce(&mut PhysMem) -> R,
) -> (R, Time) {
    let line = caller_cache.config().line_size as u64;
    let lines = region.lines(line);

    // (a) flush argument lines on the issuing core.
    let mut t = now;
    for i in 0..lines {
        caller_cache.flush_line(region.addr + i * line);
    }
    t += Time::from_cycles(lines * LINE_OP_CYCLES);

    // (b) invalidate on the owner + (c) run the manipulator there.
    for i in 0..lines {
        owner_cache.invalidate_line(region.addr + i * line);
    }
    let ticket = ate.sw_rpc(from_core, region.owner, t, handler_cycles + lines * LINE_OP_CYCLES);
    let result = manipulator(phys);

    // (d) owner flushes results; (e) caller invalidates its stale copies.
    for i in 0..lines {
        owner_cache.flush_line(region.addr + i * line);
        caller_cache.invalidate_line(region.addr + i * line);
    }
    let finish = ticket.response_at + Time::from_cycles(lines * LINE_OP_CYCLES);
    (result, finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_ate::AteConfig;
    use dpu_mem::CacheConfig;

    fn setup() -> (Ate, PhysMem, Cache, Cache) {
        (
            Ate::new(AteConfig::default(), 32),
            PhysMem::new(4096),
            Cache::new(CacheConfig::dpcore_l1d()),
            Cache::new(CacheConfig::dpcore_l1d()),
        )
    }

    #[test]
    fn manipulator_runs_and_returns() {
        let (mut ate, mut phys, mut cc, mut oc) = setup();
        let region = SerializedRegion { owner: 5, addr: 256, len: 16 };
        phys.write_u64(256, 41);
        let (old, t) = serialized_call(
            region,
            0,
            Time::ZERO,
            &mut ate,
            &mut phys,
            &mut cc,
            &mut oc,
            50,
            |p| {
                let v = p.read_u64(256);
                p.write_u64(256, v + 1);
                v
            },
        );
        assert_eq!(old, 41);
        assert_eq!(phys.read_u64(256), 42);
        assert!(t > Time::ZERO);
    }

    #[test]
    fn caller_copies_are_invalidated() {
        let (mut ate, mut phys, mut cc, mut oc) = setup();
        let region = SerializedRegion { owner: 1, addr: 0, len: 200 };
        // Caller had the object cached (stale after the RPC).
        for a in (0..256u64).step_by(64) {
            cc.access(a, true);
        }
        serialized_call(region, 0, Time::ZERO, &mut ate, &mut phys, &mut cc, &mut oc, 10, |_| ());
        for a in (0..256u64).step_by(64) {
            assert!(!cc.contains(a), "stale line {a} must be invalidated");
        }
    }

    #[test]
    fn bigger_objects_cost_more() {
        let (mut ate, mut phys, mut cc, mut oc) = setup();
        let small = SerializedRegion { owner: 1, addr: 0, len: 8 };
        let big = SerializedRegion { owner: 1, addr: 1024, len: 2048 };
        let (_, t_small) = serialized_call(
            small,
            0,
            Time::ZERO,
            &mut ate,
            &mut phys,
            &mut cc,
            &mut oc,
            10,
            |_| (),
        );
        let mut ate2 = Ate::new(AteConfig::default(), 32);
        let (_, t_big) =
            serialized_call(big, 0, Time::ZERO, &mut ate2, &mut phys, &mut cc, &mut oc, 10, |_| ());
        assert!(t_big > t_small);
    }

    #[test]
    fn region_line_count() {
        let r = SerializedRegion { owner: 0, addr: 60, len: 10 };
        assert_eq!(r.lines(64), 2, "straddles a line boundary");
        let r2 = SerializedRegion { owner: 0, addr: 64, len: 64 };
        assert_eq!(r2.lines(64), 1);
    }

    #[test]
    fn serialization_point_orders_concurrent_callers() {
        let (mut ate, mut phys, mut cc, mut oc) = setup();
        let region = SerializedRegion { owner: 3, addr: 512, len: 8 };
        // Two callers at the same instant: their handlers serialize at
        // the owner's injection port.
        let (_, t1) = serialized_call(
            region,
            0,
            Time::ZERO,
            &mut ate,
            &mut phys,
            &mut cc,
            &mut oc,
            100,
            |p| {
                let v = p.read_u64(512);
                p.write_u64(512, v + 1);
            },
        );
        let (_, t2) = serialized_call(
            region,
            1,
            Time::ZERO,
            &mut ate,
            &mut phys,
            &mut cc,
            &mut oc,
            100,
            |p| {
                let v = p.read_u64(512);
                p.write_u64(512, v + 1);
            },
        );
        assert_eq!(phys.read_u64(512), 2);
        assert!(t2 > t1, "second caller waits behind the first");
    }
}
