//! The DPU software runtime (§4 of the paper).
//!
//! Applications on the DPU are "co-operatively scheduled to completion":
//! each dpCore runs its task without preemption, overlapping data
//! movement via the DMS — that cooperative engine *is*
//! [`dpu_core::Dpu::run`]. This crate provides the software layer above
//! it:
//!
//! * [`scheduler`] — the cooperative run-to-completion discipline with the
//!   three well-known interrupt sources (ATE software RPCs, mailbox,
//!   timer),
//! * [`parallel`] — static chunking and ATE-based dynamic work stealing
//!   ("instead of a static schedule, we partition the input set into
//!   multiple chunks and implement work stealing across cores using the
//!   ATE hardware atomics", §5.4),
//! * [`heap`] — the two-level heap allocator "similar to Hoard or
//!   TCMalloc" that manages DRAM,
//! * [`serialized`] — the owner-pinned shared-data discipline: "most
//!   shared data structures are pinned to a single owner dpCore, and all
//!   manipulators are forced via a serialized interface to the ATE's
//!   remote procedure calls",
//! * [`coherence`] — software-coherence bookkeeping, including the
//!   redundant-flush detector the paper's tooling provided.

pub mod coherence;
pub mod heap;
pub mod parallel;
pub mod scheduler;
pub mod serialized;

pub use coherence::CoherenceTracker;
pub use heap::DpuHeap;
pub use parallel::{static_chunks, StealingScheduler};
pub use scheduler::{CoopScheduler, InterruptSource};
pub use serialized::{serialized_call, SerializedRegion};
