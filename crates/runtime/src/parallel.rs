//! Parallel decomposition: static chunks and ATE work stealing.

use std::ops::Range;

use dpu_ate::{Ate, AteCounter};
use dpu_mem::{Dmem, PhysMem};
use dpu_sim::Time;

/// Splits `0..n_items` into `n_workers` near-equal contiguous ranges
/// (static schedule). Early ranges get the remainder.
///
/// # Example
///
/// ```
/// use dpu_runtime::static_chunks;
/// let c = static_chunks(10, 3);
/// assert_eq!(c, vec![0..4, 4..7, 7..10]);
/// ```
pub fn static_chunks(n_items: u64, n_workers: usize) -> Vec<Range<u64>> {
    assert!(n_workers > 0, "need at least one worker");
    let n_workers = n_workers as u64;
    let base = n_items / n_workers;
    let extra = n_items % n_workers;
    let mut out = Vec::with_capacity(n_workers as usize);
    let mut start = 0;
    for w in 0..n_workers {
        let len = base + u64::from(w < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Dynamic chunk claiming over an ATE fetch-add counter (§5.4): "the
/// variable latency multiplier on the dpCores makes this dynamic
/// scheduling essential to avoid long tail latencies".
#[derive(Debug, Clone, Copy)]
pub struct StealingScheduler {
    counter: AteCounter,
    /// Items per claimed chunk.
    pub chunk_items: u64,
    /// Total items.
    pub total_items: u64,
}

impl StealingScheduler {
    /// Creates a scheduler whose shared counter lives at `counter_addr`
    /// in DDR, arbitrated by `home_core`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_items` is zero.
    pub fn new(counter_addr: u64, home_core: usize, chunk_items: u64, total_items: u64) -> Self {
        assert!(chunk_items > 0, "chunks must hold items");
        StealingScheduler {
            counter: AteCounter { addr: counter_addr, home_core },
            chunk_items,
            total_items,
        }
    }

    /// Number of chunks the input divides into.
    pub fn n_chunks(&self) -> u64 {
        self.total_items.div_ceil(self.chunk_items)
    }

    /// Claims the next chunk for `core` at `now`. Returns the item range
    /// and the time the claim completed, or `None` when the work is
    /// exhausted (the final fetch-add still costs its round trip, which is
    /// reflected in the returned time via `Err`-like `None` + the
    /// counter's side effects — callers typically stop polling then).
    pub fn claim(
        &self,
        core: usize,
        now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> Option<(Range<u64>, Time)> {
        let (chunk, t) = self.counter.next(core, now, ate, phys, dmems);
        if chunk >= self.n_chunks() {
            return None;
        }
        let start = chunk * self.chunk_items;
        let end = (start + self.chunk_items).min(self.total_items);
        Some((start..end, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_ate::AteConfig;

    #[test]
    fn static_chunks_cover_exactly() {
        for (n, w) in [(0u64, 4usize), (1, 4), (100, 7), (32, 32), (5, 8)] {
            let chunks = static_chunks(n, w);
            assert_eq!(chunks.len(), w);
            let mut covered = 0;
            let mut expect_start = 0;
            for c in &chunks {
                assert_eq!(c.start, expect_start, "contiguous");
                covered += c.end - c.start;
                expect_start = c.end;
            }
            assert_eq!(covered, n);
            // Balance: sizes differ by at most one.
            let sizes: Vec<u64> = chunks.iter().map(|c| c.end - c.start).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        static_chunks(10, 0);
    }

    #[test]
    fn stealing_claims_every_item_once() {
        let mut ate = Ate::new(AteConfig::default(), 32);
        let mut phys = PhysMem::new(4096);
        let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(64)).collect();
        let sched = StealingScheduler::new(0, 0, 7, 100);
        assert_eq!(sched.n_chunks(), 15);
        let mut seen = [false; 100];
        let mut active = 0;
        // Cores round-robin claiming until exhausted.
        'outer: loop {
            for core in 0..8 {
                match sched.claim(core, Time::ZERO, &mut ate, &mut phys, &mut dmems) {
                    Some((r, _)) => {
                        for i in r {
                            assert!(!seen[i as usize], "item {i} claimed twice");
                            seen[i as usize] = true;
                        }
                        active += 1;
                    }
                    None => break 'outer,
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(active, 15);
        // Last chunk is short: 100 = 14×7 + 2.
    }

    #[test]
    fn contention_shows_in_claim_times() {
        let mut ate = Ate::new(AteConfig::default(), 32);
        let mut phys = PhysMem::new(4096);
        let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(64)).collect();
        let sched = StealingScheduler::new(0, 0, 1, 64);
        let mut times = Vec::new();
        for core in 0..32 {
            let (_, t) = sched.claim(core, Time::ZERO, &mut ate, &mut phys, &mut dmems).unwrap();
            times.push(t);
        }
        assert!(times.windows(2).all(|w| w[1] > w[0]), "FIFO serialization");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut ate = Ate::new(AteConfig::default(), 32);
        let mut phys = PhysMem::new(4096);
        let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(64)).collect();
        let sched = StealingScheduler::new(8, 0, 10, 10);
        assert!(sched.claim(0, Time::ZERO, &mut ate, &mut phys, &mut dmems).is_some());
        assert!(sched.claim(1, Time::ZERO, &mut ate, &mut phys, &mut dmems).is_none());
        assert!(sched.claim(2, Time::ZERO, &mut ate, &mut phys, &mut dmems).is_none());
    }
}
