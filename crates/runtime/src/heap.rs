//! Two-level heap allocator over simulated DRAM.
//!
//! "A two-level heap allocator similar to Hoard or TCMalloc allows
//! efficient, dynamic management of most of DRAM space" (§4): each core
//! keeps small free lists of size-classed blocks and refills them in
//! batches from a global pool, so the common-case allocation touches no
//! shared state. The allocator manages *addresses* into the DPU's
//! physical memory; the data itself lives in [`PhysMem`](dpu_mem::PhysMem).

/// Size classes handed out from per-core caches (powers of two).
const CLASSES: [u32; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
/// Blocks fetched from the global pool per refill.
const REFILL_BATCH: usize = 8;
/// Blocks a core cache holds per class before spilling back.
const CACHE_CAP: usize = 32;

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Allocations served entirely from a core-local cache.
    pub local_hits: u64,
    /// Refills that had to take the global lock.
    pub global_refills: u64,
    /// Batches spilled back to the global pool.
    pub spills: u64,
    /// Large allocations served directly from the global pool.
    pub large_allocs: u64,
}

#[derive(Debug, Default, Clone)]
struct CoreCache {
    free: Vec<Vec<u64>>, // per class
}

/// The two-level allocator.
///
/// # Example
///
/// ```
/// use dpu_runtime::DpuHeap;
/// let mut heap = DpuHeap::new(0x1000, 1 << 20, 4);
/// let a = heap.alloc(0, 100).unwrap();
/// let b = heap.alloc(0, 100).unwrap();
/// assert_ne!(a, b);
/// heap.free(0, a, 100);
/// // The freed block is recycled by the same core's cache.
/// assert_eq!(heap.alloc(0, 100), Some(a));
/// ```
#[derive(Debug)]
pub struct DpuHeap {
    base: u64,
    end: u64,
    bump: u64,
    global_free: Vec<Vec<u64>>,
    caches: Vec<CoreCache>,
    stats: HeapStats,
}

impl DpuHeap {
    /// Creates a heap managing `[base, base + size)` for `n_cores`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(base: u64, size: u64, n_cores: usize) -> Self {
        assert!(size > 0, "heap must have capacity");
        DpuHeap {
            base,
            end: base + size,
            bump: base,
            global_free: vec![Vec::new(); CLASSES.len()],
            caches: vec![CoreCache { free: vec![Vec::new(); CLASSES.len()] }; n_cores],
            stats: HeapStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Bytes never yet carved from the bump region.
    pub fn untouched_bytes(&self) -> u64 {
        self.end - self.bump
    }

    fn class_of(bytes: u32) -> Option<usize> {
        CLASSES.iter().position(|&c| bytes <= c)
    }

    fn carve(&mut self, bytes: u64) -> Option<u64> {
        // Keep 16-byte alignment for every carve.
        let aligned = bytes.div_ceil(16) * 16;
        if self.bump + aligned > self.end {
            return None;
        }
        let addr = self.bump;
        self.bump += aligned;
        Some(addr)
    }

    /// Allocates `bytes` for `core`; returns the physical address, or
    /// `None` when memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `bytes` is zero.
    pub fn alloc(&mut self, core: usize, bytes: u32) -> Option<u64> {
        assert!(bytes > 0, "zero-byte allocation");
        let Some(class) = Self::class_of(bytes) else {
            // Large allocation: straight from the bump region (the paper's
            // big columnar buffers are allocated once).
            self.stats.large_allocs += 1;
            return self.carve(bytes as u64);
        };
        if let Some(addr) = self.caches[core].free[class].pop() {
            self.stats.local_hits += 1;
            return Some(addr);
        }
        // Refill from the global pool (the "lock" level).
        self.stats.global_refills += 1;
        let block = CLASSES[class] as u64;
        for _ in 0..REFILL_BATCH {
            let addr = match self.global_free[class].pop() {
                Some(a) => a,
                None => match self.carve(block) {
                    Some(a) => a,
                    None => break,
                },
            };
            self.caches[core].free[class].push(addr);
        }
        self.caches[core].free[class].pop()
    }

    /// Returns a block of `bytes` at `addr` to `core`'s cache (spilling a
    /// batch to the global pool if the cache is full).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range, or `addr` lies outside the heap.
    pub fn free(&mut self, core: usize, addr: u64, bytes: u32) {
        assert!(addr >= self.base && addr < self.end, "free of {addr:#x} outside heap");
        let Some(class) = Self::class_of(bytes) else {
            // Large blocks are not recycled (lifetime = run), as in the
            // paper's usage of big scan buffers.
            return;
        };
        let cache = &mut self.caches[core].free[class];
        cache.push(addr);
        if cache.len() > CACHE_CAP {
            let spill_at = CACHE_CAP / 2;
            let spilled: Vec<u64> = cache.drain(spill_at..).collect();
            self.global_free[class].extend(spilled);
            self.stats.spills += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn allocations_never_overlap() {
        let mut heap = DpuHeap::new(0, 1 << 20, 8);
        let mut live: Vec<(u64, u32)> = Vec::new();
        for i in 0..500u32 {
            let size = 1 + (i * 37) % 300;
            let core = (i % 8) as usize;
            let addr = heap.alloc(core, size).unwrap();
            for &(a, s) in &live {
                let s_end = a + s.next_multiple_of(16) as u64;
                let n_end = addr + size.next_multiple_of(16) as u64;
                assert!(addr >= s_end || n_end <= a, "overlap at {addr:#x}");
            }
            live.push((addr, size));
        }
    }

    #[test]
    fn local_cache_recycles_frees() {
        let mut heap = DpuHeap::new(0, 1 << 16, 2);
        let a = heap.alloc(0, 64).unwrap();
        heap.free(0, a, 64);
        assert_eq!(heap.alloc(0, 64), Some(a));
        let s = heap.stats();
        assert!(s.local_hits >= 1);
    }

    #[test]
    fn refills_amortize_global_traffic() {
        let mut heap = DpuHeap::new(0, 1 << 20, 1);
        for _ in 0..64 {
            heap.alloc(0, 100).unwrap();
        }
        let s = heap.stats();
        // 64 allocations of one class need only ceil(64/8) refills.
        assert_eq!(s.global_refills, 8);
        assert_eq!(s.local_hits, 64 - 8);
    }

    #[test]
    fn spill_feeds_other_cores() {
        let mut heap = DpuHeap::new(0, 1 << 20, 2);
        let blocks: Vec<u64> = (0..40).map(|_| heap.alloc(0, 32).unwrap()).collect();
        for &b in &blocks {
            heap.free(0, b, 32);
        }
        assert!(heap.stats().spills >= 1, "cache overflow must spill");
        // Core 1's refill can now reuse spilled blocks without carving.
        let before = heap.untouched_bytes();
        heap.alloc(1, 32).unwrap();
        assert_eq!(heap.untouched_bytes(), before, "served from spilled pool");
    }

    #[test]
    fn large_allocations_bypass_classes() {
        let mut heap = DpuHeap::new(0, 1 << 20, 1);
        let a = heap.alloc(0, 100_000).unwrap();
        let b = heap.alloc(0, 100_000).unwrap();
        assert!(b >= a + 100_000);
        assert_eq!(heap.stats().large_allocs, 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut heap = DpuHeap::new(0, 1024, 1);
        assert!(heap.alloc(0, 900).is_some());
        assert!(heap.alloc(0, 900).is_none());
    }

    #[test]
    fn distinct_cores_get_distinct_blocks() {
        let mut heap = DpuHeap::new(0, 1 << 20, 8);
        let mut seen = HashSet::new();
        for core in 0..8 {
            for _ in 0..20 {
                assert!(seen.insert(heap.alloc(core, 64).unwrap()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside heap")]
    fn foreign_free_detected() {
        let mut heap = DpuHeap::new(0x1000, 1024, 1);
        heap.free(0, 0, 64);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_alloc_rejected() {
        DpuHeap::new(0, 1024, 1).alloc(0, 0);
    }
}
