//! Cooperative run-to-completion scheduling (§4).
//!
//! "Applications are co-operatively scheduled to completion: only
//! occasional interrupts from a well-known set of sources (software
//! remote procedure calls via ATE, network messages over the mailbox, or
//! a timer) cause control to temporarily switch away from the
//! application thread." This module models that discipline in virtual
//! time: tasks on a core run back-to-back without preemption; interrupts
//! borrow the core briefly and return control to the same task.

use std::collections::VecDeque;

use dpu_sim::Time;

/// The well-known interrupt sources (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptSource {
    /// A software remote procedure call delivered by the ATE.
    AteSwRpc,
    /// A mailbox message from the A9/M0 or another dpCore.
    Mailbox,
    /// The periodic timer.
    Timer,
}

/// A unit of application work pinned to a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Diagnostic name.
    pub name: String,
    /// Compute cycles the task needs.
    pub cycles: u64,
}

/// One completed task with its schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTask {
    /// The task.
    pub task: Task,
    /// When it first got the core.
    pub started: Time,
    /// When it finished (includes time stolen by interrupts).
    pub finished: Time,
    /// Cycles stolen by interrupt handlers while it ran.
    pub stolen: u64,
}

/// A pending interrupt delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interrupt {
    at: Time,
    source: InterruptSource,
    handler_cycles: u64,
}

/// The per-core cooperative scheduler.
#[derive(Debug, Default)]
pub struct CoopScheduler {
    queue: VecDeque<Task>,
    interrupts: Vec<Interrupt>,
    interrupt_log: Vec<(Time, InterruptSource)>,
}

impl CoopScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a task (FIFO).
    pub fn spawn(&mut self, name: &str, cycles: u64) {
        self.queue.push_back(Task { name: name.to_string(), cycles });
    }

    /// Registers an interrupt to be delivered at `at`.
    pub fn raise_at(&mut self, at: Time, source: InterruptSource, handler_cycles: u64) {
        self.interrupts.push(Interrupt { at, source, handler_cycles });
    }

    /// Tasks waiting to run.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Interrupts taken so far, in delivery order.
    pub fn interrupt_log(&self) -> &[(Time, InterruptSource)] {
        &self.interrupt_log
    }

    /// Runs every queued task to completion starting at `start`,
    /// delivering registered interrupts at their times (an interrupt due
    /// while a task runs steals its handler cycles from that task's
    /// window; one due while idle runs immediately). Returns the
    /// completion schedule.
    pub fn run(&mut self, start: Time) -> Vec<CompletedTask> {
        self.interrupts.sort_by_key(|i| i.at);
        let mut pending: VecDeque<Interrupt> = self.interrupts.drain(..).collect();
        let mut now = start;
        let mut out = Vec::new();
        while let Some(task) = self.queue.pop_front() {
            let started = now;
            let mut remaining = task.cycles;
            let mut stolen = 0u64;
            while remaining > 0 {
                // Next interrupt due before this task would finish?
                let finish_if_undisturbed = now + Time::from_cycles(remaining);
                match pending.front().copied() {
                    Some(irq) if irq.at < finish_if_undisturbed => {
                        pending.pop_front();
                        // Run up to the interrupt, take it, resume.
                        let ran = irq.at.saturating_sub(now).cycles().min(remaining);
                        remaining -= ran;
                        now = now.max(irq.at) + Time::from_cycles(irq.handler_cycles);
                        stolen += irq.handler_cycles;
                        self.interrupt_log.push((irq.at, irq.source));
                    }
                    _ => {
                        now = finish_if_undisturbed;
                        remaining = 0;
                    }
                }
            }
            out.push(CompletedTask { task, started, finished: now, stolen });
        }
        // Any interrupts left fire on the idle core.
        for irq in pending {
            let at = now.max(irq.at);
            now = at + Time::from_cycles(irq.handler_cycles);
            self.interrupt_log.push((irq.at, irq.source));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn tasks_run_fifo_without_preemption() {
        let mut s = CoopScheduler::new();
        s.spawn("a", 100);
        s.spawn("b", 50);
        s.spawn("c", 25);
        let done = s.run(Time::ZERO);
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].task.name, "a");
        assert_eq!(done[0].finished, t(100));
        assert_eq!(done[1].started, t(100), "b starts only when a completes");
        assert_eq!(done[2].finished, t(175));
        assert!(done.iter().all(|d| d.stolen == 0));
    }

    #[test]
    fn interrupt_steals_cycles_but_does_not_reschedule() {
        let mut s = CoopScheduler::new();
        s.spawn("app", 1000);
        s.spawn("next", 10);
        s.raise_at(t(400), InterruptSource::AteSwRpc, 60);
        let done = s.run(Time::ZERO);
        // The app still completes before "next" runs (no preemptive
        // rescheduling), just 60 cycles later.
        assert_eq!(done[0].task.name, "app");
        assert_eq!(done[0].finished, t(1060));
        assert_eq!(done[0].stolen, 60);
        assert_eq!(done[1].started, t(1060));
        assert_eq!(s.interrupt_log(), &[(t(400), InterruptSource::AteSwRpc)]);
    }

    #[test]
    fn multiple_interrupts_accumulate_in_order() {
        let mut s = CoopScheduler::new();
        s.spawn("app", 500);
        s.raise_at(t(300), InterruptSource::Timer, 10);
        s.raise_at(t(100), InterruptSource::Mailbox, 20);
        let done = s.run(Time::ZERO);
        assert_eq!(done[0].stolen, 30);
        assert_eq!(done[0].finished, t(530));
        let sources: Vec<_> = s.interrupt_log().iter().map(|&(_, src)| src).collect();
        assert_eq!(sources, vec![InterruptSource::Mailbox, InterruptSource::Timer]);
    }

    #[test]
    fn idle_interrupts_still_fire() {
        let mut s = CoopScheduler::new();
        s.spawn("quick", 10);
        s.raise_at(t(1000), InterruptSource::Timer, 5);
        s.run(Time::ZERO);
        assert_eq!(s.interrupt_log().len(), 1);
    }

    #[test]
    fn interrupt_after_task_window_does_not_steal() {
        let mut s = CoopScheduler::new();
        s.spawn("app", 100);
        s.raise_at(t(100), InterruptSource::Timer, 50);
        let done = s.run(Time::ZERO);
        assert_eq!(done[0].stolen, 0, "interrupt at the boundary hits idle time");
        assert_eq!(done[0].finished, t(100));
    }

    #[test]
    fn empty_scheduler_is_a_noop() {
        let mut s = CoopScheduler::new();
        assert!(s.run(t(5)).is_empty());
        assert_eq!(s.pending(), 0);
    }
}
