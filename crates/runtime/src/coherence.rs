//! Software-coherence bookkeeping and redundancy detection.
//!
//! §4: "Programmers tended to conservatively flush/invalidate to avoid
//! coherence errors which penalized performance; we hence developed a
//! tool to identify and quantify redundant cache operations."
//! [`CoherenceTracker`] is that tool: it shadows the logical
//! dirty/valid state of each line per core and classifies every flush or
//! invalidate as necessary or redundant.

use std::collections::HashMap;

/// Per-(core, line) logical cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    CleanValid,
    Dirty,
}

/// Counts of coherence operations by necessity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Flushes that actually wrote data back.
    pub useful_flushes: u64,
    /// Flushes of clean or absent lines (wasted cycles).
    pub redundant_flushes: u64,
    /// Invalidates that dropped a valid line.
    pub useful_invalidates: u64,
    /// Invalidates of absent lines.
    pub redundant_invalidates: u64,
}

impl CoherenceStats {
    /// Fraction of all coherence ops that were redundant.
    pub fn redundancy(&self) -> f64 {
        let total = self.useful_flushes
            + self.redundant_flushes
            + self.useful_invalidates
            + self.redundant_invalidates;
        if total == 0 {
            return 0.0;
        }
        (self.redundant_flushes + self.redundant_invalidates) as f64 / total as f64
    }
}

/// Shadow state for redundancy analysis across all cores.
#[derive(Debug, Default)]
pub struct CoherenceTracker {
    line_size: u64,
    lines: HashMap<(usize, u64), LineState>,
    stats: CoherenceStats,
    lost_dirty: u64,
}

impl CoherenceTracker {
    /// Creates a tracker for the given line size (64 B on the DPU).
    pub fn new(line_size: u64) -> Self {
        CoherenceTracker {
            line_size: line_size.max(1),
            lines: HashMap::new(),
            stats: CoherenceStats::default(),
            lost_dirty: 0,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    fn line(&self, addr: u64) -> u64 {
        addr / self.line_size
    }

    /// Records that `core` read `addr` (line becomes clean-valid if absent).
    pub fn record_read(&mut self, core: usize, addr: u64) {
        let key = (core, self.line(addr));
        self.lines.entry(key).or_insert(LineState::CleanValid);
    }

    /// Records that `core` wrote `addr` (line becomes dirty).
    pub fn record_write(&mut self, core: usize, addr: u64) {
        let key = (core, self.line(addr));
        self.lines.insert(key, LineState::Dirty);
    }

    /// Records a `cflush` of the line containing `addr` by `core`;
    /// returns true if the flush was useful.
    pub fn record_flush(&mut self, core: usize, addr: u64) -> bool {
        let key = (core, self.line(addr));
        match self.lines.get_mut(&key) {
            Some(s @ LineState::Dirty) => {
                *s = LineState::CleanValid;
                self.stats.useful_flushes += 1;
                true
            }
            _ => {
                self.stats.redundant_flushes += 1;
                false
            }
        }
    }

    /// Records a `cinval` of the line containing `addr` by `core`;
    /// returns true if the invalidate dropped a valid line.
    ///
    /// Invalidating a *dirty* line is a correctness hazard (data loss)
    /// and is reported through [`lost_dirty_lines`](Self::lost_dirty_lines).
    pub fn record_invalidate(&mut self, core: usize, addr: u64) -> bool {
        let key = (core, self.line(addr));
        match self.lines.remove(&key) {
            Some(LineState::Dirty) => {
                self.lost_dirty += 1;
                self.stats.useful_invalidates += 1;
                true
            }
            Some(LineState::CleanValid) => {
                self.stats.useful_invalidates += 1;
                true
            }
            None => {
                self.stats.redundant_invalidates += 1;
                false
            }
        }
    }

    /// Number of dirty lines destroyed by invalidates — each one is a
    /// latent data-race bug the paper's debugging tools hunted.
    pub fn lost_dirty_lines(&self) -> u64 {
        self.lost_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_flush_after_write() {
        let mut t = CoherenceTracker::new(64);
        t.record_write(0, 100);
        assert!(t.record_flush(0, 100));
        assert!(!t.record_flush(0, 100), "second flush is redundant");
        let s = t.stats();
        assert_eq!(s.useful_flushes, 1);
        assert_eq!(s.redundant_flushes, 1);
        assert!((s.redundancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flush_of_read_only_line_is_redundant() {
        let mut t = CoherenceTracker::new(64);
        t.record_read(2, 0);
        assert!(!t.record_flush(2, 0));
    }

    #[test]
    fn invalidate_classification() {
        let mut t = CoherenceTracker::new(64);
        t.record_read(1, 128);
        assert!(t.record_invalidate(1, 128));
        assert!(!t.record_invalidate(1, 128), "already gone");
        let s = t.stats();
        assert_eq!(s.useful_invalidates, 1);
        assert_eq!(s.redundant_invalidates, 1);
    }

    #[test]
    fn invalidating_dirty_line_flags_data_loss() {
        let mut t = CoherenceTracker::new(64);
        t.record_write(0, 64);
        t.record_invalidate(0, 64);
        assert_eq!(t.lost_dirty_lines(), 1);
    }

    #[test]
    fn cores_are_independent() {
        let mut t = CoherenceTracker::new(64);
        t.record_write(0, 0);
        assert!(!t.record_flush(1, 0), "core 1 never touched the line");
        assert!(t.record_flush(0, 0));
    }

    #[test]
    fn empty_tracker_reports_zero_redundancy() {
        let t = CoherenceTracker::new(64);
        assert_eq!(t.stats().redundancy(), 0.0);
        assert_eq!(t.lost_dirty_lines(), 0);
    }
}
