//! The per-dpCore DMEM scratchpad.
//!
//! Each dpCore owns 32 KB of software-managed SRAM in lieu of a hardware-
//! managed data cache (§2.1). The DMS writes incoming tiles directly into
//! DMEM, and query plans are sized so per-partition state (e.g. a group-by
//! hash table) fits here, guaranteeing single-cycle access.

use std::fmt;

/// Size of the fabricated part's per-core DMEM.
pub const DMEM_SIZE: usize = 32 * 1024;

/// A checked byte-addressable scratchpad.
///
/// # Example
///
/// ```
/// use dpu_mem::Dmem;
/// let mut d = Dmem::new(1024);
/// d.write_u32(0, 7);
/// assert_eq!(d.read_u32(0), 7);
/// ```
#[derive(Clone)]
pub struct Dmem {
    bytes: Vec<u8>,
}

impl fmt::Debug for Dmem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dmem").field("size", &self.bytes.len()).finish()
    }
}

impl Dmem {
    /// Creates a zeroed scratchpad of `size` bytes.
    pub fn new(size: usize) -> Self {
        Dmem { bytes: vec![0; size] }
    }

    /// Scratchpad size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whole contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Whole contents as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Borrows `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn slice(&self, addr: u32, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Mutably borrows `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn slice_mut(&mut self, addr: u32, len: usize) -> &mut [u8] {
        &mut self.bytes[addr as usize..addr as usize + len]
    }

    /// Copies `data` into the scratchpad at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn write(&mut self, addr: u32, data: &[u8]) {
        self.slice_mut(addr, data.len()).copy_from_slice(data);
    }

    /// Reads a little-endian u32.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let s = self.slice(addr, 4);
        u32::from_le_bytes([s[0], s[1], s[2], s[3]])
    }

    /// Writes a little-endian u32.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian u64.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn read_u64(&self, addr: u32) -> u64 {
        let s = self.slice(addr, 8);
        u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
    }

    /// Writes a little-endian u64.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn write_u64(&mut self, addr: u32, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

impl Default for Dmem {
    /// A scratchpad of the fabricated size, [`DMEM_SIZE`].
    fn default() -> Self {
        Dmem::new(DMEM_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_32k() {
        assert_eq!(Dmem::default().len(), 32 * 1024);
    }

    #[test]
    fn rw_roundtrip() {
        let mut d = Dmem::new(64);
        d.write_u64(8, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(d.read_u64(8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(d.read_u32(8), 0xEEFF_0011);
        d.write_u32(8, 1);
        assert_eq!(d.read_u64(8), 0xAABB_CCDD_0000_0001);
    }

    #[test]
    fn bulk_write_and_slices() {
        let mut d = Dmem::new(16);
        d.write(2, &[5, 6, 7]);
        assert_eq!(d.slice(2, 3), &[5, 6, 7]);
        assert_eq!(&d.as_slice()[2..5], &[5, 6, 7]);
        d.as_mut_slice()[0] = 9;
        assert_eq!(d.slice(0, 1), &[9]);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic]
    fn oob_panics() {
        Dmem::new(8).read_u64(4);
    }
}
