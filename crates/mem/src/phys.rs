//! Physical DRAM contents.
//!
//! The dpCores have no MMU — "programs directly address physical memory"
//! (§2.2) — so the whole simulation shares one flat byte array. All DMS
//! transfers and cached accesses read/write real bytes here, which is what
//! lets the test suite assert functional correctness of partitioning,
//! gather and the applications end-to-end.

use std::fmt;

/// Flat physical memory.
///
/// # Example
///
/// ```
/// use dpu_mem::PhysMem;
/// let mut m = PhysMem::new(1024);
/// m.write_u32(16, 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(16), 0xDEAD_BEEF);
/// ```
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMem").field("size", &self.bytes.len()).finish()
    }
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        PhysMem { bytes: vec![0; size] }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrows `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn slice(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.bytes[a..a + len]
    }

    /// Mutably borrows `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn slice_mut(&mut self, addr: u64, len: usize) -> &mut [u8] {
        let a = addr as usize;
        &mut self.bytes[a..a + len]
    }

    /// Copies a byte slice into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the destination range exceeds the memory size.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.slice_mut(addr, data.len()).copy_from_slice(data);
    }

    /// Reads a little-endian u32.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let s = self.slice(addr, 4);
        u32::from_le_bytes([s[0], s[1], s[2], s[3]])
    }

    /// Writes a little-endian u32.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian u64.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let s = self.slice(addr, 8);
        u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
    }

    /// Writes a little-endian u64.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a value of `width` bytes (1, 2, 4 or 8), zero-extended.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access or unsupported width.
    pub fn read_uint(&self, addr: u64, width: usize) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported width {width}");
        let s = self.slice(addr, width);
        let mut v = 0u64;
        for (i, &b) in s.iter().enumerate() {
            v |= (b as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `v` (1, 2, 4 or 8).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access or unsupported width.
    pub fn write_uint(&mut self, addr: u64, width: usize, v: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported width {width}");
        for i in 0..width {
            self.bytes[addr as usize + i] = (v >> (8 * i)) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = PhysMem::new(64);
        m.write_u64(0, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u32(0), 0x89AB_CDEF);
        assert_eq!(m.read_u32(4), 0x0123_4567);
        assert_eq!(m.read_uint(0, 1), 0xEF);
        assert_eq!(m.read_uint(0, 2), 0xCDEF);
    }

    #[test]
    fn slices_and_bulk_write() {
        let mut m = PhysMem::new(16);
        m.write(4, &[1, 2, 3, 4]);
        assert_eq!(m.slice(4, 4), &[1, 2, 3, 4]);
        m.slice_mut(4, 2).copy_from_slice(&[9, 9]);
        assert_eq!(m.slice(4, 4), &[9, 9, 3, 4]);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn write_uint_partial_width() {
        let mut m = PhysMem::new(16);
        m.write_u64(0, u64::MAX);
        m.write_uint(0, 2, 0);
        assert_eq!(m.read_u64(0), u64::MAX << 16);
    }

    #[test]
    #[should_panic]
    fn oob_read_panics() {
        PhysMem::new(8).read_u64(4);
    }

    #[test]
    #[should_panic(expected = "unsupported width")]
    fn bad_width_panics() {
        PhysMem::new(8).read_uint(0, 3);
    }
}
