//! DDR channel timing model.
//!
//! One request occupies the shared data bus for `cmd_overhead +
//! bytes/bus_bytes_per_cycle` cycles; each of the `banks` row buffers adds
//! a `row_miss_penalty` when a request touches a different row than the
//! bank currently has open. Bank activations overlap with other banks'
//! data transfers, which is what lets 32 interleaved dpCore streams reach
//! ~75–80 % of peak (the paper's Figure 11 plateau of >9 GB/s on a
//! 12.8 GB/s DDR3-1600 channel).

use dpu_sim::Time;

/// Static description of a DDR channel, in core-clock units (800 MHz).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Data-bus bandwidth in bytes per core cycle (16 ⇒ 12.8 GB/s).
    pub bus_bytes_per_cycle: u64,
    /// Fixed command/addressing cycles charged on the bus per request.
    pub cmd_overhead: u64,
    /// Number of banks with independent row buffers.
    pub banks: usize,
    /// Row-buffer (DRAM page) size in bytes.
    pub row_bytes: u64,
    /// Extra cycles when a request misses the bank's open row
    /// (precharge + activate), overlapped across banks.
    pub row_miss_penalty: u64,
}

impl DramConfig {
    /// DDR3-1600: the fabricated DPU's channel (12.8 GB/s peak,
    /// ≈10 GB/s practical once command/refresh overheads are charged).
    pub fn ddr3_1600() -> Self {
        DramConfig {
            bus_bytes_per_cycle: 16,
            cmd_overhead: 4,
            banks: 8,
            row_bytes: 8192,
            row_miss_penalty: 28,
        }
    }

    /// DDR4-3200: the 16 nm shrink's channel (25.6 GB/s peak per channel).
    pub fn ddr4_3200() -> Self {
        DramConfig {
            bus_bytes_per_cycle: 32,
            cmd_overhead: 3,
            banks: 16,
            row_bytes: 8192,
            row_miss_penalty: 32,
        }
    }

    /// Peak bandwidth in bytes/second at the 800 MHz core clock.
    pub fn peak_bytes_per_sec(&self) -> f64 {
        self.bus_bytes_per_cycle as f64 * 800.0e6
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Time,
}

/// Timing state of one DDR channel.
///
/// # Example
///
/// ```
/// use dpu_mem::{DramChannel, DramConfig};
/// use dpu_sim::Time;
///
/// let mut ch = DramChannel::new(DramConfig::ddr3_1600());
/// let t1 = ch.request(Time::ZERO, 0, 256);
/// // Second sequential burst hits the open row: only bus time + overhead.
/// let t2 = ch.request(Time::ZERO, 256, 256);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct DramChannel {
    config: DramConfig,
    banks: Vec<Bank>,
    bus_free: Time,
    bytes_served: u64,
    requests: u64,
    row_misses: u64,
}

impl DramChannel {
    /// Creates an idle channel (all row buffers closed).
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![Bank { open_row: None, busy_until: Time::ZERO }; config.banks];
        DramChannel {
            config,
            banks,
            bus_free: Time::ZERO,
            bytes_served: 0,
            requests: 0,
            row_misses: 0,
        }
    }

    /// The channel's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let global_row = addr / self.config.row_bytes;
        let banks = self.config.banks as u64;
        // XOR-fold upper address bits into the bank index so power-of-two
        // strides (e.g. per-core 1 MB regions) don't alias onto one bank —
        // the standard bank-hashing trick in DDR controllers.
        let bank =
            ((global_row ^ (global_row / banks) ^ (global_row / (banks * banks))) % banks) as usize;
        let row = global_row / banks;
        (bank, row)
    }

    /// Submits a request of `bytes` at physical `addr` arriving at `now`;
    /// returns the completion time of the last data beat.
    ///
    /// Requests are served in arrival order (the DMAC issues them that
    /// way); a row miss delays only the issuing bank, so other banks'
    /// transfers continue to use the bus.
    pub fn request(&mut self, now: Time, addr: u64, bytes: u64) -> Time {
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];

        let mut ready = now.max(bank.busy_until);
        if bank.open_row != Some(row) {
            ready += Time::from_cycles(self.config.row_miss_penalty);
            bank.open_row = Some(row);
            self.row_misses += 1;
        }

        // The bus transfer starts once both the bank and bus are free.
        let start = ready.max(self.bus_free);
        let transfer = self.config.cmd_overhead + bytes.div_ceil(self.config.bus_bytes_per_cycle);
        let done = start + Time::from_cycles(transfer);
        self.bus_free = done;
        bank.busy_until = done;
        self.bytes_served += bytes;
        self.requests += 1;
        done
    }

    /// Total bytes transferred.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Number of requests that missed an open row.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// When the data bus next becomes free.
    pub fn bus_free(&self) -> Time {
        self.bus_free
    }

    /// Achieved bandwidth in GB/s over `[0, horizon]` at 800 MHz.
    pub fn gbytes_per_sec(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.bytes_served as f64 / (horizon.cycles() as f64 / 800.0e6) / 1e9
    }

    /// Resets timing state and statistics (contents are in [`PhysMem`],
    /// not here).
    ///
    /// [`PhysMem`]: crate::PhysMem
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.open_row = None;
            b.busy_until = Time::ZERO;
        }
        self.bus_free = Time::ZERO;
        self.bytes_served = 0;
        self.requests = 0;
        self.row_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_amortizes_row_misses() {
        let cfg = DramConfig::ddr3_1600();
        let mut ch = DramChannel::new(cfg.clone());
        // Stream 64 KB in 256 B bursts sequentially.
        let mut done = Time::ZERO;
        for i in 0..256u64 {
            done = ch.request(Time::ZERO, i * 256, 256);
        }
        // Row misses only every row_bytes/256 = 32 bursts: 8 rows touched.
        assert_eq!(ch.row_misses(), 8);
        let gbps = ch.gbytes_per_sec(done);
        assert!(
            gbps > 9.5,
            "sequential stream should be near the 10 GB/s practical rate, got {gbps:.2} GB/s"
        );
        assert!(gbps <= 12.8 + 0.1);
    }

    #[test]
    fn row_hit_cheaper_than_row_miss() {
        let mut ch = DramChannel::new(DramConfig::ddr3_1600());
        let t1 = ch.request(Time::ZERO, 0, 256); // cold miss
        let t2 = ch.request(t1, 256, 256); // hit
        let t3 = ch.request(t2, 1 << 20, 256); // different row: miss
        let hit_cost = (t2 - t1).cycles();
        let miss_cost = (t3 - t2).cycles();
        assert_eq!(miss_cost - hit_cost, ch.config().row_miss_penalty);
    }

    #[test]
    fn interleaved_streams_still_reach_high_utilization() {
        // 32 streams (one per dpCore) interleaving 256 B bursts: bank-level
        // parallelism must keep the bus busy — this is the Fig. 11 regime.
        let mut ch = DramChannel::new(DramConfig::ddr3_1600());
        let streams = 32u64;
        let bursts = 64u64;
        let mut done = Time::ZERO;
        for b in 0..bursts {
            for s in 0..streams {
                // Each stream reads its own 1 MB region.
                let addr = s * (1 << 20) + b * 256;
                done = ch.request(Time::ZERO, addr, 256);
            }
        }
        let gbps = ch.gbytes_per_sec(done);
        assert!(
            gbps > 9.0,
            "interleaved streams should exceed 9 GB/s (75% of peak), got {gbps:.2}"
        );
    }

    #[test]
    fn small_requests_pay_proportionally_more_overhead() {
        let mut a = DramChannel::new(DramConfig::ddr3_1600());
        let mut b = DramChannel::new(DramConfig::ddr3_1600());
        let mut done_a = Time::ZERO;
        let mut done_b = Time::ZERO;
        for i in 0..1024u64 {
            done_a = a.request(Time::ZERO, i * 64, 64); // 64 KB in 64 B bursts
        }
        for i in 0..256u64 {
            done_b = b.request(Time::ZERO, i * 256, 256); // 64 KB in 256 B bursts
        }
        assert!(a.gbytes_per_sec(done_a) < b.gbytes_per_sec(done_b), "small bursts must be slower");
    }

    #[test]
    fn ddr4_is_faster_than_ddr3() {
        let mut d3 = DramChannel::new(DramConfig::ddr3_1600());
        let mut d4 = DramChannel::new(DramConfig::ddr4_3200());
        let mut t3 = Time::ZERO;
        let mut t4 = Time::ZERO;
        for i in 0..512u64 {
            t3 = d3.request(Time::ZERO, i * 256, 256);
            t4 = d4.request(Time::ZERO, i * 256, 256);
        }
        assert!(t4 < t3);
        assert!(
            DramConfig::ddr4_3200().peak_bytes_per_sec()
                > DramConfig::ddr3_1600().peak_bytes_per_sec()
        );
    }

    #[test]
    fn reset_clears_stats() {
        let mut ch = DramChannel::new(DramConfig::default());
        ch.request(Time::ZERO, 0, 256);
        ch.reset();
        assert_eq!(ch.bytes_served(), 0);
        assert_eq!(ch.requests(), 0);
        assert_eq!(ch.row_misses(), 0);
        assert_eq!(ch.bus_free(), Time::ZERO);
        assert_eq!(ch.gbytes_per_sec(Time::ZERO), 0.0);
    }
}
