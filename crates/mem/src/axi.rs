//! AXI burst rules.
//!
//! "On the DRAM interface, the AXI bus provides 128-bit read and write
//! data paths, and a maximum of 256 B can be requested per transfer
//! request. Hence larger DMS transfers are broken by the DMAC into
//! multiple AXI transactions." (§3.1)

/// AXI data-path width in bytes (128 bits).
pub const AXI_BEAT_BYTES: u64 = 16;
/// Maximum bytes per AXI transaction.
pub const AXI_MAX_BURST: u64 = 256;

/// One AXI transaction produced by splitting a larger transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Starting physical address.
    pub addr: u64,
    /// Bytes in this transaction (≤ [`AXI_MAX_BURST`]).
    pub bytes: u64,
}

impl Burst {
    /// Number of 128-bit data beats the transaction occupies.
    pub fn beats(&self) -> u64 {
        self.bytes.div_ceil(AXI_BEAT_BYTES)
    }
}

/// Splits a transfer into AXI transactions, aligning bursts so no
/// transaction crosses a 256-byte boundary (the DMAC's splitting rule).
///
/// # Example
///
/// ```
/// use dpu_mem::axi::{split_bursts, AXI_MAX_BURST};
/// let bursts = split_bursts(0, 1024);
/// assert_eq!(bursts.len(), 4);
/// assert!(bursts.iter().all(|b| b.bytes <= AXI_MAX_BURST));
/// ```
pub fn split_bursts(addr: u64, bytes: u64) -> Vec<Burst> {
    let mut out = Vec::new();
    let mut cur = addr;
    let end = addr + bytes;
    while cur < end {
        let boundary = (cur / AXI_MAX_BURST + 1) * AXI_MAX_BURST;
        let stop = boundary.min(end);
        out.push(Burst { addr: cur, bytes: stop - cur });
        cur = stop;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_transfer_splits_evenly() {
        let b = split_bursts(0, 1024);
        assert_eq!(b.len(), 4);
        for (i, burst) in b.iter().enumerate() {
            assert_eq!(burst.addr, i as u64 * 256);
            assert_eq!(burst.bytes, 256);
            assert_eq!(burst.beats(), 16);
        }
    }

    #[test]
    fn unaligned_start_clips_first_burst() {
        let b = split_bursts(100, 400);
        assert_eq!(b[0], Burst { addr: 100, bytes: 156 });
        assert_eq!(b[1], Burst { addr: 256, bytes: 244 });
        assert_eq!(b.iter().map(|x| x.bytes).sum::<u64>(), 400);
        // No burst crosses a 256 B boundary.
        for burst in &b {
            assert_eq!(burst.addr / 256, (burst.addr + burst.bytes - 1) / 256);
        }
    }

    #[test]
    fn small_transfer_is_one_burst() {
        let b = split_bursts(512, 16);
        assert_eq!(b, vec![Burst { addr: 512, bytes: 16 }]);
        assert_eq!(b[0].beats(), 1);
    }

    #[test]
    fn zero_bytes_is_empty() {
        assert!(split_bursts(0, 0).is_empty());
    }

    #[test]
    fn partial_beat_rounds_up() {
        assert_eq!(Burst { addr: 0, bytes: 17 }.beats(), 2);
        assert_eq!(Burst { addr: 0, bytes: 1 }.beats(), 1);
    }
}
