//! Memory-subsystem models for the DPU reproduction.
//!
//! The DPU attaches one DDR3-1600 channel per SoC (10 GB/s practical out
//! of a 12.8 GB/s peak — §2) and feeds the 32 dpCores through the DMS into
//! per-core 32 KB DMEM scratchpads. Each dpCore also has small
//! software-coherent caches (16 KB L1-D, 8 KB L1-I, 256 KB shared L2 per
//! macro) with explicit flush/invalidate instructions instead of hardware
//! coherence (§2.3).
//!
//! This crate provides:
//!
//! * [`PhysMem`] — the byte-addressed physical DRAM contents (data really
//!   lives here; the DMS moves real bytes),
//! * [`DramChannel`] — the DDR timing model (bus occupancy, per-bank row
//!   buffers, burst overheads),
//! * [`Dmem`] — a checked scratchpad wrapper,
//! * [`Cache`] — a set-associative model with software-managed coherence
//!   operations, used for the dpCores' cached path and by baselines,
//! * [`axi`] — the 128-bit/256-byte AXI burst splitting rules the DMAC
//!   uses for DDR transfers (§3.1).

pub mod axi;
pub mod cache;
pub mod dmem;
pub mod dram;
pub mod phys;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use dmem::Dmem;
pub use dram::{DramChannel, DramConfig};
pub use phys::PhysMem;
