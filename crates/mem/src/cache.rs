//! Set-associative cache model with software-managed coherence.
//!
//! The dpCore complex has core-private 16 KB L1-D and 8 KB L1-I caches and
//! a 256 KB L2 shared per 8-core macro. There is **no hardware coherence**:
//! the ISA exposes `cflush`/`cinval` and software keeps shared structures
//! consistent (§2.3, §4). This model tracks tags, LRU state and dirtiness,
//! and exposes exactly those explicit operations.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes.
    pub line_size: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The dpCore's private 16 KB L1 data cache.
    pub fn dpcore_l1d() -> Self {
        CacheConfig { capacity: 16 * 1024, line_size: 64, ways: 4, hit_latency: 2 }
    }

    /// The dpCore's private 8 KB L1 instruction cache.
    pub fn dpcore_l1i() -> Self {
        CacheConfig { capacity: 8 * 1024, line_size: 64, ways: 2, hit_latency: 1 }
    }

    /// The 256 KB L2 shared by the 8 dpCores of a macro.
    pub fn macro_l2() -> Self {
        CacheConfig { capacity: 256 * 1024, line_size: 64, ways: 8, hit_latency: 12 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.line_size * self.ways)
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the line was present.
    pub hit: bool,
    /// Address of a dirty line that was evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotonic timestamp for LRU.
    used: u64,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// The model tracks presence and dirtiness only — data lives in
/// [`PhysMem`](crate::PhysMem), keeping the functional and timing layers
/// separate as the software-coherence discipline demands.
///
/// # Example
///
/// ```
/// use dpu_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::dpcore_l1d());
/// assert!(!c.access(0x1000, false).hit);  // cold miss
/// assert!(c.access(0x1000, false).hit);   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `line_size * ways`).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.capacity.is_multiple_of(config.line_size * config.ways),
            "cache capacity must be a multiple of line_size * ways"
        );
        let sets = vec![Vec::with_capacity(config.ways); config.sets()];
        Cache { config, sets, clock: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_size as u64;
        ((line % self.sets.len() as u64) as usize, line / self.sets.len() as u64)
    }

    /// Accesses `addr`; `is_write` marks the line dirty. Allocates on miss
    /// (write-allocate), evicting the LRU way.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Access {
        self.clock += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let ways = self.config.ways;
        let n_sets = self.sets.len() as u64;
        let line_size = self.config.line_size as u64;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.used = self.clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return Access { hit: true, writeback: None };
        }

        self.stats.misses += 1;
        let mut writeback = None;
        if set.len() == ways {
            let (lru_idx, _) =
                set.iter().enumerate().min_by_key(|(_, l)| l.used).expect("non-empty set");
            let victim = set.swap_remove(lru_idx);
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some((victim.tag * n_sets + set_idx as u64) * line_size);
            }
        }
        set.push(Line { tag, dirty: is_write, used: self.clock });
        Access { hit: false, writeback }
    }

    /// True if the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// `cflush`: writes back (if dirty) and retains the line; returns true
    /// if a writeback to memory occurred.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            let was_dirty = line.dirty;
            line.dirty = false;
            if was_dirty {
                self.stats.writebacks += 1;
            }
            was_dirty
        } else {
            false
        }
    }

    /// `cinval`: drops the line without writing it back (the caller must
    /// have flushed first if the data mattered — exactly the discipline
    /// the DPU's software-coherence tooling enforces).
    pub fn invalidate_line(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].retain(|l| l.tag != tag);
    }

    /// Flushes every dirty line; returns how many writebacks occurred.
    pub fn flush_all(&mut self) -> u64 {
        let mut n = 0;
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.dirty {
                    line.dirty = false;
                    n += 1;
                }
            }
        }
        self.stats.writebacks += n;
        n
    }

    /// Invalidates everything (no writebacks).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig { capacity: 512, line_size: 64, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::dpcore_l1d();
        assert_eq!(c.sets(), 16 * 1024 / (64 * 4));
        assert_eq!(CacheConfig::macro_l2().capacity, 256 * 1024);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets*line = 256).
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // touch 0: 256 becomes LRU
        c.access(512, false); // evicts 256
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true);
        c.access(256, false);
        let a = c.access(512, false); // evicts LRU line 0 (dirty)
        assert_eq!(a.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_and_invalidate_discipline() {
        let mut c = small();
        c.access(128, true);
        assert!(c.flush_line(128), "dirty line flushes");
        assert!(!c.flush_line(128), "second flush is a no-op");
        assert!(c.contains(128), "flush retains the line");
        c.invalidate_line(128);
        assert!(!c.contains(128));
        assert!(!c.flush_line(999_999), "absent line flush is a no-op");
    }

    #[test]
    fn flush_all_counts_dirty_lines() {
        let mut c = small();
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        assert_eq!(c.flush_all(), 2);
        c.invalidate_all();
        assert!(!c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn hit_rate() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig { capacity: 1000, line_size: 64, ways: 3, hit_latency: 1 });
    }

    #[test]
    fn streaming_through_small_cache_thrashes() {
        // The analytics insight (§1): scans larger than the cache get ~0%
        // reuse — the motivation for DMEM + DMS instead of big caches.
        let mut c = small();
        for round in 0..2 {
            for addr in (0..(8 * 1024u64)).step_by(64) {
                c.access(addr, false);
            }
            let _ = round;
        }
        // Second pass misses too: working set ≫ capacity.
        assert!(c.stats().hit_rate() < 0.01);
    }
}
