//! Binary event timelines.
//!
//! "The DMS associates with each dpCore a list of 32 binary events" (§3.1).
//! Because descriptor completion times are computed in virtual time, an
//! event is modelled as a *timeline* of (time, state) transitions: a
//! waiter can ask for the earliest instant at or after its ready time when
//! the event holds a desired state, even if that instant is in the
//! engine's future.

use dpu_sim::Time;

/// Number of events per dpCore.
pub const EVENTS_PER_CORE: usize = 32;

/// The transition history of one binary event.
///
/// # Example
///
/// ```
/// use dpu_dms::EventTimeline;
/// use dpu_sim::Time;
///
/// let mut ev = EventTimeline::new();
/// ev.transition(Time::from_cycles(100), true);
/// // A waiter ready at t=50 sees the event set at t=100.
/// assert_eq!(ev.first_time_in_state(Time::from_cycles(50), true),
///            Some(Time::from_cycles(100)));
/// // Waiting for "clear" at t=50 succeeds immediately (initial state).
/// assert_eq!(ev.first_time_in_state(Time::from_cycles(50), false),
///            Some(Time::from_cycles(50)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventTimeline {
    /// Ordered (time, new_state) transitions; initial state is clear.
    transitions: Vec<(Time, bool)>,
}

impl EventTimeline {
    /// A clear event with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition at `at`.
    ///
    /// Transitions are expected in non-decreasing time order; if the
    /// engine computes a completion slightly out of booking order, the
    /// transition is clamped to the latest recorded time rather than
    /// rewriting history (a conservative approximation).
    pub fn transition(&mut self, at: Time, set: bool) {
        let mut at = at;
        if let Some(&(last, state)) = self.transitions.last() {
            if at < last {
                at = last;
            }
            if state == set {
                return; // no-op transition
            }
        } else if !set {
            return; // already clear initially
        }
        self.transitions.push((at, set));
    }

    /// The state at time `at`.
    pub fn state_at(&self, at: Time) -> bool {
        self.transitions.iter().rev().find(|&&(t, _)| t <= at).map(|&(_, s)| s).unwrap_or(false)
    }

    /// The latest known state (at the end of recorded history).
    pub fn final_state(&self) -> bool {
        self.transitions.last().map(|&(_, s)| s).unwrap_or(false)
    }

    /// Earliest time `≥ ready` at which the event is in state `want`, or
    /// `None` if it never reaches that state within recorded history.
    pub fn first_time_in_state(&self, ready: Time, want: bool) -> Option<Time> {
        if self.state_at(ready) == want {
            return Some(ready);
        }
        self.transitions.iter().find(|&&(t, s)| t >= ready && s == want).map(|&(t, _)| t.max(ready))
    }
}

/// All 32 event timelines of one core.
#[derive(Debug, Clone)]
pub struct CoreEvents {
    events: Vec<EventTimeline>,
}

impl CoreEvents {
    /// 32 clear events.
    pub fn new() -> Self {
        CoreEvents { events: (0..EVENTS_PER_CORE).map(|_| EventTimeline::new()).collect() }
    }

    /// Borrow one event's timeline.
    ///
    /// # Panics
    ///
    /// Panics if `event >= 32`.
    pub fn event(&self, event: u8) -> &EventTimeline {
        &self.events[event as usize]
    }

    /// Mutably borrow one event's timeline.
    ///
    /// # Panics
    ///
    /// Panics if `event >= 32`.
    pub fn event_mut(&mut self, event: u8) -> &mut EventTimeline {
        &mut self.events[event as usize]
    }
}

impl Default for CoreEvents {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn initial_state_is_clear() {
        let ev = EventTimeline::new();
        assert!(!ev.state_at(t(0)));
        assert!(!ev.final_state());
        assert_eq!(ev.first_time_in_state(t(0), false), Some(t(0)));
        assert_eq!(ev.first_time_in_state(t(0), true), None);
    }

    #[test]
    fn set_then_clear_history() {
        let mut ev = EventTimeline::new();
        ev.transition(t(10), true);
        ev.transition(t(20), false);
        ev.transition(t(30), true);
        assert!(!ev.state_at(t(9)));
        assert!(ev.state_at(t(10)));
        assert!(!ev.state_at(t(25)));
        assert!(ev.state_at(t(30)));
        assert!(ev.final_state());
    }

    #[test]
    fn waiter_in_the_past_sees_future_transition() {
        let mut ev = EventTimeline::new();
        ev.transition(t(100), true);
        assert_eq!(ev.first_time_in_state(t(50), true), Some(t(100)));
        // Waiter arriving after the set sees it immediately.
        assert_eq!(ev.first_time_in_state(t(150), true), Some(t(150)));
    }

    #[test]
    fn waiter_for_clear_after_set() {
        let mut ev = EventTimeline::new();
        ev.transition(t(10), true);
        assert_eq!(ev.first_time_in_state(t(15), false), None);
        ev.transition(t(40), false);
        assert_eq!(ev.first_time_in_state(t(15), false), Some(t(40)));
    }

    #[test]
    fn redundant_transitions_collapse() {
        let mut ev = EventTimeline::new();
        ev.transition(t(5), false); // no-op: already clear
        ev.transition(t(10), true);
        ev.transition(t(12), true); // no-op
        ev.transition(t(20), false);
        assert_eq!(ev.first_time_in_state(t(0), true), Some(t(10)));
        assert_eq!(ev.first_time_in_state(t(11), false), Some(t(20)));
    }

    #[test]
    fn out_of_order_transition_clamps() {
        let mut ev = EventTimeline::new();
        ev.transition(t(10), true);
        ev.transition(t(5), false); // clamped to t=10
        assert!(!ev.final_state());
        assert_eq!(ev.first_time_in_state(t(0), false), Some(t(0)));
        assert!(ev.state_at(t(9)) || !ev.state_at(t(9)));
        assert_eq!(ev.first_time_in_state(t(10), false), Some(t(10)));
    }

    #[test]
    fn core_events_indexing() {
        let mut ce = CoreEvents::new();
        ce.event_mut(31).transition(t(7), true);
        assert!(ce.event(31).final_state());
        assert!(!ce.event(0).final_state());
    }

    #[test]
    #[should_panic]
    fn event_index_out_of_range_panics() {
        CoreEvents::new().event(32);
    }
}
