//! DMS descriptors: the 16-byte macro-instructions of the DMS.
//!
//! Two classes exist (§3.3): **data** descriptors encode a movement
//! (direction, addresses, rows, column width, scatter/gather/stride flags,
//! wait/notify events), and **control** descriptors program loops, events
//! and the hash/range engines. [`DataDescriptor`] round-trips through the
//! exact bit layout of Table 2; [`DescKind::supports`] encodes the
//! operation-support matrix of Table 1.

use std::fmt;

/// Direction/type of a data descriptor (rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DescKind {
    /// DDR → DMEM direct read.
    DdrToDmem,
    /// DMEM → DDR direct write.
    DmemToDdr,
    /// Move between DMS internal memories.
    DmsToDms,
    /// Partition-pipeline store: DMS internal memory → a core's DMEM.
    DmsToDmem,
    /// Transfer RID/bit-vector data from DMEM into DMS BV memory.
    DmemToDms,
    /// Load a key/data column from DDR into DMS column memory.
    DdrToDms,
    /// Store hash/CID memory to DDR.
    DmsToDdr,
}

/// Operations a descriptor type may request (columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmsOp {
    /// Scatter to non-contiguous destinations using a mask/RID list.
    Scatter,
    /// Gather from non-contiguous sources using a mask/RID list.
    Gather,
    /// Strided access over fixed-width tuples.
    Stride,
    /// Drive the partition pipeline.
    Partition,
    /// Marks the key column for the hash/range engines.
    Key,
    /// Marks the final column of a multi-column operation.
    LastCol,
}

impl DescKind {
    /// The operation-support matrix of Table 1.
    ///
    /// Table 1 marks single `X` cells for `DMEM→DMS` and `DMS→DDR` without
    /// naming the column in the extracted text; following the stated
    /// purposes ("transfer RID/BV data for scatter/gather", "store
    /// hash/CID memory to DDR") we map them to [`DmsOp::Gather`] and
    /// [`DmsOp::Stride`] respectively.
    pub fn supports(self, op: DmsOp) -> bool {
        use DescKind::*;
        use DmsOp::*;
        match self {
            DdrToDmem | DmemToDdr => matches!(op, Scatter | Gather | Stride),
            DmsToDms => false,
            DmsToDmem => matches!(op, Partition | LastCol),
            DmemToDms => matches!(op, Gather),
            DdrToDms => matches!(op, Key | LastCol),
            DmsToDdr => matches!(op, Stride),
        }
    }

    /// All descriptor kinds, in Table 1 order.
    pub fn all() -> [DescKind; 7] {
        use DescKind::*;
        [DdrToDmem, DmemToDdr, DmsToDms, DmsToDmem, DmemToDms, DdrToDms, DmsToDdr]
    }

    fn type_code(self) -> u32 {
        use DescKind::*;
        match self {
            DdrToDmem => 0,
            DmemToDdr => 1,
            DdrToDms => 2,
            DmsToDmem => 3,
            DmemToDms => 4,
            DmsToDdr => 5,
            DmsToDms => 6,
        }
    }

    fn from_type_code(code: u32) -> Option<DescKind> {
        use DescKind::*;
        Some(match code {
            0 => DdrToDmem,
            1 => DmemToDdr,
            2 => DdrToDms,
            3 => DmsToDmem,
            4 => DmemToDms,
            5 => DmsToDdr,
            6 => DmsToDms,
            _ => return None,
        })
    }
}

impl fmt::Display for DescKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DescKind::DdrToDmem => "DDR→DMEM",
            DescKind::DmemToDdr => "DMEM→DDR",
            DescKind::DmsToDms => "DMS→DMS",
            DescKind::DmsToDmem => "DMS→DMEM",
            DescKind::DmemToDms => "DMEM→DMS",
            DescKind::DdrToDms => "DDR→DMS",
            DescKind::DmsToDdr => "DMS→DDR",
        };
        f.write_str(s)
    }
}

/// A wait precondition on a binary event: proceed once `event`'s state
/// equals `set`.
///
/// Flow control in the double-buffer idiom waits for the *clear* state
/// (the core clears the event after consuming the buffer), while chained
/// compute waits for the *set* state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventCond {
    /// Event id, `0..32`.
    pub event: u8,
    /// Desired state.
    pub set: bool,
}

impl EventCond {
    /// Wait until the event is set.
    pub fn is_set(event: u8) -> Self {
        EventCond { event, set: true }
    }

    /// Wait until the event is clear (buffer-free flow control).
    pub fn is_clear(event: u8) -> Self {
        EventCond { event, set: false }
    }
}

/// A data-movement descriptor (Table 2 layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataDescriptor {
    /// Direction of the movement.
    pub kind: DescKind,
    /// 36-bit DDR byte address (ignored for internal-only moves).
    pub ddr_addr: u64,
    /// DMEM byte address on the issuing (or target) core.
    pub dmem_addr: u16,
    /// Number of fixed-width rows to move.
    pub rows: u16,
    /// Element width in bytes: 1, 2, 4 or 8.
    pub col_width: u8,
    /// Gather from DDR using the staged bit-vector.
    pub gather_src: bool,
    /// Scatter to DDR using the staged bit-vector.
    pub scatter_dst: bool,
    /// Run-length-encode the bit-vector transfer (modelled as a flag only).
    pub rle: bool,
    /// Take the source address from the channel's auto-increment register.
    pub src_addr_inc: bool,
    /// Take the destination address from the channel's auto-increment
    /// register.
    pub dst_addr_inc: bool,
    /// Stride in bytes between consecutive elements on the DDR side
    /// (`0` = contiguous). Carried in the link-address field of Word0 for
    /// strided descriptors, which are never hardware-linked.
    pub ddr_stride: u16,
    /// Wait precondition.
    pub wait: Option<EventCond>,
    /// Event set on completion.
    pub notify: Option<u8>,
    /// Column-memory bank for DDR→DMS loads (0..3).
    pub cmem_bank: u8,
    /// Marks the key column for the partition engines.
    pub is_key: bool,
    /// Marks the last column of a multi-column group.
    pub last_col: bool,
}

impl DataDescriptor {
    /// Convenience: a contiguous DDR→DMEM read of `rows` × `col_width`.
    pub fn read(ddr_addr: u64, dmem_addr: u16, rows: u16, col_width: u8) -> Self {
        DataDescriptor {
            kind: DescKind::DdrToDmem,
            ddr_addr,
            dmem_addr,
            rows,
            col_width,
            gather_src: false,
            scatter_dst: false,
            rle: false,
            src_addr_inc: false,
            dst_addr_inc: false,
            ddr_stride: 0,
            wait: None,
            notify: None,
            cmem_bank: 0,
            is_key: false,
            last_col: false,
        }
    }

    /// Convenience: a contiguous DMEM→DDR write.
    pub fn write(ddr_addr: u64, dmem_addr: u16, rows: u16, col_width: u8) -> Self {
        DataDescriptor {
            kind: DescKind::DmemToDdr,
            ..Self::read(ddr_addr, dmem_addr, rows, col_width)
        }
    }

    /// Builder-style: sets the wait precondition.
    pub fn with_wait(mut self, cond: EventCond) -> Self {
        self.wait = Some(cond);
        self
    }

    /// Builder-style: sets the completion-notify event.
    pub fn with_notify(mut self, event: u8) -> Self {
        self.notify = Some(event);
        self
    }

    /// Builder-style: enables source auto-increment.
    pub fn with_src_inc(mut self) -> Self {
        self.src_addr_inc = true;
        self
    }

    /// Total bytes moved by this descriptor (dense case).
    pub fn bytes(&self) -> u64 {
        self.rows as u64 * self.col_width as u64
    }

    /// Encodes into the four 32-bit words of Table 2.
    ///
    /// | word | fields |
    /// |---|---|
    /// | 0 | `Type[31:28]`, `NotifyEn[27]`, `WaitEn[26]`, `Notify[25:21]`, `Wait[20:16]`, `LinkAddr[15:0]` (stride for strided descriptors) |
    /// | 1 | `WaitSet[31]`, `ColWidth[30:28]` (log2), `GatherSrc[25]`, `ScatterDst[24]`, `RLE[23]`, `Key[22]`, `LastCol[21]`, `Bank[19:18]`, `SrcAddrInc[17]`, `DstAddrInc[16]`, `DDRAddr[3:0]` |
    /// | 2 | `Rows[31:16]`, `DMEMAddr[15:0]` |
    /// | 3 | `DDRAddr[35:4]` |
    ///
    /// # Panics
    ///
    /// Panics if `col_width` is not 1, 2, 4 or 8, if `ddr_addr` exceeds
    /// 36 bits, or if an event id is ≥ 32.
    pub fn encode(&self) -> [u32; 4] {
        assert!(matches!(self.col_width, 1 | 2 | 4 | 8), "invalid column width {}", self.col_width);
        assert!(self.ddr_addr < (1 << 36), "DDR address exceeds 36 bits");
        let mut w0 = self.kind.type_code() << 28;
        if let Some(ev) = self.notify {
            assert!(ev < 32, "notify event out of range");
            w0 |= (1 << 27) | ((ev as u32) << 21);
        }
        if let Some(c) = self.wait {
            assert!(c.event < 32, "wait event out of range");
            w0 |= (1 << 26) | ((c.event as u32) << 16);
        }
        w0 |= self.ddr_stride as u32;

        let mut w1 = (self.col_width.trailing_zeros()) << 28;
        if let Some(c) = self.wait {
            if c.set {
                w1 |= 1 << 31;
            }
        }
        w1 |= (self.gather_src as u32) << 25;
        w1 |= (self.scatter_dst as u32) << 24;
        w1 |= (self.rle as u32) << 23;
        w1 |= (self.is_key as u32) << 22;
        w1 |= (self.last_col as u32) << 21;
        w1 |= ((self.cmem_bank as u32) & 0x3) << 18;
        w1 |= (self.src_addr_inc as u32) << 17;
        w1 |= (self.dst_addr_inc as u32) << 16;
        w1 |= (self.ddr_addr & 0xF) as u32;

        let w2 = ((self.rows as u32) << 16) | self.dmem_addr as u32;
        let w3 = (self.ddr_addr >> 4) as u32;
        [w0, w1, w2, w3]
    }

    /// Decodes the Table 2 layout; `None` if the type code is not a data
    /// descriptor.
    pub fn decode(words: [u32; 4]) -> Option<DataDescriptor> {
        let kind = DescKind::from_type_code(words[0] >> 28)?;
        let notify = (words[0] & (1 << 27) != 0).then(|| ((words[0] >> 21) & 0x1F) as u8);
        let wait = (words[0] & (1 << 26) != 0).then(|| EventCond {
            event: ((words[0] >> 16) & 0x1F) as u8,
            set: words[1] & (1 << 31) != 0,
        });
        Some(DataDescriptor {
            kind,
            ddr_addr: ((words[3] as u64) << 4) | (words[1] & 0xF) as u64,
            dmem_addr: (words[2] & 0xFFFF) as u16,
            rows: (words[2] >> 16) as u16,
            col_width: 1 << ((words[1] >> 28) & 0x7),
            gather_src: words[1] & (1 << 25) != 0,
            scatter_dst: words[1] & (1 << 24) != 0,
            rle: words[1] & (1 << 23) != 0,
            is_key: words[1] & (1 << 22) != 0,
            last_col: words[1] & (1 << 21) != 0,
            cmem_bank: ((words[1] >> 18) & 0x3) as u8,
            src_addr_inc: words[1] & (1 << 17) != 0,
            dst_addr_inc: words[1] & (1 << 16) != 0,
            ddr_stride: (words[0] & 0xFFFF) as u16,
            wait,
            notify,
        })
    }
}

/// Control descriptors: loops, event manipulation, engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlDescriptor {
    /// Jump back `back` descriptors in the chain, `iterations` more times.
    Loop {
        /// How many descriptors to jump back over (≥ 1).
        back: u8,
        /// Additional passes beyond the first.
        iterations: u16,
    },
    /// Set an event on the issuing core.
    SetEvent {
        /// Event id `0..32`.
        event: u8,
    },
    /// Clear an event on the issuing core.
    ClearEvent {
        /// Event id `0..32`.
        event: u8,
    },
    /// Block the channel until the condition holds.
    WaitEvent {
        /// The condition to wait for.
        cond: EventCond,
    },
}

/// Any descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Descriptor {
    /// A data-movement descriptor.
    Data(DataDescriptor),
    /// A control descriptor.
    Control(ControlDescriptor),
}

impl Descriptor {
    /// Encodes any descriptor into 16 bytes (data descriptors use the
    /// Table 2 layout; control descriptors use type codes 8–11).
    pub fn encode_bytes(&self) -> [u8; 16] {
        let words = match self {
            Descriptor::Data(d) => d.encode(),
            Descriptor::Control(c) => {
                let (code, a, b) = match *c {
                    ControlDescriptor::Loop { back, iterations } => {
                        (8u32, back as u32, iterations as u32)
                    }
                    ControlDescriptor::SetEvent { event } => (9, event as u32, 0),
                    ControlDescriptor::ClearEvent { event } => (10, event as u32, 0),
                    ControlDescriptor::WaitEvent { cond } => {
                        (11, cond.event as u32, cond.set as u32)
                    }
                };
                [(code << 28) | a, b, 0, 0]
            }
        };
        let mut out = [0u8; 16];
        for (i, w) in words.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes 16 bytes back into a descriptor.
    pub fn decode_bytes(bytes: &[u8; 16]) -> Option<Descriptor> {
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ]);
        }
        match words[0] >> 28 {
            8 => Some(Descriptor::Control(ControlDescriptor::Loop {
                back: (words[0] & 0xFF) as u8,
                iterations: (words[1] & 0xFFFF) as u16,
            })),
            9 => Some(Descriptor::Control(ControlDescriptor::SetEvent {
                event: (words[0] & 0x1F) as u8,
            })),
            10 => Some(Descriptor::Control(ControlDescriptor::ClearEvent {
                event: (words[0] & 0x1F) as u8,
            })),
            11 => Some(Descriptor::Control(ControlDescriptor::WaitEvent {
                cond: EventCond { event: (words[0] & 0x1F) as u8, set: words[1] & 1 != 0 },
            })),
            _ => DataDescriptor::decode(words).map(Descriptor::Data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_support_matrix() {
        use DescKind::*;
        use DmsOp::*;
        // DDR↔DMEM: scatter, gather, stride.
        for kind in [DdrToDmem, DmemToDdr] {
            assert!(kind.supports(Scatter));
            assert!(kind.supports(Gather));
            assert!(kind.supports(Stride));
            assert!(!kind.supports(Partition));
            assert!(!kind.supports(Key));
        }
        // DMS→DMS: plain internal moves only.
        for op in [Scatter, Gather, Stride, Partition, Key, LastCol] {
            assert!(!DmsToDms.supports(op));
        }
        // DMS→DMEM: partition store.
        assert!(DmsToDmem.supports(Partition));
        assert!(DmsToDmem.supports(LastCol));
        assert!(!DmsToDmem.supports(Gather));
        // DMEM→DMS: RID/BV transfer for scatter/gather.
        assert!(DmemToDms.supports(Gather));
        assert!(!DmemToDms.supports(Partition));
        // DDR→DMS: key/data load for partitioning.
        assert!(DdrToDms.supports(Key));
        assert!(DdrToDms.supports(LastCol));
        assert!(!DdrToDms.supports(Scatter));
        // DMS→DDR: store hash/CID memory out.
        assert!(DmsToDdr.supports(Stride));
        assert!(!DmsToDdr.supports(Partition));
    }

    #[test]
    fn table2_field_placement() {
        let d = DataDescriptor {
            kind: DescKind::DdrToDmem,
            ddr_addr: 0xA_BCDE_F012,
            dmem_addr: 0x1234,
            rows: 256,
            col_width: 4,
            gather_src: true,
            scatter_dst: false,
            rle: true,
            src_addr_inc: true,
            dst_addr_inc: false,
            ddr_stride: 0,
            wait: Some(EventCond::is_clear(5)),
            notify: Some(17),
            cmem_bank: 0,
            is_key: false,
            last_col: false,
        };
        let w = d.encode();
        assert_eq!(w[0] >> 28, 0, "type code in [31:28]");
        assert_eq!((w[0] >> 21) & 0x1F, 17, "notify in [25:21]");
        assert_eq!((w[0] >> 16) & 0x1F, 5, "wait in [20:16]");
        assert_eq!((w[1] >> 28) & 0x7, 2, "log2(4B) col width in [30:28]");
        assert_eq!((w[1] >> 25) & 1, 1, "gather_src at 25");
        assert_eq!((w[1] >> 24) & 1, 0, "scatter_dst at 24");
        assert_eq!((w[1] >> 23) & 1, 1, "rle at 23");
        assert_eq!((w[1] >> 17) & 1, 1, "src inc at 17");
        assert_eq!((w[1] >> 16) & 1, 0, "dst inc at 16");
        assert_eq!(w[1] & 0xF, 0x2, "DDR addr low nibble in word1[3:0]");
        assert_eq!(w[2] >> 16, 256, "rows in word2[31:16]");
        assert_eq!(w[2] & 0xFFFF, 0x1234, "DMEM addr in word2[15:0]");
        assert_eq!(w[3], (0xA_BCDE_F012u64 >> 4) as u32, "DDR addr high in word3");
    }

    #[test]
    fn data_descriptor_roundtrip() {
        let cases = vec![
            DataDescriptor::read(0, 0, 1, 1),
            DataDescriptor::write(0xF_FFFF_FFFF, 0xFFFF, 0xFFFF, 8),
            DataDescriptor {
                kind: DescKind::DdrToDms,
                cmem_bank: 2,
                is_key: true,
                last_col: true,
                ..DataDescriptor::read(4096, 0, 512, 4)
            }
            .with_wait(EventCond::is_set(31))
            .with_notify(0),
            DataDescriptor { ddr_stride: 64, ..DataDescriptor::read(128, 64, 100, 2) }
                .with_src_inc(),
        ];
        for d in cases {
            let back = DataDescriptor::decode(d.encode()).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn control_descriptor_roundtrip() {
        let cases = vec![
            Descriptor::Control(ControlDescriptor::Loop { back: 2, iterations: 8191 }),
            Descriptor::Control(ControlDescriptor::SetEvent { event: 31 }),
            Descriptor::Control(ControlDescriptor::ClearEvent { event: 0 }),
            Descriptor::Control(ControlDescriptor::WaitEvent { cond: EventCond::is_clear(7) }),
            Descriptor::Data(DataDescriptor::read(1 << 20, 256, 1024, 4)),
        ];
        for d in cases {
            let bytes = d.encode_bytes();
            assert_eq!(Descriptor::decode_bytes(&bytes).unwrap(), d);
        }
    }

    #[test]
    fn descriptor_is_16_bytes() {
        let d = Descriptor::Data(DataDescriptor::read(0, 0, 4, 4));
        assert_eq!(d.encode_bytes().len(), 16);
    }

    #[test]
    fn bytes_helper() {
        assert_eq!(DataDescriptor::read(0, 0, 256, 4).bytes(), 1024);
    }

    #[test]
    #[should_panic(expected = "invalid column width")]
    fn bad_width_panics() {
        DataDescriptor::read(0, 0, 1, 3).encode();
    }

    #[test]
    #[should_panic(expected = "36 bits")]
    fn oversized_address_panics() {
        DataDescriptor::read(1 << 36, 0, 1, 4).encode();
    }

    #[test]
    fn event_cond_constructors() {
        assert!(EventCond::is_set(3).set);
        assert!(!EventCond::is_clear(3).set);
        assert_eq!(EventCond::is_set(3).event, 3);
    }

    #[test]
    fn kind_display_and_all() {
        assert_eq!(DescKind::DdrToDmem.to_string(), "DDR→DMEM");
        assert_eq!(DescKind::all().len(), 7);
    }
}
