//! The Data Movement System (DMS).
//!
//! The DMS is the cornerstone of the DPU (§3): a programmable engine at
//! the memory controller that moves and restructures data between DDR and
//! the 32 per-core DMEM scratchpads at wire speed, driven by 16-byte
//! **descriptors** that software constructs in DMEM and pushes onto one of
//! two per-core channels.
//!
//! Architecture (Figure 6):
//!
//! * a **DMAD** per dpCore manages two active descriptor lists, links
//!   (chains) descriptors, executes loop-control descriptors with
//!   auto-incrementing source/destination address registers,
//! * four **DMAX** crossbars (one per 8-core macro) arbitrate descriptors
//!   into the central **DMAC**,
//! * the **DMAC** owns the DDR interface (128-bit AXI, <=256 B per
//!   transaction) and ~42.5 KB of internal SRAM — column memory (3×8 KB),
//!   CRC memory (2×1 KB), CID memory (2×256 B) and bit-vector memory
//!   (4×4 KB) — organized as a three-stage load → hash → store partition
//!   pipeline (Figures 8–10),
//! * 32 binary **events** per core provide flow control: descriptors wait
//!   on and notify events; cores block with `wfe` and clear with `clev`.
//!
//! The simulation moves real bytes (partitioning and gather results are
//! functionally checked in tests) while timing flows through the DRAM and
//! pipeline models of `dpu-mem`/`dpu-sim`.
//!
//! # Example: one descriptor, data lands in DMEM
//!
//! ```
//! use dpu_dms::{DataDescriptor, Descriptor, Dms, DmsConfig};
//! use dpu_mem::{Dmem, DramChannel, DramConfig, PhysMem};
//! use dpu_sim::Time;
//!
//! let mut dms = Dms::new(DmsConfig::default(), 2);
//! let mut phys = PhysMem::new(4096);
//! let mut dram = DramChannel::new(DramConfig::ddr3_1600());
//! let mut dmems = vec![dpu_mem::Dmem::new(1024), dpu_mem::Dmem::new(1024)];
//! phys.write_u32(256, 0xABCD);
//!
//! let desc = DataDescriptor::read(256, 0, 64, 4); // 64 rows × 4 B DDR→DMEM
//! dms.push(0, 0, Descriptor::Data(desc), Time::ZERO);
//! let completions = dms.advance(&mut phys, &mut dram, &mut dmems);
//! assert_eq!(completions.len(), 1);
//! assert_eq!(dmems[0].read_u32(0), 0xABCD);
//! ```

pub mod config;
pub mod descriptor;
pub mod dmac;
pub mod dmad;
pub mod engines;
pub mod event;
pub mod partition;

pub use config::{DmsConfig, GatherMode};
pub use descriptor::{ControlDescriptor, DataDescriptor, DescKind, Descriptor, DmsOp, EventCond};
pub use dmac::{Dms, DmsCompletion, DmsError};
pub use engines::PartitionScheme;
pub use event::EventTimeline;
pub use partition::{PartitionJob, PartitionOutcome};
