//! The DMAC's hash and range engines.
//!
//! "A hash and range engine can apply a CRC32 checksum to the elements of
//! the column memories … inspect radix bits of the resulting hashed column
//! (or alternatively the original key column) and generate a dpCore ID for
//! each result (hash radix partitioning). The DMAC can also generate
//! dpCore IDs by matching each column memory item against one of 32
//! pre-programmed ranges (range partitioning)." (§3.1)

use dpu_isa::hash::crc32c_u64;

/// How the DMAC maps a key to a destination dpCore ID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionScheme {
    /// CRC32 the key, then take the low `radix_bits` of the hash.
    HashRadix {
        /// Number of radix bits inspected (5 ⇒ 32-way).
        radix_bits: u8,
    },
    /// Take `bits` bits of the raw key starting at bit `shift`.
    Radix {
        /// Number of key bits inspected.
        bits: u8,
        /// Bit offset of the inspected field.
        shift: u8,
    },
    /// Match against up to 32 pre-programmed inclusive upper bounds
    /// (ascending); key `k` goes to the first partition whose bound is
    /// `≥ k`, with the last partition catching the remainder.
    Range {
        /// Ascending upper bounds; partition count = `bounds.len() + 1`.
        bounds: Vec<i64>,
    },
}

impl PartitionScheme {
    /// Number of partitions the scheme produces.
    pub fn partitions(&self) -> usize {
        match self {
            PartitionScheme::HashRadix { radix_bits } => 1 << radix_bits,
            PartitionScheme::Radix { bits, .. } => 1 << bits,
            PartitionScheme::Range { bounds } => bounds.len() + 1,
        }
    }

    /// The dpCore ID for a key.
    ///
    /// # Example
    ///
    /// ```
    /// use dpu_dms::PartitionScheme;
    /// let s = PartitionScheme::Range { bounds: vec![10, 20] };
    /// assert_eq!(s.partition_of(5), 0);
    /// assert_eq!(s.partition_of(15), 1);
    /// assert_eq!(s.partition_of(999), 2);
    /// ```
    pub fn partition_of(&self, key: i64) -> usize {
        match self {
            PartitionScheme::HashRadix { radix_bits } => {
                (crc32c_u64(key as u64) as usize) & ((1 << radix_bits) - 1)
            }
            PartitionScheme::Radix { bits, shift } => {
                ((key as u64 >> shift) as usize) & ((1 << bits) - 1)
            }
            PartitionScheme::Range { bounds } => {
                bounds.iter().position(|&b| key <= b).unwrap_or(bounds.len())
            }
        }
    }

    /// Validates engine constraints (≤ 32 ranges; ≤ 5 radix bits would be
    /// a 32-way limit in one pass, but the engine allows up to 8).
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration exceeds hardware limits
    /// or `Range` bounds are not ascending.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PartitionScheme::HashRadix { radix_bits }
            | PartitionScheme::Radix { bits: radix_bits, .. } => {
                if *radix_bits == 0 || *radix_bits > 8 {
                    return Err(format!("radix bits {radix_bits} outside 1..=8"));
                }
            }
            PartitionScheme::Range { bounds } => {
                if bounds.is_empty() || bounds.len() > 31 {
                    return Err(format!(
                        "range engine supports 1..=31 bounds (32 partitions), got {}",
                        bounds.len()
                    ));
                }
                if bounds.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("range bounds must be strictly ascending".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_radix_uses_crc_bits() {
        let s = PartitionScheme::HashRadix { radix_bits: 5 };
        assert_eq!(s.partitions(), 32);
        for k in 0..1000 {
            let p = s.partition_of(k);
            assert_eq!(p, (crc32c_u64(k as u64) as usize) & 31);
            assert!(p < 32);
        }
    }

    #[test]
    fn radix_extracts_field() {
        let s = PartitionScheme::Radix { bits: 5, shift: 0 };
        assert_eq!(s.partition_of(37), 37 & 31);
        let hi = PartitionScheme::Radix { bits: 3, shift: 8 };
        assert_eq!(hi.partition_of(0x0700), 7);
        assert_eq!(hi.partitions(), 8);
    }

    #[test]
    fn range_boundaries_inclusive() {
        let s = PartitionScheme::Range { bounds: vec![0, 100, 200] };
        assert_eq!(s.partitions(), 4);
        assert_eq!(s.partition_of(-5), 0);
        assert_eq!(s.partition_of(0), 0);
        assert_eq!(s.partition_of(1), 1);
        assert_eq!(s.partition_of(100), 1);
        assert_eq!(s.partition_of(101), 2);
        assert_eq!(s.partition_of(201), 3);
        assert_eq!(s.partition_of(i64::MAX), 3);
    }

    #[test]
    fn validation_limits() {
        assert!(PartitionScheme::HashRadix { radix_bits: 5 }.validate().is_ok());
        assert!(PartitionScheme::HashRadix { radix_bits: 0 }.validate().is_err());
        assert!(PartitionScheme::HashRadix { radix_bits: 9 }.validate().is_err());
        assert!(PartitionScheme::Range { bounds: vec![] }.validate().is_err());
        assert!(PartitionScheme::Range { bounds: vec![5, 5] }.validate().is_err());
        assert!(PartitionScheme::Range { bounds: vec![1; 32] }.validate().is_err());
        assert!(PartitionScheme::Range { bounds: (0..31).collect() }.validate().is_ok());
    }

    #[test]
    fn hash_radix_balances() {
        let s = PartitionScheme::HashRadix { radix_bits: 5 };
        let mut counts = [0u32; 32];
        for k in 0..32_000 {
            counts[s.partition_of(k)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "unbalanced bucket {c}");
        }
    }
}
