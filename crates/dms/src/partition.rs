//! The DMAC's three-stage hardware partition pipeline.
//!
//! Hash partitioning streams a table through the DMAC (Figure 10): the
//! **load** stage pulls a chunk of the key column (and its data columns)
//! from DDR into one of the three column-memory banks, the **hash** stage
//! CRC32s the keys into CRC memory and derives a dpCore ID per row into
//! the double-buffered CID memory, and the **store** stage scatters each
//! row's columns into the destination dpCores' DMEMs. The three stages
//! run on different banks concurrently, so throughput is set by the
//! slowest stage — the DDR load — which is how the DMS sustains
//! ≈9.3 GB/s 32-way partitioning (Figure 13) and beats HARP's 6 GB/s.

use dpu_mem::{Dmem, DramChannel, PhysMem};
use dpu_sim::{PipelineStage, Time};

use crate::config::DmsConfig;
use crate::descriptor::{ControlDescriptor, DataDescriptor, DescKind, Descriptor};
use crate::dmac::{Dms, DmsError};
use crate::engines::PartitionScheme;

/// A hardware partitioning job over a column-major table in DDR.
#[derive(Debug, Clone)]
pub struct PartitionJob {
    /// DDR base address of the key column.
    pub key_col_addr: u64,
    /// DDR base addresses of the non-key columns.
    pub data_col_addrs: Vec<u64>,
    /// Number of rows.
    pub rows: u64,
    /// Element width in bytes (1, 2, 4 or 8) — uniform across columns.
    pub col_width: u8,
    /// Partitioning scheme (hash radix / radix / range).
    pub scheme: PartitionScheme,
    /// Base DMEM address of the destination region on every target core.
    pub dest_dmem_base: u32,
    /// Bytes reserved per column per target core.
    pub dest_capacity: u32,
}

/// Result of a completed partitioning job.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// Time the last row was stored.
    pub finish: Time,
    /// Rows routed to each partition (index = dpCore ID).
    pub rows_per_partition: Vec<u64>,
    /// Total bytes read from DDR (all columns).
    pub bytes_in: u64,
    /// Number of pipeline chunks processed.
    pub chunks: u64,
}

impl PartitionJob {
    /// Total columns (key + data).
    pub fn columns(&self) -> usize {
        1 + self.data_col_addrs.len()
    }

    /// Rows per pipeline chunk (bounded by one column-memory bank).
    pub fn chunk_rows(&self, cfg: &DmsConfig) -> u64 {
        (cfg.cmem_bank_bytes as u64 / self.col_width as u64).max(1)
    }

    /// The equivalent descriptor program a driver would push: per chunk, a
    /// key-column `DDR→DMS` load, data-column loads (last one flagged),
    /// and a partition `DMS→DMEM` store, closed by a loop descriptor.
    ///
    /// The job runner executes this same schedule natively for speed; the
    /// program is exposed so tests (and the curious) can inspect what the
    /// hardware interface looks like.
    pub fn descriptor_program(&self, cfg: &DmsConfig) -> Vec<Descriptor> {
        let chunk = self.chunk_rows(cfg).min(self.rows) as u16;
        let mut prog = Vec::new();
        prog.push(Descriptor::Data(DataDescriptor {
            kind: DescKind::DdrToDms,
            is_key: true,
            cmem_bank: 0,
            src_addr_inc: true,
            ..DataDescriptor::read(self.key_col_addr, 0, chunk, self.col_width)
        }));
        for (i, &addr) in self.data_col_addrs.iter().enumerate() {
            prog.push(Descriptor::Data(DataDescriptor {
                kind: DescKind::DdrToDms,
                cmem_bank: 1,
                last_col: i + 1 == self.data_col_addrs.len(),
                src_addr_inc: true,
                ..DataDescriptor::read(addr, 0, chunk, self.col_width)
            }));
        }
        prog.push(Descriptor::Data(DataDescriptor {
            kind: DescKind::DmsToDmem,
            cmem_bank: 2,
            ..DataDescriptor::read(0, self.dest_dmem_base as u16, chunk, self.col_width)
        }));
        let chunks = self.rows.div_ceil(self.chunk_rows(cfg));
        if chunks > 1 {
            prog.push(Descriptor::Control(ControlDescriptor::Loop {
                back: prog.len() as u8,
                iterations: (chunks - 1) as u16,
            }));
        }
        prog
    }
}

impl Dms {
    /// Runs a hardware partitioning job starting at `now`.
    ///
    /// Rows are *really* routed: each row's columns land in the DMEM of
    /// the dpCore chosen by the scheme, appended per-partition, so tests
    /// can verify every row ended up where the hash/range engine said.
    ///
    /// # Errors
    ///
    /// Returns [`DmsError::BadDescriptor`] if the scheme is invalid, the
    /// partition count exceeds the core count, or a destination region
    /// overflows.
    pub fn run_partition(
        &mut self,
        job: &PartitionJob,
        now: Time,
        phys: &mut PhysMem,
        dram: &mut DramChannel,
        dmems: &mut [Dmem],
    ) -> Result<PartitionOutcome, DmsError> {
        job.scheme.validate().map_err(DmsError::BadDescriptor)?;
        let parts = job.scheme.partitions();
        if parts > dmems.len() {
            return Err(DmsError::BadDescriptor(format!(
                "{parts} partitions exceed {} target cores",
                dmems.len()
            )));
        }
        let cfg = self.config().clone();
        let w = job.col_width as u64;
        let chunk_rows = job.chunk_rows(&cfg);
        let n_cols = job.columns() as u64;

        let mut hash_stage = PipelineStage::new("hash");
        let mut store_stage = PipelineStage::new("store");
        let mut rows_per_partition = vec![0u64; parts];
        let mut fill = vec![0u32; parts]; // per-partition bytes used (per column)
        let mut bytes_in = 0u64;
        let mut finish = now;
        let mut chunks = 0u64;

        let mut row0 = 0u64;
        while row0 < job.rows {
            let rows = chunk_rows.min(job.rows - row0);
            let chunk_bytes_per_col = rows * w;

            // Stage 1: load key + data columns from DDR (books bus time; the
            // chunks of successive iterations overlap with hash/store of
            // earlier chunks because the DRAM server runs ahead in time).
            let mut load_done = now + Time::from_cycles(cfg.dispatch_overhead);
            for col in 0..n_cols {
                let base =
                    if col == 0 { job.key_col_addr } else { job.data_col_addrs[col as usize - 1] };
                let addr = base + row0 * w;
                for burst in dpu_mem::axi::split_bursts(addr, chunk_bytes_per_col) {
                    load_done = load_done.max(dram.request(now, burst.addr, burst.bytes));
                }
            }
            bytes_in += chunk_bytes_per_col * n_cols;

            // Stage 2: hash/range engine over the key chunk.
            let hash_cycles = chunk_bytes_per_col.div_ceil(cfg.hash_bytes_per_cycle);
            let hash_done = hash_stage.admit(load_done, Time::from_cycles(hash_cycles));

            // Stage 3: partition store into DMEMs.
            let store_cycles = (chunk_bytes_per_col * n_cols).div_ceil(cfg.store_bytes_per_cycle);
            let store_done = store_stage.admit(hash_done, Time::from_cycles(store_cycles))
                + Time::from_cycles(cfg.dmax_latency);
            finish = finish.max(store_done);

            // Functional routing: move the rows.
            for r in 0..rows {
                let row = row0 + r;
                let key_addr = job.key_col_addr + row * w;
                let key_raw = phys.read_uint(key_addr, w as usize);
                let key = sign_extend(key_raw, w);
                let p = job.scheme.partition_of(key);
                let off = fill[p];
                if off + w as u32 > job.dest_capacity {
                    return Err(DmsError::BadDescriptor(format!(
                        "partition {p} overflowed its {}-byte DMEM region",
                        job.dest_capacity
                    )));
                }
                for col in 0..n_cols {
                    let base = if col == 0 {
                        job.key_col_addr
                    } else {
                        job.data_col_addrs[col as usize - 1]
                    };
                    let src = base + row * w;
                    let data: Vec<u8> = phys.slice(src, w as usize).to_vec();
                    let dst = job.dest_dmem_base + col as u32 * job.dest_capacity + off;
                    dmems[p].write(dst, &data);
                }
                fill[p] += w as u32;
                rows_per_partition[p] += 1;
            }

            row0 += rows;
            chunks += 1;
        }

        Ok(PartitionOutcome { finish, rows_per_partition, bytes_in, chunks })
    }
}

fn sign_extend(raw: u64, width: u64) -> i64 {
    match width {
        1 => raw as u8 as i8 as i64,
        2 => raw as u16 as i16 as i64,
        4 => raw as u32 as i32 as i64,
        _ => raw as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_mem::DramConfig;
    use dpu_sim::Frequency;

    fn setup_table(rows: u64, cols: usize) -> (PhysMem, Vec<u64>) {
        // Column-major: column c at c * rows * 4.
        let mut phys = PhysMem::new((rows as usize * cols * 4).max(4096));
        let addrs: Vec<u64> = (0..cols).map(|c| c as u64 * rows * 4).collect();
        for (c, &addr) in addrs.iter().enumerate() {
            for r in 0..rows {
                // Key column: pseudorandom; data columns: r tagged by column.
                let v = if c == 0 {
                    (r.wrapping_mul(2_654_435_761)) as u32
                } else {
                    (c as u32) << 24 | r as u32
                };
                phys.write_u32(addr + r * 4, v);
            }
        }
        (phys, addrs)
    }

    fn run(
        scheme: PartitionScheme,
        rows: u64,
        cols: usize,
    ) -> (PartitionOutcome, Vec<Dmem>, PhysMem, Vec<u64>) {
        let (mut phys, addrs) = setup_table(rows, cols);
        let mut dms = Dms::new(DmsConfig::default(), 32);
        let mut dram = DramChannel::new(DramConfig::ddr3_1600());
        let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(32 * 1024)).collect();
        let job = PartitionJob {
            key_col_addr: addrs[0],
            data_col_addrs: addrs[1..].to_vec(),
            rows,
            col_width: 4,
            scheme,
            dest_dmem_base: 0,
            dest_capacity: 8 * 1024 / cols as u32,
        };
        let out = dms.run_partition(&job, Time::ZERO, &mut phys, &mut dram, &mut dmems).unwrap();
        (out, dmems, phys, addrs)
    }

    #[test]
    fn hash_partition_routes_every_row_correctly() {
        let rows = 4096u64;
        let scheme = PartitionScheme::HashRadix { radix_bits: 5 };
        let (out, dmems, phys, addrs) = run(scheme.clone(), rows, 2);
        assert_eq!(out.rows_per_partition.iter().sum::<u64>(), rows);
        // Verify each landed row's key actually hashes to that partition,
        // and the data column traveled with it.
        let cap = 4 * 1024;
        for (p, dmem) in dmems.iter().enumerate() {
            for i in 0..out.rows_per_partition[p] {
                let key = dmem.read_u32((i * 4) as u32) as i64 as i32 as i64;
                assert_eq!(scheme.partition_of(key), p, "row in wrong partition");
                let data = dmem.read_u32(cap as u32 + (i * 4) as u32);
                // The data value encodes its original row; check the key
                // column at that row matches.
                let orig_row = (data & 0x00FF_FFFF) as u64;
                assert_eq!(phys.read_u32(addrs[0] + orig_row * 4) as i64, key & 0xFFFF_FFFF);
            }
        }
    }

    #[test]
    fn range_partition_obeys_bounds() {
        let rows = 1024u64;
        // Keys are hash-looking u32s; as i64 they're all ≥ 0.
        let bounds: Vec<i64> = (1..32).map(|i| i * (u32::MAX as i64) / 32).collect();
        let scheme = PartitionScheme::Range { bounds: bounds.clone() };
        let (out, dmems, _, _) = run(scheme.clone(), rows, 1);
        assert_eq!(out.rows_per_partition.iter().sum::<u64>(), rows);
        for p in 0..32usize {
            for i in 0..out.rows_per_partition[p] {
                let key = dmems[p].read_u32((i * 4) as u32) as i32 as i64;
                if p > 0 {
                    assert!(key > bounds[p - 1]);
                }
                if p < 31 {
                    assert!(key <= bounds[p]);
                }
            }
        }
    }

    #[test]
    fn radix_partition_on_key_bits() {
        let scheme = PartitionScheme::Radix { bits: 5, shift: 0 };
        let (out, dmems, _, _) = run(scheme.clone(), 512, 1);
        for (p, dmem) in dmems.iter().enumerate() {
            for i in 0..out.rows_per_partition[p] {
                let key = dmem.read_u32((i * 4) as u32);
                assert_eq!((key & 31) as usize, p);
            }
        }
        assert_eq!(out.rows_per_partition.iter().sum::<u64>(), 512);
    }

    #[test]
    fn partition_throughput_near_memory_bandwidth() {
        // Figure 13's claim: ≈9.3 GB/s for 32-way partitioning of a
        // 4-column table — and in any case beating HARP's 6 GB/s.
        let rows = 64 * 1024u64;
        let (mut phys, addrs) = {
            let mut phys = PhysMem::new(rows as usize * 4 * 4);
            let addrs: Vec<u64> = (0..4).map(|c| c as u64 * rows * 4).collect();
            for &addr in &addrs {
                for r in 0..rows {
                    phys.write_u32(addr + r * 4, (r as u32).wrapping_mul(0x9E37_79B9));
                }
            }
            (phys, addrs)
        };
        let mut dms = Dms::new(DmsConfig::default(), 32);
        let mut dram = DramChannel::new(DramConfig::ddr3_1600());
        // Capacity: 64K rows / 32 parts ≈ 2K rows × 4 B ≈ 8 KB with skew
        // margin; use a large synthetic DMEM since this is a bandwidth test.
        let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(256 * 1024)).collect();
        let job = PartitionJob {
            key_col_addr: addrs[0],
            data_col_addrs: addrs[1..].to_vec(),
            rows,
            col_width: 4,
            scheme: PartitionScheme::HashRadix { radix_bits: 5 },
            dest_dmem_base: 0,
            dest_capacity: 64 * 1024,
        };
        let out = dms.run_partition(&job, Time::ZERO, &mut phys, &mut dram, &mut dmems).unwrap();
        let gbps = Frequency::DPU_CORE.bytes_per_sec(out.bytes_in, out.finish) / 1e9;
        assert!(gbps > 6.0, "hardware partitioning must beat HARP's 6 GB/s, got {gbps:.2}");
        assert!(gbps > 8.5, "expected ≈9.3 GB/s, got {gbps:.2}");
        assert!(gbps < 12.8, "cannot exceed DDR3 peak");
    }

    #[test]
    fn too_many_partitions_rejected() {
        let (mut phys, addrs) = setup_table(64, 1);
        let mut dms = Dms::new(DmsConfig::default(), 8);
        let mut dram = DramChannel::new(DramConfig::ddr3_1600());
        let mut dmems: Vec<Dmem> = (0..8).map(|_| Dmem::new(1024)).collect();
        let job = PartitionJob {
            key_col_addr: addrs[0],
            data_col_addrs: vec![],
            rows: 64,
            col_width: 4,
            scheme: PartitionScheme::HashRadix { radix_bits: 5 },
            dest_dmem_base: 0,
            dest_capacity: 1024,
        };
        assert!(dms.run_partition(&job, Time::ZERO, &mut phys, &mut dram, &mut dmems).is_err());
    }

    #[test]
    fn overflow_of_destination_region_detected() {
        let (mut phys, addrs) = setup_table(1024, 1);
        let mut dms = Dms::new(DmsConfig::default(), 32);
        let mut dram = DramChannel::new(DramConfig::ddr3_1600());
        let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(32 * 1024)).collect();
        let job = PartitionJob {
            key_col_addr: addrs[0],
            data_col_addrs: vec![],
            rows: 1024,
            col_width: 4,
            // All rows to one partition → guaranteed overflow of 64 B.
            scheme: PartitionScheme::Range { bounds: vec![i64::MAX - 1] },
            dest_dmem_base: 0,
            dest_capacity: 64,
        };
        let err =
            dms.run_partition(&job, Time::ZERO, &mut phys, &mut dram, &mut dmems).unwrap_err();
        assert!(err.to_string().contains("overflowed"));
    }

    #[test]
    fn descriptor_program_shape() {
        let cfg = DmsConfig::default();
        let job = PartitionJob {
            key_col_addr: 0,
            data_col_addrs: vec![4096, 8192, 12288],
            rows: 8192,
            col_width: 4,
            scheme: PartitionScheme::HashRadix { radix_bits: 5 },
            dest_dmem_base: 0,
            dest_capacity: 1024,
        };
        let prog = job.descriptor_program(&cfg);
        // key load + 3 data loads + store + loop.
        assert_eq!(prog.len(), 6);
        match &prog[0] {
            Descriptor::Data(d) => {
                assert_eq!(d.kind, DescKind::DdrToDms);
                assert!(d.is_key);
            }
            other => panic!("{other:?}"),
        }
        match &prog[5] {
            Descriptor::Control(ControlDescriptor::Loop { back, iterations }) => {
                assert_eq!(*back, 5);
                // 8192 rows / 2048 rows-per-chunk = 4 chunks → 3 repeats.
                assert_eq!(*iterations, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_chunk_program_has_no_loop() {
        let cfg = DmsConfig::default();
        let job = PartitionJob {
            key_col_addr: 0,
            data_col_addrs: vec![],
            rows: 100,
            col_width: 4,
            scheme: PartitionScheme::HashRadix { radix_bits: 5 },
            dest_dmem_base: 0,
            dest_capacity: 1024,
        };
        assert_eq!(job.descriptor_program(&cfg).len(), 2);
        assert_eq!(job.chunk_rows(&cfg), 2048);
        assert_eq!(job.columns(), 1);
    }
}
