//! The central DMA controller (DMAC) and the [`Dms`] façade.
//!
//! The DMAC owns the DDR interface and the internal SRAMs, executes data
//! descriptors arriving from the per-core DMADs through the four DMAX
//! crossbars, and signals completion through the event system. This
//! module is the engine room: [`Dms::advance`] drains every dispatchable
//! descriptor, moving real bytes and booking time on the DRAM channel
//! model.

use dpu_mem::axi::{split_bursts, AXI_MAX_BURST};
use dpu_mem::{Dmem, DramChannel, PhysMem};
use dpu_sim::Time;

use crate::config::{DmsConfig, GatherMode};
use crate::descriptor::{ControlDescriptor, DataDescriptor, DescKind, Descriptor};
use crate::dmad::{Channel, ChannelStep, CHANNELS_PER_CORE};
use crate::event::CoreEvents;

/// A completed data-descriptor execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmsCompletion {
    /// Issuing dpCore.
    pub core: usize,
    /// Issuing channel (0 or 1).
    pub chan: usize,
    /// Monotonic sequence number (global dispatch order).
    pub seq: u64,
    /// Dispatch time at the DMAC.
    pub start: Time,
    /// Time of the last byte delivered (event-notify time).
    pub finish: Time,
    /// Bytes actually moved.
    pub bytes: u64,
    /// Event set on the issuing core at `finish`, if any.
    pub notify: Option<u8>,
    /// Descriptor kind executed.
    pub kind: DescKind,
}

/// A fatal DMS condition (the simulated analogue of a hardware hang).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmsError {
    /// The first-silicon gather bug: two cores had gathers in flight
    /// concurrently and the bit-vector count FIFO overflowed (§3.4).
    GatherFifoOverflow {
        /// The two cores whose gathers overlapped.
        cores: (usize, usize),
    },
    /// A descriptor that the hardware cannot execute.
    BadDescriptor(String),
}

impl std::fmt::Display for DmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmsError::GatherFifoOverflow { cores } => write!(
                f,
                "gather count FIFO overflow: cores {} and {} issued concurrent gathers \
                 (first-silicon RTL bug, serialize gathers to work around)",
                cores.0, cores.1
            ),
            DmsError::BadDescriptor(msg) => write!(f, "bad descriptor: {msg}"),
        }
    }
}

impl std::error::Error for DmsError {}

/// The Data Movement System: 32 DMADs, 4 DMAX crossbars, one DMAC.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Dms {
    cfg: DmsConfig,
    n_cores: usize,
    channels: Vec<Vec<Channel>>,
    events: Vec<CoreEvents>,
    /// Per-macro DMAC slots (≤ `outstanding_per_macro` in flight).
    macro_slots: Vec<Vec<Time>>,
    /// Column-memory banks (3 × 8 KB).
    cmem: [Vec<u8>; 3],
    /// Bit-vector memory, one bank per macro (4 × 4 KB).
    bv: Vec<Vec<u8>>,
    /// In-flight gather windows for the bug model.
    gather_windows: Vec<(Time, Time, usize)>,
    /// Sticky fatal error (the hardware would hang; we surface it).
    error: Option<DmsError>,
    seq: u64,
}

impl Dms {
    /// Creates a DMS serving `n_cores` dpCores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or not a multiple of the macro size.
    pub fn new(cfg: DmsConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        assert!(
            n_cores.is_multiple_of(cfg.cores_per_macro) || n_cores < cfg.cores_per_macro,
            "core count must fill whole macros"
        );
        let n_macros = n_cores.div_ceil(cfg.cores_per_macro);
        Dms {
            channels: (0..n_cores)
                .map(|_| (0..CHANNELS_PER_CORE).map(|_| Channel::new()).collect())
                .collect(),
            events: (0..n_cores).map(|_| CoreEvents::new()).collect(),
            macro_slots: (0..n_macros)
                .map(|_| vec![Time::ZERO; cfg.outstanding_per_macro])
                .collect(),
            cmem: [
                vec![0; cfg.cmem_bank_bytes],
                vec![0; cfg.cmem_bank_bytes],
                vec![0; cfg.cmem_bank_bytes],
            ],
            bv: (0..n_macros).map(|_| vec![0; cfg.bv_bank_bytes]).collect(),
            gather_windows: Vec::new(),
            error: None,
            seq: 0,
            n_cores,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DmsConfig {
        &self.cfg
    }

    /// Number of cores served.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// The macro a core belongs to.
    pub fn macro_of(&self, core: usize) -> usize {
        core / self.cfg.cores_per_macro
    }

    /// The sticky fatal error, if the DMS has "hung".
    pub fn error(&self) -> Option<&DmsError> {
        self.error.as_ref()
    }

    /// Pushes a descriptor onto `core`'s channel `chan` at time `now`
    /// (the `dmspush` instruction).
    ///
    /// # Panics
    ///
    /// Panics if `core` or `chan` is out of range.
    pub fn push(&mut self, core: usize, chan: usize, desc: Descriptor, now: Time) {
        self.channels[core][chan].push(desc, now);
    }

    /// Sets event `ev` on `core` at `now` (software-side set).
    pub fn set_event(&mut self, core: usize, ev: u8, now: Time) {
        self.events[core].event_mut(ev).transition(now, true);
    }

    /// Clears event `ev` on `core` at `now` (the `clev` instruction).
    pub fn clear_event(&mut self, core: usize, ev: u8, now: Time) {
        self.events[core].event_mut(ev).transition(now, false);
    }

    /// Earliest time ≥ `ready` at which `core`'s event `ev` is in state
    /// `set` (what a `wfe` blocks on), or `None` if not yet scheduled.
    pub fn event_time(&self, core: usize, ev: u8, ready: Time, set: bool) -> Option<Time> {
        self.events[core].event(ev).first_time_in_state(ready, set)
    }

    /// Direct access to a core's event timelines.
    pub fn events(&self, core: usize) -> &CoreEvents {
        &self.events[core]
    }

    /// Bytes pending across all channels (for quiescence checks).
    pub fn pending(&self) -> usize {
        self.channels.iter().flat_map(|c| c.iter()).map(|ch| ch.pending()).sum()
    }

    /// Drains every currently-dispatchable descriptor, returning the
    /// completions in dispatch order. Descriptors blocked on events that
    /// are not yet scheduled remain queued; call `advance` again after the
    /// blocking event is set or cleared.
    ///
    /// If a fatal condition arises (see [`DmsError`]), processing stops
    /// and the error is available via [`error`](Self::error).
    pub fn advance(
        &mut self,
        phys: &mut PhysMem,
        dram: &mut DramChannel,
        dmems: &mut [Dmem],
    ) -> Vec<DmsCompletion> {
        let mut out = Vec::new();
        if self.error.is_some() {
            return out;
        }
        loop {
            let mut progressed = false;
            'chans: for core in 0..self.n_cores {
                for chan in 0..CHANNELS_PER_CORE {
                    loop {
                        if self.error.is_some() {
                            break 'chans;
                        }
                        match self.channels[core][chan].peek() {
                            ChannelStep::Idle => break,
                            ChannelStep::Control(c) => {
                                let ready = self.channels[core][chan].ready();
                                match c {
                                    ControlDescriptor::SetEvent { event } => {
                                        self.events[core].event_mut(event).transition(ready, true);
                                    }
                                    ControlDescriptor::ClearEvent { event } => {
                                        self.events[core].event_mut(event).transition(ready, false);
                                    }
                                    ControlDescriptor::WaitEvent { cond } => {
                                        match self.events[core]
                                            .event(cond.event)
                                            .first_time_in_state(ready, cond.set)
                                        {
                                            Some(t) => self.channels[core][chan].set_ready(t),
                                            None => break, // blocked
                                        }
                                    }
                                    ControlDescriptor::Loop { .. } => {
                                        unreachable!("loops resolved inside the channel")
                                    }
                                }
                                self.channels[core][chan].commit();
                                progressed = true;
                            }
                            ChannelStep::Data(r) => {
                                let d = r.desc;
                                let mut ready = self.channels[core][chan].ready()
                                    + Time::from_cycles(self.cfg.dispatch_overhead);
                                if let Some(c) = d.wait {
                                    // A waiting descriptor samples its event
                                    // no earlier than the channel's previous
                                    // completion, so flow-control waits see
                                    // the preceding buffer's notify first.
                                    let sample = ready.max(self.channels[core][chan].last_finish());
                                    match self.events[core]
                                        .event(c.event)
                                        .first_time_in_state(sample, c.set)
                                    {
                                        Some(t) => ready = t,
                                        None => break, // blocked
                                    }
                                }
                                // Claim the earliest DMAC slot of this macro.
                                let m = self.macro_of(core);
                                let (slot_idx, &slot_free) = self.macro_slots[m]
                                    .iter()
                                    .enumerate()
                                    .min_by_key(|(_, &t)| t)
                                    .expect("slots non-empty");
                                let start = ready.max(slot_free);
                                match self.execute(d, core, start, phys, dram, dmems) {
                                    Ok((finish, bytes)) => {
                                        self.macro_slots[m][slot_idx] = finish;
                                        if let Some(ev) = d.notify {
                                            self.events[core]
                                                .event_mut(ev)
                                                .transition(finish, true);
                                        }
                                        // The channel may dispatch its next
                                        // descriptor as soon as this one has
                                        // been handed to the DMAC.
                                        self.channels[core][chan].set_ready(start);
                                        self.channels[core][chan].set_last_finish(finish);
                                        self.channels[core][chan].commit();
                                        out.push(DmsCompletion {
                                            core,
                                            chan,
                                            seq: self.seq,
                                            start,
                                            finish,
                                            bytes,
                                            notify: d.notify,
                                            kind: d.kind,
                                        });
                                        self.seq += 1;
                                        progressed = true;
                                    }
                                    Err(e) => {
                                        self.error = Some(e);
                                        break 'chans;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if !progressed || self.error.is_some() {
                break;
            }
        }
        out
    }

    /// Executes one resolved data descriptor: real data movement plus
    /// timing. Returns `(finish, bytes_moved)`.
    fn execute(
        &mut self,
        d: DataDescriptor,
        core: usize,
        start: Time,
        phys: &mut PhysMem,
        dram: &mut DramChannel,
        dmems: &mut [Dmem],
    ) -> Result<(Time, u64), DmsError> {
        let w = d.col_width as u64;
        let bytes = d.bytes();
        let dmax = Time::from_cycles(self.cfg.dmax_latency);
        match d.kind {
            DescKind::DdrToDmem => {
                if d.gather_src {
                    return self.gather(d, core, start, phys, dram, dmems);
                }
                let finish = if d.ddr_stride as u64 > w {
                    self.strided_ddr(d, start, dram)
                } else {
                    self.dense_ddr(d.ddr_addr, bytes, start, dram)
                };
                // Move the bytes.
                if d.ddr_stride as u64 > w {
                    for i in 0..d.rows as u64 {
                        let src = d.ddr_addr + i * d.ddr_stride as u64;
                        let data: Vec<u8> = phys.slice(src, w as usize).to_vec();
                        dmems[core].write(d.dmem_addr as u32 + (i * w) as u32, &data);
                    }
                } else {
                    let data: Vec<u8> = phys.slice(d.ddr_addr, bytes as usize).to_vec();
                    dmems[core].write(d.dmem_addr as u32, &data);
                }
                Ok((finish + dmax, bytes))
            }
            DescKind::DmemToDdr => {
                if d.scatter_dst {
                    return self.scatter(d, core, start, phys, dram, dmems);
                }
                let finish = if d.ddr_stride as u64 > w {
                    self.strided_ddr(d, start, dram)
                } else {
                    self.dense_ddr(d.ddr_addr, bytes, start, dram)
                };
                if d.ddr_stride as u64 > w {
                    for i in 0..d.rows as u64 {
                        let data: Vec<u8> = dmems[core]
                            .slice(d.dmem_addr as u32 + (i * w) as u32, w as usize)
                            .to_vec();
                        phys.write(d.ddr_addr + i * d.ddr_stride as u64, &data);
                    }
                } else {
                    let data: Vec<u8> =
                        dmems[core].slice(d.dmem_addr as u32, bytes as usize).to_vec();
                    phys.write(d.ddr_addr, &data);
                }
                Ok((finish + dmax, bytes))
            }
            DescKind::DdrToDms => {
                let bank = d.cmem_bank as usize % 3;
                if bytes as usize > self.cfg.cmem_bank_bytes {
                    return Err(DmsError::BadDescriptor(format!(
                        "{bytes} bytes exceed the {}-byte column memory bank",
                        self.cfg.cmem_bank_bytes
                    )));
                }
                let finish = self.dense_ddr(d.ddr_addr, bytes, start, dram);
                let data: Vec<u8> = phys.slice(d.ddr_addr, bytes as usize).to_vec();
                self.cmem[bank][..bytes as usize].copy_from_slice(&data);
                Ok((finish, bytes))
            }
            DescKind::DmsToDmem => {
                // Convention: the DDR-address field carries the target
                // dpCore ID (hardware uses CID memory for this routing).
                let target = (d.ddr_addr as usize) % dmems.len();
                let bank = d.cmem_bank as usize % 3;
                let cycles = bytes.div_ceil(self.cfg.store_bytes_per_cycle);
                let finish = start + Time::from_cycles(cycles) + dmax;
                let data: Vec<u8> = self.cmem[bank][..bytes as usize].to_vec();
                dmems[target].write(d.dmem_addr as u32, &data);
                Ok((finish, bytes))
            }
            DescKind::DmemToDms => {
                // Stage a bit-vector (or RID list) into this macro's BV bank.
                let m = self.macro_of(core);
                if bytes as usize > self.cfg.bv_bank_bytes {
                    return Err(DmsError::BadDescriptor(format!(
                        "{bytes} bytes exceed the {}-byte bit-vector bank",
                        self.cfg.bv_bank_bytes
                    )));
                }
                let data: Vec<u8> = dmems[core].slice(d.dmem_addr as u32, bytes as usize).to_vec();
                self.bv[m][..bytes as usize].copy_from_slice(&data);
                let cycles = bytes.div_ceil(self.cfg.store_bytes_per_cycle);
                Ok((start + Time::from_cycles(cycles) + dmax, bytes))
            }
            DescKind::DmsToDdr => {
                let bank = d.cmem_bank as usize % 3;
                let finish = self.dense_ddr(d.ddr_addr, bytes, start, dram);
                let data: Vec<u8> = self.cmem[bank][..bytes as usize].to_vec();
                phys.write(d.ddr_addr, &data);
                Ok((finish, bytes))
            }
            DescKind::DmsToDms => {
                let src = d.cmem_bank as usize % 3;
                let dst = (d.cmem_bank as usize + 1) % 3;
                let data: Vec<u8> = self.cmem[src][..bytes as usize].to_vec();
                self.cmem[dst][..bytes as usize].copy_from_slice(&data);
                let cycles = bytes.div_ceil(self.cfg.store_bytes_per_cycle);
                Ok((start + Time::from_cycles(cycles), bytes))
            }
        }
    }

    /// Books a dense DDR transfer split into AXI bursts.
    fn dense_ddr(&self, addr: u64, bytes: u64, start: Time, dram: &mut DramChannel) -> Time {
        let mut finish = start;
        for burst in split_bursts(addr, bytes) {
            finish = dram.request(start, burst.addr, burst.bytes);
        }
        finish
    }

    /// Books a strided DDR access: one request per 256 B region touched
    /// (DRAM reads whole bursts, so sparse strides waste bandwidth).
    fn strided_ddr(&self, d: DataDescriptor, start: Time, dram: &mut DramChannel) -> Time {
        let w = d.col_width as u64;
        let stride = d.ddr_stride as u64;
        let mut finish = start;
        let mut last_region = u64::MAX;
        for i in 0..d.rows as u64 {
            let addr = d.ddr_addr + i * stride;
            let region = addr / AXI_MAX_BURST;
            let end_region = (addr + w - 1) / AXI_MAX_BURST;
            for r in region..=end_region {
                if r != last_region {
                    finish = dram.request(start, r * AXI_MAX_BURST, AXI_MAX_BURST);
                    last_region = r;
                }
            }
        }
        finish
    }

    fn bv_bit(&self, m: usize, i: u64) -> bool {
        (self.bv[m][(i / 8) as usize] >> (i % 8)) & 1 == 1
    }

    /// Gather: pack DDR rows whose bit-vector bit is set into DMEM.
    fn gather(
        &mut self,
        d: DataDescriptor,
        core: usize,
        start: Time,
        phys: &mut PhysMem,
        dram: &mut DramChannel,
        dmems: &mut [Dmem],
    ) -> Result<(Time, u64), DmsError> {
        let m = self.macro_of(core);
        let w = d.col_width as u64;
        if d.rows as usize > self.cfg.bv_bank_bytes * 8 {
            return Err(DmsError::BadDescriptor(format!(
                "gather of {} rows exceeds the bit-vector bank",
                d.rows
            )));
        }
        // Engine scan cost over all rows (selected or not).
        let scan_cycles =
            (d.rows as u64 * self.cfg.gather_row_overhead_num) / self.cfg.gather_row_overhead_den;
        // One DDR request per 256 B region containing selected rows. On
        // the fixed RTL the count FIFO keeps many regions in flight and
        // the turnaround is hidden; on first silicon the workaround runs
        // one gather at a time, whose region requests are serially
        // dependent — a single stream cannot hide the DMAX turnaround,
        // which is exactly why Figure 12's measured bandwidth is far
        // below line rate.
        let turnaround = match self.cfg.gather_mode {
            GatherMode::BugWorkaround => Time::from_cycles(2 * self.cfg.dmax_latency),
            GatherMode::Fixed => Time::ZERO,
        };
        let mut finish = start + Time::from_cycles(scan_cycles);
        let mut last_region = u64::MAX;
        let mut out = Vec::new();
        let mut moved = 0u64;
        for i in 0..d.rows as u64 {
            if !self.bv_bit(m, i) {
                continue;
            }
            let addr = d.ddr_addr + i * w;
            let region = addr / AXI_MAX_BURST;
            if region != last_region {
                finish = dram.request(finish, region * AXI_MAX_BURST, AXI_MAX_BURST) + turnaround;
                last_region = region;
            }
            out.extend_from_slice(phys.slice(addr, w as usize));
            moved += w;
        }
        dmems[core].write(d.dmem_addr as u32, &out);
        let finish = finish + Time::from_cycles(self.cfg.dmax_latency);

        // First-silicon bug: concurrent gathers from different cores
        // overflow the count FIFO and hang the DMADs.
        if self.cfg.gather_mode == GatherMode::BugWorkaround {
            for &(s, e, c) in &self.gather_windows {
                if c != core && start < e && s < finish {
                    return Err(DmsError::GatherFifoOverflow { cores: (c, core) });
                }
            }
        }
        self.gather_windows.push((start, finish, core));
        // Keep the window list bounded.
        if self.gather_windows.len() > 64 {
            self.gather_windows.drain(..32);
        }
        Ok((finish, moved))
    }

    /// Scatter: write consecutive DMEM elements to DDR rows whose bit is
    /// set.
    fn scatter(
        &mut self,
        d: DataDescriptor,
        core: usize,
        start: Time,
        phys: &mut PhysMem,
        dram: &mut DramChannel,
        dmems: &mut [Dmem],
    ) -> Result<(Time, u64), DmsError> {
        let m = self.macro_of(core);
        let w = d.col_width as u64;
        let scan_cycles =
            (d.rows as u64 * self.cfg.gather_row_overhead_num) / self.cfg.gather_row_overhead_den;
        let mut finish = start + Time::from_cycles(scan_cycles);
        let mut src_off = 0u32;
        let mut moved = 0u64;
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        let mut flush_run = |rs: u64, rl: u64, finish: &mut Time| {
            for burst in split_bursts(rs, rl) {
                *finish = (*finish).max(dram.request(start, burst.addr, burst.bytes));
            }
        };
        for i in 0..d.rows as u64 {
            if self.bv_bit(m, i) {
                let addr = d.ddr_addr + i * w;
                let data: Vec<u8> =
                    dmems[core].slice(d.dmem_addr as u32 + src_off, w as usize).to_vec();
                phys.write(addr, &data);
                src_off += w as u32;
                moved += w;
                match run_start {
                    Some(rs) if rs + run_len == addr => run_len += w,
                    Some(rs) => {
                        flush_run(rs, run_len, &mut finish);
                        run_start = Some(addr);
                        run_len = w;
                    }
                    None => {
                        run_start = Some(addr);
                        run_len = w;
                    }
                }
            }
        }
        if let Some(rs) = run_start {
            flush_run(rs, run_len, &mut finish);
        }
        Ok((finish + Time::from_cycles(self.cfg.dmax_latency), moved))
    }

    /// Direct access to a macro's bit-vector bank (tests).
    pub fn bv_bank(&self, m: usize) -> &[u8] {
        &self.bv[m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::EventCond;
    use dpu_mem::DramConfig;

    fn setup(n_cores: usize, mem: usize) -> (Dms, PhysMem, DramChannel, Vec<Dmem>) {
        (
            Dms::new(DmsConfig::default(), n_cores),
            PhysMem::new(mem),
            DramChannel::new(DramConfig::ddr3_1600()),
            (0..n_cores).map(|_| Dmem::new(32 * 1024)).collect(),
        )
    }

    #[test]
    fn dense_read_moves_data_and_books_time() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(2, 64 * 1024);
        for i in 0..256u32 {
            phys.write_u32(4096 + i as u64 * 4, i * 3);
        }
        let d = DataDescriptor::read(4096, 128, 256, 4).with_notify(0);
        dms.push(0, 0, Descriptor::Data(d), Time::ZERO);
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].bytes, 1024);
        assert!(c[0].finish > c[0].start);
        for i in 0..256u32 {
            assert_eq!(dmems[0].read_u32(128 + i * 4), i * 3);
        }
        // The notify event is set at completion.
        assert_eq!(dms.event_time(0, 0, Time::ZERO, true), Some(c[0].finish));
    }

    #[test]
    fn dense_write_roundtrips() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        for i in 0..64u32 {
            dmems[0].write_u32(i * 4, 0xF00D + i);
        }
        let d = DataDescriptor::write(8192, 0, 64, 4);
        dms.push(0, 1, Descriptor::Data(d), Time::ZERO);
        dms.advance(&mut phys, &mut dram, &mut dmems);
        for i in 0..64u32 {
            assert_eq!(phys.read_u32(8192 + i as u64 * 4), 0xF00D + i);
        }
    }

    #[test]
    fn wait_event_defers_until_set() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 4096);
        let d = DataDescriptor::read(0, 0, 16, 4).with_wait(EventCond::is_set(7));
        dms.push(0, 0, Descriptor::Data(d), Time::ZERO);
        // Blocked: event 7 never set.
        assert!(dms.advance(&mut phys, &mut dram, &mut dmems).is_empty());
        assert_eq!(dms.pending(), 1);
        // Set at t=500: descriptor dispatches no earlier.
        dms.set_event(0, 7, Time::from_cycles(500));
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 1);
        assert!(c[0].start >= Time::from_cycles(500));
    }

    #[test]
    fn flow_control_waits_for_clear() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 4096);
        // Descriptor 1 notifies event 0; descriptor 2 waits for event 0
        // to be cleared (buffer consumed) before refilling.
        let d1 = DataDescriptor::read(0, 0, 64, 4).with_notify(0);
        let d2 = DataDescriptor::read(256, 0, 64, 4).with_wait(EventCond::is_clear(0));
        dms.push(0, 0, Descriptor::Data(d1), Time::ZERO);
        dms.push(0, 0, Descriptor::Data(d2), Time::ZERO);
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        // d1 completes; d2 blocked because event 0 is now set.
        assert_eq!(c.len(), 1);
        let consume_at = c[0].finish + Time::from_cycles(1000);
        dms.clear_event(0, 0, consume_at);
        let c2 = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c2.len(), 1);
        assert!(c2[0].start >= consume_at);
    }

    #[test]
    fn loop_descriptor_streams_through_double_buffer() {
        // Listing 1 in miniature: stream 16 KB through two 1 KB buffers
        // with three descriptors.
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        for i in 0..4096u32 {
            phys.write_u32(i as u64 * 4, i);
        }
        let d0 = DataDescriptor::read(0, 0, 256, 4).with_src_inc().with_notify(0);
        let d1 = DataDescriptor::read(0, 1024, 256, 4).with_src_inc().with_notify(1);
        dms.push(0, 0, Descriptor::Data(d0), Time::ZERO);
        dms.push(0, 0, Descriptor::Data(d1), Time::ZERO);
        dms.push(
            0,
            0,
            Descriptor::Control(ControlDescriptor::Loop { back: 2, iterations: 7 }),
            Time::ZERO,
        );
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 16, "8 loop passes × 2 descriptors");
        let total: u64 = c.iter().map(|x| x.bytes).sum();
        assert_eq!(total, 16 * 1024);
        // Final pair of buffers holds the last two chunks.
        assert_eq!(dmems[0].read_u32(0), 3584); // chunk 14 starts at row 3584
        assert_eq!(dmems[0].read_u32(1024), 3840);
    }

    #[test]
    fn strided_read_gathers_column_from_row_major() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        // Row-major table: 16-byte rows, second field at offset 4.
        for r in 0..128u32 {
            phys.write_u32(r as u64 * 16 + 4, 1000 + r);
        }
        let d = DataDescriptor { ddr_stride: 16, ..DataDescriptor::read(4, 0, 128, 4) };
        dms.push(0, 0, Descriptor::Data(d), Time::ZERO);
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 1);
        for r in 0..128u32 {
            assert_eq!(dmems[0].read_u32(r * 4), 1000 + r);
        }
    }

    #[test]
    fn strided_is_slower_than_dense_for_same_payload() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 1 << 20);
        let dense = DataDescriptor::read(0, 0, 1024, 4);
        dms.push(0, 0, Descriptor::Data(dense), Time::ZERO);
        let c1 = dms.advance(&mut phys, &mut dram, &mut dmems);
        dram.reset();
        let mut dms2 = Dms::new(DmsConfig::default(), 1);
        let strided = DataDescriptor { ddr_stride: 512, ..DataDescriptor::read(0, 0, 1024, 4) };
        dms2.push(0, 0, Descriptor::Data(strided), Time::ZERO);
        let c2 = dms2.advance(&mut phys, &mut dram, &mut dmems);
        let dense_cost = c1[0].finish.cycles() - c1[0].start.cycles();
        let strided_cost = c2[0].finish.cycles() - c2[0].start.cycles();
        assert!(
            strided_cost > 4 * dense_cost,
            "strided ({strided_cost} cyc) should dwarf dense ({dense_cost} cyc)"
        );
    }

    #[test]
    fn gather_selects_rows_by_bitvector() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        for i in 0..64u32 {
            phys.write_u32(i as u64 * 4, i);
        }
        // Bit-vector 0xF7 repeating: bits 0,1,2,4,5,6,7 of each byte.
        dmems[0].write(512, &[0xF7; 8]);
        let stage =
            DataDescriptor { kind: DescKind::DmemToDms, ..DataDescriptor::read(0, 512, 8, 1) };
        dms.push(0, 0, Descriptor::Data(stage), Time::ZERO);
        let g = DataDescriptor { gather_src: true, ..DataDescriptor::read(0, 0, 64, 4) };
        dms.push(0, 0, Descriptor::Data(g), Time::ZERO);
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 2);
        // 7 of every 8 rows selected: 56 rows.
        assert_eq!(c[1].bytes, 56 * 4);
        // First selected rows: 0,1,2,4,5,...
        assert_eq!(dmems[0].read_u32(0), 0);
        assert_eq!(dmems[0].read_u32(4), 1);
        assert_eq!(dmems[0].read_u32(8), 2);
        assert_eq!(dmems[0].read_u32(12), 4);
    }

    #[test]
    fn concurrent_gathers_trip_the_rtl_bug() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(16, 64 * 1024);
        for core in [0usize, 9] {
            dmems[core].write(512, &[0xFF; 8]);
            let stage =
                DataDescriptor { kind: DescKind::DmemToDms, ..DataDescriptor::read(0, 512, 8, 1) };
            dms.push(core, 0, Descriptor::Data(stage), Time::ZERO);
            let g = DataDescriptor { gather_src: true, ..DataDescriptor::read(0, 0, 64, 4) };
            dms.push(core, 0, Descriptor::Data(g), Time::ZERO);
        }
        dms.advance(&mut phys, &mut dram, &mut dmems);
        match dms.error() {
            Some(DmsError::GatherFifoOverflow { .. }) => {}
            other => panic!("expected gather FIFO overflow, got {other:?}"),
        }
        // Once hung, the DMS stays hung.
        assert!(dms.advance(&mut phys, &mut dram, &mut dmems).is_empty());
    }

    #[test]
    fn fixed_rtl_allows_concurrent_gathers() {
        let cfg = DmsConfig { gather_mode: GatherMode::Fixed, ..DmsConfig::default() };
        let mut dms = Dms::new(cfg, 16);
        let mut phys = PhysMem::new(64 * 1024);
        let mut dram = DramChannel::new(DramConfig::ddr3_1600());
        let mut dmems: Vec<Dmem> = (0..16).map(|_| Dmem::new(32 * 1024)).collect();
        for core in [0usize, 9] {
            dmems[core].write(512, &[0xFF; 8]);
            let stage =
                DataDescriptor { kind: DescKind::DmemToDms, ..DataDescriptor::read(0, 512, 8, 1) };
            dms.push(core, 0, Descriptor::Data(stage), Time::ZERO);
            let g = DataDescriptor { gather_src: true, ..DataDescriptor::read(0, 0, 64, 4) };
            dms.push(core, 0, Descriptor::Data(g), Time::ZERO);
        }
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert!(dms.error().is_none());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn scatter_writes_selected_positions() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        // Select rows 1 and 3 of 8 (bitvector 0b00001010).
        dmems[0].write(512, &[0b0000_1010]);
        for i in 0..2u32 {
            dmems[0].write_u32(i * 4, 777 + i);
        }
        let stage =
            DataDescriptor { kind: DescKind::DmemToDms, ..DataDescriptor::read(0, 512, 1, 1) };
        dms.push(0, 0, Descriptor::Data(stage), Time::ZERO);
        let s = DataDescriptor { scatter_dst: true, ..DataDescriptor::write(4096, 0, 8, 4) };
        dms.push(0, 0, Descriptor::Data(s), Time::ZERO);
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c[1].bytes, 8);
        assert_eq!(phys.read_u32(4096 + 4), 777);
        assert_eq!(phys.read_u32(4096 + 12), 778);
        assert_eq!(phys.read_u32(4096), 0, "unselected rows untouched");
    }

    #[test]
    fn cmem_roundtrip_via_ddr() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        for i in 0..512u32 {
            phys.write_u32(i as u64 * 4, i ^ 0xAAAA);
        }
        let load = DataDescriptor {
            kind: DescKind::DdrToDms,
            cmem_bank: 1,
            is_key: true,
            ..DataDescriptor::read(0, 0, 512, 4)
        };
        let store = DataDescriptor {
            kind: DescKind::DmsToDdr,
            cmem_bank: 1,
            ..DataDescriptor::read(16384, 0, 512, 4)
        };
        dms.push(0, 0, Descriptor::Data(load), Time::ZERO);
        dms.push(0, 0, Descriptor::Data(store), Time::ZERO);
        dms.advance(&mut phys, &mut dram, &mut dmems);
        for i in 0..512u32 {
            assert_eq!(phys.read_u32(16384 + i as u64 * 4), i ^ 0xAAAA);
        }
    }

    #[test]
    fn dms_to_dmem_targets_another_core() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(4, 64 * 1024);
        phys.write(0, &[42; 64]);
        let load = DataDescriptor {
            kind: DescKind::DdrToDms,
            cmem_bank: 0,
            ..DataDescriptor::read(0, 0, 64, 1)
        };
        // Target core 3 via the DDR-address convention.
        let store = DataDescriptor {
            kind: DescKind::DmsToDmem,
            cmem_bank: 0,
            ..DataDescriptor::read(3, 256, 64, 1)
        };
        dms.push(0, 0, Descriptor::Data(load), Time::ZERO);
        dms.push(0, 0, Descriptor::Data(store), Time::ZERO);
        dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(dmems[3].slice(256, 64), &[42u8; 64][..]);
    }

    #[test]
    fn oversized_cmem_load_is_rejected() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 1 << 20);
        let load = DataDescriptor {
            kind: DescKind::DdrToDms,
            ..DataDescriptor::read(0, 0, 8192, 4) // 32 KB > 8 KB bank
        };
        dms.push(0, 0, Descriptor::Data(load), Time::ZERO);
        dms.advance(&mut phys, &mut dram, &mut dmems);
        assert!(matches!(dms.error(), Some(DmsError::BadDescriptor(_))));
    }

    #[test]
    fn outstanding_limit_serializes_fifth_descriptor() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(8, 1 << 20);
        // 5 descriptors from 5 cores in one macro: the 5th must start
        // after the 1st finishes (4 DMAC slots per macro).
        for core in 0..5 {
            let d = DataDescriptor::read(core as u64 * 8192, 0, 1024, 4);
            dms.push(core, 0, Descriptor::Data(d), Time::ZERO);
        }
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 5);
        let first_finish = c.iter().map(|x| x.finish).min().unwrap();
        let last_start = c.iter().map(|x| x.start).max().unwrap();
        assert!(last_start >= first_finish);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::descriptor::EventCond;
    use dpu_mem::DramConfig;

    fn setup(n_cores: usize, mem: usize) -> (Dms, PhysMem, DramChannel, Vec<Dmem>) {
        (
            Dms::new(DmsConfig::default(), n_cores),
            PhysMem::new(mem),
            DramChannel::new(DramConfig::ddr3_1600()),
            (0..n_cores).map(|_| Dmem::new(32 * 1024)).collect(),
        )
    }

    #[test]
    fn dms_to_dms_moves_between_banks() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        phys.write(0, &[0xEE; 128]);
        let load = DataDescriptor {
            kind: DescKind::DdrToDms,
            cmem_bank: 0,
            ..DataDescriptor::read(0, 0, 128, 1)
        };
        let internal = DataDescriptor {
            kind: DescKind::DmsToDms,
            cmem_bank: 0, // source bank; destination is (0+1)%3 = 1
            ..DataDescriptor::read(0, 0, 128, 1)
        };
        let out = DataDescriptor {
            kind: DescKind::DmsToDdr,
            cmem_bank: 1,
            ..DataDescriptor::read(8192, 0, 128, 1)
        };
        for d in [load, internal, out] {
            dms.push(0, 0, Descriptor::Data(d), Time::ZERO);
        }
        dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(phys.slice(8192, 128), &[0xEE; 128][..]);
    }

    #[test]
    fn strided_write_scatters_column_into_row_major() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        for i in 0..32u32 {
            dmems[0].write_u32(i * 4, 0x5000 + i);
        }
        let d = DataDescriptor {
            ddr_stride: 16, // 16-byte rows, writing field at offset 8
            ..DataDescriptor::write(8, 0, 32, 4)
        };
        dms.push(0, 1, Descriptor::Data(d), Time::ZERO);
        dms.advance(&mut phys, &mut dram, &mut dmems);
        for i in 0..32u64 {
            assert_eq!(phys.read_u32(8 + i * 16), 0x5000 + i as u32);
        }
    }

    #[test]
    fn notify_then_wait_chain_across_channels() {
        // Channel 0 produces into DMEM and notifies event 4; channel 1's
        // write-back descriptor waits for that same event before draining
        // the buffer to DDR — a cross-channel producer/consumer.
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 64 * 1024);
        for i in 0..64u32 {
            phys.write_u32(i as u64 * 4, 0xAB00 + i);
        }
        let produce = DataDescriptor::read(0, 0, 64, 4).with_notify(4);
        let drain = DataDescriptor::write(4096, 0, 64, 4).with_wait(EventCond::is_set(4));
        dms.push(0, 1, Descriptor::Data(drain), Time::ZERO);
        dms.push(0, 0, Descriptor::Data(produce), Time::ZERO);
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(c.len(), 2);
        let produce_c = c.iter().find(|x| x.kind == DescKind::DdrToDmem).unwrap();
        let drain_c = c.iter().find(|x| x.kind == DescKind::DmemToDdr).unwrap();
        assert!(drain_c.start >= produce_c.finish, "drain must wait");
        for i in 0..64u64 {
            assert_eq!(phys.read_u32(4096 + i * 4), 0xAB00 + i as u32);
        }
    }

    #[test]
    fn completions_carry_monotonic_sequence_numbers() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(4, 64 * 1024);
        for core in 0..4 {
            dms.push(core, 0, Descriptor::Data(DataDescriptor::read(0, 0, 16, 4)), Time::ZERO);
        }
        let c = dms.advance(&mut phys, &mut dram, &mut dmems);
        let seqs: Vec<u64> = c.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pending_counts_undispatched_descriptors() {
        let (mut dms, mut phys, mut dram, mut dmems) = setup(1, 4096);
        let blocked = DataDescriptor::read(0, 0, 16, 4).with_wait(EventCond::is_set(2));
        dms.push(0, 0, Descriptor::Data(blocked), Time::ZERO);
        dms.push(0, 0, Descriptor::Data(DataDescriptor::read(64, 64, 16, 4)), Time::ZERO);
        dms.advance(&mut phys, &mut dram, &mut dmems);
        // Both stuck behind the event wait (in-order channel).
        assert_eq!(dms.pending(), 2);
        dms.set_event(0, 2, Time::from_cycles(10));
        dms.advance(&mut phys, &mut dram, &mut dmems);
        assert_eq!(dms.pending(), 0);
    }
}
