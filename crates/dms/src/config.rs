//! DMS timing and capacity parameters.

/// Behaviour of the gather datapath.
///
/// The first silicon had an RTL bug: "when all 32 cores issue gather
/// operations, a FIFO that holds the bitvector counts in the DMAC
/// overflows causing the DMAD units to stall indefinitely" (§3.4). The
/// shipped workaround serializes gathers to one core at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatherMode {
    /// First-silicon behaviour: concurrent gathers overflow the count FIFO
    /// and hang; callers must serialize (the Figure 12 configuration).
    #[default]
    BugWorkaround,
    /// Intended behaviour (fixed RTL): gathers from all cores proceed in
    /// parallel at line speed.
    Fixed,
}

/// Static configuration of the DMS.
#[derive(Debug, Clone, PartialEq)]
pub struct DmsConfig {
    /// Cycles for the DMAD to fetch a descriptor from DMEM and dispatch it
    /// through the DMAX into the DMAC (per-descriptor fixed overhead;
    /// amortized by large tiles — the Figure 11 trend).
    pub dispatch_overhead: u64,
    /// One-way DMAX transit latency, cycles (data return to DMEM).
    pub dmax_latency: u64,
    /// Maximum descriptors outstanding to the DMAC per DMAX (per macro).
    pub outstanding_per_macro: usize,
    /// Hash/range engine throughput in key bytes per cycle.
    pub hash_bytes_per_cycle: u64,
    /// Partition store throughput into DMEMs, bytes/cycle per DMAX.
    pub store_bytes_per_cycle: u64,
    /// Column-memory bank size in bytes (3 banks).
    pub cmem_bank_bytes: usize,
    /// CRC memory bank size in bytes (2 banks).
    pub crc_bank_bytes: usize,
    /// CID memory buffer size in bytes (2 buffers).
    pub cid_buf_bytes: usize,
    /// Bit-vector memory bank size in bytes (4 banks, one per DMAX).
    pub bv_bank_bytes: usize,
    /// Per-row engine cost for gather/scatter mask evaluation, cycles.
    pub gather_row_overhead_num: u64,
    /// Denominator for the per-row gather cost (rows per cycle = den/num).
    pub gather_row_overhead_den: u64,
    /// Gather datapath behaviour.
    pub gather_mode: GatherMode,
    /// Number of dpCores per macro (8 on the fabricated part).
    pub cores_per_macro: usize,
}

impl Default for DmsConfig {
    /// Parameters of the fabricated 40 nm part (§3.2): 42.5 KB of internal
    /// SRAM split as 3×8 KB CMEM + 2×1 KB CRC + 2×256 B CID + 4×4 KB BV.
    fn default() -> Self {
        DmsConfig {
            dispatch_overhead: 24,
            dmax_latency: 8,
            outstanding_per_macro: 4,
            hash_bytes_per_cycle: 8,
            store_bytes_per_cycle: 16,
            cmem_bank_bytes: 8 * 1024,
            crc_bank_bytes: 1024,
            cid_buf_bytes: 256,
            bv_bank_bytes: 4 * 1024,
            gather_row_overhead_num: 1,
            gather_row_overhead_den: 4,
            gather_mode: GatherMode::default(),
            cores_per_macro: 8,
        }
    }
}

impl DmsConfig {
    /// Total internal SRAM in bytes (§3.1 quotes ~42.5 KB).
    pub fn internal_sram_bytes(&self) -> usize {
        3 * self.cmem_bank_bytes
            + 2 * self.crc_bank_bytes
            + 2 * self.cid_buf_bytes
            + 4 * self.bv_bank_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sram_matches_paper_total() {
        let c = DmsConfig::default();
        // 24 KB CMEM + 2 KB CRC + 0.5 KB CID + 16 KB BV = 42.5 KB.
        assert_eq!(c.internal_sram_bytes(), 42 * 1024 + 512);
    }

    #[test]
    fn default_gather_mode_is_buggy_silicon() {
        assert_eq!(GatherMode::default(), GatherMode::BugWorkaround);
    }
}
