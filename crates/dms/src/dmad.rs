//! The per-dpCore DMA-DMEM unit (DMAD).
//!
//! Each dpCore's DMAD manages two descriptor channels. Pushed descriptors
//! are linked into an active list; a loop control descriptor re-executes a
//! suffix of the list a fixed number of times, and per-channel source/
//! destination address registers auto-increment across executions so that
//! "16 MB of data can be streamed through a DMEM of 32 KB at line speeds
//! with just three DMS descriptors" (§2.1).

use std::collections::HashMap;

use dpu_sim::Time;

use crate::descriptor::{ControlDescriptor, DataDescriptor, Descriptor};

/// Number of descriptor channels per DMAD.
pub const CHANNELS_PER_CORE: usize = 2;

/// One descriptor channel of a DMAD.
#[derive(Debug, Clone, Default)]
pub struct Channel {
    program: Vec<Descriptor>,
    pc: usize,
    loop_remaining: HashMap<usize, u16>,
    src_reg: Option<u64>,
    dst_reg: Option<u64>,
    /// Earliest time the next descriptor may dispatch (in-order channel).
    ready: Time,
    /// Completion time of the channel's most recent data descriptor;
    /// descriptors carrying a wait precondition sample events no earlier
    /// than this, so buffer-refill waits observe the prior buffer's
    /// notify before testing for its clear.
    last_finish: Time,
}

/// A data descriptor after DMAD address resolution (auto-increment
/// registers applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedData {
    /// The descriptor with effective addresses substituted.
    pub desc: DataDescriptor,
}

/// What the channel wants to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelStep {
    /// Nothing left in the program.
    Idle,
    /// A data descriptor ready for the DMAC (addresses resolved).
    Data(ResolvedData),
    /// A control descriptor to apply (event set/clear/wait).
    Control(ControlDescriptor),
}

impl Channel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a descriptor to the active list.
    pub fn push(&mut self, desc: Descriptor, now: Time) {
        self.ready = self.ready.max(now);
        self.program.push(desc);
    }

    /// Earliest dispatch time for the head descriptor.
    pub fn ready(&self) -> Time {
        self.ready
    }

    /// Sets the earliest dispatch time (used after waits/dispatch).
    pub fn set_ready(&mut self, t: Time) {
        self.ready = self.ready.max(t);
    }

    /// Records the completion time of the channel's latest data descriptor.
    pub fn set_last_finish(&mut self, t: Time) {
        self.last_finish = self.last_finish.max(t);
    }

    /// Completion time of the most recent data descriptor on this channel.
    pub fn last_finish(&self) -> Time {
        self.last_finish
    }

    /// Number of descriptors not yet executed (loop bodies count once).
    pub fn pending(&self) -> usize {
        self.program.len().saturating_sub(self.pc)
    }

    /// Inspects the next step without consuming it. Loop descriptors are
    /// resolved transparently (the caller never sees them).
    pub fn peek(&mut self) -> ChannelStep {
        loop {
            match self.program.get(self.pc) {
                None => return ChannelStep::Idle,
                Some(Descriptor::Control(ControlDescriptor::Loop { back, iterations })) => {
                    let (back, iterations) = (*back as usize, *iterations);
                    let pc = self.pc;
                    let rem = self.loop_remaining.entry(pc).or_insert(iterations);
                    if *rem > 0 {
                        *rem -= 1;
                        assert!(back <= pc, "loop target before program start");
                        self.pc = pc - back;
                    } else {
                        self.loop_remaining.remove(&pc);
                        self.pc = pc + 1;
                    }
                }
                Some(Descriptor::Control(c)) => return ChannelStep::Control(c.clone()),
                Some(Descriptor::Data(d)) => {
                    return ChannelStep::Data(ResolvedData { desc: self.resolve(*d) })
                }
            }
        }
    }

    /// Consumes the descriptor returned by the last [`peek`](Self::peek),
    /// committing address-register updates for data descriptors.
    pub fn commit(&mut self) {
        if let Some(Descriptor::Data(d)) = self.program.get(self.pc) {
            let bytes = d.bytes();
            if d.src_addr_inc {
                let cur = self.src_reg.unwrap_or(d.ddr_addr);
                self.src_reg = Some(cur + bytes);
            }
            if d.dst_addr_inc {
                let cur = self.dst_reg.unwrap_or(d.dmem_addr as u64);
                self.dst_reg = Some(cur + bytes);
            }
        }
        self.pc += 1;
    }

    /// Applies the channel's auto-increment registers to a descriptor.
    fn resolve(&self, mut d: DataDescriptor) -> DataDescriptor {
        if d.src_addr_inc {
            d.ddr_addr = self.src_reg.unwrap_or(d.ddr_addr);
        }
        if d.dst_addr_inc {
            d.dmem_addr = self.dst_reg.unwrap_or(d.dmem_addr as u64) as u16;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::EventCond;

    fn data(ddr: u64, dmem: u16, rows: u16) -> Descriptor {
        Descriptor::Data(DataDescriptor::read(ddr, dmem, rows, 4))
    }

    #[test]
    fn fifo_order_without_loops() {
        let mut ch = Channel::new();
        ch.push(data(0, 0, 1), Time::ZERO);
        ch.push(data(16, 0, 1), Time::ZERO);
        match ch.peek() {
            ChannelStep::Data(r) => assert_eq!(r.desc.ddr_addr, 0),
            other => panic!("{other:?}"),
        }
        ch.commit();
        match ch.peek() {
            ChannelStep::Data(r) => assert_eq!(r.desc.ddr_addr, 16),
            other => panic!("{other:?}"),
        }
        ch.commit();
        assert_eq!(ch.peek(), ChannelStep::Idle);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn loop_reexecutes_chain() {
        // desc0, desc1, loop(back=2, iterations=3): the pair runs 4 times.
        let mut ch = Channel::new();
        ch.push(data(0, 0, 1), Time::ZERO);
        ch.push(data(1000, 512, 1), Time::ZERO);
        ch.push(
            Descriptor::Control(ControlDescriptor::Loop { back: 2, iterations: 3 }),
            Time::ZERO,
        );
        let mut executed = Vec::new();
        loop {
            match ch.peek() {
                ChannelStep::Data(r) => {
                    executed.push(r.desc.ddr_addr);
                    ch.commit();
                }
                ChannelStep::Idle => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(executed, vec![0, 1000, 0, 1000, 0, 1000, 0, 1000]);
    }

    #[test]
    fn loop_with_src_auto_increment_walks_dram() {
        // The paper's Listing 1: two 1 KB-buffer descriptors + loop, with
        // source auto-increment: successive executions read consecutive
        // DRAM chunks while alternating DMEM buffers.
        let rows = 256u16; // 256 × 4 B = 1 KB
        let d0 = DataDescriptor::read(0x10000, 0, rows, 4).with_src_inc();
        let d1 = DataDescriptor::read(0x10000, 1024, rows, 4).with_src_inc();
        let mut ch = Channel::new();
        ch.push(Descriptor::Data(d0), Time::ZERO);
        ch.push(Descriptor::Data(d1), Time::ZERO);
        ch.push(
            Descriptor::Control(ControlDescriptor::Loop { back: 2, iterations: 2 }),
            Time::ZERO,
        );
        let mut seen = Vec::new();
        loop {
            match ch.peek() {
                ChannelStep::Data(r) => {
                    seen.push((r.desc.ddr_addr, r.desc.dmem_addr));
                    ch.commit();
                }
                ChannelStep::Idle => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            seen,
            vec![
                (0x10000, 0),
                (0x10400, 1024),
                (0x10800, 0),
                (0x10C00, 1024),
                (0x11000, 0),
                (0x11400, 1024),
            ]
        );
    }

    #[test]
    fn control_descriptors_surface() {
        let mut ch = Channel::new();
        ch.push(
            Descriptor::Control(ControlDescriptor::WaitEvent { cond: EventCond::is_set(3) }),
            Time::ZERO,
        );
        match ch.peek() {
            ChannelStep::Control(ControlDescriptor::WaitEvent { cond }) => {
                assert_eq!(cond.event, 3);
            }
            other => panic!("{other:?}"),
        }
        ch.commit();
        assert_eq!(ch.peek(), ChannelStep::Idle);
    }

    #[test]
    fn ready_time_monotonic() {
        let mut ch = Channel::new();
        ch.push(data(0, 0, 1), Time::from_cycles(100));
        assert_eq!(ch.ready(), Time::from_cycles(100));
        ch.set_ready(Time::from_cycles(50)); // cannot go backward
        assert_eq!(ch.ready(), Time::from_cycles(100));
        ch.set_ready(Time::from_cycles(200));
        assert_eq!(ch.ready(), Time::from_cycles(200));
    }

    #[test]
    fn zero_iteration_loop_falls_through() {
        let mut ch = Channel::new();
        ch.push(data(0, 0, 1), Time::ZERO);
        ch.push(
            Descriptor::Control(ControlDescriptor::Loop { back: 1, iterations: 0 }),
            Time::ZERO,
        );
        ch.push(data(999, 0, 1), Time::ZERO);
        let mut count0 = 0;
        let mut seen999 = false;
        loop {
            match ch.peek() {
                ChannelStep::Data(r) => {
                    if r.desc.ddr_addr == 0 {
                        count0 += 1;
                    } else if r.desc.ddr_addr == 999 {
                        seen999 = true;
                    }
                    ch.commit();
                }
                ChannelStep::Idle => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(count0, 1, "zero-iteration loop must not re-run the body");
        assert!(seen999);
    }
}
