//! Double-buffered streaming kernels.
//!
//! The canonical DPU software pattern (§2.1, Listing 1): descriptors fill
//! one DMEM buffer while the core consumes the other, with events for
//! flow control. [`StreamKernel`] packages that pattern: give it the
//! column layout and a per-tile closure, and it emits the descriptor
//! chain, waits, clears and compute actions in the right order. Every
//! microbenchmark and most applications are built on it — Figure 11 is
//! exactly this kernel with an empty closure.

use std::collections::VecDeque;

use dpu_dms::{DataDescriptor, DescKind, Descriptor};
use dpu_sim::Time;

use crate::program::{CoreAction, CoreCtx, CoreProgram};

/// Layout of a streaming job over a column-major table.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// DDR base address of each column.
    pub cols: Vec<u64>,
    /// Total rows to stream.
    pub rows_total: u64,
    /// Rows per tile (tile bytes = rows × width per column).
    pub rows_per_tile: u32,
    /// Element width in bytes (1, 2, 4, 8).
    pub col_width: u8,
    /// DMEM base of the buffer region (needs `2 × cols × tile` bytes).
    pub dmem_base: u32,
    /// If set, write each processed tile back to this DDR base
    /// (mirroring the column layout) — the "RW" mode of Figure 11.
    pub write_back: Option<u64>,
    /// Number of DMEM buffers to rotate through: 2 for the classic
    /// double buffer, 3 for the triple buffering the JSON workload uses
    /// ("the DMS also triple-buffers the data in 8 KB chunks", §5.5).
    pub buffers: u8,
}

impl StreamSpec {
    /// Bytes per tile per column.
    pub fn tile_bytes(&self) -> u32 {
        self.rows_per_tile * self.col_width as u32
    }

    /// Number of tiles (last may be short).
    pub fn tiles(&self) -> u64 {
        self.rows_total.div_ceil(self.rows_per_tile as u64)
    }

    /// Rows in tile `i`.
    pub fn tile_rows(&self, i: u64) -> u32 {
        let done = i * self.rows_per_tile as u64;
        (self.rows_total - done).min(self.rows_per_tile as u64) as u32
    }

    /// DMEM address of column `c` in buffer `b`.
    pub fn buf_addr(&self, c: usize, b: u64) -> u32 {
        self.dmem_base + (c as u32 * self.buffers as u32 + b as u32) * self.tile_bytes()
    }

    /// Total DMEM bytes the kernel occupies.
    pub fn dmem_footprint(&self) -> u32 {
        self.buffers as u32 * self.cols.len() as u32 * self.tile_bytes()
    }

    /// The buffer tile `i` lands in.
    pub fn buf_of(&self, tile: u64) -> u64 {
        tile % self.buffers as u64
    }
}

/// A consumed tile's location, handed to the per-tile closure.
#[derive(Debug, Clone)]
pub struct TileRef {
    /// Tile index.
    pub index: u64,
    /// Rows in this tile.
    pub rows: u32,
    /// DMEM address of each column's data.
    pub col_addrs: Vec<u32>,
}

enum Item {
    Act(CoreAction),
    Consume(u64),
}

/// A [`CoreProgram`] implementing the double-buffered streaming idiom.
///
/// The closure receives the tile (with real data in DMEM) and returns the
/// compute cycles the dpCore spends on it.
pub struct StreamKernel<F>
where
    F: FnMut(&mut CoreCtx<'_>, &TileRef) -> u64,
{
    spec: StreamSpec,
    on_tile: F,
    queue: VecDeque<Item>,
    next_consume: u64,
    started: bool,
    /// Completion time observed at the last step (diagnostics).
    pub last_seen: Time,
}

impl<F> StreamKernel<F>
where
    F: FnMut(&mut CoreCtx<'_>, &TileRef) -> u64,
{
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no columns, zero tile rows, or the buffers
    /// would not fit a 64 KB DMEM address space.
    pub fn new(spec: StreamSpec, on_tile: F) -> Self {
        assert!(!spec.cols.is_empty(), "need at least one column");
        assert!(spec.rows_per_tile > 0, "tile must hold rows");
        assert!((2..=4).contains(&spec.buffers), "2–4 rotating buffers supported");
        assert!(
            spec.dmem_base as u64 + spec.dmem_footprint() as u64 <= u16::MAX as u64 + 1,
            "stream buffers exceed DMEM addressing"
        );
        StreamKernel {
            spec,
            on_tile,
            queue: VecDeque::new(),
            next_consume: 0,
            started: false,
            last_seen: Time::ZERO,
        }
    }

    /// Read event for buffer `b`.
    fn rd_ev(b: u64) -> u8 {
        b as u8
    }

    /// Write-back completion event for buffer `b`.
    fn wr_ev(b: u64) -> u8 {
        16 + b as u8
    }

    fn push_reads(&mut self, tile: u64) {
        let b = self.spec.buf_of(tile);
        let rows = self.spec.tile_rows(tile);
        let ncols = self.spec.cols.len();
        for (c, &base) in self.spec.cols.iter().enumerate() {
            let mut d = DataDescriptor::read(
                base + tile * self.spec.tile_bytes() as u64,
                self.spec.buf_addr(c, b) as u16,
                rows as u16,
                self.spec.col_width,
            );
            if c + 1 == ncols {
                d = d.with_notify(Self::rd_ev(b));
                d.last_col = true;
            }
            self.queue
                .push_back(Item::Act(CoreAction::Push { chan: 0, desc: Descriptor::Data(d) }));
        }
    }

    fn push_writes(&mut self, tile: u64, wb_base: u64) {
        let b = self.spec.buf_of(tile);
        let rows = self.spec.tile_rows(tile);
        let ncols = self.spec.cols.len();
        let col_span = self.spec.rows_total * self.spec.col_width as u64;
        for c in 0..ncols {
            let mut d = DataDescriptor {
                kind: DescKind::DmemToDdr,
                ..DataDescriptor::read(
                    wb_base + c as u64 * col_span + tile * self.spec.tile_bytes() as u64,
                    self.spec.buf_addr(c, b) as u16,
                    rows as u16,
                    self.spec.col_width,
                )
            };
            if c + 1 == ncols {
                d = d.with_notify(Self::wr_ev(b));
            }
            self.queue
                .push_back(Item::Act(CoreAction::Push { chan: 1, desc: Descriptor::Data(d) }));
        }
    }

    fn plan_tile(&mut self, i: u64) {
        let b = self.spec.buf_of(i);
        let nb = self.spec.buffers as u64;
        let tiles = self.spec.tiles();
        self.queue.push_back(Item::Act(CoreAction::Wfe(Self::rd_ev(b))));
        self.queue.push_back(Item::Consume(i));
        if let Some(wb) = self.spec.write_back {
            self.push_writes(i, wb);
        }
        self.queue.push_back(Item::Act(CoreAction::Clev(Self::rd_ev(b))));
        if i + nb < tiles {
            if self.spec.write_back.is_some() {
                // The write of tile i must drain before its buffer is
                // refilled by tile i+2.
                self.queue.push_back(Item::Act(CoreAction::Wfe(Self::wr_ev(b))));
                self.queue.push_back(Item::Act(CoreAction::Clev(Self::wr_ev(b))));
            }
            self.push_reads(i + nb);
        } else if self.spec.write_back.is_some() {
            // Final tiles: still collect the write completion so the
            // program does not finish before its data is in DDR.
            self.queue.push_back(Item::Act(CoreAction::Wfe(Self::wr_ev(b))));
            self.queue.push_back(Item::Act(CoreAction::Clev(Self::wr_ev(b))));
        }
    }
}

impl<F> CoreProgram for StreamKernel<F>
where
    F: FnMut(&mut CoreCtx<'_>, &TileRef) -> u64,
{
    fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction {
        self.last_seen = ctx.now;
        loop {
            if let Some(item) = self.queue.pop_front() {
                match item {
                    Item::Act(a) => return a,
                    Item::Consume(i) => {
                        let b = self.spec.buf_of(i);
                        let tile = TileRef {
                            index: i,
                            rows: self.spec.tile_rows(i),
                            col_addrs: (0..self.spec.cols.len())
                                .map(|c| self.spec.buf_addr(c, b))
                                .collect(),
                        };
                        let cycles = (self.on_tile)(ctx, &tile);
                        if cycles > 0 {
                            return CoreAction::Compute(cycles);
                        }
                        continue;
                    }
                }
            }
            if !self.started {
                self.started = true;
                let tiles = self.spec.tiles();
                for t in 0..tiles.min(self.spec.buffers as u64) {
                    self.push_reads(t);
                }
                continue;
            }
            if self.next_consume < self.spec.tiles() {
                let i = self.next_consume;
                self.next_consume += 1;
                self.plan_tile(i);
                continue;
            }
            return CoreAction::Done;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpuConfig;
    use crate::soc::Dpu;

    #[test]
    fn spec_geometry() {
        let s = StreamSpec {
            cols: vec![0, 1000],
            rows_total: 1000,
            rows_per_tile: 256,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        assert_eq!(s.tile_bytes(), 1024);
        assert_eq!(s.tiles(), 4);
        assert_eq!(s.tile_rows(3), 1000 - 3 * 256);
        assert_eq!(s.buf_addr(0, 0), 0);
        assert_eq!(s.buf_addr(0, 1), 1024);
        assert_eq!(s.buf_addr(1, 0), 2048);
        assert_eq!(s.dmem_footprint(), 4096);
    }

    #[test]
    fn stream_reads_all_data_in_order() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let rows = 4096u64;
        for r in 0..rows {
            dpu.phys_mut().write_u32(r * 4, r as u32);
        }
        let spec = StreamSpec {
            cols: vec![0],
            rows_total: rows,
            rows_per_tile: 512,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        // Sum all values through the closure; report via DRAM.
        let kernel = StreamKernel::new(spec, move |ctx, tile| {
            let mut sum = ctx.phys.read_u64(1 << 20);
            for r in 0..tile.rows {
                sum += ctx.dmem.read_u32(tile.col_addrs[0] + r * 4) as u64;
            }
            ctx.phys.write_u64(1 << 20, sum);
            tile.rows as u64
        });
        let mut programs: Vec<Box<dyn CoreProgram>> = vec![Box::new(kernel)];
        for _ in 1..dpu.n_cores() {
            programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
        }
        dpu.run(&mut programs).unwrap();
        let expect: u64 = (0..rows).sum();
        assert_eq!(dpu.phys().read_u64(1 << 20), expect);
    }

    #[test]
    fn multi_column_tiles_arrive_together() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let rows = 1024u64;
        let col1 = 1 << 16;
        for r in 0..rows {
            dpu.phys_mut().write_u32(r * 4, r as u32);
            dpu.phys_mut().write_u32(col1 + r * 4, (r * 2) as u32);
        }
        let spec = StreamSpec {
            cols: vec![0, col1],
            rows_total: rows,
            rows_per_tile: 256,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        let kernel = StreamKernel::new(spec, move |ctx, tile| {
            for r in 0..tile.rows {
                let a = ctx.dmem.read_u32(tile.col_addrs[0] + r * 4);
                let b = ctx.dmem.read_u32(tile.col_addrs[1] + r * 4);
                assert_eq!(b, a * 2, "columns must be row-aligned in the tile");
            }
            0
        });
        let mut programs: Vec<Box<dyn CoreProgram>> = vec![Box::new(kernel)];
        for _ in 1..dpu.n_cores() {
            programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
        }
        dpu.run(&mut programs).unwrap();
    }

    #[test]
    fn write_back_mirrors_input() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let rows = 2048u64;
        let wb = 1 << 20;
        for r in 0..rows {
            dpu.phys_mut().write_u32(r * 4, 0xC0DE + r as u32);
        }
        let spec = StreamSpec {
            cols: vec![0],
            rows_total: rows,
            rows_per_tile: 256,
            col_width: 4,
            dmem_base: 0,
            write_back: Some(wb),
            buffers: 2,
        };
        let kernel = StreamKernel::new(spec, |_, _| 0);
        let mut programs: Vec<Box<dyn CoreProgram>> = vec![Box::new(kernel)];
        for _ in 1..dpu.n_cores() {
            programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
        }
        let report = dpu.run(&mut programs).unwrap();
        for r in 0..rows {
            assert_eq!(dpu.phys().read_u32(wb + r * 4), 0xC0DE + r as u32);
        }
        // RW moves twice the bytes of R.
        assert_eq!(report.dms_bytes, rows * 4 * 2);
    }

    #[test]
    fn larger_tiles_give_higher_bandwidth() {
        // The Figure 11 trend: bigger buffers amortize per-descriptor
        // overheads.
        let mut results = Vec::new();
        for tile_rows in [16u32, 64, 1024] {
            let mut dpu = Dpu::new(DpuConfig::test_small());
            let rows = 64 * 1024u64;
            let spec = StreamSpec {
                cols: vec![0],
                rows_total: rows,
                rows_per_tile: tile_rows,
                col_width: 4,
                dmem_base: 0,
                write_back: None,
                buffers: 2,
            };
            let kernel = StreamKernel::new(spec, |_, _| 0);
            let mut programs: Vec<Box<dyn CoreProgram>> = vec![Box::new(kernel)];
            for _ in 1..dpu.n_cores() {
                programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
            }
            let report = dpu.run(&mut programs).unwrap();
            results.push(report.dms_gbytes_per_sec(dpu.config().clock));
        }
        assert!(
            results[0] < results[1] && results[1] < results[2],
            "bandwidth should rise with tile size: {results:?}"
        );
    }

    #[test]
    fn triple_buffering_reads_everything_too() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let rows = 3000u64;
        for r in 0..rows {
            dpu.phys_mut().write_u32(r * 4, r as u32);
        }
        let spec = StreamSpec {
            cols: vec![0],
            rows_total: rows,
            rows_per_tile: 256,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 3,
        };
        assert_eq!(spec.dmem_footprint(), 3 * 1024);
        let kernel = StreamKernel::new(spec, move |ctx, tile| {
            let mut sum = ctx.phys.read_u64(1 << 20);
            for r in 0..tile.rows {
                sum += ctx.dmem.read_u32(tile.col_addrs[0] + r * 4) as u64;
            }
            ctx.phys.write_u64(1 << 20, sum);
            0
        });
        let mut programs: Vec<Box<dyn CoreProgram>> = vec![Box::new(kernel)];
        for _ in 1..dpu.n_cores() {
            programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
        }
        dpu.run(&mut programs).unwrap();
        assert_eq!(dpu.phys().read_u64(1 << 20), (0..rows).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "2–4 rotating buffers")]
    fn single_buffer_rejected() {
        let spec = StreamSpec {
            cols: vec![0],
            rows_total: 64,
            rows_per_tile: 64,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 1,
        };
        let _ = StreamKernel::new(spec, |_, _| 0);
    }

    #[test]
    #[should_panic(expected = "exceed DMEM addressing")]
    fn oversized_buffers_rejected() {
        let spec = StreamSpec {
            cols: vec![0; 8],
            rows_total: 1 << 20,
            rows_per_tile: 2048,
            col_width: 8,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        let _ = StreamKernel::new(spec, |_, _| 0);
    }
}
