//! The DPU power model (Figure 5).
//!
//! The fabricated 40 nm part is provisioned at 5.8 W. "Over 37% of our
//! power goes towards leakage, since we use high leakage circuits to meet
//! timing constraints. Each dpCore consumes 51 mW of dynamic power at
//! 800 MHz" (§2.5). The paper optimizes for *provisioned* power (rack
//! provisioning cost), so performance/watt throughout uses the SoC's
//! provisioned figure, not activity-dependent draw.

use crate::config::{DpuConfig, ProcessNode};

/// One slice of the SoC power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerComponent {
    /// Component name as it would appear in Figure 5.
    pub name: &'static str,
    /// Watts attributed to the component.
    pub watts: f64,
}

/// The Figure 5 power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// All components; sums to [`total_watts`](Self::total_watts).
    pub components: Vec<PowerComponent>,
}

impl PowerBreakdown {
    /// The breakdown for a configuration.
    ///
    /// At 40 nm the split follows the paper's anchors: 37 % leakage and
    /// 51 mW × 32 dpCore dynamic power, with the remainder distributed
    /// over the DMS, SRAM/caches, the DDR controller + PHY, the ARM
    /// subsystem and the interconnect, summing to 5.8 W. The 16 nm
    /// variant scales the core complex by 5× and re-balances leakage for
    /// the FinFET node.
    pub fn for_config(config: &DpuConfig) -> Self {
        match config.node {
            ProcessNode::Nm40 => {
                let dpcores = 0.051 * config.n_cores as f64; // 1.632 W
                PowerBreakdown {
                    components: vec![
                        PowerComponent { name: "leakage", watts: 2.146 },
                        PowerComponent { name: "dpCores (dynamic)", watts: dpcores },
                        PowerComponent { name: "DMS", watts: 0.52 },
                        PowerComponent { name: "caches + DMEM SRAM", watts: 0.45 },
                        PowerComponent { name: "DDR controller + PHY", watts: 0.62 },
                        PowerComponent { name: "A9 + M0 subsystem", watts: 0.30 },
                        PowerComponent { name: "ATE + MBC + NoC", watts: 0.132 },
                    ],
                }
            }
            ProcessNode::Nm16 => {
                let dpcores = 0.030 * config.n_cores as f64; // 4.8 W at 160 cores
                PowerBreakdown {
                    components: vec![
                        PowerComponent { name: "leakage", watts: 2.4 },
                        PowerComponent { name: "dpCores (dynamic)", watts: dpcores },
                        PowerComponent { name: "DMS ×5", watts: 1.8 },
                        PowerComponent { name: "caches + DMEM SRAM", watts: 1.4 },
                        PowerComponent { name: "DDR4 controllers + PHY", watts: 1.0 },
                        PowerComponent { name: "A9 + M0 subsystem", watts: 0.3 },
                        PowerComponent { name: "ATE + MBC + NoC", watts: 0.3 },
                    ],
                }
            }
        }
    }

    /// Sum over components.
    pub fn total_watts(&self) -> f64 {
        self.components.iter().map(|c| c.watts).sum()
    }

    /// Fraction of total attributed to `name` (0 if absent).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total_watts();
        self.components.iter().find(|c| c.name == name).map(|c| c.watts / total).unwrap_or(0.0)
    }
}

/// Performance-per-watt ratio between two platforms given their
/// throughputs (any consistent unit) and provisioned powers.
///
/// # Example
///
/// ```
/// use dpu_core::power::perf_per_watt_gain;
/// // DPU at 1/3 the throughput of a 145 W Xeon, at 6 W: 8.1× gain.
/// let g = perf_per_watt_gain(1.0, 6.0, 3.0, 145.0);
/// assert!((g - 8.05).abs() < 0.01);
/// ```
pub fn perf_per_watt_gain(
    dpu_throughput: f64,
    dpu_watts: f64,
    baseline_throughput: f64,
    baseline_watts: f64,
) -> f64 {
    (dpu_throughput / dpu_watts) / (baseline_throughput / baseline_watts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm40_breakdown_totals_5_8w() {
        let b = PowerBreakdown::for_config(&DpuConfig::nm40());
        assert!((b.total_watts() - 5.8).abs() < 0.01, "total {} W ≠ 5.8 W", b.total_watts());
    }

    #[test]
    fn leakage_is_over_37_percent() {
        let b = PowerBreakdown::for_config(&DpuConfig::nm40());
        let f = b.fraction("leakage");
        assert!(f > 0.365 && f < 0.39, "leakage fraction {f}");
    }

    #[test]
    fn dpcores_draw_51mw_each() {
        let b = PowerBreakdown::for_config(&DpuConfig::nm40());
        let cores = b.components.iter().find(|c| c.name == "dpCores (dynamic)").unwrap();
        assert!((cores.watts - 32.0 * 0.051).abs() < 1e-9);
    }

    #[test]
    fn nm16_fits_12w_tdp() {
        let b = PowerBreakdown::for_config(&DpuConfig::nm16());
        assert!(b.total_watts() <= 12.0 + 1e-9, "16 nm total {}", b.total_watts());
        assert!(b.total_watts() > 11.0, "suspiciously low {}", b.total_watts());
    }

    #[test]
    fn gain_formula_matches_paper_arithmetic() {
        // JSON: x86 5.2 GB/s vs DPU 1.73 GB/s → ≈8× (§5.5).
        let g = perf_per_watt_gain(1.73, 6.0, 5.2, 145.0);
        assert!((g - 8.0).abs() < 0.1, "JSON gain {g}");
        // SpMM: 5.24 vs 34.5 GB/s effective → ≈3.7–3.9× (§5.2).
        let g = perf_per_watt_gain(5.24, 6.0, 34.5, 145.0);
        assert!(g > 3.5 && g < 4.0, "SpMM gain {g}");
    }

    #[test]
    fn unknown_component_fraction_is_zero() {
        let b = PowerBreakdown::for_config(&DpuConfig::nm40());
        assert_eq!(b.fraction("flux capacitor"), 0.0);
    }
}
