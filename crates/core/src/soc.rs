//! The DPU SoC and its virtual-time execution engine.
//!
//! [`Dpu`] owns all shared state — physical DRAM, the DDR channel timing
//! model, the DMS, the ATE, the mailbox controller and the per-core
//! DMEMs — and [`Dpu::run`] executes one [`CoreProgram`] per dpCore to
//! completion. Scheduling is greedy in virtual time: the runnable core
//! with the earliest timestamp steps next, and blocking actions resolve
//! through the DMS event timelines, ATE responses, or mailbox delivery
//! times.

use dpu_dms::{Dms, DmsError};
use dpu_mem::{Dmem, DramChannel, DramConfig, PhysMem};
use dpu_sim::Time;

use dpu_ate::Ate;

use crate::config::DpuConfig;
use crate::mbc::{Mailbox, Mbc};
use crate::program::{CoreAction, CoreCtx, CoreProgram};

/// Why a run could not complete.
#[derive(Debug)]
pub enum DpuError {
    /// The DMS hit a fatal condition (e.g. the gather FIFO bug).
    Dms(DmsError),
    /// Every unfinished core is blocked and nothing can unblock them.
    Deadlock {
        /// Ids of the blocked cores.
        blocked: Vec<usize>,
    },
}

impl std::fmt::Display for DpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpuError::Dms(e) => write!(f, "DMS hang: {e}"),
            DpuError::Deadlock { blocked } => {
                write!(f, "deadlock: cores {blocked:?} blocked forever")
            }
        }
    }
}

impl std::error::Error for DpuError {}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time at which the last core finished.
    pub finish: Time,
    /// Per-core compute-busy cycles.
    pub busy: Vec<u64>,
    /// Bytes moved by the DMS during the run.
    pub dms_bytes: u64,
}

impl RunReport {
    /// Aggregate DMS throughput in GB/s at the given clock.
    pub fn dms_gbytes_per_sec(&self, clock: dpu_sim::Frequency) -> f64 {
        clock.bytes_per_sec(self.dms_bytes, self.finish) / 1e9
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Ready(Time),
    WaitEvent { ev: u8, since: Time },
    WaitMail { since: Time },
    Done(Time),
}

/// The DPU SoC.
pub struct Dpu {
    config: DpuConfig,
    phys: PhysMem,
    dram: DramChannel,
    dms: Dms,
    ate: Ate,
    mbc: Mbc,
    dmems: Vec<Dmem>,
}

impl std::fmt::Debug for Dpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dpu")
            .field("node", &self.config.node)
            .field("n_cores", &self.config.n_cores)
            .finish()
    }
}

impl Dpu {
    /// Builds a DPU from a configuration.
    ///
    /// Multiple DRAM channels are modelled as one channel of aggregate
    /// bandwidth and bank count (interleaved channels behave this way for
    /// the streaming workloads under study).
    pub fn new(config: DpuConfig) -> Self {
        let mut dram_cfg = config.dram.clone();
        dram_cfg.bus_bytes_per_cycle *= config.dram_channels as u64;
        dram_cfg.banks *= config.dram_channels;
        let mut dms_cfg = config.dms.clone();
        dms_cfg.cores_per_macro = config.cores_per_macro;
        let mut ate_cfg = config.ate.clone();
        ate_cfg.cores_per_macro = config.cores_per_macro;
        Dpu {
            phys: PhysMem::new(config.phys_mem_bytes),
            dram: DramChannel::new(dram_cfg),
            dms: Dms::new(dms_cfg, config.n_cores),
            ate: Ate::new(ate_cfg, config.n_cores),
            mbc: Mbc::new(config.n_cores),
            dmems: (0..config.n_cores).map(|_| Dmem::new(config.dmem_bytes)).collect(),
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DpuConfig {
        &self.config
    }

    /// Number of dpCores.
    pub fn n_cores(&self) -> usize {
        self.config.n_cores
    }

    /// Physical DRAM (for loading workloads and checking results).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Mutable physical DRAM.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// A core's DMEM.
    pub fn dmem(&self, core: usize) -> &Dmem {
        &self.dmems[core]
    }

    /// A core's DMEM, mutably.
    pub fn dmem_mut(&mut self, core: usize) -> &mut Dmem {
        &mut self.dmems[core]
    }

    /// The DMS (events, configuration, error state).
    pub fn dms(&self) -> &Dms {
        &self.dms
    }

    /// The ATE (latency histogram for Figure 2).
    pub fn ate(&self) -> &Ate {
        &self.ate
    }

    /// The DRAM channel model (bandwidth statistics).
    pub fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// The effective DRAM configuration (after channel aggregation).
    pub fn effective_dram_config(&self) -> &DramConfig {
        self.dram.config()
    }

    /// Resets timing state between experiments (memory contents persist).
    pub fn reset_timing(&mut self) {
        self.dram.reset();
    }

    /// Runs one program per core to completion.
    ///
    /// # Errors
    ///
    /// Returns [`DpuError::Dms`] if the DMS hangs (e.g. the gather bug)
    /// and [`DpuError::Deadlock`] if blocked cores can never wake.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the core count.
    pub fn run(&mut self, programs: &mut [Box<dyn CoreProgram>]) -> Result<RunReport, DpuError> {
        assert_eq!(programs.len(), self.config.n_cores, "one program per core required");
        let n = self.config.n_cores;
        let mut state = vec![CoreState::Ready(Time::ZERO); n];
        let mut busy = vec![0u64; n];
        let mut ate_values: Vec<Option<u64>> = vec![None; n];
        let mut part_rows: Vec<Option<Vec<u64>>> = vec![None; n];
        let mut mail_in: Vec<Option<crate::mbc::MailboxMessage>> = vec![None; n];
        let mut dms_bytes = 0u64;
        let mut last_finish = Time::ZERO;

        loop {
            // Pick the earliest-ready core.
            let next = state
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    CoreState::Ready(t) => Some((i, *t)),
                    _ => None,
                })
                .min_by_key(|&(i, t)| (t, i));

            let (core, now) = match next {
                Some(x) => x,
                None => {
                    // Nobody runnable: try to resolve waiters.
                    if let Some(e) = self.dms.error() {
                        return Err(DpuError::Dms(e.clone()));
                    }
                    let mut resolved = false;
                    for i in 0..n {
                        match state[i] {
                            CoreState::WaitEvent { ev, since } => {
                                if let Some(t) = self.dms.event_time(i, ev, since, true) {
                                    state[i] = CoreState::Ready(t);
                                    resolved = true;
                                }
                            }
                            CoreState::WaitMail { since } => {
                                if let Some(d) = self.mbc.next_delivery(Mailbox::DpCore(i)) {
                                    let t = d.max(since);
                                    mail_in[i] = self.mbc.recv(Mailbox::DpCore(i), t);
                                    state[i] = CoreState::Ready(t + Time::from_cycles(1));
                                    resolved = true;
                                }
                            }
                            _ => {}
                        }
                    }
                    if resolved {
                        continue;
                    }
                    let blocked: Vec<usize> = state
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !matches!(s, CoreState::Done(_)))
                        .map(|(i, _)| i)
                        .collect();
                    if blocked.is_empty() {
                        break; // all done
                    }
                    return Err(DpuError::Deadlock { blocked });
                }
            };

            let mut ctx = CoreCtx {
                core,
                now,
                dmem: &mut self.dmems[core],
                phys: &mut self.phys,
                ate_value: ate_values[core].take(),
                partition_rows: part_rows[core].take(),
                mailbox: mail_in[core].take(),
            };
            let action = programs[core].step(&mut ctx);

            match action {
                CoreAction::Compute(c) => {
                    busy[core] += c;
                    state[core] = CoreState::Ready(now + Time::from_cycles(c));
                }
                CoreAction::Push { chan, desc } => {
                    self.dms.push(core, chan as usize, desc, now);
                    for comp in self.dms.advance(&mut self.phys, &mut self.dram, &mut self.dmems) {
                        dms_bytes += comp.bytes;
                        last_finish = last_finish.max(comp.finish);
                    }
                    if let Some(e) = self.dms.error() {
                        return Err(DpuError::Dms(e.clone()));
                    }
                    state[core] = CoreState::Ready(now + Time::from_cycles(2));
                }
                CoreAction::Wfe(ev) => match self.dms.event_time(core, ev, now, true) {
                    Some(t) => state[core] = CoreState::Ready(t),
                    None => state[core] = CoreState::WaitEvent { ev, since: now },
                },
                CoreAction::Clev(ev) => {
                    self.dms.clear_event(core, ev, now);
                    for comp in self.dms.advance(&mut self.phys, &mut self.dram, &mut self.dmems) {
                        dms_bytes += comp.bytes;
                        last_finish = last_finish.max(comp.finish);
                    }
                    state[core] = CoreState::Ready(now + Time::from_cycles(1));
                }
                CoreAction::SetEvent(ev) => {
                    self.dms.set_event(core, ev, now);
                    for comp in self.dms.advance(&mut self.phys, &mut self.dram, &mut self.dmems) {
                        dms_bytes += comp.bytes;
                        last_finish = last_finish.max(comp.finish);
                    }
                    state[core] = CoreState::Ready(now + Time::from_cycles(1));
                }
                CoreAction::Ate(req) => {
                    let resp = self.ate.request(req, now, &mut self.phys, &mut self.dmems);
                    ate_values[core] = Some(resp.value);
                    // The injected operation steals cycles from the remote
                    // core's pipeline.
                    if req.to != core {
                        if let CoreState::Ready(t) = state[req.to] {
                            state[req.to] =
                                CoreState::Ready(t + Time::from_cycles(resp.remote_stall));
                        }
                    }
                    state[core] = CoreState::Ready(resp.finish);
                }
                CoreAction::RunPartition(job) => {
                    match self.dms.run_partition(
                        &job,
                        now,
                        &mut self.phys,
                        &mut self.dram,
                        &mut self.dmems,
                    ) {
                        Ok(outcome) => {
                            dms_bytes += outcome.bytes_in;
                            last_finish = last_finish.max(outcome.finish);
                            part_rows[core] = Some(outcome.rows_per_partition);
                            state[core] = CoreState::Ready(outcome.finish);
                        }
                        Err(e) => return Err(DpuError::Dms(e)),
                    }
                }
                CoreAction::MailboxSend { to, payload } => {
                    self.mbc.send(Mailbox::DpCore(core), to, payload, now);
                    state[core] = CoreState::Ready(now + Time::from_cycles(1));
                }
                CoreAction::MailboxRecv => {
                    if let Some(d) = self.mbc.next_delivery(Mailbox::DpCore(core)) {
                        let t = d.max(now);
                        mail_in[core] = self.mbc.recv(Mailbox::DpCore(core), t);
                        state[core] = CoreState::Ready(t + Time::from_cycles(1));
                    } else {
                        state[core] = CoreState::WaitMail { since: now };
                    }
                }
                CoreAction::Done => {
                    state[core] = CoreState::Done(now);
                    last_finish = last_finish.max(now);
                }
            }
        }

        Ok(RunReport { finish: last_finish, busy, dms_bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_dms::{DataDescriptor, Descriptor};

    fn boxed<P: CoreProgram + 'static>(p: P) -> Box<dyn CoreProgram> {
        Box::new(p)
    }

    /// Program that streams `tiles` tiles through a double buffer.
    struct Streamer {
        base: u64,
        tiles: usize,
        issued: usize,
        consumed: usize,
        state: u8,
        checksum: u64,
    }

    impl Streamer {
        fn new(base: u64, tiles: usize) -> Self {
            Streamer { base, tiles, issued: 0, consumed: 0, state: 0, checksum: 0 }
        }
    }

    const TILE_ROWS: u16 = 256; // 1 KB tiles of 4 B

    impl CoreProgram for Streamer {
        fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction {
            loop {
                match self.state {
                    // Prefill both buffers.
                    0 | 1 => {
                        let i = self.state as usize;
                        self.state += 1;
                        if i < self.tiles {
                            self.issued += 1;
                            let d = DataDescriptor::read(
                                self.base + i as u64 * 1024,
                                (i % 2) as u16 * 1024,
                                TILE_ROWS,
                                4,
                            )
                            .with_notify((i % 2) as u8);
                            return CoreAction::Push { chan: 0, desc: Descriptor::Data(d) };
                        }
                    }
                    2 => {
                        // Wait for the buffer holding tile `consumed`.
                        if self.consumed >= self.tiles {
                            return CoreAction::Done;
                        }
                        self.state = 3;
                        return CoreAction::Wfe((self.consumed % 2) as u8);
                    }
                    3 => {
                        // Consume: checksum the tile (real data!).
                        let buf = (self.consumed % 2) as u32 * 1024;
                        for r in 0..TILE_ROWS as u32 {
                            self.checksum =
                                self.checksum.wrapping_add(ctx.dmem.read_u32(buf + r * 4) as u64);
                        }
                        self.state = 4;
                        return CoreAction::Compute(TILE_ROWS as u64);
                    }
                    4 => {
                        self.state = 5;
                        return CoreAction::Clev((self.consumed % 2) as u8);
                    }
                    5 => {
                        self.consumed += 1;
                        self.state = 2;
                        // Refill the buffer with the next tile, if any.
                        if self.issued < self.tiles {
                            let i = self.issued;
                            self.issued += 1;
                            let d = DataDescriptor::read(
                                self.base + i as u64 * 1024,
                                (i % 2) as u16 * 1024,
                                TILE_ROWS,
                                4,
                            )
                            .with_notify((i % 2) as u8);
                            return CoreAction::Push { chan: 0, desc: Descriptor::Data(d) };
                        }
                    }
                    _ => return CoreAction::Done,
                }
            }
        }
    }

    #[test]
    fn single_core_stream_checksums_correctly() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let mut expect = 0u64;
        for i in 0..4096u32 {
            dpu.phys_mut().write_u32(i as u64 * 4, i);
            expect = expect.wrapping_add(i as u64);
        }
        let mut programs: Vec<Box<dyn CoreProgram>> = (0..dpu.n_cores())
            .map(|c| {
                if c == 0 {
                    boxed(Streamer::new(0, 16))
                } else {
                    boxed(|_: &mut CoreCtx<'_>| CoreAction::Done)
                }
            })
            .collect();
        let report = dpu.run(&mut programs).unwrap();
        assert!(report.finish > Time::ZERO);
        assert_eq!(report.dms_bytes, 16 * 1024);
        // Extract the checksum by downcasting is awkward for a Box<dyn>;
        // instead verify via memory: last tile resides in a buffer.
        // The checksum path is covered in the all-cores test below.
        assert!(report.busy[0] > 0);
    }

    /// Streamer that reports its checksum into DRAM at the end.
    struct ReportingStreamer {
        inner: Streamer,
        report_addr: u64,
        done: bool,
    }

    impl CoreProgram for ReportingStreamer {
        fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction {
            if self.done {
                return CoreAction::Done;
            }
            match self.inner.step(ctx) {
                CoreAction::Done => {
                    ctx.phys.write_u64(self.report_addr, self.inner.checksum);
                    self.done = true;
                    CoreAction::Done
                }
                a => a,
            }
        }
    }

    #[test]
    fn all_cores_stream_concurrently_and_share_bandwidth() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let n = dpu.n_cores();
        let tiles = 16usize;
        let region = tiles as u64 * 1024;
        let mut expected = vec![0u64; n];
        for (c, sum) in expected.iter_mut().enumerate() {
            for i in 0..(tiles as u32 * 256) {
                let v = (c as u32) << 16 | i;
                dpu.phys_mut().write_u32(c as u64 * region + i as u64 * 4, v);
                *sum = sum.wrapping_add(v as u64);
            }
        }
        let report_base = (n as u64) * region;
        let mut programs: Vec<Box<dyn CoreProgram>> = (0..n)
            .map(|c| {
                boxed(ReportingStreamer {
                    inner: Streamer::new(c as u64 * region, tiles),
                    report_addr: report_base + c as u64 * 8,
                    done: false,
                })
            })
            .collect();
        let report = dpu.run(&mut programs).unwrap();
        for (c, &sum) in expected.iter().enumerate() {
            assert_eq!(dpu.phys().read_u64(report_base + c as u64 * 8), sum, "core {c} checksum");
        }
        assert_eq!(report.dms_bytes, (n * tiles) as u64 * 1024);
        // 8 cores × 16 KB over a shared channel: bandwidth should be high
        // but below peak.
        let gbps = report.dms_gbytes_per_sec(dpu.config().clock);
        assert!(gbps > 5.0, "aggregate streaming too slow: {gbps:.2} GB/s");
        assert!(gbps < 12.9);
    }

    #[test]
    fn ate_between_programs() {
        use dpu_ate::{AteOp, AteRequest, AteTarget};
        let mut dpu = Dpu::new(DpuConfig::test_small());
        // Core 1..4 each fetch-add 1 to a counter at DDR 0; core 0 loops
        // reading until it sees 4 (but here it just finishes).
        let mut programs: Vec<Box<dyn CoreProgram>> = (0..dpu.n_cores())
            .map(|c| {
                let mut sent = false;
                boxed(move |_ctx: &mut CoreCtx<'_>| {
                    if (1..=4).contains(&c) && !sent {
                        sent = true;
                        CoreAction::Ate(AteRequest {
                            from: c,
                            to: 0,
                            target: AteTarget::Ddr(0),
                            op: AteOp::FetchAdd(1),
                        })
                    } else {
                        CoreAction::Done
                    }
                })
            })
            .collect();
        dpu.run(&mut programs).unwrap();
        assert_eq!(dpu.phys().read_u64(0), 4);
    }

    #[test]
    fn mailbox_between_programs() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let mut programs: Vec<Box<dyn CoreProgram>> = (0..dpu.n_cores())
            .map(|c| -> Box<dyn CoreProgram> {
                match c {
                    0 => {
                        // Receives a pointer, writes a flag there.
                        let mut stage = 0;
                        boxed(move |ctx: &mut CoreCtx<'_>| match stage {
                            0 => {
                                stage = 1;
                                CoreAction::MailboxRecv
                            }
                            1 => {
                                let m = ctx.mailbox.take().expect("message");
                                ctx.phys.write_u64(m.payload, 0xAC4B);
                                stage = 2;
                                CoreAction::Done
                            }
                            _ => CoreAction::Done,
                        })
                    }
                    1 => {
                        let mut sent = false;
                        boxed(move |_ctx: &mut CoreCtx<'_>| {
                            if sent {
                                CoreAction::Done
                            } else {
                                sent = true;
                                CoreAction::MailboxSend { to: Mailbox::DpCore(0), payload: 4096 }
                            }
                        })
                    }
                    _ => boxed(|_: &mut CoreCtx<'_>| CoreAction::Done),
                }
            })
            .collect();
        dpu.run(&mut programs).unwrap();
        assert_eq!(dpu.phys().read_u64(4096), 0xAC4B);
    }

    #[test]
    fn deadlock_detected() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let mut programs: Vec<Box<dyn CoreProgram>> = (0..dpu.n_cores())
            .map(|c| -> Box<dyn CoreProgram> {
                if c == 0 {
                    // Waits on an event nobody will ever set.
                    boxed(|_: &mut CoreCtx<'_>| CoreAction::Wfe(13))
                } else {
                    boxed(|_: &mut CoreCtx<'_>| CoreAction::Done)
                }
            })
            .collect();
        match dpu.run(&mut programs) {
            Err(DpuError::Deadlock { blocked }) => assert_eq!(blocked, vec![0]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn partition_action_reports_rows() {
        use dpu_dms::{PartitionJob, PartitionScheme};
        let mut dpu = Dpu::new(DpuConfig::test_small());
        for r in 0..1024u64 {
            dpu.phys_mut().write_u32(r * 4, r as u32);
        }
        let mut programs: Vec<Box<dyn CoreProgram>> = (0..dpu.n_cores())
            .map(|c| -> Box<dyn CoreProgram> {
                if c == 0 {
                    let mut stage = 0;
                    boxed(move |ctx: &mut CoreCtx<'_>| match stage {
                        0 => {
                            stage = 1;
                            CoreAction::RunPartition(Box::new(PartitionJob {
                                key_col_addr: 0,
                                data_col_addrs: vec![],
                                rows: 1024,
                                col_width: 4,
                                scheme: PartitionScheme::Radix { bits: 3, shift: 0 },
                                dest_dmem_base: 0,
                                dest_capacity: 1024,
                            }))
                        }
                        _ => {
                            let rows = ctx.partition_rows.take().expect("partition outcome");
                            assert_eq!(rows.iter().sum::<u64>(), 1024);
                            assert!(rows.iter().all(|&r| r == 128), "radix on 0..1024 is uniform");
                            CoreAction::Done
                        }
                    })
                } else {
                    boxed(|_: &mut CoreCtx<'_>| CoreAction::Done)
                }
            })
            .collect();
        dpu.run(&mut programs).unwrap();
        // Core 5's DMEM holds keys with low bits 101.
        assert_eq!(dpu.dmem(5).read_u32(0) & 7, 5);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::program::{CoreAction, CoreCtx, CoreProgram};
    use dpu_dms::{DataDescriptor, Descriptor, EventCond};

    fn boxed<P: CoreProgram + 'static>(p: P) -> Box<dyn CoreProgram> {
        Box::new(p)
    }

    fn idles(n: usize) -> Vec<Box<dyn CoreProgram>> {
        (0..n).map(|_| boxed(|_: &mut CoreCtx<'_>| CoreAction::Done)).collect()
    }

    #[test]
    fn set_event_action_unblocks_descriptors() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        dpu.phys_mut().write_u32(0, 0xFEED);
        let mut programs = idles(dpu.n_cores());
        let mut step = 0;
        programs[0] = boxed(move |ctx: &mut CoreCtx<'_>| {
            step += 1;
            match step {
                // Descriptor gated on event 6; the program sets it itself
                // after some compute (software-driven staging).
                1 => CoreAction::Push {
                    chan: 0,
                    desc: Descriptor::Data(
                        DataDescriptor::read(0, 0, 16, 4)
                            .with_wait(EventCond::is_set(6))
                            .with_notify(7),
                    ),
                },
                2 => CoreAction::Compute(500),
                3 => CoreAction::SetEvent(6),
                4 => CoreAction::Wfe(7),
                5 => {
                    assert_eq!(ctx.dmem.read_u32(0), 0xFEED);
                    assert!(ctx.now.cycles() >= 500, "transfer started after the set");
                    CoreAction::Done
                }
                _ => CoreAction::Done,
            }
        });
        dpu.run(&mut programs).unwrap();
    }

    #[test]
    fn nm16_moves_data_faster_than_nm40() {
        let run_cfg = |cfg: DpuConfig| {
            let mut dpu = Dpu::new(cfg);
            let n = dpu.n_cores();
            let mut programs = idles(n);
            // Core 0 streams 256 KB through descriptors.
            let mut i = 0u64;
            programs[0] = boxed(move |_: &mut CoreCtx<'_>| {
                if i < 64 {
                    i += 1;
                    CoreAction::Push {
                        chan: 0,
                        desc: Descriptor::Data(DataDescriptor::read((i - 1) * 4096, 0, 1024, 4)),
                    }
                } else {
                    CoreAction::Done
                }
            });
            let report = dpu.run(&mut programs).unwrap();
            report.dms_gbytes_per_sec(dpu.config().clock)
        };
        let g40 = run_cfg(DpuConfig::nm40());
        let g16 = run_cfg(DpuConfig::nm16());
        assert!(
            g16 > 2.0 * g40,
            "DDR4-3200 ×3 channels should far outrun DDR3: {g16:.1} vs {g40:.1} GB/s"
        );
    }

    #[test]
    fn reset_timing_preserves_memory_contents() {
        let mut dpu = Dpu::new(DpuConfig::test_small());
        dpu.phys_mut().write_u64(128, 0xDADA);
        dpu.dmem_mut(2).write_u64(0, 0xBEBE);
        dpu.reset_timing();
        assert_eq!(dpu.phys().read_u64(128), 0xDADA);
        assert_eq!(dpu.dmem(2).read_u64(0), 0xBEBE);
        assert_eq!(dpu.dram().bytes_served(), 0);
    }

    #[test]
    fn remote_ate_stall_delays_a_busy_core() {
        use dpu_ate::{AteOp, AteRequest, AteTarget};
        let mut dpu = Dpu::new(DpuConfig::test_small());
        let mut programs = idles(dpu.n_cores());
        // Core 1 computes for a long time; core 0 fires many atomics at it.
        let mut done1 = false;
        programs[1] = boxed(move |ctx: &mut CoreCtx<'_>| {
            if done1 {
                ctx.phys.write_u64(2048, ctx.now.cycles());
                CoreAction::Done
            } else {
                done1 = true;
                CoreAction::Compute(10_000)
            }
        });
        let mut shots = 0;
        programs[0] = boxed(move |_: &mut CoreCtx<'_>| {
            if shots < 50 {
                shots += 1;
                CoreAction::Ate(AteRequest {
                    from: 0,
                    to: 1,
                    target: AteTarget::Ddr(0),
                    op: AteOp::FetchAdd(1),
                })
            } else {
                CoreAction::Done
            }
        });
        dpu.run(&mut programs).unwrap();
        let finish1 = dpu.phys().read_u64(2048);
        assert!(
            finish1 > 10_000,
            "core 1's 10k-cycle task must be delayed by injected RPCs: {finish1}"
        );
        assert_eq!(dpu.phys().read_u64(0), 50);
    }
}
