//! Rack-scale provisioning model (§1–§2).
//!
//! The DPU exists to answer: "How can we perform analytics on terabytes
//! of data in sub-second latencies within a rack's provisioned power
//! budget?" The paper's arithmetic: scanning 10 TB in under a second
//! needs ≈1000 DDR3 channels per rack; at 3 W per channel that budgets
//! 3 KW for memory out of a 20 KW rack, leaving ~17 W per channel for
//! everything else — of which PCIe takes 10 W, leaving **< 7 W for the
//! processor**. The prototype packs 1440 DPUs with 8 GB each into a
//! 42U rack: >10 TB/s of aggregate bandwidth over >10 TB of DRAM.

use crate::config::DpuConfig;

/// A rack of DPUs.
#[derive(Debug, Clone)]
pub struct Rack {
    /// The per-node SoC.
    pub node: DpuConfig,
    /// Number of DPUs in the rack (the prototype: 1440).
    pub n_nodes: usize,
    /// DRAM gigabytes attached to each DPU (the prototype: 8).
    pub dram_gb_per_node: u32,
    /// Rack provisioned power budget in watts (20 kW class).
    pub rack_watts: f64,
    /// Watts per DRAM channel (DDR3 DIMM + PHY).
    pub watts_per_channel: f64,
    /// Watts consumed by a node's network interface. The paper notes "a
    /// standard PCIe controller consumes a minimum of 10 W" — which is
    /// why the DPU instead runs Infiniband off its integrated A9 over a
    /// shared fabric, amortizing to a couple of watts per node.
    pub network_watts_per_node: f64,
}

/// The PCIe-per-node strawman the paper rules out (§2).
pub const PCIE_STRAWMAN_WATTS: f64 = 10.0;

/// Per-node fabric provisioning handed to the cluster execution layer
/// (`dpu-cluster`). The rack model owns the physical story — shared
/// Infiniband driven by the integrated A9, a couple of watts per node —
/// and this struct is the bridge: `dpu-core` cannot depend on the
/// cluster crate, so it exports the provisioned rates and the cluster
/// builds its congestion model from them.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricProvision {
    /// Sustained per-node NIC bandwidth, bytes/second (each direction).
    pub nic_bytes_per_sec: f64,
    /// Shared rack-switch bandwidth, bytes/second.
    pub switch_bytes_per_sec: f64,
    /// One-hop propagation + forwarding latency, seconds.
    pub hop_seconds: f64,
    /// Total provisioned watts per node (SoC + DRAM channels + NIC).
    pub watts_per_node: f64,
}

impl Rack {
    /// The fabric the prototype rack provisions: the A9-driven Infiniband
    /// NIC sustains ~1.6 GB/s per node, the shared switch ~51 GB/s, and a
    /// hop costs ~1.6 µs.
    pub fn fabric_provision(&self) -> FabricProvision {
        FabricProvision {
            nic_bytes_per_sec: 1.6e9,
            switch_bytes_per_sec: 51.2e9,
            hop_seconds: 1.6e-6,
            watts_per_node: self.node.provisioned_watts
                + self.watts_per_channel * self.node.dram_channels as f64
                + self.network_watts_per_node,
        }
    }

    /// A slice of this rack with `n` nodes — the unit the cluster layer
    /// simulates when a workload's data fits a subset of the rack.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the rack's node count.
    pub fn slice(&self, n: usize) -> Rack {
        assert!(n > 0 && n <= self.n_nodes, "slice of {n} from {}", self.n_nodes);
        Rack { n_nodes: n, ..self.clone() }
    }
}

impl Rack {
    /// The paper's 42U prototype: 1440 × (32-core DPU + 8 GB DDR3).
    pub fn prototype() -> Self {
        Rack {
            node: DpuConfig::nm40(),
            n_nodes: 1440,
            dram_gb_per_node: 8,
            rack_watts: 20_000.0,
            watts_per_channel: 3.0,
            network_watts_per_node: 2.0,
        }
    }

    /// Aggregate peak memory bandwidth, bytes/second.
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.node.peak_dram_bytes_per_sec() * self.n_nodes as f64
    }

    /// Total DRAM capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.dram_gb_per_node as u64 * (1 << 30) * self.n_nodes as u64
    }

    /// Seconds to scan the entire resident dataset once at peak.
    pub fn full_scan_seconds(&self) -> f64 {
        self.capacity_bytes() as f64 / self.aggregate_bandwidth()
    }

    /// Power drawn by all memory channels.
    pub fn memory_watts(&self) -> f64 {
        self.watts_per_channel * (self.node.dram_channels * self.n_nodes) as f64
    }

    /// Power per node available to the processor after memory and
    /// networking are provisioned (the paper's "< 7 W" constraint).
    pub fn processor_budget_watts(&self) -> f64 {
        let per_node = self.rack_watts / self.n_nodes as f64;
        per_node
            - self.watts_per_channel * self.node.dram_channels as f64
            - self.network_watts_per_node
    }

    /// Whether the configured SoC fits the rack's per-node power budget.
    pub fn node_fits_budget(&self) -> bool {
        self.node.provisioned_watts <= self.processor_budget_watts()
    }

    /// Total rack power with the configured node.
    pub fn total_watts(&self) -> f64 {
        (self.node.provisioned_watts
            + self.watts_per_channel * self.node.dram_channels as f64
            + self.network_watts_per_node)
            * self.n_nodes as f64
    }

    /// Memory channels a Xeon-server rack provides for comparison: the
    /// paper's §1 counts 8 channels per 2U chassis → 21 chassis in 42U.
    pub fn xeon_rack_channels() -> usize {
        21 * 8
    }

    /// Channel-density advantage over a commodity server rack.
    pub fn channel_density_advantage(&self) -> f64 {
        (self.node.dram_channels * self.n_nodes) as f64 / Self::xeon_rack_channels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_hits_the_headline_numbers() {
        let r = Rack::prototype();
        // ">10 TB/s aggregate memory bandwidth" (§1).
        assert!(
            r.aggregate_bandwidth() > 10e12,
            "aggregate {:.2} TB/s",
            r.aggregate_bandwidth() / 1e12
        );
        // ">10 TB memory capacity in a full-sized (42U) rack" (§1).
        assert!(r.capacity_bytes() > 10 * (1u64 << 40));
        // Sub-second full scan — the whole design goal.
        assert!(r.full_scan_seconds() < 1.0, "{:.3} s", r.full_scan_seconds());
    }

    #[test]
    fn power_arithmetic_matches_section_2() {
        let r = Rack::prototype();
        // ~1440 channels ≈ the paper's "≈1000 channels per rack" scale;
        // 3 W each lands near the 3 KW memory budget.
        assert!((r.memory_watts() - 4320.0).abs() < 1.0);
        // With the shared Infiniband fabric the 6 W DPU fits its slot.
        let budget = r.processor_budget_watts();
        assert!(r.node_fits_budget(), "6 W DPU must fit {budget:.2} W");
        // Total rack power stays within the 20 kW provisioning.
        assert!(r.total_watts() <= r.rack_watts, "{:.0} W", r.total_watts());
        // The paper's PCIe strawman: 10 W of NIC per node blows the slot
        // for any processor ("leaving a power budget of < 7 W").
        let mut strawman = Rack::prototype();
        strawman.network_watts_per_node = PCIE_STRAWMAN_WATTS;
        assert!(
            strawman.processor_budget_watts() < 7.0,
            "PCIe strawman budget {:.2} W",
            strawman.processor_budget_watts()
        );
        assert!(!strawman.node_fits_budget());
    }

    #[test]
    fn a_145w_processor_cannot_fit() {
        let mut r = Rack::prototype();
        r.node.provisioned_watts = 145.0;
        assert!(!r.node_fits_budget());
    }

    #[test]
    fn channel_density_is_order_of_magnitude() {
        let r = Rack::prototype();
        // "packing up to ten times as many memory channels in a rack-able
        // chassis as compared to a commodity server organization" (§1).
        let adv = r.channel_density_advantage();
        assert!(adv >= 8.0, "density advantage {adv:.1}×");
    }

    #[test]
    fn shrunk_nodes_trade_count_for_bandwidth() {
        let mut r = Rack::prototype();
        r.node = DpuConfig::nm16();
        r.n_nodes = 480; // 3 channels each
        assert!(r.aggregate_bandwidth() > 10e12);
    }
}
