//! Per-core program abstraction.
//!
//! A [`CoreProgram`] is a state machine the engine steps in virtual time:
//! each step returns the next [`CoreAction`] — compute for N cycles, push
//! a DMS descriptor, wait on an event, issue an ATE RPC, and so on. The
//! software the fabricated DPU ran maps onto this model directly:
//! cooperative, run-to-completion scheduling with explicit data movement
//! (§4). Programs can also be real dpCore binaries executed by the ISA
//! interpreter ([`IsaCoreProgram`]), whose system instructions surface as
//! the same actions.

use dpu_ate::{AteOp, AteRequest, AteTarget};
use dpu_dms::{Descriptor, PartitionJob};
use dpu_isa::interp::{Cpu, Trap};
use dpu_isa::Inst;
use dpu_mem::{Dmem, PhysMem};
use dpu_sim::Time;

use crate::mbc::{Mailbox, MailboxMessage};

/// What a core asks the SoC to do next.
#[derive(Debug)]
pub enum CoreAction {
    /// Busy-execute for this many cycles.
    Compute(u64),
    /// Push a DMS descriptor (the `dmspush` instruction).
    Push {
        /// DMS channel (0 or 1).
        chan: u8,
        /// The descriptor.
        desc: Descriptor,
    },
    /// Block until DMS event `0..32` is set (`wfe`).
    Wfe(u8),
    /// Clear a DMS event (`clev`).
    Clev(u8),
    /// Set a DMS event (software-side signalling).
    SetEvent(u8),
    /// Issue a blocking ATE hardware RPC; the response value appears in
    /// [`CoreCtx::ate_value`] on the next step.
    Ate(AteRequest),
    /// Run a hardware partition job, blocking until it completes; the
    /// per-partition row counts appear in [`CoreCtx::partition_rows`].
    RunPartition(Box<PartitionJob>),
    /// Send a lightweight mailbox message.
    MailboxSend {
        /// Destination mailbox.
        to: Mailbox,
        /// 64-bit payload (by convention a DRAM pointer).
        payload: u64,
    },
    /// Block until a mailbox message arrives; it appears in
    /// [`CoreCtx::mailbox`] on the next step.
    MailboxRecv,
    /// The program is finished.
    Done,
}

/// Context handed to each program step.
#[derive(Debug)]
pub struct CoreCtx<'a> {
    /// This core's id.
    pub core: usize,
    /// Current virtual time.
    pub now: Time,
    /// This core's DMEM scratchpad.
    pub dmem: &'a mut Dmem,
    /// Physical DRAM (the dpCore addresses it directly; no MMU).
    pub phys: &'a mut PhysMem,
    /// Response value of the previous [`CoreAction::Ate`], if any.
    pub ate_value: Option<u64>,
    /// Row counts of the previous [`CoreAction::RunPartition`], if any.
    pub partition_rows: Option<Vec<u64>>,
    /// Message satisfying the previous [`CoreAction::MailboxRecv`].
    pub mailbox: Option<MailboxMessage>,
}

/// A per-core program driven by the SoC engine.
pub trait CoreProgram {
    /// Produces the next action. Called once per transition; blocking
    /// actions complete before the next call.
    fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction;
}

impl<F> CoreProgram for F
where
    F: FnMut(&mut CoreCtx<'_>) -> CoreAction,
{
    fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction {
        self(ctx)
    }
}

/// Byte layout of an ATE message block in DMEM (used by `atereq`):
/// `[0]` op (0=load 1=store 2=faa 3=cas), `[1]` target core,
/// `[2]` space (0=DDR 1=remote DMEM), `[8..16]` address,
/// `[16..24]` operand 1, `[24..32]` operand 2 (CAS new value).
pub const ATE_MSG_BYTES: usize = 32;

/// Encodes an ATE request into its DMEM message-block form.
pub fn encode_ate_msg(req: &AteRequest) -> [u8; ATE_MSG_BYTES] {
    let mut b = [0u8; ATE_MSG_BYTES];
    let (op, a1, a2) = match req.op {
        AteOp::Load => (0u8, 0u64, 0u64),
        AteOp::Store(v) => (1, v, 0),
        AteOp::FetchAdd(v) => (2, v, 0),
        AteOp::CompareSwap { expect, new } => (3, expect, new),
    };
    b[0] = op;
    b[1] = req.to as u8;
    let addr = match req.target {
        AteTarget::Ddr(a) => {
            b[2] = 0;
            a
        }
        AteTarget::RemoteDmem { addr } => {
            b[2] = 1;
            addr as u64
        }
    };
    b[8..16].copy_from_slice(&addr.to_le_bytes());
    b[16..24].copy_from_slice(&a1.to_le_bytes());
    b[24..32].copy_from_slice(&a2.to_le_bytes());
    b
}

/// Decodes an ATE message block; `from` is the issuing core.
///
/// Returns `None` for an unknown opcode byte.
pub fn decode_ate_msg(from: usize, b: &[u8]) -> Option<AteRequest> {
    let addr = u64::from_le_bytes(b[8..16].try_into().ok()?);
    let a1 = u64::from_le_bytes(b[16..24].try_into().ok()?);
    let a2 = u64::from_le_bytes(b[24..32].try_into().ok()?);
    let op = match b[0] {
        0 => AteOp::Load,
        1 => AteOp::Store(a1),
        2 => AteOp::FetchAdd(a1),
        3 => AteOp::CompareSwap { expect: a1, new: a2 },
        _ => return None,
    };
    let target = match b[2] {
        0 => AteTarget::Ddr(addr),
        _ => AteTarget::RemoteDmem { addr: addr as u32 },
    };
    Some(AteRequest { from, to: b[1] as usize, target, op })
}

/// A program that executes a real dpCore binary on the ISA interpreter.
///
/// System instructions trap out of the interpreter and are re-expressed
/// as [`CoreAction`]s; DMEM contents are kept coherent between the
/// interpreter and the SoC (the DMS writes into the same bytes the
/// program reads).
pub struct IsaCoreProgram {
    cpu: Cpu,
    prog: Vec<Inst>,
    pending: Option<CoreAction>,
    quantum: u64,
    finished: bool,
}

impl std::fmt::Debug for IsaCoreProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IsaCoreProgram")
            .field("pc", &self.cpu.pc())
            .field("instructions", &self.prog.len())
            .finish()
    }
}

impl IsaCoreProgram {
    /// Wraps an assembled program; `dmem_bytes` must match the SoC's
    /// per-core DMEM size.
    pub fn new(prog: Vec<Inst>, dmem_bytes: usize) -> Self {
        IsaCoreProgram {
            cpu: Cpu::new(dmem_bytes),
            prog,
            pending: None,
            quantum: 1_000_000,
            finished: false,
        }
    }

    /// Access to the CPU (registers, counters) after or during a run.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU access (e.g. pre-seeding registers).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }
}

impl CoreProgram for IsaCoreProgram {
    fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction {
        if let Some(a) = self.pending.take() {
            return a;
        }
        if self.finished {
            return CoreAction::Done;
        }
        // Keep interpreter DMEM coherent with the SoC's copy.
        assert_eq!(self.cpu.dmem().len(), ctx.dmem.len(), "interpreter DMEM size mismatch");
        self.cpu.dmem_mut().copy_from_slice(ctx.dmem.as_slice());
        let sum = self.cpu.run(&self.prog, self.quantum).expect("dpCore program fault");
        ctx.dmem.as_mut_slice().copy_from_slice(self.cpu.dmem());
        self.pending = Some(match sum.trap {
            Trap::Halt => {
                self.finished = true;
                CoreAction::Done
            }
            Trap::Wfe(e) => CoreAction::Wfe(e),
            Trap::Clev(e) => CoreAction::Clev(e),
            Trap::DmsPush { chan, addr } => {
                let mut bytes = [0u8; 16];
                bytes.copy_from_slice(ctx.dmem.slice(addr, 16));
                match Descriptor::decode_bytes(&bytes) {
                    Some(desc) => CoreAction::Push { chan, desc },
                    None => panic!("core {}: invalid descriptor at {addr:#x}", ctx.core),
                }
            }
            Trap::AteReq { addr } => {
                let b = ctx.dmem.slice(addr, ATE_MSG_BYTES);
                match decode_ate_msg(ctx.core, b) {
                    Some(req) => CoreAction::Ate(req),
                    None => panic!("core {}: invalid ATE message at {addr:#x}", ctx.core),
                }
            }
            Trap::MaxSteps => return CoreAction::Compute(sum.cycles.max(1)),
            Trap::Watchpoint { addr } => {
                panic!("core {}: data watchpoint hit at {addr:#x}", ctx.core)
            }
        });
        CoreAction::Compute(sum.cycles.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ate_msg_roundtrip() {
        let reqs = vec![
            AteRequest { from: 3, to: 7, target: AteTarget::Ddr(0xABCD), op: AteOp::Load },
            AteRequest {
                from: 0,
                to: 31,
                target: AteTarget::RemoteDmem { addr: 128 },
                op: AteOp::Store(42),
            },
            AteRequest { from: 1, to: 2, target: AteTarget::Ddr(8), op: AteOp::FetchAdd(5) },
            AteRequest {
                from: 9,
                to: 9,
                target: AteTarget::Ddr(16),
                op: AteOp::CompareSwap { expect: 1, new: 2 },
            },
        ];
        for r in reqs {
            let b = encode_ate_msg(&r);
            let back = decode_ate_msg(r.from, &b).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        let mut b = [0u8; ATE_MSG_BYTES];
        b[0] = 99;
        assert!(decode_ate_msg(0, &b).is_none());
    }

    #[test]
    fn closure_is_a_program() {
        let mut calls = 0;
        let mut prog = move |_ctx: &mut CoreCtx<'_>| {
            calls += 1;
            if calls > 1 {
                CoreAction::Done
            } else {
                CoreAction::Compute(10)
            }
        };
        let mut dmem = Dmem::new(64);
        let mut phys = PhysMem::new(64);
        let mut ctx = CoreCtx {
            core: 0,
            now: Time::ZERO,
            dmem: &mut dmem,
            phys: &mut phys,
            ate_value: None,
            partition_rows: None,
            mailbox: None,
        };
        assert!(matches!(prog.step(&mut ctx), CoreAction::Compute(10)));
        assert!(matches!(prog.step(&mut ctx), CoreAction::Done));
    }
}
