//! The MailBox Controller (MBC).
//!
//! "The MBC is a hardware queue providing a simple communication
//! interface that connects the dpCores, A9 cores and the M0 processor …
//! a total of 34 mailboxes, one for every dpCore, one for the A9 cores
//! and one for the M0" (§2.4). Messages are lightweight — typically a
//! pointer into DRAM — with the bulk data travelling through main memory.

use std::collections::VecDeque;

use dpu_sim::Time;

/// Identifies a mailbox endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mailbox {
    /// One of the 32 dpCores.
    DpCore(usize),
    /// The dual-core ARM A9 (network endpoint).
    A9,
    /// The M0 power-management unit.
    M0,
}

/// A queued lightweight message (usually a DRAM pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxMessage {
    /// Sender.
    pub from: Mailbox,
    /// 64-bit payload (by convention a physical pointer).
    pub payload: u64,
    /// Delivery time (send time + queue latency).
    pub delivered_at: Time,
}

/// The mailbox controller: 34 queues with interrupt lines.
#[derive(Debug)]
pub struct Mbc {
    n_cores: usize,
    queues: Vec<VecDeque<MailboxMessage>>,
    send_latency: u64,
}

impl Mbc {
    /// An MBC for `n_cores` dpCores plus the A9 and M0 endpoints.
    pub fn new(n_cores: usize) -> Self {
        Mbc {
            n_cores,
            queues: (0..n_cores + 2).map(|_| VecDeque::new()).collect(),
            send_latency: 20,
        }
    }

    fn index(&self, mb: Mailbox) -> usize {
        match mb {
            Mailbox::DpCore(i) => {
                assert!(i < self.n_cores, "dpCore mailbox out of range");
                i
            }
            Mailbox::A9 => self.n_cores,
            Mailbox::M0 => self.n_cores + 1,
        }
    }

    /// Total number of mailboxes (34 on the fabricated part).
    pub fn mailbox_count(&self) -> usize {
        self.queues.len()
    }

    /// Sends `payload` from `from` to `to` at `now`; returns delivery time
    /// (when `to`'s interrupt line asserts).
    pub fn send(&mut self, from: Mailbox, to: Mailbox, payload: u64, now: Time) -> Time {
        let delivered_at = now + Time::from_cycles(self.send_latency);
        let idx = self.index(to);
        self.queues[idx].push_back(MailboxMessage { from, payload, delivered_at });
        delivered_at
    }

    /// Pops the oldest message delivered by `now`, if any.
    pub fn recv(&mut self, me: Mailbox, now: Time) -> Option<MailboxMessage> {
        let idx = self.index(me);
        match self.queues[idx].front() {
            Some(m) if m.delivered_at <= now => self.queues[idx].pop_front(),
            _ => None,
        }
    }

    /// True if a delivered message is waiting for `me` at `now`.
    pub fn has_message(&self, me: Mailbox, now: Time) -> bool {
        self.queues[self.index(me)].front().is_some_and(|m| m.delivered_at <= now)
    }

    /// Number of messages queued for `me` (delivered or in flight).
    pub fn queue_len(&self, me: Mailbox) -> usize {
        self.queues[self.index(me)].len()
    }

    /// Delivery time of the oldest queued message for `me`, if any
    /// (used by the engine to wake a blocked receiver at the right time).
    pub fn next_delivery(&self, me: Mailbox) -> Option<Time> {
        self.queues[self.index(me)].front().map(|m| m.delivered_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn thirty_four_mailboxes_on_fabricated_part() {
        assert_eq!(Mbc::new(32).mailbox_count(), 34);
    }

    #[test]
    fn send_recv_roundtrip() {
        let mut mbc = Mbc::new(8);
        let d = mbc.send(Mailbox::DpCore(0), Mailbox::DpCore(5), 0xDEAD, t(100));
        assert!(d > t(100));
        assert!(mbc.recv(Mailbox::DpCore(5), t(100)).is_none(), "in flight");
        let m = mbc.recv(Mailbox::DpCore(5), d).unwrap();
        assert_eq!(m.payload, 0xDEAD);
        assert_eq!(m.from, Mailbox::DpCore(0));
        assert!(mbc.recv(Mailbox::DpCore(5), d).is_none(), "queue drained");
    }

    #[test]
    fn fifo_per_mailbox() {
        let mut mbc = Mbc::new(8);
        mbc.send(Mailbox::A9, Mailbox::DpCore(1), 1, t(0));
        mbc.send(Mailbox::A9, Mailbox::DpCore(1), 2, t(0));
        mbc.send(Mailbox::A9, Mailbox::DpCore(1), 3, t(0));
        assert_eq!(mbc.queue_len(Mailbox::DpCore(1)), 3);
        let late = t(10_000);
        assert_eq!(mbc.recv(Mailbox::DpCore(1), late).unwrap().payload, 1);
        assert_eq!(mbc.recv(Mailbox::DpCore(1), late).unwrap().payload, 2);
        assert_eq!(mbc.recv(Mailbox::DpCore(1), late).unwrap().payload, 3);
    }

    #[test]
    fn a9_and_m0_endpoints() {
        let mut mbc = Mbc::new(4);
        let d = mbc.send(Mailbox::DpCore(2), Mailbox::A9, 77, t(0));
        assert!(mbc.has_message(Mailbox::A9, d));
        assert!(!mbc.has_message(Mailbox::M0, d));
        let d2 = mbc.send(Mailbox::A9, Mailbox::M0, 88, d);
        assert_eq!(mbc.recv(Mailbox::M0, d2).unwrap().payload, 88);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_mailbox_panics() {
        Mbc::new(4).queue_len(Mailbox::DpCore(4));
    }
}
