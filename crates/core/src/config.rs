//! DPU SoC configurations: the fabricated 40 nm part and the 16 nm shrink.

use dpu_ate::AteConfig;
use dpu_dms::DmsConfig;
use dpu_mem::DramConfig;
use dpu_sim::Frequency;

/// Process node of the SoC (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessNode {
    /// The fabricated part: 90.63 mm², 540 M transistors, 5.8 W.
    Nm40,
    /// The shrink: 5 × the 32-core complex (160 dpCores), DDR4-3200,
    /// 3 B transistors, 12 W TDP, ≈2.5× performance/watt.
    Nm16,
}

/// Full SoC configuration.
#[derive(Debug, Clone)]
pub struct DpuConfig {
    /// Process node.
    pub node: ProcessNode,
    /// Number of dpCores (32 at 40 nm, 160 at 16 nm).
    pub n_cores: usize,
    /// dpCores per macro (8).
    pub cores_per_macro: usize,
    /// Core clock.
    pub clock: Frequency,
    /// Per-core DMEM bytes (32 KB).
    pub dmem_bytes: usize,
    /// DRAM channel timing.
    pub dram: DramConfig,
    /// Number of DRAM channels (1 at 40 nm; 3 DDR4 channels give the
    /// 16 nm part its 76 GB/s).
    pub dram_channels: usize,
    /// Physical memory capacity in bytes to simulate (default 64 MB —
    /// workloads are scaled; the real part carries 8 GB).
    pub phys_mem_bytes: usize,
    /// DMS parameters.
    pub dms: DmsConfig,
    /// ATE parameters.
    pub ate: AteConfig,
    /// Provisioned SoC power in watts (6 W is the figure the paper uses
    /// for performance/watt; 5.8 W is the measured breakdown).
    pub provisioned_watts: f64,
}

impl DpuConfig {
    /// The fabricated 40 nm DPU: 32 dpCores @ 800 MHz, one DDR3-1600
    /// channel, 6 W provisioned.
    pub fn nm40() -> Self {
        DpuConfig {
            node: ProcessNode::Nm40,
            n_cores: 32,
            cores_per_macro: 8,
            clock: Frequency::DPU_CORE,
            dmem_bytes: 32 * 1024,
            dram: DramConfig::ddr3_1600(),
            dram_channels: 1,
            phys_mem_bytes: 64 << 20,
            dms: DmsConfig::default(),
            ate: AteConfig::default(),
            provisioned_watts: 6.0,
        }
    }

    /// The 16 nm shrink: 160 dpCores (5 complexes), DDR4-3200 totalling
    /// 76.8 GB/s, 12 W TDP.
    pub fn nm16() -> Self {
        DpuConfig {
            node: ProcessNode::Nm16,
            n_cores: 160,
            cores_per_macro: 8,
            clock: Frequency::DPU_CORE,
            dmem_bytes: 32 * 1024,
            dram: DramConfig::ddr4_3200(),
            dram_channels: 3,
            phys_mem_bytes: 64 << 20,
            dms: DmsConfig::default(),
            ate: AteConfig::default(),
            provisioned_watts: 12.0,
        }
    }

    /// A small configuration for fast unit tests (one macro of 8 cores,
    /// 16 MB of physical memory).
    pub fn test_small() -> Self {
        DpuConfig { n_cores: 8, phys_mem_bytes: 16 << 20, ..Self::nm40() }
    }

    /// Number of macros.
    pub fn n_macros(&self) -> usize {
        self.n_cores / self.cores_per_macro
    }

    /// Aggregate peak DRAM bandwidth in bytes/second.
    pub fn peak_dram_bytes_per_sec(&self) -> f64 {
        self.dram.peak_bytes_per_sec() * self.dram_channels as f64
    }

    /// Peak compute throughput proxy: core count × clock (used for the
    /// 16 nm scaling checks, not for absolute claims).
    pub fn compute_proxy(&self) -> f64 {
        self.n_cores as f64 * self.clock.hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm40_matches_paper() {
        let c = DpuConfig::nm40();
        assert_eq!(c.n_cores, 32);
        assert_eq!(c.n_macros(), 4);
        assert_eq!(c.dmem_bytes, 32 * 1024);
        assert_eq!(c.provisioned_watts, 6.0);
        assert!((c.peak_dram_bytes_per_sec() - 12.8e9).abs() < 1e6);
    }

    #[test]
    fn nm16_scales_five_x_compute_and_bandwidth() {
        let a = DpuConfig::nm40();
        let b = DpuConfig::nm16();
        assert_eq!(b.n_cores, 160);
        assert!((b.compute_proxy() / a.compute_proxy() - 5.0).abs() < 1e-9);
        // 3 × 25.6 = 76.8 GB/s ≈ the paper's 76 GB/s.
        assert!((b.peak_dram_bytes_per_sec() / 1e9 - 76.8).abs() < 0.1);
        assert_eq!(b.provisioned_watts, 12.0);
    }

    #[test]
    fn efficiency_of_shrink_is_2_5x() {
        // 5× compute+bandwidth at 2× power ⇒ 2.5× performance/watt (§2.5).
        let a = DpuConfig::nm40();
        let b = DpuConfig::nm16();
        let perf_per_watt_ratio =
            (b.compute_proxy() / b.provisioned_watts) / (a.compute_proxy() / a.provisioned_watts);
        assert!((perf_per_watt_ratio - 2.5).abs() < 0.05);
        // Bandwidth/watt improves even more (6× bandwidth at 2× power).
        let bw_ratio = (b.peak_dram_bytes_per_sec() / b.provisioned_watts)
            / (a.peak_dram_bytes_per_sec() / a.provisioned_watts);
        assert!(bw_ratio >= 2.5);
    }

    #[test]
    fn small_config_is_one_macro() {
        let c = DpuConfig::test_small();
        assert_eq!(c.n_macros(), 1);
    }
}
