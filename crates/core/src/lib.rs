//! The DPU System-on-Chip.
//!
//! This crate assembles the substrates into the full Data Processing Unit
//! of the paper: 32 dpCores in 4 macros, each with a 32 KB DMEM; the
//! [DMS](dpu_dms) at the DDR controller; the [ATE](dpu_ate) crossbar; a
//! mailbox controller ([`Mbc`]); a power model reproducing the Figure 5
//! breakdown; and the simulation engine that executes per-core programs
//! ([`CoreProgram`]) against all of it in virtual time.
//!
//! # Quick start
//!
//! ```
//! use dpu_core::{CoreAction, CoreProgram, CoreCtx, Dpu, DpuConfig};
//!
//! // A trivial program: every core computes 1000 cycles and stops.
//! struct Busy(bool);
//! impl CoreProgram for Busy {
//!     fn step(&mut self, _ctx: &mut CoreCtx<'_>) -> CoreAction {
//!         if self.0 { CoreAction::Done } else { self.0 = true; CoreAction::Compute(1000) }
//!     }
//! }
//!
//! let mut dpu = Dpu::new(DpuConfig::nm40());
//! let mut programs: Vec<Box<dyn CoreProgram>> =
//!     (0..dpu.n_cores()).map(|_| Box::new(Busy(false)) as Box<dyn CoreProgram>).collect();
//! let run = dpu.run(&mut programs).unwrap();
//! assert_eq!(run.finish.cycles(), 1000);
//! ```

pub mod config;
pub mod mbc;
pub mod power;
pub mod program;
pub mod rack;
pub mod soc;
pub mod stream;

pub use config::{DpuConfig, ProcessNode};
pub use mbc::{Mailbox, MailboxMessage, Mbc};
pub use power::{PowerBreakdown, PowerComponent};
pub use program::{CoreAction, CoreCtx, CoreProgram, IsaCoreProgram};
pub use rack::Rack;
pub use soc::{Dpu, DpuError, RunReport};
pub use stream::{StreamKernel, StreamSpec, TileRef};
