//! ATE message engine: crossbar timing, hardware RPC execution, software
//! RPC delivery.

use dpu_mem::{Dmem, PhysMem};
use dpu_sim::{Histogram, Time};

/// Timing parameters of the ATE interconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AteConfig {
    /// One-way latency between two cores in the same macro (first-level
    /// crossbar), cycles.
    pub intra_macro_hop: u64,
    /// One-way latency between cores in different macros (both crossbar
    /// levels), cycles.
    pub inter_macro_hop: u64,
    /// Pipeline-injection cost of a remote load, cycles.
    pub load_cycles: u64,
    /// Pipeline-injection cost of a remote store, cycles.
    pub store_cycles: u64,
    /// Pipeline-injection cost of fetch-and-add / compare-and-swap, cycles.
    pub atomic_cycles: u64,
    /// Interrupt entry + handler dispatch overhead for software RPCs,
    /// cycles.
    pub sw_rpc_overhead: u64,
    /// Cores per macro (8 on the fabricated part).
    pub cores_per_macro: usize,
}

impl Default for AteConfig {
    fn default() -> Self {
        AteConfig {
            intra_macro_hop: 12,
            inter_macro_hop: 28,
            load_cycles: 2,
            store_cycles: 1,
            atomic_cycles: 3,
            sw_rpc_overhead: 60,
            cores_per_macro: 8,
        }
    }
}

/// Where a hardware RPC operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AteTarget {
    /// A physical DDR address (the remote core performs the access).
    Ddr(u64),
    /// An address in the *remote* core's DMEM — the capability x86
    /// atomics lack (§2.3).
    RemoteDmem {
        /// Byte address within the remote DMEM.
        addr: u32,
    },
}

/// The operation a hardware RPC performs (all 64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AteOp {
    /// Read the target; response carries the value.
    Load,
    /// Write the target; response is empty (still FIFO-ordered).
    Store(u64),
    /// Atomically add; response carries the old value.
    FetchAdd(u64),
    /// Atomically compare-and-swap; response carries the old value
    /// (success ⇔ old == expect).
    CompareSwap {
        /// Expected current value.
        expect: u64,
        /// Replacement written on match.
        new: u64,
    },
}

/// A hardware RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AteRequest {
    /// Requesting core.
    pub from: usize,
    /// Core whose pipeline executes the operation.
    pub to: usize,
    /// Target address.
    pub target: AteTarget,
    /// Operation.
    pub op: AteOp,
}

/// Response to a hardware RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AteResponse {
    /// Value read (old value for atomics; 0 for stores).
    pub value: u64,
    /// Time the requesting core unblocks.
    pub finish: Time,
    /// Cycles stolen from the remote core's pipeline.
    pub remote_stall: u64,
}

/// Delivery schedule for a software RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwRpcTicket {
    /// When the remote core takes the interrupt.
    pub interrupt_at: Time,
    /// When the requester would see a response if the handler runs for
    /// `handler_cycles` (as passed to [`Ate::sw_rpc`]).
    pub response_at: Time,
}

/// The ATE: crossbar occupancy plus RPC execution.
#[derive(Debug)]
pub struct Ate {
    cfg: AteConfig,
    n_cores: usize,
    /// FIFO ordering point per destination core: the time its injection
    /// port is next free.
    port_free: Vec<Time>,
    latencies: Histogram,
}

impl Ate {
    /// Creates an ATE serving `n_cores`.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn new(cfg: AteConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        Ate {
            port_free: vec![Time::ZERO; n_cores],
            latencies: Histogram::new(vec![25, 50, 75, 100, 150, 200, 400, 800]),
            n_cores,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AteConfig {
        &self.cfg
    }

    /// One-way hop latency between two cores.
    pub fn hop_latency(&self, from: usize, to: usize) -> u64 {
        if from / self.cfg.cores_per_macro == to / self.cfg.cores_per_macro {
            self.cfg.intra_macro_hop
        } else {
            self.cfg.inter_macro_hop
        }
    }

    /// Histogram of round-trip latencies observed so far (Figure 2 data).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latencies
    }

    fn op_cycles(&self, op: AteOp) -> u64 {
        match op {
            AteOp::Load => self.cfg.load_cycles,
            AteOp::Store(_) => self.cfg.store_cycles,
            AteOp::FetchAdd(_) | AteOp::CompareSwap { .. } => self.cfg.atomic_cycles,
        }
    }

    /// Executes a hardware RPC issued at `now`; the requester blocks until
    /// `finish`.
    ///
    /// The operation is applied immediately to the backing memory (the
    /// simulation's virtual-time discipline: effects are ordered by the
    /// injection port's FIFO).
    ///
    /// # Panics
    ///
    /// Panics if core ids are out of range or a DMEM address is out of
    /// bounds.
    pub fn request(
        &mut self,
        req: AteRequest,
        now: Time,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> AteResponse {
        assert!(req.from < self.n_cores && req.to < self.n_cores, "core id out of range");
        let hop = self.hop_latency(req.from, req.to);
        let arrive = now + Time::from_cycles(hop);
        // FIFO ordering: the remote injection port serves in arrival order.
        let start = arrive.max(self.port_free[req.to]);
        let stall = self.op_cycles(req.op);
        let done_remote = start + Time::from_cycles(stall);
        self.port_free[req.to] = done_remote;

        let value = match req.target {
            AteTarget::Ddr(addr) => apply_phys(phys, addr, req.op),
            AteTarget::RemoteDmem { addr } => apply_dmem(&mut dmems[req.to], addr, req.op),
        };

        let finish = done_remote + Time::from_cycles(hop);
        self.latencies.record((finish - now).cycles());
        AteResponse { value, finish, remote_stall: stall }
    }

    /// Schedules a software RPC: the remote core is interrupted, runs a
    /// handler estimated at `handler_cycles`, and the response returns.
    /// The caller (the SoC model) is responsible for actually running the
    /// handler's effects at `interrupt_at`.
    pub fn sw_rpc(
        &mut self,
        from: usize,
        to: usize,
        now: Time,
        handler_cycles: u64,
    ) -> SwRpcTicket {
        assert!(from < self.n_cores && to < self.n_cores, "core id out of range");
        let hop = self.hop_latency(from, to);
        let arrive = now + Time::from_cycles(hop);
        let start = arrive.max(self.port_free[to]);
        let handler_done = start + Time::from_cycles(self.cfg.sw_rpc_overhead + handler_cycles);
        self.port_free[to] = handler_done;
        let response_at = handler_done + Time::from_cycles(hop);
        self.latencies.record((response_at - now).cycles());
        SwRpcTicket { interrupt_at: start, response_at }
    }
}

fn apply_phys(phys: &mut PhysMem, addr: u64, op: AteOp) -> u64 {
    let old = phys.read_u64(addr);
    match op {
        AteOp::Load => old,
        AteOp::Store(v) => {
            phys.write_u64(addr, v);
            0
        }
        AteOp::FetchAdd(d) => {
            phys.write_u64(addr, old.wrapping_add(d));
            old
        }
        AteOp::CompareSwap { expect, new } => {
            if old == expect {
                phys.write_u64(addr, new);
            }
            old
        }
    }
}

fn apply_dmem(dmem: &mut Dmem, addr: u32, op: AteOp) -> u64 {
    let old = dmem.read_u64(addr);
    match op {
        AteOp::Load => old,
        AteOp::Store(v) => {
            dmem.write_u64(addr, v);
            0
        }
        AteOp::FetchAdd(d) => {
            dmem.write_u64(addr, old.wrapping_add(d));
            old
        }
        AteOp::CompareSwap { expect, new } => {
            if old == expect {
                dmem.write_u64(addr, new);
            }
            old
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Ate, PhysMem, Vec<Dmem>) {
        (
            Ate::new(AteConfig::default(), 32),
            PhysMem::new(4096),
            (0..32).map(|_| Dmem::new(1024)).collect(),
        )
    }

    #[test]
    fn intra_macro_cheaper_than_inter_macro() {
        let (mut ate, mut phys, mut dmems) = setup();
        let near = ate.request(
            AteRequest { from: 0, to: 1, target: AteTarget::Ddr(0), op: AteOp::Load },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        let far = ate.request(
            AteRequest { from: 0, to: 31, target: AteTarget::Ddr(8), op: AteOp::Load },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        assert!(far.finish > near.finish);
        assert_eq!(
            near.finish.cycles(),
            2 * ate.config().intra_macro_hop + ate.config().load_cycles
        );
        assert_eq!(
            far.finish.cycles(),
            2 * ate.config().inter_macro_hop + ate.config().load_cycles
        );
    }

    #[test]
    fn store_cheaper_than_atomics() {
        let (mut ate, mut phys, mut dmems) = setup();
        let st = ate.request(
            AteRequest { from: 0, to: 1, target: AteTarget::Ddr(0), op: AteOp::Store(1) },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        let mut ate2 = Ate::new(AteConfig::default(), 32);
        let fa = ate2.request(
            AteRequest { from: 0, to: 1, target: AteTarget::Ddr(0), op: AteOp::FetchAdd(1) },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        assert!(st.finish < fa.finish);
    }

    #[test]
    fn fetch_add_returns_old_and_accumulates() {
        let (mut ate, mut phys, mut dmems) = setup();
        let mk =
            |from| AteRequest { from, to: 5, target: AteTarget::Ddr(128), op: AteOp::FetchAdd(10) };
        let r1 = ate.request(mk(0), Time::ZERO, &mut phys, &mut dmems);
        let r2 = ate.request(mk(1), Time::ZERO, &mut phys, &mut dmems);
        assert_eq!(r1.value, 0);
        assert_eq!(r2.value, 10);
        assert_eq!(phys.read_u64(128), 20);
    }

    #[test]
    fn cas_success_and_failure() {
        let (mut ate, mut phys, mut dmems) = setup();
        phys.write_u64(64, 7);
        let ok = ate.request(
            AteRequest {
                from: 0,
                to: 1,
                target: AteTarget::Ddr(64),
                op: AteOp::CompareSwap { expect: 7, new: 9 },
            },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        assert_eq!(ok.value, 7);
        assert_eq!(phys.read_u64(64), 9);
        let fail = ate.request(
            AteRequest {
                from: 0,
                to: 1,
                target: AteTarget::Ddr(64),
                op: AteOp::CompareSwap { expect: 7, new: 11 },
            },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        assert_eq!(fail.value, 9, "CAS failure returns current value");
        assert_eq!(phys.read_u64(64), 9, "CAS failure writes nothing");
    }

    #[test]
    fn remote_dmem_operations() {
        let (mut ate, mut phys, mut dmems) = setup();
        dmems[20].write_u64(0, 100);
        let r = ate.request(
            AteRequest {
                from: 3,
                to: 20,
                target: AteTarget::RemoteDmem { addr: 0 },
                op: AteOp::FetchAdd(1),
            },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        assert_eq!(r.value, 100);
        assert_eq!(dmems[20].read_u64(0), 101);
    }

    #[test]
    fn same_destination_serializes_fifo() {
        let (mut ate, mut phys, mut dmems) = setup();
        // Many cores target core 0 at t=0: responses spread out in time.
        let mut finishes = Vec::new();
        for from in 1..9 {
            let r = ate.request(
                AteRequest { from, to: 0, target: AteTarget::Ddr(0), op: AteOp::FetchAdd(1) },
                Time::ZERO,
                &mut phys,
                &mut dmems,
            );
            finishes.push(r.finish);
        }
        for w in finishes.windows(2) {
            assert!(w[1] > w[0], "injection port must serialize");
        }
        assert_eq!(phys.read_u64(0), 8);
    }

    #[test]
    fn different_destinations_proceed_in_parallel() {
        let (mut ate, mut phys, mut dmems) = setup();
        let r1 = ate.request(
            AteRequest { from: 0, to: 1, target: AteTarget::Ddr(0), op: AteOp::Load },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        let r2 = ate.request(
            AteRequest { from: 2, to: 3, target: AteTarget::Ddr(8), op: AteOp::Load },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        assert_eq!(r1.finish, r2.finish, "disjoint ports don't contend");
    }

    #[test]
    fn sw_rpc_slower_than_hw_rpc() {
        let (mut ate, mut phys, mut dmems) = setup();
        let hw = ate.request(
            AteRequest { from: 0, to: 9, target: AteTarget::Ddr(0), op: AteOp::Load },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
        let mut ate2 = Ate::new(AteConfig::default(), 32);
        let sw = ate2.sw_rpc(0, 9, Time::ZERO, 100);
        assert!(sw.response_at > hw.finish, "interrupt path must cost more");
        assert!(sw.interrupt_at < sw.response_at);
    }

    #[test]
    fn latency_histogram_populates() {
        let (mut ate, mut phys, mut dmems) = setup();
        for i in 0..10 {
            ate.request(
                AteRequest {
                    from: i,
                    to: (i + 1) % 32,
                    target: AteTarget::Ddr(0),
                    op: AteOp::Load,
                },
                Time::ZERO,
                &mut phys,
                &mut dmems,
            );
        }
        assert_eq!(ate.latency_histogram().count(), 10);
        assert!(ate.latency_histogram().mean().unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn bad_core_id_panics() {
        let (mut ate, mut phys, mut dmems) = setup();
        ate.request(
            AteRequest { from: 0, to: 99, target: AteTarget::Ddr(0), op: AteOp::Load },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        );
    }
}
