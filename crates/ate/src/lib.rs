//! The Atomic Transaction Engine (ATE).
//!
//! The ATE is the DPU's alternative to hardware cache coherence (§2.3): a
//! two-level crossbar (one connecting the 8 dpCores of a macro, one
//! connecting the 4 macros) carrying messages with guaranteed
//! point-to-point FIFO ordering. Messages are interpreted as **remote
//! procedure calls**:
//!
//! * **Hardware RPCs** — load, store, atomic fetch-and-add and
//!   compare-and-swap on any DDR or remote-DMEM address. The receiving
//!   ATE injects the operation directly into the remote dpCore's
//!   pipeline: it appears as a brief stall, with no interrupt and no
//!   instruction-cache disturbance.
//! * **Software RPCs** — interrupt the remote core and run a pre-installed
//!   handler to completion (used for flush/invalidate/mutate of shared
//!   ranges, per §4's `dpu_serialized` discipline).
//!
//! A requesting core may have **one outstanding request** and stalls until
//! the response returns. [`sync`] builds mutexes, barriers and
//! work-stealing counters from these primitives.
//!
//! # Example
//!
//! ```
//! use dpu_ate::{Ate, AteConfig, AteOp, AteRequest, AteTarget};
//! use dpu_mem::{Dmem, PhysMem};
//! use dpu_sim::Time;
//!
//! let mut ate = Ate::new(AteConfig::default(), 32);
//! let mut phys = PhysMem::new(1024);
//! let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(256)).collect();
//! // Core 0 fetch-adds a counter owned by core 17 (cross-macro).
//! let req = AteRequest {
//!     from: 0,
//!     to: 17,
//!     target: AteTarget::RemoteDmem { addr: 64 },
//!     op: AteOp::FetchAdd(5),
//! };
//! let resp = ate.request(req, Time::ZERO, &mut phys, &mut dmems);
//! assert_eq!(resp.value, 0);                      // old value
//! assert_eq!(dmems[17].read_u64(64), 5);          // applied remotely
//! assert!(resp.finish > Time::ZERO);
//! ```

pub mod engine;
pub mod sync;

pub use engine::{Ate, AteConfig, AteOp, AteRequest, AteResponse, AteTarget, SwRpcTicket};
pub use sync::{AteBarrier, AteCounter, AteMutex, AteReducer};
