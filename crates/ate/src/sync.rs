//! Synchronization primitives built on ATE hardware RPCs.
//!
//! "Hardware RPCs enable efficient synchronization primitives such as
//! mutexes and barriers" (§2.3). These are the virtual-time analogues the
//! runtime and applications use: each operation issues real ATE requests,
//! so contention, FIFO ordering and crossbar latency all show up in the
//! returned timestamps — and the underlying memory really changes, so
//! correctness is testable.

use dpu_mem::{Dmem, PhysMem};
use dpu_sim::Time;

use crate::engine::{Ate, AteOp, AteRequest, AteTarget};

/// A spin mutex: one 64-bit word in DDR, locked by CAS(0→1+owner).
///
/// Shared data structures are "pinned to a single owner dpCore" (§4); the
/// mutex word lives in DDR and every operation goes through the owner's
/// ATE injection port, giving fair FIFO ordering under contention.
#[derive(Debug, Clone, Copy)]
pub struct AteMutex {
    /// DDR address of the lock word.
    pub lock_addr: u64,
    /// Core that owns (arbitrates) the lock word.
    pub home_core: usize,
}

impl AteMutex {
    /// Acquires the lock for `core`, spinning with CAS until it succeeds.
    /// Returns the time at which the lock is held.
    pub fn lock(
        &self,
        core: usize,
        mut now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> Time {
        loop {
            let r = ate.request(
                AteRequest {
                    from: core,
                    to: self.home_core,
                    target: AteTarget::Ddr(self.lock_addr),
                    op: AteOp::CompareSwap { expect: 0, new: core as u64 + 1 },
                },
                now,
                phys,
                dmems,
            );
            if r.value == 0 {
                return r.finish;
            }
            // Losing the CAS: retry after the round trip (spin).
            now = r.finish;
        }
    }

    /// Releases the lock at `now`; returns when the store lands.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion of the discipline) if the caller does not
    /// hold the lock.
    pub fn unlock(
        &self,
        core: usize,
        now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> Time {
        debug_assert_eq!(phys.read_u64(self.lock_addr), core as u64 + 1, "unlock by non-owner");
        ate.request(
            AteRequest {
                from: core,
                to: self.home_core,
                target: AteTarget::Ddr(self.lock_addr),
                op: AteOp::Store(0),
            },
            now,
            phys,
            dmems,
        )
        .finish
    }
}

/// A sense-reversing barrier over a fetch-add counter and a generation
/// word, both in DDR.
#[derive(Debug, Clone, Copy)]
pub struct AteBarrier {
    /// DDR address of the arrival counter.
    pub counter_addr: u64,
    /// DDR address of the generation word.
    pub generation_addr: u64,
    /// Core arbitrating the barrier words.
    pub home_core: usize,
    /// Number of participants.
    pub parties: u64,
}

impl AteBarrier {
    /// Arrives at the barrier at `now`; returns the time this core may
    /// proceed (when the last participant has arrived).
    pub fn arrive(
        &self,
        core: usize,
        now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> Time {
        let r = ate.request(
            AteRequest {
                from: core,
                to: self.home_core,
                target: AteTarget::Ddr(self.counter_addr),
                op: AteOp::FetchAdd(1),
            },
            now,
            phys,
            dmems,
        );
        let arrivals_before = r.value;
        if arrivals_before + 1 == self.parties {
            // Last arrival: reset the counter, bump the generation.
            let gen = phys.read_u64(self.generation_addr);
            phys.write_u64(self.counter_addr, 0);
            let g = ate.request(
                AteRequest {
                    from: core,
                    to: self.home_core,
                    target: AteTarget::Ddr(self.generation_addr),
                    op: AteOp::Store(gen + 1),
                },
                r.finish,
                phys,
                dmems,
            );
            g.finish
        } else {
            // Wait for the generation bump: in virtual time the waiter's
            // release is the generation store; spin-poll to find it.
            let mut t = r.finish;
            let start_gen = phys.read_u64(self.generation_addr);
            let _ = start_gen;
            // Model the release as one poll round trip after the last
            // arrival; the caller supplies no callback, so we conservatively
            // charge one load RPC.
            let poll = ate.request(
                AteRequest {
                    from: core,
                    to: self.home_core,
                    target: AteTarget::Ddr(self.generation_addr),
                    op: AteOp::Load,
                },
                t,
                phys,
                dmems,
            );
            t = poll.finish;
            t
        }
    }
}

/// A shared work-stealing chunk counter (the HLL scheduler of §5.4): each
/// core fetch-adds to claim the next chunk index.
#[derive(Debug, Clone, Copy)]
pub struct AteCounter {
    /// DDR address of the counter word.
    pub addr: u64,
    /// Core arbitrating the counter.
    pub home_core: usize,
}

impl AteCounter {
    /// Claims the next value at `now`; returns `(claimed, finish)`.
    pub fn next(
        &self,
        core: usize,
        now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> (u64, Time) {
        let r = ate.request(
            AteRequest {
                from: core,
                to: self.home_core,
                target: AteTarget::Ddr(self.addr),
                op: AteOp::FetchAdd(1),
            },
            now,
            phys,
            dmems,
        );
        (r.value, r.finish)
    }
}

/// An all-to-one minimum/maximum reduction over ATE messages — the SVM
/// violating-pair search (§5.1): "each core sends its local violating
/// pair to a designated master core using the ATE. The master then
/// computes the error on the global pair, and broadcasts the updated
/// values to all dpCores using the ATE as well."
#[derive(Debug, Clone, Copy)]
pub struct AteReducer {
    /// The designated master core.
    pub master: usize,
    /// DDR base of the per-core contribution slots (8 B each).
    pub slots_addr: u64,
    /// DDR address of the broadcast result word.
    pub result_addr: u64,
}

impl AteReducer {
    /// Core `core` contributes `value` at `now` (a remote store into its
    /// slot at the master); returns when the store lands.
    pub fn contribute(
        &self,
        core: usize,
        value: u64,
        now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> Time {
        ate.request(
            AteRequest {
                from: core,
                to: self.master,
                target: AteTarget::Ddr(self.slots_addr + core as u64 * 8),
                op: AteOp::Store(value),
            },
            now,
            phys,
            dmems,
        )
        .finish
    }

    /// The master reduces `n` contributions with `f` once they have all
    /// landed (caller synchronizes, e.g. with an [`AteBarrier`]), writes
    /// the result to the broadcast word, and returns `(result, time)`.
    pub fn reduce(
        &self,
        n: usize,
        now: Time,
        f: impl Fn(u64, u64) -> u64,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> (u64, Time) {
        let mut acc = phys.read_u64(self.slots_addr);
        for i in 1..n {
            acc = f(acc, phys.read_u64(self.slots_addr + i as u64 * 8));
        }
        // Local reduce costs n loads on the master; then broadcast via a
        // store every waiter can load (one hop back each).
        let t = ate
            .request(
                AteRequest {
                    from: self.master,
                    to: self.master,
                    target: AteTarget::Ddr(self.result_addr),
                    op: AteOp::Store(acc),
                },
                now + Time::from_cycles(2 * n as u64),
                phys,
                dmems,
            )
            .finish;
        (acc, t)
    }

    /// A worker fetches the broadcast result at `now`.
    pub fn fetch_result(
        &self,
        core: usize,
        now: Time,
        ate: &mut Ate,
        phys: &mut PhysMem,
        dmems: &mut [Dmem],
    ) -> (u64, Time) {
        let r = ate.request(
            AteRequest {
                from: core,
                to: self.master,
                target: AteTarget::Ddr(self.result_addr),
                op: AteOp::Load,
            },
            now,
            phys,
            dmems,
        );
        (r.value, r.finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AteConfig;

    fn setup() -> (Ate, PhysMem, Vec<Dmem>) {
        (
            Ate::new(AteConfig::default(), 32),
            PhysMem::new(4096),
            (0..32).map(|_| Dmem::new(256)).collect(),
        )
    }

    #[test]
    fn mutex_mutual_exclusion_and_fifo_fairness() {
        let (mut ate, mut phys, mut dmems) = setup();
        let m = AteMutex { lock_addr: 0, home_core: 0 };
        let t1 = m.lock(1, Time::ZERO, &mut ate, &mut phys, &mut dmems);
        assert_eq!(phys.read_u64(0), 2, "owner tag = core+1");
        // Another core spinning cannot acquire until unlock.
        // (We simulate the spin by hand: its CAS at t1 fails.)
        let r = ate.request(
            AteRequest {
                from: 2,
                to: 0,
                target: AteTarget::Ddr(0),
                op: AteOp::CompareSwap { expect: 0, new: 3 },
            },
            t1,
            &mut phys,
            &mut dmems,
        );
        assert_ne!(r.value, 0, "lock is held");
        let t2 = m.unlock(1, t1 + Time::from_cycles(100), &mut ate, &mut phys, &mut dmems);
        let t3 = m.lock(2, t2, &mut ate, &mut phys, &mut dmems);
        assert!(t3 > t2);
        assert_eq!(phys.read_u64(0), 3);
    }

    #[test]
    fn mutex_lock_spins_until_free() {
        let (mut ate, mut phys, mut dmems) = setup();
        let m = AteMutex { lock_addr: 8, home_core: 0 };
        // Pre-lock by core 9 "out of band".
        phys.write_u64(8, 10);
        // Release it in the past relative to the spinner's 3rd attempt:
        // model by unlocking now and locking from another core.
        phys.write_u64(8, 0);
        let t = m.lock(4, Time::ZERO, &mut ate, &mut phys, &mut dmems);
        assert!(t.cycles() > 0);
        assert_eq!(phys.read_u64(8), 5);
    }

    #[test]
    fn barrier_releases_all_after_last_arrival() {
        let (mut ate, mut phys, mut dmems) = setup();
        let b = AteBarrier { counter_addr: 16, generation_addr: 24, home_core: 0, parties: 4 };
        let mut times = Vec::new();
        for core in 0..4 {
            times.push(b.arrive(
                core,
                Time::from_cycles(core as u64 * 10),
                &mut ate,
                &mut phys,
                &mut dmems,
            ));
        }
        // Generation bumped exactly once, counter reset.
        assert_eq!(phys.read_u64(24), 1);
        assert_eq!(phys.read_u64(16), 0);
        // Nobody may be released before the last arrival reached the
        // barrier (t = 30 + crossbar time).
        let min_release = times.iter().min().unwrap();
        assert!(min_release.cycles() >= 30);
    }

    #[test]
    fn barrier_is_reusable() {
        let (mut ate, mut phys, mut dmems) = setup();
        let b = AteBarrier { counter_addr: 0, generation_addr: 8, home_core: 0, parties: 2 };
        let mut t = Time::ZERO;
        for round in 1..=3u64 {
            let t0 = b.arrive(0, t, &mut ate, &mut phys, &mut dmems);
            let t1 = b.arrive(1, t, &mut ate, &mut phys, &mut dmems);
            t = t0.max(t1);
            assert_eq!(phys.read_u64(8), round, "generation per round");
        }
    }

    #[test]
    fn reducer_finds_the_global_maximum() {
        let (mut ate, mut phys, mut dmems) = setup();
        let red = AteReducer { master: 0, slots_addr: 256, result_addr: 1024 };
        // 16 cores contribute pseudo-random "violations".
        let mut contribs = Vec::new();
        let mut done = Time::ZERO;
        for core in 0..16 {
            let v = ((core as u64).wrapping_mul(2654435761)) % 1000;
            contribs.push(v);
            done = done.max(red.contribute(core, v, Time::ZERO, &mut ate, &mut phys, &mut dmems));
        }
        let (max, t) = red.reduce(16, done, u64::max, &mut ate, &mut phys, &mut dmems);
        assert_eq!(max, *contribs.iter().max().unwrap());
        // Workers fetch the broadcast and all see the same value.
        for core in 1..16 {
            let (got, _) = red.fetch_result(core, t, &mut ate, &mut phys, &mut dmems);
            assert_eq!(got, max);
        }
        assert!(t > done, "reduce happens after the last contribution");
    }

    #[test]
    fn counter_hands_out_unique_chunks() {
        let (mut ate, mut phys, mut dmems) = setup();
        let c = AteCounter { addr: 32, home_core: 7 };
        let mut seen = Vec::new();
        for core in 0..32 {
            let (v, _) = c.next(core, Time::ZERO, &mut ate, &mut phys, &mut dmems);
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn contended_counter_costs_more_than_uncontended() {
        let (mut ate, mut phys, mut dmems) = setup();
        let c = AteCounter { addr: 32, home_core: 0 };
        let (_, t_first) = c.next(1, Time::ZERO, &mut ate, &mut phys, &mut dmems);
        // 31 cores pile on at t=0; the last response is far later.
        let mut last = Time::ZERO;
        for core in 2..32 {
            let (_, t) = c.next(core, Time::ZERO, &mut ate, &mut phys, &mut dmems);
            last = last.max(t);
        }
        assert!(last > t_first + Time::from_cycles(29 * 3));
    }
}
