//! The dpCore instruction set.
//!
//! The DPU's 32 data-processing cores (dpCores) implement a 64-bit
//! MIPS-like ISA extended with single-cycle analytics instructions:
//! bit-vector load (`BVLD`), filter (`FILT`), `CRC32` hash-code generation
//! and population count (`POPC`). The pipeline is dual-issue in-order (one
//! ALU slot, one load/store slot), with a low-power variable-latency
//! multiplier, a static backward-taken branch predictor, and no MMU.
//!
//! This crate provides:
//!
//! * the instruction definitions ([`inst::Inst`]) and their 32-bit binary
//!   encoding ([`encode`]),
//! * a text [`asm`]: a two-pass assembler with labels,
//! * a functional [`interp`]reter whose timing comes from the dual-issue
//!   [`pipeline`] model — microbenchmarks such as the paper's
//!   1.65 cycles/tuple filter loop are *measured* by running the actual
//!   instruction sequence,
//! * an operation-count cost model ([`counts::OpCounts`]) used by the
//!   application kernels, and
//! * the hash functions the hardware accelerates ([`hash`]).
//!
//! # Example: run a program on one dpCore
//!
//! ```
//! use dpu_isa::asm::assemble;
//! use dpu_isa::interp::Cpu;
//!
//! let prog = assemble(
//!     "   addi r1, r0, 21
//!         add  r2, r1, r1
//!         halt",
//! ).unwrap();
//! let mut cpu = Cpu::new(32 * 1024);
//! let run = cpu.run(&prog, 1_000).unwrap();
//! assert_eq!(cpu.reg(2), 42);
//! assert!(run.cycles > 0);
//! ```

pub mod asm;
pub mod counts;
pub mod encode;
pub mod hash;
pub mod inst;
pub mod interp;
pub mod pipeline;
pub mod reg;

pub use counts::OpCounts;
pub use inst::Inst;
pub use interp::{Cpu, RunSummary, Trap};
pub use pipeline::PipelineModel;
pub use reg::Reg;
