//! Dual-issue in-order pipeline timing model.
//!
//! The dpCore implements "a simple dual-issue pipeline, one for the ALU and
//! the other for the LSU pipe" (§2.2), a low-power multiplier that stalls
//! the pipeline for multiple cycles, a static branch predictor that
//! predicts backward branches as taken, and single-cycle DMEM access.
//! This module captures those rules as a small scoreboard that the
//! [`interpreter`](crate::interp) consults while executing.

use crate::inst::{Inst, Pipe};

/// Timing parameters of the dpCore pipeline.
///
/// Defaults model the fabricated 800 MHz part as described in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineModel {
    /// Base latency of the variable-latency multiplier (cycles).
    pub mul_base_latency: u64,
    /// Extra multiplier cycles per 16 significant bits of the second operand.
    pub mul_cycles_per_16bits: u64,
    /// Cycles lost on a conditional-branch misprediction.
    pub mispredict_penalty: u64,
    /// Cycles lost on an indirect jump (`jr`), whose target is not predicted.
    pub jr_penalty: u64,
    /// Load-to-use latency for DMEM accesses (result ready after this many
    /// cycles; DMEM itself is single-cycle SRAM).
    pub load_use_latency: u64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel {
            mul_base_latency: 4,
            mul_cycles_per_16bits: 2,
            mispredict_penalty: 3,
            jr_penalty: 2,
            load_use_latency: 2,
        }
    }
}

impl PipelineModel {
    /// Latency of a multiply given the value of the second operand: the
    /// low-power iterative multiplier early-outs on small multipliers,
    /// which is why Murmur64's 64-bit constants hurt on the DPU (§5.4).
    pub fn mul_latency(&self, operand: u64) -> u64 {
        let sig_bits = 64 - operand.leading_zeros() as u64;
        self.mul_base_latency + self.mul_cycles_per_16bits * sig_bits.div_ceil(16)
    }

    /// The static prediction for a conditional branch: backward taken,
    /// forward not-taken.
    pub fn predict_taken(&self, offset: i16) -> bool {
        offset < 0
    }
}

/// Issue scoreboard: register-ready times plus per-pipe occupancy.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    reg_ready: [u64; 32],
    pipe_free: [u64; 2],
    /// Cycle at which the next instruction may issue at the earliest
    /// (advanced by stalls, mispredictions and in-order constraints).
    fetch_ready: u64,
    cycle: u64,
}

impl Scoreboard {
    /// A scoreboard with everything ready at cycle 0.
    pub fn new() -> Self {
        Scoreboard { reg_ready: [0; 32], pipe_free: [0; 2], fetch_ready: 0, cycle: 0 }
    }

    /// Current cycle (the issue cycle of the most recent instruction).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn pipe_idx(pipe: Pipe) -> usize {
        match pipe {
            Pipe::Alu => 0,
            Pipe::Lsu => 1,
        }
    }

    /// Issues `inst`, returning its issue cycle. `taken_mispredict` reports
    /// whether a conditional branch went against the static prediction, and
    /// `mul_latency` supplies the multiplier latency when `inst` is a `mul`.
    pub fn issue(
        &mut self,
        inst: Inst,
        model: &PipelineModel,
        taken_mispredict: bool,
        mul_latency: u64,
    ) -> u64 {
        let pipe = Self::pipe_idx(inst.pipe());
        let mut earliest = self.fetch_ready.max(self.pipe_free[pipe]);
        for src in inst.sources() {
            earliest = earliest.max(self.reg_ready[src.index()]);
        }
        let issue = earliest;
        self.pipe_free[pipe] = issue + 1;
        // In-order: a later instruction may co-issue in the same cycle on
        // the other pipe, but never issue earlier.
        self.fetch_ready = self.fetch_ready.max(issue);
        self.cycle = self.cycle.max(issue);

        // Writeback latency.
        if let Some(rd) = inst.dest() {
            if !rd.is_zero() {
                let lat = if matches!(inst, Inst::Mul { .. }) {
                    mul_latency
                } else if inst.is_load() {
                    model.load_use_latency
                } else {
                    1
                };
                self.reg_ready[rd.index()] = issue + lat;
            }
        }

        // Pipeline-wide stalls.
        if matches!(inst, Inst::Mul { .. }) {
            // The low-power multiplier stalls the whole pipeline (§2.2).
            self.fetch_ready = self.fetch_ready.max(issue + mul_latency);
        }
        if inst.is_cond_branch() && taken_mispredict {
            self.fetch_ready = self.fetch_ready.max(issue + 1 + model.mispredict_penalty);
        }
        if matches!(inst, Inst::Jr { .. }) {
            self.fetch_ready = self.fetch_ready.max(issue + 1 + model.jr_penalty);
        }

        issue
    }
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn r(i: u8) -> Reg {
        Reg::of(i)
    }

    #[test]
    fn independent_alu_lsu_pair_dual_issues() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        let c1 = sb.issue(Inst::Add { rd: r(1), rs: r(2), rt: r(3) }, &m, false, 0);
        let c2 = sb.issue(Inst::Lw { rt: r(4), rs: r(5), off: 0 }, &m, false, 0);
        assert_eq!(c1, 0);
        assert_eq!(c2, 0, "ALU + LSU should co-issue");
    }

    #[test]
    fn same_pipe_serializes() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        let c1 = sb.issue(Inst::Add { rd: r(1), rs: r(2), rt: r(3) }, &m, false, 0);
        let c2 = sb.issue(Inst::Add { rd: r(4), rs: r(5), rt: r(6) }, &m, false, 0);
        assert_eq!(c1, 0);
        assert_eq!(c2, 1);
    }

    #[test]
    fn raw_hazard_stalls() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        sb.issue(Inst::Add { rd: r(1), rs: r(2), rt: r(3) }, &m, false, 0);
        let c = sb.issue(Inst::Sub { rd: r(4), rs: r(1), rt: r(3) }, &m, false, 0);
        assert_eq!(c, 1, "dependent ALU op waits one cycle");
    }

    #[test]
    fn load_use_delay() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        sb.issue(Inst::Lw { rt: r(1), rs: r(2), off: 0 }, &m, false, 0);
        let c = sb.issue(Inst::Add { rd: r(3), rs: r(1), rt: r(1) }, &m, false, 0);
        assert_eq!(c, m.load_use_latency);
    }

    #[test]
    fn mul_stalls_pipeline() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        let lat = m.mul_latency(u64::MAX);
        sb.issue(Inst::Mul { rd: r(1), rs: r(2), rt: r(3) }, &m, false, lat);
        // Even an independent instruction can't issue during the stall.
        let c = sb.issue(Inst::Add { rd: r(4), rs: r(5), rt: r(6) }, &m, false, 0);
        assert_eq!(c, lat);
    }

    #[test]
    fn mul_latency_grows_with_operand_width() {
        let m = PipelineModel::default();
        assert!(m.mul_latency(3) < m.mul_latency(u32::MAX as u64));
        assert!(m.mul_latency(u32::MAX as u64) < m.mul_latency(u64::MAX));
        assert_eq!(m.mul_latency(0), m.mul_base_latency);
        // 64-bit constants (Murmur64) pay the full latency.
        assert_eq!(m.mul_latency(u64::MAX), 4 + 2 * 4);
    }

    #[test]
    fn static_predictor_is_backward_taken() {
        let m = PipelineModel::default();
        assert!(m.predict_taken(-1));
        assert!(!m.predict_taken(0));
        assert!(!m.predict_taken(5));
    }

    #[test]
    fn mispredict_adds_penalty() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        sb.issue(Inst::Bne { rs: r(1), rt: r(2), off: 4 }, &m, true, 0);
        let c = sb.issue(Inst::Add { rd: r(3), rs: r(4), rt: r(5) }, &m, false, 0);
        assert_eq!(c, 1 + m.mispredict_penalty);
    }

    #[test]
    fn correct_prediction_is_free() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        sb.issue(Inst::Bne { rs: r(1), rt: r(2), off: -4 }, &m, false, 0);
        let c = sb.issue(Inst::Lw { rt: r(3), rs: r(4), off: 0 }, &m, false, 0);
        assert_eq!(c, 0, "predicted branch co-issues with next fetch group");
    }

    #[test]
    fn writes_to_r0_never_create_hazards() {
        let m = PipelineModel::default();
        let mut sb = Scoreboard::new();
        sb.issue(Inst::Lw { rt: Reg::ZERO, rs: r(2), off: 0 }, &m, false, 0);
        let c = sb.issue(Inst::Add { rd: r(1), rs: Reg::ZERO, rt: Reg::ZERO }, &m, false, 0);
        assert_eq!(c, 0);
    }
}
