//! A two-pass text assembler for the dpCore ISA.
//!
//! The syntax mirrors classic MIPS assembly. Labels end with `:`;
//! comments start with `#`, `;` or `//`. Branch/jump operands may be
//! labels or literal numbers (branch literals are instruction-relative
//! offsets, jump literals absolute instruction indices).
//!
//! One pseudo-instruction is provided: `li rX, imm32` loads a 32-bit
//! immediate, always expanding to the `lui`+`ori` pair so label offsets
//! stay deterministic.
//!
//! # Example
//!
//! ```
//! use dpu_isa::asm::assemble;
//! let prog = assemble(
//!     "       addi r1, r0, 10      # counter
//!      loop:  addi r1, r1, -1
//!             bne  r1, r0, loop
//!             halt",
//! ).unwrap();
//! assert_eq!(prog.len(), 4);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::reg::Reg;

/// Error produced when assembly fails, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Assembles a program into an instruction vector.
///
/// # Errors
///
/// Returns [`AsmError`] on unknown mnemonics, malformed operands,
/// duplicate or undefined labels, or out-of-range immediates.
pub fn assemble(source: &str) -> Result<Vec<Inst>, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements. Each
    // statement's instruction count is known up front (`li` → 2, all
    // else → 1) so label addresses account for pseudo-op expansion.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut stmts: Vec<(usize, String, u32)> = Vec::new(); // (line, text, pc)
    let mut pc = 0u32;
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut text = raw;
        for marker in ["#", ";", "//"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(lineno, format!("invalid label {label:?}")));
            }
            if labels.insert(label.to_string(), pc).is_some() {
                return Err(err(lineno, format!("duplicate label {label:?}")));
            }
            text = text[colon + 1..].trim();
        }
        if !text.is_empty() {
            let width = if text.split_whitespace().next().unwrap_or("").eq_ignore_ascii_case("li") {
                2
            } else {
                1
            };
            stmts.push((lineno, text.to_string(), pc));
            pc += width;
        }
    }

    // Pass 2: parse each statement (pseudo-ops expand).
    let mut prog = Vec::with_capacity(pc as usize);
    for (lineno, text, stmt_pc) in &stmts {
        parse_stmt(text, *lineno, *stmt_pc, &labels, &mut prog)?;
        debug_assert!(prog.len() as u32 > *stmt_pc);
    }
    Ok(prog)
}

fn parse_stmt(
    text: &str,
    line: usize,
    index: u32,
    labels: &HashMap<String, u32>,
    out: &mut Vec<Inst>,
) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { vec![] } else { rest.split(',').map(str::trim).collect() };
    let m = mnemonic.to_ascii_lowercase();

    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("{m} expects {n} operands, got {}", ops.len())))
        }
    };

    let reg = |s: &str| -> Result<Reg, AsmError> {
        let idx = s
            .strip_prefix('r')
            .and_then(|d| d.parse::<u8>().ok())
            .ok_or_else(|| err(line, format!("bad register {s:?}")))?;
        Reg::new(idx).ok_or_else(|| err(line, format!("register {s:?} out of range")))
    };

    let imm_i16 = |s: &str| -> Result<i16, AsmError> {
        parse_int(s)
            .and_then(|v| i16::try_from(v).ok())
            .ok_or_else(|| err(line, format!("bad 16-bit immediate {s:?}")))
    };
    let imm_u16 = |s: &str| -> Result<u16, AsmError> {
        parse_int(s)
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(|| err(line, format!("bad unsigned 16-bit immediate {s:?}")))
    };
    let shamt = |s: &str| -> Result<u8, AsmError> {
        parse_int(s)
            .and_then(|v| u8::try_from(v).ok())
            .filter(|&v| v < 64)
            .ok_or_else(|| err(line, format!("bad shift amount {s:?}")))
    };

    // `off(base)` memory operand.
    let mem = |s: &str| -> Result<(i16, Reg), AsmError> {
        let open = s.find('(').ok_or_else(|| err(line, format!("bad memory operand {s:?}")))?;
        let close = s.rfind(')').ok_or_else(|| err(line, format!("bad memory operand {s:?}")))?;
        let off_str = s[..open].trim();
        let off = if off_str.is_empty() { 0 } else { imm_i16(off_str)? };
        Ok((off, reg(s[open + 1..close].trim())?))
    };

    // Branch target: label → relative offset from index+1, or literal.
    let branch_off = |s: &str| -> Result<i16, AsmError> {
        if let Some(&target) = labels.get(s) {
            let rel = target as i64 - (index as i64 + 1);
            i16::try_from(rel).map_err(|_| err(line, format!("branch to {s:?} out of range")))
        } else {
            imm_i16(s)
        }
    };
    // Jump target: label → absolute index, or literal.
    let jump_target = |s: &str| -> Result<u32, AsmError> {
        if let Some(&target) = labels.get(s) {
            Ok(target)
        } else {
            parse_int(s)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| err(line, format!("bad jump target {s:?}")))
        }
    };

    use Inst::*;
    // Pseudo-instruction: li rX, imm32 → lui + ori.
    if m == "li" {
        want(2)?;
        let rt = reg(ops[0])?;
        let v = parse_int(ops[1])
            .and_then(|v| u32::try_from(v as u64 & 0xFFFF_FFFF).ok())
            .ok_or_else(|| err(line, format!("bad 32-bit immediate {:?}", ops[1])))?;
        out.push(Lui { rt, imm: (v >> 16) as u16 });
        out.push(Ori { rt, rs: rt, imm: (v & 0xFFFF) as u16 });
        return Ok(());
    }
    let inst = match m.as_str() {
        "add" | "sub" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" | "mul" | "sllv" | "srlv"
        | "crc32" | "filt" => {
            want(3)?;
            let (rd, rs, rt) = (reg(ops[0])?, reg(ops[1])?, reg(ops[2])?);
            match m.as_str() {
                "add" => Add { rd, rs, rt },
                "sub" => Sub { rd, rs, rt },
                "and" => And { rd, rs, rt },
                "or" => Or { rd, rs, rt },
                "xor" => Xor { rd, rs, rt },
                "nor" => Nor { rd, rs, rt },
                "slt" => Slt { rd, rs, rt },
                "sltu" => Sltu { rd, rs, rt },
                "mul" => Mul { rd, rs, rt },
                "sllv" => Sllv { rd, rs, rt },
                "srlv" => Srlv { rd, rs, rt },
                "crc32" => Crc32 { rd, rs, rt },
                _ => Filt { rd, rs, rt },
            }
        }
        "sll" | "srl" | "sra" => {
            want(3)?;
            let (rd, rt, sh) = (reg(ops[0])?, reg(ops[1])?, shamt(ops[2])?);
            match m.as_str() {
                "sll" => Sll { rd, rt, shamt: sh },
                "srl" => Srl { rd, rt, shamt: sh },
                _ => Sra { rd, rt, shamt: sh },
            }
        }
        "addi" | "slti" => {
            want(3)?;
            let (rt, rs, imm) = (reg(ops[0])?, reg(ops[1])?, imm_i16(ops[2])?);
            if m == "addi" {
                Addi { rt, rs, imm }
            } else {
                Slti { rt, rs, imm }
            }
        }
        "andi" | "ori" | "xori" => {
            want(3)?;
            let (rt, rs, imm) = (reg(ops[0])?, reg(ops[1])?, imm_u16(ops[2])?);
            match m.as_str() {
                "andi" => Andi { rt, rs, imm },
                "ori" => Ori { rt, rs, imm },
                _ => Xori { rt, rs, imm },
            }
        }
        "lui" => {
            want(2)?;
            Lui { rt: reg(ops[0])?, imm: imm_u16(ops[1])? }
        }
        "lb" | "lbu" | "lh" | "lhu" | "lw" | "lwu" | "ld" | "sb" | "sh" | "sw" | "sd" | "bvld" => {
            want(2)?;
            let rt = reg(ops[0])?;
            let (off, rs) = mem(ops[1])?;
            match m.as_str() {
                "lb" => Lb { rt, rs, off },
                "lbu" => Lbu { rt, rs, off },
                "lh" => Lh { rt, rs, off },
                "lhu" => Lhu { rt, rs, off },
                "lw" => Lw { rt, rs, off },
                "lwu" => Lwu { rt, rs, off },
                "ld" => Ld { rt, rs, off },
                "sb" => Sb { rt, rs, off },
                "sh" => Sh { rt, rs, off },
                "sw" => Sw { rt, rs, off },
                "sd" => Sd { rt, rs, off },
                _ => Bvld { rt, rs, off },
            }
        }
        "beq" | "bne" | "blt" | "bge" => {
            want(3)?;
            let (rs, rt, off) = (reg(ops[0])?, reg(ops[1])?, branch_off(ops[2])?);
            match m.as_str() {
                "beq" => Beq { rs, rt, off },
                "bne" => Bne { rs, rt, off },
                "blt" => Blt { rs, rt, off },
                _ => Bge { rs, rt, off },
            }
        }
        "j" | "jal" => {
            want(1)?;
            let target = jump_target(ops[0])?;
            if m == "j" {
                J { target }
            } else {
                Jal { target }
            }
        }
        "jr" => {
            want(1)?;
            Jr { rs: reg(ops[0])? }
        }
        "popc" => {
            want(2)?;
            Popc { rd: reg(ops[0])?, rs: reg(ops[1])? }
        }
        "wfe" => {
            want(1)?;
            Wfe { rs: reg(ops[0])? }
        }
        "clev" => {
            want(1)?;
            Clev { rs: reg(ops[0])? }
        }
        "dmspush" => {
            want(2)?;
            let chan = parse_int(ops[0])
                .and_then(|v| u8::try_from(v).ok())
                .filter(|&c| c < 2)
                .ok_or_else(|| err(line, format!("bad DMS channel {:?}", ops[0])))?;
            DmsPush { chan, rs: reg(ops[1])? }
        }
        "atereq" => {
            want(1)?;
            AteReq { rs: reg(ops[0])? }
        }
        "cflush" => {
            want(1)?;
            CFlush { rs: reg(ops[0])? }
        }
        "cinval" => {
            want(1)?;
            CInval { rs: reg(ops[0])? }
        }
        "fence" => {
            want(0)?;
            Fence
        }
        "halt" => {
            want(0)?;
            Halt
        }
        "nop" => {
            want(0)?;
            Nop
        }
        other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
    };
    out.push(inst);
    Ok(())
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = s.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::of(i)
    }

    #[test]
    fn assembles_basic_program() {
        let prog = assemble(
            "addi r1, r0, 5
             add r2, r1, r1
             halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog[0], Inst::Addi { rt: r(1), rs: r(0), imm: 5 });
        assert_eq!(prog[2], Inst::Halt);
    }

    #[test]
    fn labels_resolve_backward_and_forward() {
        let prog = assemble(
            "loop: addi r1, r1, -1
                   bne r1, r0, loop
                   beq r0, r0, end
                   nop
             end:  halt",
        )
        .unwrap();
        assert_eq!(prog[1], Inst::Bne { rs: r(1), rt: r(0), off: -2 });
        assert_eq!(prog[2], Inst::Beq { rs: r(0), rt: r(0), off: 1 });
    }

    #[test]
    fn jump_labels_are_absolute() {
        let prog = assemble(
            "start: nop
                    j start
                    jal start",
        )
        .unwrap();
        assert_eq!(prog[1], Inst::J { target: 0 });
        assert_eq!(prog[2], Inst::Jal { target: 0 });
    }

    #[test]
    fn memory_operands() {
        let prog = assemble("lw r1, -8(r2)\nsd r3, (r4)\nbvld r5, 64(r6)").unwrap();
        assert_eq!(prog[0], Inst::Lw { rt: r(1), rs: r(2), off: -8 });
        assert_eq!(prog[1], Inst::Sd { rt: r(3), rs: r(4), off: 0 });
        assert_eq!(prog[2], Inst::Bvld { rt: r(5), rs: r(6), off: 64 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble(
            "# full line comment
             addi r1, r0, 1   // trailing
             ; another comment

             halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn hex_immediates() {
        let prog = assemble("ori r1, r0, 0xBEEF\naddi r2, r0, -0x10").unwrap();
        assert_eq!(prog[0], Inst::Ori { rt: r(1), rs: r(0), imm: 0xBEEF });
        assert_eq!(prog[1], Inst::Addi { rt: r(2), rs: r(0), imm: -16 });
    }

    #[test]
    fn error_reporting() {
        let e = assemble("frobnicate r1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("frobnicate"));

        assert!(assemble("addi r1, r0").unwrap_err().message.contains("expects 3"));
        assert!(assemble("add r1, r2, r99").is_err());
        assert!(assemble("addi r1, r0, 99999").is_err());
        assert!(assemble("beq r1, r2, nowhere").is_err());
        assert!(assemble("x: nop\nx: nop").unwrap_err().message.contains("duplicate"));
        assert!(assemble("dmspush 5, r1").is_err());
    }

    #[test]
    fn special_instructions_parse() {
        let prog = assemble(
            "crc32 r1, r2, r3
             popc r4, r5
             filt r6, r7, r8
             wfe r1
             clev r1
             dmspush 1, r2
             atereq r3
             fence
             cflush r4
             cinval r5",
        )
        .unwrap();
        assert_eq!(prog.len(), 10);
        assert_eq!(prog[0], Inst::Crc32 { rd: r(1), rs: r(2), rt: r(3) });
        assert_eq!(prog[5], Inst::DmsPush { chan: 1, rs: r(2) });
    }

    #[test]
    fn li_expands_to_lui_ori() {
        let prog = assemble("li r5, 0xDEADBEEF\nhalt").unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog[0], Inst::Lui { rt: r(5), imm: 0xDEAD });
        assert_eq!(prog[1], Inst::Ori { rt: r(5), rs: r(5), imm: 0xBEEF });
    }

    #[test]
    fn labels_account_for_li_expansion() {
        let prog = assemble(
            "       li r1, 0x12345678
             loop:  addi r1, r1, -1
                    bne r1, r0, loop
                    j loop
                    halt",
        )
        .unwrap();
        // li expands to two instructions, so `loop` is at pc 2.
        assert_eq!(prog[3], Inst::Bne { rs: r(1), rt: r(0), off: -2 });
        assert_eq!(prog[4], Inst::J { target: 2 });
    }

    #[test]
    fn li_runs_on_the_interpreter() {
        use crate::interp::Cpu;
        let prog = assemble("li r1, 0xCAFEBABE\nhalt").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.run(&prog, 10).unwrap();
        assert_eq!(cpu.reg(1), 0xCAFE_BABE);
    }

    #[test]
    fn roundtrip_through_encoding() {
        let prog = assemble(
            "addi r1, r0, 100
             lw r2, 4(r1)
             crc32 r3, r3, r2
             bne r1, r0, -3
             halt",
        )
        .unwrap();
        for &inst in &prog {
            let w = crate::encode::encode(inst);
            assert_eq!(crate::encode::decode(w).unwrap(), inst);
        }
    }
}
