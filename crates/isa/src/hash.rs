//! Hash functions used by the DPU hardware and workloads.
//!
//! The dpCore exposes a single-cycle `CRC32` instruction and the DMS's
//! hash engine applies the same CRC32 polynomial when hash-partitioning
//! (§3.1). Murmur64 is implemented in software from multiplies, which is
//! why it performs poorly on the dpCore's variable-latency multiplier
//! (§5.4).

/// One step of the CRC32-C (Castagnoli) engine: folds a 32-bit word into
/// the running checksum. This is the semantic of the `crc32` instruction.
///
/// # Example
///
/// ```
/// use dpu_isa::hash::crc32c_step;
/// let c = crc32c_step(0, 0xDEAD_BEEF);
/// assert_ne!(c, 0);
/// assert_eq!(c, crc32c_step(0, 0xDEAD_BEEF));
/// ```
pub fn crc32c_step(crc: u32, word: u32) -> u32 {
    let mut c = crc ^ word;
    for _ in 0..32 {
        c = if c & 1 != 0 {
            (c >> 1) ^ 0x82F6_3B78 // reflected CRC32-C polynomial
        } else {
            c >> 1
        };
    }
    c
}

/// CRC32-C over a byte slice (4 bytes at a time, zero-padded tail),
/// matching how the DMS hash engine streams column values.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(4);
    for ch in &mut chunks {
        crc = crc32c_step(crc, u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 4];
        w[..rem.len()].copy_from_slice(rem);
        crc = crc32c_step(crc, u32::from_le_bytes(w));
    }
    !crc
}

/// CRC32-C of a 64-bit key (two engine steps), the DMS partitioner's
/// per-tuple hash.
pub fn crc32c_u64(key: u64) -> u32 {
    let lo = crc32c_step(!0, key as u32);
    !crc32c_step(lo, (key >> 32) as u32)
}

/// Byte-indexed CRC32-C table: entry `b` is the 8 bit-serial engine
/// iterations folded into one lookup, so a 32-bit step costs 4 lookups
/// instead of 32 shift/xor rounds. Built at compile time from the same
/// reflected polynomial as [`crc32c_step`].
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut c = b as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ 0x82F6_3B78 } else { c >> 1 };
            k += 1;
        }
        table[b] = c;
        b += 1;
    }
    table
};

/// One table-driven 32-bit engine step: four byte lookups, bit-identical
/// to [`crc32c_step`] (the table pre-folds 8 bit-serial rounds per byte).
#[inline]
fn crc32c_step_table(crc: u32, word: u32) -> u32 {
    let mut c = crc ^ word;
    c = CRC32C_TABLE[(c & 0xFF) as usize] ^ (c >> 8);
    c = CRC32C_TABLE[(c & 0xFF) as usize] ^ (c >> 8);
    c = CRC32C_TABLE[(c & 0xFF) as usize] ^ (c >> 8);
    CRC32C_TABLE[(c & 0xFF) as usize] ^ (c >> 8)
}

/// Table-driven [`crc32c_u64`]: the host-side fast path for the SWAR
/// kernels. Bit-identical to the bit-serial reference (exhaustively
/// sampled in `tests/vector_properties.rs`) at ~8 lookups per key
/// instead of 64 shift/xor rounds.
#[inline]
pub fn crc32c_u64_table(key: u64) -> u32 {
    let lo = crc32c_step_table(!0, key as u32);
    !crc32c_step_table(lo, (key >> 32) as u32)
}

/// Four independent [`crc32c_u64`] streams, lane-interleaved so the four
/// lookup chains overlap in the host pipeline (stream-split ILP — each
/// lane's CRC chain is serial, but the four lanes are independent).
/// Bit-identical per lane to [`crc32c_u64`].
#[inline]
pub fn crc32c_u64_x4(keys: [u64; 4]) -> [u32; 4] {
    let mut c = [!0u32; 4];
    let mut lane = 0;
    while lane < 4 {
        c[lane] ^= keys[lane] as u32;
        lane += 1;
    }
    for _ in 0..4 {
        let mut lane = 0;
        while lane < 4 {
            c[lane] = CRC32C_TABLE[(c[lane] & 0xFF) as usize] ^ (c[lane] >> 8);
            lane += 1;
        }
    }
    let mut lane = 0;
    while lane < 4 {
        c[lane] ^= (keys[lane] >> 32) as u32;
        lane += 1;
    }
    for _ in 0..4 {
        let mut lane = 0;
        while lane < 4 {
            c[lane] = CRC32C_TABLE[(c[lane] & 0xFF) as usize] ^ (c[lane] >> 8);
            lane += 1;
        }
    }
    [!c[0], !c[1], !c[2], !c[3]]
}

/// CRC32-C of a flattened multi-word key (the composite group-by key
/// encoding): each word folds through the engine low half first, exactly
/// as if the words streamed through the `crc32` instruction in order.
/// `crc32c_wide(&[k])` equals [`crc32c_u64`]`(k)`, so single-key callers
/// and composite-key callers share one hash family.
pub fn crc32c_wide(words: &[u64]) -> u32 {
    let mut c = !0u32;
    for &w in words {
        c = crc32c_step(crc32c_step(c, w as u32), (w >> 32) as u32);
    }
    !c
}

/// Table-driven [`crc32c_wide`]: the SWAR arm's composite-key hash.
/// Bit-identical to the bit-serial reference at ~8 lookups per word.
#[inline]
pub fn crc32c_wide_table(words: &[u64]) -> u32 {
    let mut c = !0u32;
    for &w in words {
        c = crc32c_step_table(crc32c_step_table(c, w as u32), (w >> 32) as u32);
    }
    !c
}

/// Four independent [`crc32c_wide`] streams over equal-width keys,
/// word-interleaved so the four lookup chains overlap in the host
/// pipeline — the wide-key analogue of [`crc32c_u64_x4`].
///
/// # Panics
///
/// Panics if the four lanes have different widths.
#[inline]
pub fn crc32c_wide_x4(lanes: [&[u64]; 4]) -> [u32; 4] {
    let width = lanes[0].len();
    assert!(lanes.iter().all(|l| l.len() == width), "lanes must share one key width");
    let mut c = [!0u32; 4];
    // Word-major walk on purpose: the four chains advance in lockstep.
    #[allow(clippy::needless_range_loop)]
    for i in 0..width {
        let mut lane = 0;
        while lane < 4 {
            let w = lanes[lane][i];
            c[lane] = crc32c_step_table(crc32c_step_table(c[lane], w as u32), (w >> 32) as u32);
            lane += 1;
        }
    }
    [!c[0], !c[1], !c[2], !c[3]]
}

/// True when the host exposes the SSE4.2 `crc32` instruction, the
/// hardware twin of the dpCore's single-cycle `CRC32`. The `hwcrc`
/// kernel arm is only selectable when this holds; elsewhere it degrades
/// to the table-driven SWAR arm.
pub fn hw_crc_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sse4.2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One hardware 64-bit engine step (`crc32q`), bit-identical to two
/// [`crc32c_step`] rounds: the instruction implements the same reflected
/// CRC32-C update, consuming the low word first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn crc32q(crc: u32, word: u64) -> u32 {
    core::arch::x86_64::_mm_crc32_u64(crc as u64, word) as u32
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn crc32c_u64_hw_inner(key: u64) -> u32 {
    !crc32q(!0, key)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn crc32c_u64_x4_hw_inner(keys: [u64; 4]) -> [u32; 4] {
    // Four independent crc32q chains in flight: the instruction has
    // multi-cycle latency but single-cycle throughput, so interleaving
    // hides the dependency chain exactly like the table-driven lanes.
    let c = [crc32q(!0, keys[0]), crc32q(!0, keys[1]), crc32q(!0, keys[2]), crc32q(!0, keys[3])];
    [!c[0], !c[1], !c[2], !c[3]]
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn crc32c_wide_hw_inner(words: &[u64]) -> u32 {
    let mut c = !0u32;
    for &w in words {
        c = crc32q(c, w);
    }
    !c
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn crc32c_wide_x4_hw_inner(lanes: [&[u64]; 4]) -> [u32; 4] {
    let width = lanes[0].len();
    assert!(lanes.iter().all(|l| l.len() == width), "lanes must share one key width");
    let mut c = [!0u32; 4];
    // Word-major walk on purpose: the four chains advance in lockstep.
    #[allow(clippy::needless_range_loop)]
    for i in 0..width {
        let mut lane = 0;
        while lane < 4 {
            c[lane] = crc32q(c[lane], lanes[lane][i]);
            lane += 1;
        }
    }
    [!c[0], !c[1], !c[2], !c[3]]
}

/// Hardware [`crc32c_u64`] via SSE4.2 `crc32q`; falls back to the table
/// CRC when the instruction is absent, so it is total (and bit-identical
/// to the bit-serial reference) on every host.
#[inline]
pub fn crc32c_u64_hw(key: u64) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if hw_crc_available() {
        // SAFETY: the sse4.2 feature was just detected at runtime.
        return unsafe { crc32c_u64_hw_inner(key) };
    }
    crc32c_u64_table(key)
}

/// Hardware [`crc32c_u64_x4`]: four `crc32q` chains in flight (table
/// fallback off x86_64 or without SSE4.2).
#[inline]
pub fn crc32c_u64_x4_hw(keys: [u64; 4]) -> [u32; 4] {
    #[cfg(target_arch = "x86_64")]
    if hw_crc_available() {
        // SAFETY: the sse4.2 feature was just detected at runtime.
        return unsafe { crc32c_u64_x4_hw_inner(keys) };
    }
    crc32c_u64_x4(keys)
}

/// Hardware [`crc32c_wide`] (table fallback without SSE4.2).
#[inline]
pub fn crc32c_wide_hw(words: &[u64]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if hw_crc_available() {
        // SAFETY: the sse4.2 feature was just detected at runtime.
        return unsafe { crc32c_wide_hw_inner(words) };
    }
    crc32c_wide_table(words)
}

/// Hardware [`crc32c_wide_x4`] (table fallback without SSE4.2).
///
/// # Panics
///
/// Panics if the four lanes have different widths.
#[inline]
pub fn crc32c_wide_x4_hw(lanes: [&[u64]; 4]) -> [u32; 4] {
    #[cfg(target_arch = "x86_64")]
    if hw_crc_available() {
        // SAFETY: the sse4.2 feature was just detected at runtime.
        return unsafe { crc32c_wide_x4_hw_inner(lanes) };
    }
    crc32c_wide_x4(lanes)
}

/// MurmurHash3's 64-bit finalizer ("Murmur64" in the paper): two 64-bit
/// multiplies with full-width constants plus xor-shifts.
///
/// # Example
///
/// ```
/// use dpu_isa::hash::murmur64;
/// assert_ne!(murmur64(1), murmur64(2));
/// ```
pub fn murmur64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// Cost in dpCore instructions of hashing one 64-bit key, used by the
/// counted-execution model: `(alu_ops, mul_ops, mul_operand)` where
/// `mul_operand` drives the variable-latency multiplier model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Hardware CRC32-C: two `crc32` instruction steps per 64-bit key.
    Crc32,
    /// Software Murmur64: six xor/shift ALU ops plus two 64-bit multiplies.
    Murmur64,
}

impl HashKind {
    /// Hashes a 64-bit key to a 64-bit value.
    pub fn hash(self, key: u64) -> u64 {
        match self {
            HashKind::Crc32 => crc32c_u64(key) as u64,
            HashKind::Murmur64 => murmur64(key),
        }
    }

    /// Number of plain ALU instructions per key.
    pub fn alu_ops(self) -> u64 {
        match self {
            HashKind::Crc32 => 2,    // two crc32 steps
            HashKind::Murmur64 => 6, // 3 xor + 3 shift
        }
    }

    /// Number of multiplies per key (zero for the hardware CRC path).
    pub fn mul_ops(self) -> u64 {
        match self {
            HashKind::Crc32 => 0,
            HashKind::Murmur64 => 2,
        }
    }

    /// Representative multiplier operand (drives variable latency).
    pub fn mul_operand(self) -> u64 {
        match self {
            HashKind::Crc32 => 0,
            HashKind::Murmur64 => 0xFF51_AFD7_ED55_8CCD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_bytewise_reference_on_aligned_input() {
        // The engine consumes 32 bits per step (zero-padding the tail), so
        // 4-byte-aligned inputs must match the canonical bytewise CRC32-C.
        assert_eq!(crc32c(b"12345678"), bytewise_crc32c(b"12345678"));
        assert_eq!(crc32c(b"abcd"), bytewise_crc32c(b"abcd"));
        assert_eq!(crc32c(b""), bytewise_crc32c(b""));
    }

    fn bytewise_crc32c(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn crc_step_is_deterministic_and_sensitive() {
        assert_eq!(crc32c_step(0, 1), crc32c_step(0, 1));
        assert_ne!(crc32c_step(0, 1), crc32c_step(0, 2));
        assert_ne!(crc32c_step(1, 1), crc32c_step(0, 1));
    }

    #[test]
    fn crc_u64_differs_from_truncation() {
        // High bits must influence the hash.
        assert_ne!(crc32c_u64(0x1_0000_0000), crc32c_u64(0));
    }

    #[test]
    fn table_crc_matches_bit_serial_engine() {
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1 << 32, u32::MAX as u64] {
            assert_eq!(crc32c_u64_table(key), crc32c_u64(key), "key {key:#x}");
        }
        for word in [0u32, 1, 0xFF, 0x8000_0000, u32::MAX] {
            assert_eq!(crc32c_step_table(!0, word), crc32c_step(!0, word), "word {word:#x}");
        }
    }

    #[test]
    fn four_lane_crc_matches_per_lane_scalar() {
        let keys = [7u64, u64::MAX, 0, 0x0123_4567_89AB_CDEF];
        let lanes = crc32c_u64_x4(keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(lanes[i], crc32c_u64(k), "lane {i}");
        }
    }

    #[test]
    fn wide_crc_of_one_word_equals_u64_crc() {
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1 << 32] {
            assert_eq!(crc32c_wide(&[key]), crc32c_u64(key), "key {key:#x}");
            assert_eq!(crc32c_wide_table(&[key]), crc32c_u64(key), "key {key:#x}");
        }
    }

    #[test]
    fn wide_crc_arms_agree_and_are_width_sensitive() {
        let keys: Vec<u64> = (0..7u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        for width in 1..=4usize {
            let words = &keys[..width];
            let want = crc32c_wide(words);
            assert_eq!(crc32c_wide_table(words), want, "width {width}");
            assert_eq!(crc32c_wide_hw(words), want, "width {width}");
            let lanes = crc32c_wide_x4([words, words, words, words]);
            assert_eq!(lanes, [want; 4], "width {width}");
            assert_eq!(crc32c_wide_x4_hw([words, words, words, words]), [want; 4]);
        }
        // Appending a word must change the hash (the flattened encoding
        // distinguishes (k) from (k, 0)).
        assert_ne!(crc32c_wide(&[5]), crc32c_wide(&[5, 0]));
    }

    #[test]
    fn hw_crc_matches_bit_serial_when_available() {
        // The fallback path makes these equalities hold on every host;
        // on SSE4.2 hosts they additionally pin the crc32q instruction
        // to the engine semantics.
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1 << 32, u32::MAX as u64] {
            assert_eq!(crc32c_u64_hw(key), crc32c_u64(key), "key {key:#x}");
        }
        let keys = [7u64, u64::MAX, 0, 0x0123_4567_89AB_CDEF];
        let lanes = crc32c_u64_x4_hw(keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(lanes[i], crc32c_u64(k), "lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "lanes must share one key width")]
    fn wide_x4_rejects_ragged_lanes() {
        crc32c_wide_x4([&[1, 2], &[1], &[1, 2], &[1, 2]]);
    }

    #[test]
    fn murmur_avalanche() {
        // Flipping one input bit should flip ~half the output bits.
        let a = murmur64(0x1234_5678_9ABC_DEF0);
        let b = murmur64(0x1234_5678_9ABC_DEF1);
        let flipped = (a ^ b).count_ones();
        assert!((20..=44).contains(&flipped), "weak avalanche: {flipped} bits");
    }

    #[test]
    fn hash_kind_dispatch() {
        assert_eq!(HashKind::Crc32.hash(7), crc32c_u64(7) as u64);
        assert_eq!(HashKind::Murmur64.hash(7), murmur64(7));
        assert_eq!(HashKind::Crc32.mul_ops(), 0);
        assert_eq!(HashKind::Murmur64.mul_ops(), 2);
        assert!(HashKind::Murmur64.mul_operand() > u32::MAX as u64);
    }

    #[test]
    fn hashes_spread_over_partitions() {
        // 32-way partitioning by either hash should be roughly balanced.
        for kind in [HashKind::Crc32, HashKind::Murmur64] {
            let mut buckets = [0u32; 32];
            for k in 0..32_000u64 {
                buckets[(kind.hash(k) % 32) as usize] += 1;
            }
            for &b in &buckets {
                assert!((700..1300).contains(&b), "{kind:?} bucket {b} unbalanced");
            }
        }
    }
}
