//! 32-bit binary instruction encoding.
//!
//! The layout follows the MIPS convention: a 6-bit major opcode in
//! `[31:26]`, with R-type instructions selected by a 6-bit function code in
//! `[5:0]` and I-type instructions carrying a 16-bit immediate in `[15:0]`.
//! System instructions (WFE, DMS push, ATE, cache ops) live under a
//! dedicated major opcode.

use std::fmt;

use crate::inst::Inst;
use crate::reg::Reg;

// Major opcodes.
const OP_RTYPE: u32 = 0x00;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLT: u32 = 0x06;
const OP_BGE: u32 = 0x07;
const OP_ADDI: u32 = 0x08;
const OP_SLTI: u32 = 0x0A;
const OP_ANDI: u32 = 0x0C;
const OP_ORI: u32 = 0x0D;
const OP_XORI: u32 = 0x0E;
const OP_LUI: u32 = 0x0F;
const OP_LB: u32 = 0x20;
const OP_LH: u32 = 0x21;
const OP_LW: u32 = 0x23;
const OP_LBU: u32 = 0x24;
const OP_LHU: u32 = 0x25;
const OP_LWU: u32 = 0x27;
const OP_SB: u32 = 0x28;
const OP_SH: u32 = 0x29;
const OP_SW: u32 = 0x2B;
const OP_BVLD: u32 = 0x36;
const OP_LD: u32 = 0x37;
const OP_SD: u32 = 0x3C;
const OP_SYS: u32 = 0x3E;

// R-type function codes.
const F_SLL: u32 = 0x00;
const F_SRL: u32 = 0x02;
const F_SRA: u32 = 0x03;
const F_SLLV: u32 = 0x04;
const F_SRLV: u32 = 0x06;
const F_JR: u32 = 0x08;
const F_MUL: u32 = 0x18;
const F_ADD: u32 = 0x20;
const F_SUB: u32 = 0x22;
const F_AND: u32 = 0x24;
const F_OR: u32 = 0x25;
const F_XOR: u32 = 0x26;
const F_NOR: u32 = 0x27;
const F_SLT: u32 = 0x2A;
const F_SLTU: u32 = 0x2B;
const F_CRC32: u32 = 0x30;
const F_POPC: u32 = 0x31;
const F_FILT: u32 = 0x32;

// System function codes.
const S_WFE: u32 = 0x00;
const S_CLEV: u32 = 0x01;
const S_DMSPUSH: u32 = 0x02;
const S_ATEREQ: u32 = 0x03;
const S_FENCE: u32 = 0x04;
const S_CFLUSH: u32 = 0x05;
const S_CINVAL: u32 = 0x06;
const S_HALT: u32 = 0x07;

/// Error produced when a 32-bit word is not a valid dpCore instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rtype(rs: Reg, rt: Reg, rd: Reg, shamt: u8, funct: u32) -> u32 {
    (OP_RTYPE << 26)
        | ((rs.index() as u32) << 21)
        | ((rt.index() as u32) << 16)
        | ((rd.index() as u32) << 11)
        | ((shamt as u32 & 0x1F) << 6)
        | funct
}

fn itype(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | ((rs.index() as u32) << 21) | ((rt.index() as u32) << 16) | imm as u32
}

fn sys(funct: u32, rs: Reg, rt_field: u32) -> u32 {
    (OP_SYS << 26) | ((rs.index() as u32) << 21) | (rt_field << 16) | funct
}

/// Encodes an instruction to its 32-bit word.
///
/// # Example
///
/// ```
/// use dpu_isa::{encode, Inst, Reg};
/// let i = Inst::Addi { rt: Reg::of(1), rs: Reg::ZERO, imm: 7 };
/// let w = encode::encode(i);
/// assert_eq!(encode::decode(w).unwrap(), i);
/// ```
pub fn encode(inst: Inst) -> u32 {
    use Inst::*;
    let z = Reg::ZERO;
    match inst {
        Add { rd, rs, rt } => rtype(rs, rt, rd, 0, F_ADD),
        Sub { rd, rs, rt } => rtype(rs, rt, rd, 0, F_SUB),
        And { rd, rs, rt } => rtype(rs, rt, rd, 0, F_AND),
        Or { rd, rs, rt } => rtype(rs, rt, rd, 0, F_OR),
        Xor { rd, rs, rt } => rtype(rs, rt, rd, 0, F_XOR),
        Nor { rd, rs, rt } => rtype(rs, rt, rd, 0, F_NOR),
        Slt { rd, rs, rt } => rtype(rs, rt, rd, 0, F_SLT),
        Sltu { rd, rs, rt } => rtype(rs, rt, rd, 0, F_SLTU),
        Mul { rd, rs, rt } => rtype(rs, rt, rd, 0, F_MUL),
        Sllv { rd, rs, rt } => rtype(rs, rt, rd, 0, F_SLLV),
        Srlv { rd, rs, rt } => rtype(rs, rt, rd, 0, F_SRLV),
        Sll { rd, rt, shamt } => rtype(z, rt, rd, shamt, F_SLL),
        Srl { rd, rt, shamt } => rtype(z, rt, rd, shamt, F_SRL),
        Sra { rd, rt, shamt } => rtype(z, rt, rd, shamt, F_SRA),
        Jr { rs } => rtype(rs, z, z, 0, F_JR),
        Crc32 { rd, rs, rt } => rtype(rs, rt, rd, 0, F_CRC32),
        Popc { rd, rs } => rtype(rs, z, rd, 0, F_POPC),
        Filt { rd, rs, rt } => rtype(rs, rt, rd, 0, F_FILT),
        Addi { rt, rs, imm } => itype(OP_ADDI, rs, rt, imm as u16),
        Slti { rt, rs, imm } => itype(OP_SLTI, rs, rt, imm as u16),
        Andi { rt, rs, imm } => itype(OP_ANDI, rs, rt, imm),
        Ori { rt, rs, imm } => itype(OP_ORI, rs, rt, imm),
        Xori { rt, rs, imm } => itype(OP_XORI, rs, rt, imm),
        Lui { rt, imm } => itype(OP_LUI, z, rt, imm),
        Lb { rt, rs, off } => itype(OP_LB, rs, rt, off as u16),
        Lbu { rt, rs, off } => itype(OP_LBU, rs, rt, off as u16),
        Lh { rt, rs, off } => itype(OP_LH, rs, rt, off as u16),
        Lhu { rt, rs, off } => itype(OP_LHU, rs, rt, off as u16),
        Lw { rt, rs, off } => itype(OP_LW, rs, rt, off as u16),
        Lwu { rt, rs, off } => itype(OP_LWU, rs, rt, off as u16),
        Ld { rt, rs, off } => itype(OP_LD, rs, rt, off as u16),
        Sb { rt, rs, off } => itype(OP_SB, rs, rt, off as u16),
        Sh { rt, rs, off } => itype(OP_SH, rs, rt, off as u16),
        Sw { rt, rs, off } => itype(OP_SW, rs, rt, off as u16),
        Sd { rt, rs, off } => itype(OP_SD, rs, rt, off as u16),
        Bvld { rt, rs, off } => itype(OP_BVLD, rs, rt, off as u16),
        Beq { rs, rt, off } => itype(OP_BEQ, rs, rt, off as u16),
        Bne { rs, rt, off } => itype(OP_BNE, rs, rt, off as u16),
        Blt { rs, rt, off } => itype(OP_BLT, rs, rt, off as u16),
        Bge { rs, rt, off } => itype(OP_BGE, rs, rt, off as u16),
        J { target } => (OP_J << 26) | (target & 0x03FF_FFFF),
        Jal { target } => (OP_JAL << 26) | (target & 0x03FF_FFFF),
        Wfe { rs } => sys(S_WFE, rs, 0),
        Clev { rs } => sys(S_CLEV, rs, 0),
        DmsPush { chan, rs } => sys(S_DMSPUSH, rs, chan as u32 & 0x1F),
        AteReq { rs } => sys(S_ATEREQ, rs, 0),
        Fence => sys(S_FENCE, z, 0),
        CFlush { rs } => sys(S_CFLUSH, rs, 0),
        CInval { rs } => sys(S_CINVAL, rs, 0),
        Halt => sys(S_HALT, z, 0),
        // NOP is the canonical all-zero word (sll r0, r0, 0).
        Nop => 0,
    }
}

/// Decodes a 32-bit word back to an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for words that do not correspond to any
/// instruction (unknown opcode or function code).
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    use Inst::*;
    if word == 0 {
        return Ok(Nop);
    }
    let op = word >> 26;
    let rs = Reg::of(((word >> 21) & 0x1F) as u8);
    let rt = Reg::of(((word >> 16) & 0x1F) as u8);
    let rd = Reg::of(((word >> 11) & 0x1F) as u8);
    let shamt = ((word >> 6) & 0x1F) as u8;
    let imm = (word & 0xFFFF) as u16;
    let simm = imm as i16;
    let err = DecodeError { word };
    let inst = match op {
        OP_RTYPE => match word & 0x3F {
            F_ADD => Add { rd, rs, rt },
            F_SUB => Sub { rd, rs, rt },
            F_AND => And { rd, rs, rt },
            F_OR => Or { rd, rs, rt },
            F_XOR => Xor { rd, rs, rt },
            F_NOR => Nor { rd, rs, rt },
            F_SLT => Slt { rd, rs, rt },
            F_SLTU => Sltu { rd, rs, rt },
            F_MUL => Mul { rd, rs, rt },
            F_SLLV => Sllv { rd, rs, rt },
            F_SRLV => Srlv { rd, rs, rt },
            F_SLL => Sll { rd, rt, shamt },
            F_SRL => Srl { rd, rt, shamt },
            F_SRA => Sra { rd, rt, shamt },
            F_JR => Jr { rs },
            F_CRC32 => Crc32 { rd, rs, rt },
            F_POPC => Popc { rd, rs },
            F_FILT => Filt { rd, rs, rt },
            _ => return Err(err),
        },
        OP_ADDI => Addi { rt, rs, imm: simm },
        OP_SLTI => Slti { rt, rs, imm: simm },
        OP_ANDI => Andi { rt, rs, imm },
        OP_ORI => Ori { rt, rs, imm },
        OP_XORI => Xori { rt, rs, imm },
        OP_LUI => Lui { rt, imm },
        OP_LB => Lb { rt, rs, off: simm },
        OP_LBU => Lbu { rt, rs, off: simm },
        OP_LH => Lh { rt, rs, off: simm },
        OP_LHU => Lhu { rt, rs, off: simm },
        OP_LW => Lw { rt, rs, off: simm },
        OP_LWU => Lwu { rt, rs, off: simm },
        OP_LD => Ld { rt, rs, off: simm },
        OP_SB => Sb { rt, rs, off: simm },
        OP_SH => Sh { rt, rs, off: simm },
        OP_SW => Sw { rt, rs, off: simm },
        OP_SD => Sd { rt, rs, off: simm },
        OP_BVLD => Bvld { rt, rs, off: simm },
        OP_BEQ => Beq { rs, rt, off: simm },
        OP_BNE => Bne { rs, rt, off: simm },
        OP_BLT => Blt { rs, rt, off: simm },
        OP_BGE => Bge { rs, rt, off: simm },
        OP_J => J { target: word & 0x03FF_FFFF },
        OP_JAL => Jal { target: word & 0x03FF_FFFF },
        OP_SYS => match word & 0x3F {
            S_WFE => Wfe { rs },
            S_CLEV => Clev { rs },
            S_DMSPUSH => DmsPush { chan: (rt.index() as u8) & 0x1F, rs },
            S_ATEREQ => AteReq { rs },
            S_FENCE => Fence,
            S_CFLUSH => CFlush { rs },
            S_CINVAL => CInval { rs },
            S_HALT => Halt,
            _ => return Err(err),
        },
        _ => return Err(err),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn r(i: u8) -> Reg {
        Reg::of(i)
    }

    fn all_sample_instructions() -> Vec<Inst> {
        use Inst::*;
        vec![
            Add { rd: r(1), rs: r(2), rt: r(3) },
            Sub { rd: r(4), rs: r(5), rt: r(6) },
            And { rd: r(7), rs: r(8), rt: r(9) },
            Or { rd: r(10), rs: r(11), rt: r(12) },
            Xor { rd: r(13), rs: r(14), rt: r(15) },
            Nor { rd: r(16), rs: r(17), rt: r(18) },
            Slt { rd: r(19), rs: r(20), rt: r(21) },
            Sltu { rd: r(22), rs: r(23), rt: r(24) },
            Mul { rd: r(25), rs: r(26), rt: r(27) },
            Sllv { rd: r(28), rs: r(29), rt: r(30) },
            Srlv { rd: r(31), rs: r(1), rt: r(2) },
            Sll { rd: r(3), rt: r(4), shamt: 31 },
            Srl { rd: r(5), rt: r(6), shamt: 1 },
            Sra { rd: r(7), rt: r(8), shamt: 17 },
            Addi { rt: r(9), rs: r(10), imm: -32768 },
            Andi { rt: r(11), rs: r(12), imm: 65535 },
            Ori { rt: r(13), rs: r(14), imm: 4660 },
            Xori { rt: r(15), rs: r(16), imm: 1 },
            Slti { rt: r(17), rs: r(18), imm: 32767 },
            Lui { rt: r(19), imm: 0xDEAD },
            Lb { rt: r(1), rs: r(2), off: -1 },
            Lbu { rt: r(3), rs: r(4), off: 2 },
            Lh { rt: r(5), rs: r(6), off: -2 },
            Lhu { rt: r(7), rs: r(8), off: 4 },
            Lw { rt: r(9), rs: r(10), off: -4 },
            Lwu { rt: r(11), rs: r(12), off: 8 },
            Ld { rt: r(13), rs: r(14), off: -8 },
            Sb { rt: r(15), rs: r(16), off: 1 },
            Sh { rt: r(17), rs: r(18), off: 3 },
            Sw { rt: r(19), rs: r(20), off: 5 },
            Sd { rt: r(21), rs: r(22), off: 7 },
            Beq { rs: r(23), rt: r(24), off: -100 },
            Bne { rs: r(25), rt: r(26), off: 100 },
            Blt { rs: r(27), rt: r(28), off: -1 },
            Bge { rs: r(29), rt: r(30), off: 1 },
            J { target: 0x03FF_FFFF },
            Jal { target: 42 },
            Jr { rs: r(31) },
            Crc32 { rd: r(1), rs: r(2), rt: r(3) },
            Popc { rd: r(4), rs: r(5) },
            Bvld { rt: r(6), rs: r(7), off: 64 },
            Filt { rd: r(8), rs: r(9), rt: r(10) },
            Wfe { rs: r(11) },
            Clev { rs: r(12) },
            DmsPush { chan: 1, rs: r(13) },
            AteReq { rs: r(14) },
            Fence,
            CFlush { rs: r(15) },
            CInval { rs: r(16) },
            Halt,
            Nop,
        ]
    }

    #[test]
    fn roundtrip_every_instruction() {
        for inst in all_sample_instructions() {
            let word = encode(inst);
            let back = decode(word).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst, "round-trip failed for {inst} ({word:#010x})");
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let insts = all_sample_instructions();
        let mut words: Vec<u32> = insts.iter().map(|&i| encode(i)).collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), insts.len(), "two instructions share an encoding");
    }

    #[test]
    fn nop_is_all_zero() {
        assert_eq!(encode(Inst::Nop), 0);
        assert_eq!(decode(0).unwrap(), Inst::Nop);
    }

    #[test]
    fn invalid_words_error() {
        // Unused major opcode.
        assert!(decode(0x3F << 26 | 1).is_err());
        // R-type with unknown funct.
        assert!(decode(0x3D).is_err());
        // SYS with unknown funct.
        assert!(decode((OP_SYS << 26) | 0x3F).is_err());
        let e = decode(0xFFFF_FFFF).unwrap_err();
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn immediate_sign_preserved() {
        let i = Inst::Addi { rt: r(1), rs: r(2), imm: -1 };
        match decode(encode(i)).unwrap() {
            Inst::Addi { imm, .. } => assert_eq!(imm, -1),
            other => panic!("decoded {other}"),
        }
    }
}
