//! Operation counting for the "counted execution" cost model.
//!
//! Application kernels in this reproduction run natively (so their results
//! are real and checkable) while recording how many operations of each
//! class the dpCore inner loop would retire. [`OpCounts::dpcore_cycles`]
//! then prices the recorded mix on the dual-issue pipeline: the ALU and
//! LSU streams overlap, multiplier and misprediction stalls serialize.
//! The interpreter records the same structure, which lets tests check the
//! two models against each other on real instruction sequences.

use crate::inst::{Inst, Pipe};
use crate::pipeline::PipelineModel;

/// Counts of retired operations by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Plain ALU operations (arithmetic, logic, shifts, compares).
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Total multiplier stall cycles (variable latency).
    pub mul_stall_cycles: u64,
    /// Loads (including `bvld`).
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Analytics extension ops (`crc32`, `popc`, `filt`).
    pub special: u64,
    /// Additional serialization cycles the kernel knows about
    /// (dependency chains the dual-issue bound cannot see).
    pub dependency_stalls: u64,
}

impl OpCounts {
    /// A zeroed count set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction (used by the interpreter).
    pub fn record(&mut self, inst: Inst, mispredict: bool, mul_latency: u64) {
        use Inst::*;
        match inst {
            Mul { .. } => {
                self.mul += 1;
                self.mul_stall_cycles += mul_latency;
            }
            Crc32 { .. } | Popc { .. } | Filt { .. } => self.special += 1,
            _ if inst.is_cond_branch() => {
                self.branches += 1;
                if mispredict {
                    self.mispredicts += 1;
                }
            }
            _ if inst.is_load() => self.loads += 1,
            _ if inst.is_store() => self.stores += 1,
            _ if inst.pipe() == Pipe::Alu => self.alu += 1,
            _ => self.loads += 1, // remaining LSU-pipe system ops
        }
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.alu + self.mul + self.loads + self.stores + self.branches + self.special
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.alu += other.alu;
        self.mul += other.mul;
        self.mul_stall_cycles += other.mul_stall_cycles;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.special += other.special;
        self.dependency_stalls += other.dependency_stalls;
    }

    /// Scales every count by `n` (a kernel executed `n` times).
    pub fn scaled(&self, n: u64) -> OpCounts {
        OpCounts {
            alu: self.alu * n,
            mul: self.mul * n,
            mul_stall_cycles: self.mul_stall_cycles * n,
            loads: self.loads * n,
            stores: self.stores * n,
            branches: self.branches * n,
            mispredicts: self.mispredicts * n,
            special: self.special * n,
            dependency_stalls: self.dependency_stalls * n,
        }
    }

    /// Prices the mix on the dpCore's dual-issue pipeline.
    ///
    /// The ALU-pipe stream (`alu + mul + branches + special`) and the
    /// LSU-pipe stream (`loads + stores`) issue in parallel; multiplier
    /// stalls, misprediction penalties and declared dependency stalls
    /// serialize on top of the longer stream.
    pub fn dpcore_cycles(&self, model: &PipelineModel) -> u64 {
        let alu_stream = self.alu + self.mul + self.branches + self.special;
        let lsu_stream = self.loads + self.stores;
        alu_stream.max(lsu_stream)
            + self.mul_stall_cycles
            + self.mispredicts * model.mispredict_penalty
            + self.dependency_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn r(i: u8) -> Reg {
        Reg::of(i)
    }

    #[test]
    fn record_classifies_instructions() {
        let mut c = OpCounts::new();
        c.record(Inst::Add { rd: r(1), rs: r(2), rt: r(3) }, false, 0);
        c.record(Inst::Lw { rt: r(1), rs: r(2), off: 0 }, false, 0);
        c.record(Inst::Sw { rt: r(1), rs: r(2), off: 0 }, false, 0);
        c.record(Inst::Mul { rd: r(1), rs: r(2), rt: r(3) }, false, 8);
        c.record(Inst::Beq { rs: r(1), rt: r(2), off: -1 }, true, 0);
        c.record(Inst::Crc32 { rd: r(1), rs: r(2), rt: r(3) }, false, 0);
        c.record(Inst::Bvld { rt: r(1), rs: r(2), off: 0 }, false, 0);
        assert_eq!(c.alu, 1);
        assert_eq!(c.loads, 2); // lw + bvld
        assert_eq!(c.stores, 1);
        assert_eq!(c.mul, 1);
        assert_eq!(c.mul_stall_cycles, 8);
        assert_eq!(c.branches, 1);
        assert_eq!(c.mispredicts, 1);
        assert_eq!(c.special, 1);
        assert_eq!(c.instructions(), 7);
    }

    #[test]
    fn cycles_overlap_alu_and_lsu() {
        let c = OpCounts { alu: 100, loads: 80, stores: 20, ..OpCounts::default() };
        // Perfect dual issue: max(100, 100) = 100.
        assert_eq!(c.dpcore_cycles(&PipelineModel::default()), 100);
    }

    #[test]
    fn stalls_serialize() {
        let m = PipelineModel::default();
        let c = OpCounts {
            alu: 10,
            mul: 2,
            mul_stall_cycles: 16,
            mispredicts: 3,
            branches: 3,
            dependency_stalls: 5,
            ..OpCounts::default()
        };
        assert_eq!(c.dpcore_cycles(&m), 15 + 16 + 3 * m.mispredict_penalty + 5);
    }

    #[test]
    fn merge_and_scale() {
        let a = OpCounts { alu: 1, loads: 2, ..OpCounts::default() };
        let mut b = OpCounts { alu: 10, stores: 1, ..OpCounts::default() };
        b.merge(&a);
        assert_eq!(b.alu, 11);
        assert_eq!(b.loads, 2);
        let s = a.scaled(4);
        assert_eq!(s.alu, 4);
        assert_eq!(s.loads, 8);
    }
}
