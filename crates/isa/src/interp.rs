//! Functional interpreter with integrated pipeline timing.
//!
//! Executes dpCore programs against a DMEM scratchpad, producing both the
//! architectural result *and* a cycle count from the dual-issue
//! [`pipeline`](crate::pipeline) model. System instructions (WFE, DMS push,
//! ATE request, halt) stop execution and surface as [`Trap`]s so the SoC
//! simulator can service them and resume the core.

use std::fmt;

use crate::counts::OpCounts;
use crate::hash::crc32c_step;
use crate::inst::Inst;
use crate::pipeline::{PipelineModel, Scoreboard};
use crate::reg::Reg;

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// `halt` executed; the program is done.
    Halt,
    /// `wfe` executed with event id `0..32`; resume once the event is set.
    Wfe(u8),
    /// `clev` executed: clear event id.
    Clev(u8),
    /// `dmspush`: a DMS descriptor at DMEM address `addr` was pushed on
    /// `chan`.
    DmsPush {
        /// DMS channel (0 = read side, 1 = write side by convention).
        chan: u8,
        /// DMEM address of the 16-byte descriptor.
        addr: u32,
    },
    /// `atereq`: an ATE message at DMEM address `addr` was issued.
    AteReq {
        /// DMEM address of the message block.
        addr: u32,
    },
    /// The step budget given to [`Cpu::run`] was exhausted.
    MaxSteps,
    /// A data watchpoint fired: the access at `addr` touched the watched
    /// range (§2.2: "a few instruction and data watchpoint registers that
    /// raise an exception on any address boundary violation").
    Watchpoint {
        /// The faulting data address.
        addr: u64,
    },
}

/// Execution error: a memory access outside DMEM or a PC outside the
/// program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecError {
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Faulting address, if a memory fault.
    pub addr: Option<u64>,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(f, "memory fault at address {a:#x} (pc {})", self.pc),
            None => write!(f, "pc {} outside program", self.pc),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of one [`Cpu::run`] segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Why execution stopped.
    pub trap: Trap,
    /// Cycles consumed by this segment.
    pub cycles: u64,
    /// Instructions retired in this segment.
    pub instructions: u64,
}

impl RunSummary {
    /// Instructions per cycle of the segment.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// A single dpCore: 32 × 64-bit registers, a DMEM scratchpad, and the
/// pipeline scoreboard that prices every retired instruction.
///
/// # Example
///
/// ```
/// use dpu_isa::asm::assemble;
/// use dpu_isa::interp::{Cpu, Trap};
///
/// let prog = assemble("addi r1, r0, 3\nhalt").unwrap();
/// let mut cpu = Cpu::new(1024);
/// let run = cpu.run(&prog, 100).unwrap();
/// assert_eq!(run.trap, Trap::Halt);
/// assert_eq!(cpu.reg(1), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u64; Reg::COUNT],
    pc: u32,
    dmem: Vec<u8>,
    model: PipelineModel,
    board: Scoreboard,
    counts: OpCounts,
    total_cycles: u64,
    total_instructions: u64,
    /// Inclusive data watchpoint range, if armed.
    watch: Option<(u64, u64)>,
}

impl Cpu {
    /// Creates a core with a zeroed DMEM of `dmem_size` bytes (the
    /// fabricated part has 32 KB per core).
    pub fn new(dmem_size: usize) -> Self {
        Cpu::with_model(dmem_size, PipelineModel::default())
    }

    /// Creates a core with explicit pipeline parameters.
    pub fn with_model(dmem_size: usize, model: PipelineModel) -> Self {
        Cpu {
            regs: [0; Reg::COUNT],
            pc: 0,
            dmem: vec![0; dmem_size],
            model,
            board: Scoreboard::new(),
            counts: OpCounts::default(),
            total_cycles: 0,
            total_instructions: 0,
            watch: None,
        }
    }

    /// Arms a data watchpoint over the inclusive byte range `[lo, hi]`;
    /// the next load or store touching it stops execution with
    /// [`Trap::Watchpoint`]. The dpCore uses these for "basic software
    /// debugging and simple address space protection" (§2.2).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn set_watchpoint(&mut self, lo: u64, hi: u64) {
        assert!(lo <= hi, "watchpoint bounds inverted");
        self.watch = Some((lo, hi));
    }

    /// Disarms the data watchpoint.
    pub fn clear_watchpoint(&mut self) {
        self.watch = None;
    }

    /// Reads register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn reg(&self, i: u8) -> u64 {
        self.regs[Reg::of(i).index()]
    }

    /// Writes register `i` (writes to r0 are discarded).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn set_reg(&mut self, i: u8, value: u64) {
        let r = Reg::of(i);
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Shared view of DMEM.
    pub fn dmem(&self) -> &[u8] {
        &self.dmem
    }

    /// Mutable view of DMEM (used by the DMS model to deliver data).
    pub fn dmem_mut(&mut self) -> &mut [u8] {
        &mut self.dmem
    }

    /// Cumulative cycles across all run segments.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Cumulative retired instructions.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Operation counts accumulated so far.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    fn load(&self, addr: u64, size: usize, pc: u32) -> Result<u64, ExecError> {
        let a = addr as usize;
        if addr > usize::MAX as u64 || a + size > self.dmem.len() {
            return Err(ExecError { pc, addr: Some(addr) });
        }
        let mut v: u64 = 0;
        for i in 0..size {
            v |= (self.dmem[a + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    fn store(&mut self, addr: u64, size: usize, value: u64, pc: u32) -> Result<(), ExecError> {
        let a = addr as usize;
        if addr > usize::MAX as u64 || a + size > self.dmem.len() {
            return Err(ExecError { pc, addr: Some(addr) });
        }
        for i in 0..size {
            self.dmem[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Runs until a trap, an error, or `max_steps` retired instructions.
    ///
    /// The core's state (PC, registers, scoreboard) persists across calls,
    /// so execution resumes where the previous segment trapped.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on out-of-range memory access or a PC outside
    /// the program.
    pub fn run(&mut self, prog: &[Inst], max_steps: u64) -> Result<RunSummary, ExecError> {
        let start_cycles = self.board.cycle();
        let mut steps = 0u64;
        let trap = loop {
            if steps >= max_steps {
                break Trap::MaxSteps;
            }
            let pc = self.pc;
            let inst = *prog.get(pc as usize).ok_or(ExecError { pc, addr: None })?;
            steps += 1;
            // Data watchpoint check (pre-execution, as the hardware's
            // address-comparator stage would).
            if let Some((lo, hi)) = self.watch {
                if let Some(addr) = self.effective_address(inst) {
                    let width = Self::access_width(inst);
                    if addr <= hi && addr + width as u64 > lo {
                        break Trap::Watchpoint { addr };
                    }
                }
            }
            if let Some(t) = self.exec_one(inst, pc)? {
                break t;
            }
        };
        // The scoreboard reports the issue cycle of the last instruction;
        // retiring it takes one more cycle, hence the +1 on non-empty runs.
        let segment_cycles = self.board.cycle().saturating_sub(start_cycles) + u64::from(steps > 0);
        self.total_instructions += steps;
        self.total_cycles = self.board.cycle() + u64::from(self.total_instructions > 0);
        Ok(RunSummary { trap, cycles: segment_cycles, instructions: steps })
    }

    /// Effective data address of a load/store, if the instruction is one.
    fn effective_address(&self, inst: Inst) -> Option<u64> {
        use Inst::*;
        let g = |r: crate::reg::Reg| self.regs[r.index()];
        match inst {
            Lb { rs, off, .. }
            | Lbu { rs, off, .. }
            | Lh { rs, off, .. }
            | Lhu { rs, off, .. }
            | Lw { rs, off, .. }
            | Lwu { rs, off, .. }
            | Ld { rs, off, .. }
            | Bvld { rs, off, .. }
            | Sb { rs, off, .. }
            | Sh { rs, off, .. }
            | Sw { rs, off, .. }
            | Sd { rs, off, .. } => Some(g(rs).wrapping_add(off as i64 as u64)),
            _ => None,
        }
    }

    /// Access width in bytes of a load/store (1 for non-memory ops).
    fn access_width(inst: Inst) -> usize {
        use Inst::*;
        match inst {
            Lb { .. } | Lbu { .. } | Sb { .. } => 1,
            Lh { .. } | Lhu { .. } | Sh { .. } => 2,
            Lw { .. } | Lwu { .. } | Sw { .. } => 4,
            Ld { .. } | Bvld { .. } | Sd { .. } => 8,
            _ => 1,
        }
    }

    /// Executes one instruction; returns a trap if it is a system op.
    fn exec_one(&mut self, inst: Inst, pc: u32) -> Result<Option<Trap>, ExecError> {
        use Inst::*;
        let g = |r: Reg| self.regs[r.index()];
        let mut next_pc = pc.wrapping_add(1);
        let mut mispredict = false;
        let mut mul_lat = 0;
        let mut trap = None;
        let mut write: Option<(Reg, u64)> = None;

        match inst {
            Add { rd, rs, rt } => write = Some((rd, g(rs).wrapping_add(g(rt)))),
            Sub { rd, rs, rt } => write = Some((rd, g(rs).wrapping_sub(g(rt)))),
            And { rd, rs, rt } => write = Some((rd, g(rs) & g(rt))),
            Or { rd, rs, rt } => write = Some((rd, g(rs) | g(rt))),
            Xor { rd, rs, rt } => write = Some((rd, g(rs) ^ g(rt))),
            Nor { rd, rs, rt } => write = Some((rd, !(g(rs) | g(rt)))),
            Slt { rd, rs, rt } => {
                write = Some((rd, ((g(rs) as i64) < (g(rt) as i64)) as u64));
            }
            Sltu { rd, rs, rt } => write = Some((rd, (g(rs) < g(rt)) as u64)),
            Mul { rd, rs, rt } => {
                mul_lat = self.model.mul_latency(g(rt));
                write = Some((rd, g(rs).wrapping_mul(g(rt))));
            }
            Sllv { rd, rs, rt } => write = Some((rd, g(rs) << (g(rt) & 63))),
            Srlv { rd, rs, rt } => write = Some((rd, g(rs) >> (g(rt) & 63))),
            Sll { rd, rt, shamt } => write = Some((rd, g(rt) << (shamt & 63))),
            Srl { rd, rt, shamt } => write = Some((rd, g(rt) >> (shamt & 63))),
            Sra { rd, rt, shamt } => {
                write = Some((rd, ((g(rt) as i64) >> (shamt & 63)) as u64));
            }
            Addi { rt, rs, imm } => {
                write = Some((rt, g(rs).wrapping_add(imm as i64 as u64)));
            }
            Andi { rt, rs, imm } => write = Some((rt, g(rs) & imm as u64)),
            Ori { rt, rs, imm } => write = Some((rt, g(rs) | imm as u64)),
            Xori { rt, rs, imm } => write = Some((rt, g(rs) ^ imm as u64)),
            Slti { rt, rs, imm } => {
                write = Some((rt, ((g(rs) as i64) < imm as i64) as u64));
            }
            Lui { rt, imm } => write = Some((rt, (imm as u64) << 16)),
            Lb { rt, rs, off } => {
                let v = self.load(g(rs).wrapping_add(off as i64 as u64), 1, pc)?;
                write = Some((rt, v as i8 as i64 as u64));
            }
            Lbu { rt, rs, off } => {
                write = Some((rt, self.load(g(rs).wrapping_add(off as i64 as u64), 1, pc)?));
            }
            Lh { rt, rs, off } => {
                let v = self.load(g(rs).wrapping_add(off as i64 as u64), 2, pc)?;
                write = Some((rt, v as u16 as i16 as i64 as u64));
            }
            Lhu { rt, rs, off } => {
                write = Some((rt, self.load(g(rs).wrapping_add(off as i64 as u64), 2, pc)?));
            }
            Lw { rt, rs, off } => {
                let v = self.load(g(rs).wrapping_add(off as i64 as u64), 4, pc)?;
                write = Some((rt, v as u32 as i32 as i64 as u64));
            }
            Lwu { rt, rs, off } => {
                write = Some((rt, self.load(g(rs).wrapping_add(off as i64 as u64), 4, pc)?));
            }
            Ld { rt, rs, off } | Bvld { rt, rs, off } => {
                write = Some((rt, self.load(g(rs).wrapping_add(off as i64 as u64), 8, pc)?));
            }
            Sb { rt, rs, off } => {
                self.store(g(rs).wrapping_add(off as i64 as u64), 1, g(rt), pc)?;
            }
            Sh { rt, rs, off } => {
                self.store(g(rs).wrapping_add(off as i64 as u64), 2, g(rt), pc)?;
            }
            Sw { rt, rs, off } => {
                self.store(g(rs).wrapping_add(off as i64 as u64), 4, g(rt), pc)?;
            }
            Sd { rt, rs, off } => {
                self.store(g(rs).wrapping_add(off as i64 as u64), 8, g(rt), pc)?;
            }
            Beq { rs, rt, off } => {
                let taken = g(rs) == g(rt);
                mispredict = taken != self.model.predict_taken(off);
                if taken {
                    next_pc = (pc as i64 + 1 + off as i64) as u32;
                }
            }
            Bne { rs, rt, off } => {
                let taken = g(rs) != g(rt);
                mispredict = taken != self.model.predict_taken(off);
                if taken {
                    next_pc = (pc as i64 + 1 + off as i64) as u32;
                }
            }
            Blt { rs, rt, off } => {
                let taken = (g(rs) as i64) < (g(rt) as i64);
                mispredict = taken != self.model.predict_taken(off);
                if taken {
                    next_pc = (pc as i64 + 1 + off as i64) as u32;
                }
            }
            Bge { rs, rt, off } => {
                let taken = (g(rs) as i64) >= (g(rt) as i64);
                mispredict = taken != self.model.predict_taken(off);
                if taken {
                    next_pc = (pc as i64 + 1 + off as i64) as u32;
                }
            }
            J { target } => next_pc = target,
            Jal { target } => {
                write = Some((Reg::LINK, pc as u64 + 1));
                next_pc = target;
            }
            Jr { rs } => next_pc = g(rs) as u32,
            Crc32 { rd, rs, rt } => {
                write = Some((rd, crc32c_step(g(rs) as u32, g(rt) as u32) as u64));
            }
            Popc { rd, rs } => write = Some((rd, g(rs).count_ones() as u64)),
            Filt { rd, rs, rt } => {
                let v = g(rs) as u32 as i32;
                let lo = g(rt) as u32 as i32;
                let hi = (g(rt) >> 32) as u32 as i32;
                let bit = (lo <= v && v <= hi) as u64;
                write = Some((rd, (g(rd) << 1) | bit));
            }
            Wfe { rs } => trap = Some(Trap::Wfe((g(rs) & 31) as u8)),
            Clev { rs } => trap = Some(Trap::Clev((g(rs) & 31) as u8)),
            DmsPush { chan, rs } => {
                trap = Some(Trap::DmsPush { chan, addr: g(rs) as u32 });
            }
            AteReq { rs } => trap = Some(Trap::AteReq { addr: g(rs) as u32 }),
            Fence | CFlush { .. } | CInval { .. } | Nop => {}
            Halt => trap = Some(Trap::Halt),
        }

        // Timing: price the instruction on the scoreboard.
        self.board.issue(inst, &self.model, mispredict, mul_lat);
        self.counts.record(inst, mispredict, mul_lat);

        if let Some((rd, v)) = write {
            if !rd.is_zero() {
                self.regs[rd.index()] = v;
            }
        }
        self.pc = next_pc;
        Ok(trap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_prog(src: &str) -> (Cpu, RunSummary) {
        let prog = assemble(src).unwrap();
        let mut cpu = Cpu::new(4096);
        let sum = cpu.run(&prog, 1_000_000).unwrap();
        (cpu, sum)
    }

    #[test]
    fn arithmetic_and_logic() {
        let (cpu, sum) = run_prog(
            "addi r1, r0, 6
             addi r2, r0, 7
             mul r3, r1, r2
             sub r4, r3, r1
             and r5, r3, r2
             or r6, r1, r2
             xor r7, r1, r2
             nor r8, r0, r0
             halt",
        );
        assert_eq!(sum.trap, Trap::Halt);
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.reg(4), 36);
        assert_eq!(cpu.reg(5), 42 & 7);
        assert_eq!(cpu.reg(6), 7);
        assert_eq!(cpu.reg(7), 1);
        assert_eq!(cpu.reg(8), u64::MAX);
    }

    #[test]
    fn shifts_and_compares() {
        let (cpu, _) = run_prog(
            "addi r1, r0, -8
             sra r2, r1, 1
             srl r3, r1, 60
             sll r4, r1, 2
             slt r5, r1, r0
             sltu r6, r1, r0
             slti r7, r1, -7
             halt",
        );
        assert_eq!(cpu.reg(2) as i64, -4);
        assert_eq!(cpu.reg(3), 0xF);
        assert_eq!(cpu.reg(4) as i64, -32);
        assert_eq!(cpu.reg(5), 1);
        assert_eq!(cpu.reg(6), 0, "unsigned compare sees -8 as huge");
        assert_eq!(cpu.reg(7), 1);
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        let (cpu, _) = run_prog(
            "lui r1, 0xBEEF
             ori r1, r1, 0xCAFE
             sd r1, 0(r0)
             ld r2, 0(r0)
             lw r3, 0(r0)
             lwu r4, 0(r0)
             lh r5, 0(r0)
             lhu r6, 0(r0)
             lb r7, 1(r0)
             lbu r8, 1(r0)
             halt",
        );
        let v = (0xBEEFu64 << 16) | 0xCAFE;
        assert_eq!(cpu.reg(2), v);
        assert_eq!(cpu.reg(3), v as u32 as i32 as i64 as u64);
        assert_eq!(cpu.reg(4), v & 0xFFFF_FFFF);
        assert_eq!(cpu.reg(5), 0xCAFEu16 as i16 as i64 as u64);
        assert_eq!(cpu.reg(6), 0xCAFE);
        assert_eq!(cpu.reg(7), 0xCAu8 as i8 as i64 as u64);
        assert_eq!(cpu.reg(8), 0xCA);
    }

    #[test]
    fn loop_executes_correct_trip_count() {
        let (cpu, sum) = run_prog(
            "       addi r1, r0, 100
                    addi r2, r0, 0
             loop:  add  r2, r2, r1
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert_eq!(cpu.reg(2), 5050);
        assert_eq!(sum.instructions, 2 + 3 * 100 + 1);
    }

    #[test]
    fn jal_jr_call_return() {
        let (cpu, _) = run_prog(
            "       jal func
                    addi r2, r0, 1
                    halt
             func:  addi r1, r0, 99
                    jr r31",
        );
        assert_eq!(cpu.reg(1), 99);
        assert_eq!(cpu.reg(2), 1);
        assert_eq!(cpu.reg(31), 1);
    }

    #[test]
    fn filt_band_predicate() {
        // Bounds packed in r10: lo=5 (low word), hi=10 (high word).
        let (cpu, _) = run_prog(
            "addi r10, r0, 5
             lui  r11, 10
             sll  r11, r11, 16
             or   r10, r10, r11
             addi r1, r0, 7
             filt r2, r1, r10
             addi r1, r0, 11
             filt r2, r1, r10
             addi r1, r0, 5
             filt r2, r1, r10
             halt",
        );
        // bits shifted in: 1 (7 in band), 0 (11 out), 1 (5 in) → 0b101
        assert_eq!(cpu.reg(2), 0b101);
    }

    #[test]
    fn crc32_and_popc() {
        let (cpu, _) = run_prog(
            "addi r1, r0, 0
             ori  r2, r0, 0x1234
             crc32 r3, r1, r2
             popc r4, r3
             halt",
        );
        assert_eq!(cpu.reg(3), crate::hash::crc32c_step(0, 0x1234) as u64);
        assert_eq!(cpu.reg(4), cpu.reg(3).count_ones() as u64);
    }

    #[test]
    fn traps_surface_and_resume() {
        let prog = assemble(
            "addi r1, r0, 3
             wfe r1
             addi r2, r0, 7
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(64);
        let s1 = cpu.run(&prog, 100).unwrap();
        assert_eq!(s1.trap, Trap::Wfe(3));
        assert_eq!(cpu.reg(2), 0, "instruction after wfe not yet run");
        let s2 = cpu.run(&prog, 100).unwrap();
        assert_eq!(s2.trap, Trap::Halt);
        assert_eq!(cpu.reg(2), 7);
    }

    #[test]
    fn dms_push_trap_carries_address() {
        let prog = assemble(
            "addi r1, r0, 128
             dmspush 1, r1
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(1024);
        let s = cpu.run(&prog, 10).unwrap();
        assert_eq!(s.trap, Trap::DmsPush { chan: 1, addr: 128 });
    }

    #[test]
    fn max_steps_budget() {
        let prog = assemble("loop: j loop").unwrap();
        let mut cpu = Cpu::new(64);
        let s = cpu.run(&prog, 50).unwrap();
        assert_eq!(s.trap, Trap::MaxSteps);
        assert_eq!(s.instructions, 50);
    }

    #[test]
    fn oob_access_faults() {
        let prog = assemble("lw r1, 0(r2)\nhalt").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.set_reg(2, 1_000_000);
        let e = cpu.run(&prog, 10).unwrap_err();
        assert_eq!(e.addr, Some(1_000_000));
        assert!(e.to_string().contains("memory fault"));
    }

    #[test]
    fn pc_out_of_range_faults() {
        let prog = assemble("nop").unwrap();
        let mut cpu = Cpu::new(64);
        let e = cpu.run(&prog, 10).unwrap_err();
        assert_eq!(e.addr, None);
    }

    #[test]
    fn watchpoint_fires_on_overlapping_store() {
        let prog = assemble(
            "addi r1, r0, 100
             sw r1, 100(r0)
             sw r1, 200(r0)
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(1024);
        cpu.set_watchpoint(200, 203);
        let s = cpu.run(&prog, 100).unwrap();
        assert_eq!(s.trap, Trap::Watchpoint { addr: 200 });
        // The faulting store did not execute.
        assert_eq!(cpu.dmem()[200], 0);
        // First store (outside the range) did.
        assert_eq!(cpu.dmem()[100], 100);
        // Disarm and resume: execution completes.
        cpu.clear_watchpoint();
        let s2 = cpu.run(&prog, 100).unwrap();
        assert_eq!(s2.trap, Trap::Halt);
        assert_eq!(cpu.dmem()[200], 100);
    }

    #[test]
    fn watchpoint_catches_partial_overlap() {
        // An 8-byte store at 96 touches [96, 103]; the watch starts at 100.
        let prog = assemble("addi r1, r0, -1\nsd r1, 96(r0)\nhalt").unwrap();
        let mut cpu = Cpu::new(256);
        cpu.set_watchpoint(100, 100);
        let s = cpu.run(&prog, 10).unwrap();
        assert_eq!(s.trap, Trap::Watchpoint { addr: 96 });
    }

    #[test]
    fn loads_also_trip_watchpoints() {
        let prog = assemble("lw r1, 64(r0)\nhalt").unwrap();
        let mut cpu = Cpu::new(256);
        cpu.set_watchpoint(0, 128);
        assert_eq!(cpu.run(&prog, 10).unwrap().trap, Trap::Watchpoint { addr: 64 });
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_watchpoint_rejected() {
        Cpu::new(64).set_watchpoint(10, 5);
    }

    #[test]
    fn writes_to_r0_ignored() {
        let (cpu, _) = run_prog("addi r0, r0, 55\nhalt");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn dual_issue_beats_serial_count() {
        // Interleaved ALU/LSU pairs should exceed IPC 1.
        let mut body = String::new();
        for i in 0..64 {
            body.push_str(&format!("addi r1, r1, 1\nsw r2, {}(r0)\n", i * 4));
        }
        body.push_str("halt");
        let (cpu, sum) = run_prog(&body);
        assert_eq!(cpu.reg(1), 64);
        assert!(
            sum.ipc() > 1.5,
            "independent ALU/LSU stream should dual-issue, got IPC {}",
            sum.ipc()
        );
    }

    #[test]
    fn backward_loop_branches_predicted() {
        // A hot loop's backward branch is always taken and predicted:
        // mispredicts should be ~1 (the final fall-through).
        let (cpu, _) = run_prog(
            "       addi r1, r0, 1000
             loop:  addi r1, r1, -1
                    bne  r1, r0, loop
                    halt",
        );
        assert_eq!(cpu.counts().branches, 1000);
        assert_eq!(cpu.counts().mispredicts, 1);
    }

    #[test]
    fn ntz_faster_than_nlz() {
        // §5.4: number-of-trailing-zeros is ~4 cycles thanks to POPC,
        // number-of-leading-zeros ~13 via shift-smearing.
        let ntz = "addi r2, r0, 0
                   sub  r2, r2, r1
                   and  r2, r2, r1
                   addi r2, r2, -1
                   popc r3, r2
                   halt";
        let nlz = "or   r2, r1, r0
                   srl  r3, r2, 1
                   or   r2, r2, r3
                   srl  r3, r2, 2
                   or   r2, r2, r3
                   srl  r3, r2, 4
                   or   r2, r2, r3
                   srl  r3, r2, 8
                   or   r2, r2, r3
                   srl  r3, r2, 16
                   or   r2, r2, r3
                   srl  r3, r2, 32
                   or   r2, r2, r3
                   nor  r2, r2, r0
                   popc r3, r2
                   halt";
        let run = |src: &str, x: u64| {
            let prog = assemble(src).unwrap();
            let mut cpu = Cpu::new(64);
            cpu.set_reg(1, x);
            let s = cpu.run(&prog, 100).unwrap();
            (cpu.reg(3), s.cycles)
        };
        let (ntz_v, ntz_c) = run(ntz, 0b1010_0000);
        let (nlz_v, nlz_c) = run(nlz, 0b1010_0000);
        assert_eq!(ntz_v, 5);
        assert_eq!(nlz_v, 56);
        assert!(
            ntz_c + 5 <= nlz_c,
            "NTZ ({ntz_c} cyc) should be much cheaper than NLZ ({nlz_c} cyc)"
        );
    }
}
