//! General-purpose register names.

use std::fmt;

/// One of the 32 64-bit general-purpose registers.
///
/// `r0` is hardwired to zero, as on MIPS; writes to it are discarded.
///
/// # Example
///
/// ```
/// use dpu_isa::Reg;
/// let r = Reg::new(5).unwrap();
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(Reg::new(32).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link register for `jal` (r31).
    pub const LINK: Reg = Reg(31);
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index; `None` if out of range.
    pub fn new(index: u8) -> Option<Reg> {
        (index < Self::COUNT as u8).then_some(Reg(index))
    }

    /// Creates a register, panicking if out of range.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn of(index: u8) -> Reg {
        Self::new(index).expect("register index out of range")
    }

    /// The register's index (0..32).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the hardwired-zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        assert!(Reg::new(0).is_some());
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::of(1).is_zero());
        assert_eq!(Reg::LINK.index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn of_panics_out_of_range() {
        Reg::of(40);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::of(17).to_string(), "r17");
    }
}
